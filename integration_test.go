package fmmfam

// Cross-module integration tests: the full stack (generator → plan →
// fused GEMM → peeling → parallelism) against the reference oracle, plus
// interop between discovery, coefficient I/O and execution.

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"fmmfam/internal/coeffio"
	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/gemm"
	"fmmfam/internal/matrix"
	"fmmfam/internal/model"
	"fmmfam/internal/stability"
)

func refCheck(t *testing.T, p *Plan, m, k, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, b := NewMatrix(m, k), NewMatrix(k, n)
	a.FillRand(rng)
	b.FillRand(rng)
	c := NewMatrix(m, n)
	want := NewMatrix(m, n)
	matrix.MulAdd(want, a, b)
	p.MulAdd(c, a, b)
	if d := c.MaxAbsDiff(want); d > 1e-8 {
		t.Fatalf("%s at %d×%d×%d: diff %g", p, m, k, n, d)
	}
}

func TestThreeLevelHybridAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("three-level sweep")
	}
	levels := []Algorithm{Generate(2, 2, 2), Generate(2, 3, 2), Generate(3, 2, 2)}
	for _, v := range []Variant{Naive, AB, ABC} {
		p, err := NewPlan(Config{MC: 16, KC: 16, NC: 32, Threads: 2}, v, levels...)
		if err != nil {
			t.Fatal(err)
		}
		// Composite partition <12,12,8>; pick sizes with and without fringes.
		refCheck(t, p, 96, 96, 64, 1)
		refCheck(t, p, 97, 100, 70, 2)
	}
}

func TestCatalogTwoLevelSelfCompositionABC(t *testing.T) {
	if testing.Short() {
		t.Skip("23 two-level plans")
	}
	for _, e := range Catalog() {
		p, err := NewPlan(Config{MC: 8, KC: 8, NC: 16, Threads: 1}, ABC, e.Algorithm, e.Algorithm)
		if err != nil {
			t.Fatalf("%s: %v", e.Shape(), err)
		}
		refCheck(t, p, e.M*e.M*3+1, e.K*e.K*3+2, e.N*e.N*3+1, int64(e.M+10*e.K+100*e.N))
	}
}

func TestAllThreadCountsAgree(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	if max > 8 {
		max = 8
	}
	rng := rand.New(rand.NewSource(3))
	a, b := NewMatrix(150, 90), NewMatrix(90, 120)
	a.FillRand(rng)
	b.FillRand(rng)
	var first Matrix
	for threads := 1; threads <= max; threads++ {
		p, err := NewPlan(Config{MC: 16, KC: 16, NC: 32, Threads: threads}, ABC, Strassen(), Generate(2, 3, 2))
		if err != nil {
			t.Fatal(err)
		}
		c := NewMatrix(150, 120)
		p.MulAdd(c, a, b)
		if threads == 1 {
			first = c
			continue
		}
		if d := c.MaxAbsDiff(first); d != 0 {
			t.Fatalf("threads=%d differs from serial by %g", threads, d)
		}
	}
}

func TestCoeffIOIntoPlanExecution(t *testing.T) {
	// Export a generated algorithm, re-import it, run it through the
	// executor: the serialized form must be executably identical.
	var buf bytes.Buffer
	if err := coeffio.Write(&buf, core.Generate(3, 2, 3)); err != nil {
		t.Fatal(err)
	}
	imported, err := coeffio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(Config{MC: 8, KC: 8, NC: 16, Threads: 1}, AB, imported)
	if err != nil {
		t.Fatal(err)
	}
	refCheck(t, p, 31, 23, 29, 4)
}

func TestModelAgreesWithMeasurementOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("measures real multiplications")
	}
	// The model's core promise (§4.4): its *relative* ordering of ABC vs
	// Naive for a rank-k update matches measurement. Calibrate to this
	// machine, predict both, measure both.
	cfg := DefaultConfig()
	arch, err := model.Calibrate[float64](gemm.Config{MC: cfg.MC, KC: cfg.KC, NC: cfg.NC, Threads: 1}, 256)
	if err != nil {
		t.Fatal(err)
	}
	const m, k, n = 720, 240, 720
	s := model.StatsOf(core.Strassen())
	predABC := model.Predict(arch, s, fmmexec.ABC, m, k, n).Total()
	predNaive := model.Predict(arch, s, fmmexec.Naive, m, k, n).Total()
	if predABC >= predNaive {
		t.Fatalf("model: ABC %v !< Naive %v for rank-k", predABC, predNaive)
	}
	timeOf := func(v Variant) float64 {
		p, err := NewPlan(cfg, v, Strassen())
		if err != nil {
			t.Fatal(err)
		}
		a, b := NewMatrix(m, k), NewMatrix(k, n)
		a.Fill(0.5)
		b.Fill(0.25)
		c := NewMatrix(m, n)
		best := 1e18
		for rep := 0; rep < 3; rep++ {
			c.Zero()
			start := time.Now()
			p.MulAdd(c, a, b)
			if el := time.Since(start).Seconds(); el < best {
				best = el
			}
		}
		return best
	}
	if timeOf(ABC) >= timeOf(Naive)*1.05 {
		t.Fatal("measurement contradicts model: ABC slower than Naive on rank-k")
	}
}

func TestStabilityThroughFullStack(t *testing.T) {
	p, err := NewPlan(Config{MC: 16, KC: 16, NC: 32, Threads: 2}, ABC, Strassen(), Strassen())
	if err != nil {
		t.Fatal(err)
	}
	r := stability.Measure(p, 128, 128, 128, 7)
	if r.MaxErr <= 0 || r.MaxErr > 1e-10 {
		t.Fatalf("two-level Strassen error %g outside expected window", r.MaxErr)
	}
}

func TestDiscoveredAlgorithmThroughFullStack(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ALS")
	}
	algo, err := Discover(DiscoverProblem{M: 2, K: 2, N: 2, R: 7},
		DiscoverOptions{Restarts: 10, Iters: 1500, Seed: 2})
	if err != nil {
		t.Fatalf("known-good discovery seed failed: %v", err)
	}
	p, err := NewPlan(Config{MC: 16, KC: 16, NC: 32, Threads: 2}, ABC, algo, algo)
	if err != nil {
		t.Fatal(err)
	}
	refCheck(t, p, 85, 91, 77, 8)
}
