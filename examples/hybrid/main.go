// Hybrid partitions (paper §5.2, Figure 9): composing a different algorithm
// per level via the Kronecker-product representation. When k ≈ 2·3·kC, the
// hybrid <2,2,2>+<3,3,3> splits the k dimension into 6 kC-sized panels —
// exactly the granularity the packing wants — and beats both homogeneous
// two-level choices.
package main

import (
	"fmt"
	"log"
	"time"

	"fmmfam"
)

func main() {
	cfg := fmmfam.DefaultConfig()
	const mn = 1152
	k := 6 * cfg.KC / 2 // ≈ 2·3·kC/2: between the 2-way and 3-way sweet spots

	a, b := fmmfam.NewMatrix(mn, k), fmmfam.NewMatrix(k, mn)
	a.Fill(0.25)
	b.Fill(-0.125)

	s222 := fmmfam.Generate(2, 2, 2)
	s232 := fmmfam.Generate(2, 3, 2)
	s333 := fmmfam.Generate(3, 3, 3)

	plans := []struct {
		name   string
		levels []fmmfam.Algorithm
	}{
		{"<2,2,2> one-level", []fmmfam.Algorithm{s222}},
		{"<2,2,2>+<2,2,2>", []fmmfam.Algorithm{s222, s222}},
		{"<3,3,3>+<3,3,3>", []fmmfam.Algorithm{s333, s333}},
		{"<2,2,2>+<2,3,2> hybrid", []fmmfam.Algorithm{s222, s232}},
		{"<2,2,2>+<3,3,3> hybrid", []fmmfam.Algorithm{s222, s333}},
	}

	fmt.Printf("m=n=%d, k=%d (≈ 2·3·kC/2), ABC variant, 1 thread\n\n", mn, k)
	for _, pl := range plans {
		p, err := fmmfam.NewPlan(cfg, fmmfam.ABC, pl.levels...)
		if err != nil {
			log.Fatal(err)
		}
		c := fmmfam.NewMatrix(mn, mn)
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			c.Zero()
			start := time.Now()
			p.MulAdd(c, a, b)
			if el := time.Since(start); el < best {
				best = el
			}
		}
		g := 2 * float64(mn) * float64(mn) * float64(k) / best.Seconds() * 1e-9
		fmt.Printf("%-26s %8.2f effective GFLOPS (composite partition %s)\n",
			pl.name, g, describe(pl.levels))
	}
}

func describe(levels []fmmfam.Algorithm) string {
	m, k, n := 1, 1, 1
	for _, l := range levels {
		m *= l.M
		k *= l.K
		n *= l.N
	}
	return fmt.Sprintf("<%d,%d,%d>", m, k, n)
}
