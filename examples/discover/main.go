// Algorithm discovery: numerically search for an exact rank-7 decomposition
// of the <2,2,2> matrix multiplication tensor (i.e. rediscover Strassen's
// algorithm) with alternating least squares plus grid discretization, verify
// it, register it as a generator seed, and run it on a real multiplication.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fmmfam"
	"fmmfam/internal/matrix"
)

func main() {
	fmt.Println("searching for a rank-7 <2,2,2> algorithm (ALS + discretization)...")
	start := time.Now()
	algo, err := fmmfam.Discover(
		fmmfam.DiscoverProblem{M: 2, K: 2, N: 2, R: 7},
		fmmfam.DiscoverOptions{Restarts: 10, Iters: 1500, Seed: 2},
	)
	if err != nil {
		log.Fatalf("search failed: %v", err)
	}
	fmt.Printf("found %s in %v (Brent-verified exact)\n", algo, time.Since(start).Round(time.Millisecond))
	u, v, w := algo.NNZ()
	fmt.Printf("non-zeros: nnz(U)=%d nnz(V)=%d nnz(W)=%d (Strassen's coefficients have 12/12/12)\n", u, v, w)

	if err := fmmfam.RegisterSeed(algo); err != nil {
		log.Fatal(err)
	}

	// Use the discovered algorithm for a real product and verify.
	plan, err := fmmfam.NewPlan(fmmfam.DefaultConfig(), fmmfam.ABC, algo)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a, b := fmmfam.NewMatrix(300, 300), fmmfam.NewMatrix(300, 300)
	a.FillRand(rng)
	b.FillRand(rng)
	c := fmmfam.NewMatrix(300, 300)
	plan.MulAdd(c, a, b)
	want := fmmfam.NewMatrix(300, 300)
	matrix.MulAdd(want, a, b)
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		log.Fatalf("discovered algorithm wrong by %g", d)
	}
	fmt.Println("discovered algorithm multiplies correctly: ok")
}
