// Quickstart: multiply two matrices with a fast matrix multiplication plan
// and check the result against a straightforward reference product.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fmmfam"
)

func main() {
	const m, k, n = 768, 768, 768
	rng := rand.New(rand.NewSource(1))

	a := fmmfam.NewMatrix(m, k)
	b := fmmfam.NewMatrix(k, n)
	a.FillRand(rng)
	b.FillRand(rng)

	// One-shot API: picks an algorithm/variant with the performance model.
	c := fmmfam.NewMatrix(m, n)
	start := time.Now()
	if err := fmmfam.Multiply(c, a, b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fmmfam.Multiply: %v\n", time.Since(start))

	// Reusable plan API: one-level Strassen, ABC variant, single thread.
	plan, err := fmmfam.NewPlan(fmmfam.DefaultConfig(), fmmfam.ABC, fmmfam.Strassen())
	if err != nil {
		log.Fatal(err)
	}
	c2 := fmmfam.NewMatrix(m, n)
	start = time.Now()
	plan.MulAdd(c2, a, b)
	fmt.Printf("1-level Strassen ABC: %v\n", time.Since(start))

	// Verify both against each other (both computed C := 0 + A·B).
	if d := c.MaxAbsDiff(c2); d > 1e-9 {
		log.Fatalf("results disagree by %g", d)
	}
	fmt.Println("results agree: ok")
}
