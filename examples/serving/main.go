// Serving walkthrough: one process-wide Multiplier absorbing a stream of
// independent products through the bounded async queue (submit-and-collect
// futures), while large problems are automatically sharded into independent
// block products scheduled across the same pool.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fmmfam"
)

func main() {
	cfg := fmmfam.DefaultConfig().Parallel()
	mu := fmmfam.NewMultiplier(cfg, fmmfam.PaperArch())
	defer mu.Close()

	// Submit a burst of independent products; the bounded queue applies
	// backpressure, the pool drains it, each Future resolves independently.
	rng := rand.New(rand.NewSource(1))
	const requests = 16
	futures := make([]*fmmfam.Future, requests)
	outputs := make([]fmmfam.Matrix, requests)
	start := time.Now()
	for i := range futures {
		m, k, n := 96+16*(i%4), 64+32*(i%3), 96+16*(i%5)
		a, b := fmmfam.NewMatrix(m, k), fmmfam.NewMatrix(k, n)
		a.FillRand(rng)
		b.FillRand(rng)
		outputs[i] = fmmfam.NewMatrix(m, n)
		futures[i] = mu.MulAddAsync(outputs[i], a, b)
	}
	for i, f := range futures {
		if err := f.Wait(); err != nil {
			log.Fatalf("request %d: %v", i, err)
		}
	}
	fmt.Printf("served %d async products in %v\n", requests, time.Since(start).Round(time.Millisecond))

	// A single large call: above Config.ShardThreshold (and with a pool to
	// feed, Threads ≥ 2) the multiplier splits it into independent full-K
	// block products and schedules those across the same pool instead of
	// parallelizing one product's loops.
	const big = 1536
	a, b := fmmfam.NewMatrix(big, big), fmmfam.NewMatrix(big, big)
	a.FillRand(rng)
	b.FillRand(rng)
	c := fmmfam.NewMatrix(big, big)
	start = time.Now()
	if err := mu.MulAdd(c, a, b); err != nil {
		log.Fatal(err)
	}
	label := "auto-sharded"
	if cfg.Threads < 2 {
		label = "unsharded (needs Threads ≥ 2)"
	}
	fmt.Printf("%s %d³ MulAdd in %v (‖C‖_F = %.3f)\n",
		label, big, time.Since(start).Round(time.Millisecond), c.FrobNorm())
}
