// Code generation: emit the fully unrolled Go source for a chosen FMM plan —
// the paper's code-generator workflow. The generated file contains one fused
// call per multiplication Mr (with the linear combinations spelled out in
// comments, like computations (2) of the paper), dynamic peeling, and the
// automatically generated performance-model function.
package main

import (
	"fmt"
	"log"
	"os"

	"fmmfam/internal/codegen"
	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
)

func main() {
	src, err := codegen.Generate(codegen.Spec{
		Package:  "strassen",
		FuncName: "MulAdd",
		Levels:   []core.Algorithm{core.Strassen()},
		Variant:  fmmexec.ABC,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d bytes of Go for one-level <2,2,2> ABC:\n\n", len(src))
	os.Stdout.Write(src)
	fmt.Println("\n(compile-and-run integration is tested in internal/codegen;")
	fmt.Println(" use `fmmtool gen -levels \"2,2,2;3,3,3\" -variant ABC -o file.go` from the CLI)")
}
