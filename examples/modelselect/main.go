// Poly-algorithm selection (paper §4.4, Figure 8): use the analytic
// performance model to rank the generated family for several problem shapes,
// then confirm the top pick by measuring the model's top two candidates.
package main

import (
	"fmt"
	"time"

	"fmmfam"
)

func main() {
	arch := fmmfam.PaperArch()

	// Model-space ranking at the paper's sizes (no measurement needed).
	fmt.Println("model-ranked winners on the paper's Ivy Bridge:")
	for _, s := range [][3]int{
		{14400, 480, 14400},   // rank-k update
		{14400, 12000, 14400}, // near-square
		{1024, 1024, 1024},    // small square
	} {
		cand := fmmfam.Recommend(arch, s[0], s[1], s[2])
		secs := fmmfam.Predict(arch, cand, s[0], s[1], s[2])
		fmt.Printf("  %5d×%5d×%5d → %-24s predicted %6.3fs\n", s[0], s[1], s[2], cand.Name(), secs)
	}

	// Measured confirmation at a laptop-friendly size: model top pick vs the
	// GEMM baseline.
	const m, k, n = 960, 320, 960
	cand := fmmfam.Recommend(arch, m, k, n)
	plan, err := fmmfam.NewPlan(fmmfam.DefaultConfig(), cand.Variant, cand.Levels...)
	if err != nil {
		panic(err)
	}
	a, b := fmmfam.NewMatrix(m, k), fmmfam.NewMatrix(k, n)
	a.Fill(0.5)
	b.Fill(0.25)

	timeIt := func(fn func(c fmmfam.Matrix)) float64 {
		c := fmmfam.NewMatrix(m, n)
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			c.Zero()
			start := time.Now()
			fn(c)
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return 2 * float64(m) * float64(n) * float64(k) / best.Seconds() * 1e-9
	}
	selected := timeIt(func(c fmmfam.Matrix) { plan.MulAdd(c, a, b) })
	baseline := timeIt(func(c fmmfam.Matrix) { plan.Context().MulAdd(c, a, b) })
	fmt.Printf("\nmeasured at %d×%d×%d: selected %s %.2f GFLOPS vs GEMM %.2f GFLOPS (%+.1f%%)\n",
		m, k, n, cand.Name(), selected, baseline, (selected/baseline-1)*100)
}
