// Rank-k update: the workload the paper's introduction motivates. For
// C(m×n) += A(m×k)·B(k×n) with k much smaller than m and n — the shape of
// blocked LU/QR trailing updates — traditional Strassen implementations lose
// to GEMM, while the ABC variant (no temporaries, additions fused into
// packing and micro-kernel) retains a speedup. This example measures GEMM
// vs Naive vs ABC on a rank-k update and prints effective GFLOPS.
package main

import (
	"fmt"
	"log"
	"time"

	"fmmfam"
)

func effGFLOPS(m, k, n int, d time.Duration) float64 {
	return 2 * float64(m) * float64(n) * float64(k) / d.Seconds() * 1e-9
}

func main() {
	const m, n, k = 1152, 1152, 384 // k = 1.5·kC: a rank-k update
	a, b := fmmfam.NewMatrix(m, k), fmmfam.NewMatrix(k, n)
	a.Fill(1.0 / 3)
	b.Fill(-0.5)

	strassen := fmmfam.Strassen()
	cfg := fmmfam.DefaultConfig()

	type impl struct {
		name string
		run  func(c fmmfam.Matrix)
	}
	gemmPlan, err := fmmfam.NewPlan(cfg, fmmfam.ABC, strassen)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := fmmfam.NewPlan(cfg, fmmfam.Naive, strassen)
	if err != nil {
		log.Fatal(err)
	}
	abc, err := fmmfam.NewPlan(cfg, fmmfam.ABC, strassen)
	if err != nil {
		log.Fatal(err)
	}
	impls := []impl{
		{"GEMM (BLIS-style baseline)", func(c fmmfam.Matrix) { gemmPlan.Context().MulAdd(c, a, b) }},
		{"<2,2,2> Naive (reference-style)", func(c fmmfam.Matrix) { naive.MulAdd(c, a, b) }},
		{"<2,2,2> ABC (fused)", func(c fmmfam.Matrix) { abc.MulAdd(c, a, b) }},
	}

	fmt.Printf("rank-k update: C(%d×%d) += A(%d×%d)·B(%d×%d)\n\n", m, n, m, k, k, n)
	var baseline float64
	for _, im := range impls {
		c := fmmfam.NewMatrix(m, n)
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			c.Zero()
			start := time.Now()
			im.run(c)
			if el := time.Since(start); el < best {
				best = el
			}
		}
		g := effGFLOPS(m, k, n, best)
		if baseline == 0 {
			baseline = g
		}
		fmt.Printf("%-34s %8.2f GFLOPS  (%+.1f%% vs GEMM)\n", im.name, g, (g/baseline-1)*100)
	}
}
