// Serving-over-the-wire walkthrough: a client driving a running fmmserve
// instance through every compute surface — synchronous multiplies small
// enough to ride the coalescing window, a wire batch, an async
// submit/collect pair — then reading /v1/stats back to see what the server
// did with the traffic. Results are verified against a local serial engine,
// so this doubles as the CI serving smoke check:
//
//	fmmserve -addr 127.0.0.1:8077 &
//	go run ./examples/fmmserve -url http://127.0.0.1:8077
//
// Exit status is nonzero on any wrong result or failed request.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"fmmfam"
	"fmmfam/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8077", "base URL of a running fmmserve")
	flag.Parse()

	cl := &serve.Client{BaseURL: *url, Retry429: 8}

	// Local serial reference: the serving contract says coalesced and batch
	// results are bit-identical to a single-threaded engine run, so we can
	// check the wire answers exactly, not just approximately.
	refCfg := fmmfam.DefaultConfig()
	refCfg.Threads = 1
	ref := fmmfam.NewMultiplier(refCfg, fmmfam.PaperArch())
	defer ref.Close()

	rng := rand.New(rand.NewSource(7))
	mk := func(m, k, n int) (a, b, want fmmfam.Matrix) {
		a, b = fmmfam.NewMatrix(m, k), fmmfam.NewMatrix(k, n)
		a.FillRand(rng)
		b.FillRand(rng)
		want = fmmfam.NewMatrix(m, n)
		if err := ref.MulAdd(want, a, b); err != nil {
			log.Fatalf("local reference: %v", err)
		}
		return a, b, want
	}

	// Small synchronous multiplies: on the server these join the coalescing
	// window and execute as one batch.
	for i := 0; i < 8; i++ {
		a, b, want := mk(48, 32, 48)
		c := fmmfam.NewMatrix(48, 48)
		if err := cl.Multiply(c, a, b); err != nil {
			log.Fatalf("multiply %d: %v", i, err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			log.Fatalf("multiply %d: wire result off by %g", i, d)
		}
	}
	fmt.Println("8 small multiplies served")

	// One wire batch: independent products shipped and answered in a single
	// request.
	jobs := make([]fmmfam.BatchJob, 4)
	wants := make([]fmmfam.Matrix, 4)
	for i := range jobs {
		a, b, want := mk(64, 48, 32)
		jobs[i] = fmmfam.BatchJob{C: fmmfam.NewMatrix(64, 32), A: a, B: b}
		wants[i] = want
	}
	if err := cl.MultiplyBatch(jobs); err != nil {
		log.Fatalf("batch: %v", err)
	}
	for i, j := range jobs {
		if d := j.C.MaxAbsDiff(wants[i]); d > 1e-9 {
			log.Fatalf("batch job %d off by %g", i, d)
		}
	}
	fmt.Println("4-job wire batch served")

	// Async: submit returns immediately with an id; collect blocks until the
	// server-side future resolves, then the result is released (collect-once).
	a, b, want := mk(160, 96, 128)
	c := fmmfam.NewMatrix(160, 128)
	h, err := cl.SubmitAsync(c, a, b)
	if err != nil {
		log.Fatalf("async submit: %v", err)
	}
	fmt.Printf("async submission accepted (id %s)\n", h.ID())
	if err := h.Collect(); err != nil {
		log.Fatalf("async collect: %v", err)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		log.Fatalf("async result off by %g", d)
	}
	fmt.Println("async product collected")

	// The server's view of what just happened.
	st, err := cl.Stats()
	if err != nil {
		log.Fatalf("stats: %v", err)
	}
	fmt.Printf("server stats: %d completed, %d errors, admission %d/%d in flight\n",
		st.Completed, st.Errors, st.Admission.InFlight, st.Admission.Depth)
	if st.Coalesce64.Enabled {
		fmt.Printf("coalescing: %d jobs in %d batches (%d size-flushed, %d timer-flushed)\n",
			st.Coalesce64.Jobs, st.Coalesce64.Batches, st.Coalesce64.SizeFlushes, st.Coalesce64.TimerFlushes)
	}
	p99 := st.Endpoints["multiply"].Quantile(0.99)
	fmt.Printf("multiply p99 ≤ %v\n", p99)
	// 11 requests: 8 multiplies, 1 batch, 1 async submit, 1 async collect.
	if st.Completed < 11 || st.Errors > 0 {
		log.Fatalf("stats disagree with the traffic just sent: %+v", st)
	}
	fmt.Println("serving smoke: OK")
}
