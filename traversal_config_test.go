package fmmfam

import (
	"math/rand"
	"testing"

	"fmmfam/internal/matrix"
)

// TestConfigTraversalValidation: the Traversal knob accepts exactly the
// documented values, from both Validate and the multiplier entry points.
func TestConfigTraversalValidation(t *testing.T) {
	base := Config{MC: 32, KC: 32, NC: 64, Threads: 2}
	for _, ok := range []string{"", TraversalAuto, TraversalDFS, TraversalBFS} {
		cfg := base
		cfg.Traversal = ok
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Traversal=%q rejected: %v", ok, err)
		}
	}
	cfg := base
	cfg.Traversal = "breadth-first"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown Traversal accepted by Validate")
	}
	mu := NewMultiplier(cfg, PaperArch())
	c, a, b := NewMatrix(8, 8), NewMatrix(8, 8), NewMatrix(8, 8)
	if err := mu.MulAdd(c, a, b); err == nil {
		t.Fatal("multiplier with unknown Traversal executed")
	}
	if _, err := NewPlan(cfg, ABC, Strassen()); err == nil {
		t.Fatal("NewPlan with unknown Traversal succeeded")
	}
}

// TestForcedTraversalShapesPlans: "bfs" builds fanned plans, "dfs" and the
// Threads=1 auto path build the serial term loop, on both the Multiplier and
// the direct NewPlan/NewPlan32 surfaces.
func TestForcedTraversalShapesPlans(t *testing.T) {
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 4, Traversal: TraversalBFS}
	mu := NewMultiplier(cfg, PaperArch())
	p, err := mu.PlanFor(256, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fanout() < 2 {
		t.Fatalf("forced bfs plan fanout %d, want ≥ 2", p.Fanout())
	}
	cfg.Traversal = TraversalDFS
	if p, err = NewMultiplier(cfg, PaperArch()).PlanFor(256, 256, 256); err != nil {
		t.Fatal(err)
	}
	if p.Fanout() != 1 {
		t.Fatalf("forced dfs plan fanout %d, want 1", p.Fanout())
	}
	cfg.Traversal = TraversalAuto
	cfg.Threads = 1
	if p, err = NewMultiplier(cfg, PaperArch()).PlanFor(256, 256, 256); err != nil {
		t.Fatal(err)
	}
	if p.Fanout() != 1 {
		t.Fatalf("Threads=1 auto plan fanout %d, want 1", p.Fanout())
	}

	cfg = Config{MC: 32, KC: 32, NC: 64, Threads: 4, Traversal: TraversalBFS}
	dp, err := NewPlan(cfg, ABC, Strassen(), Strassen())
	if err != nil {
		t.Fatal(err)
	}
	if dp.Fanout() != 49 {
		t.Fatalf("direct bfs plan fanout %d, want 49", dp.Fanout())
	}
	dp32, err := NewPlan32(cfg, AB, Strassen())
	if err != nil {
		t.Fatal(err)
	}
	if dp32.Fanout() != 7 {
		t.Fatalf("direct float32 bfs plan fanout %d, want 7", dp32.Fanout())
	}
}

// TestTraversalEnvOverridesConfig: FMMFAM_TRAVERSAL wins over the Config
// field — the no-recompile escape hatch — and an invalid value surfaces as
// an error rather than silently falling back.
func TestTraversalEnvOverridesConfig(t *testing.T) {
	t.Setenv("FMMFAM_TRAVERSAL", "dfs")
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 4, Traversal: TraversalBFS}
	p, err := NewMultiplier(cfg, PaperArch()).PlanFor(256, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fanout() != 1 {
		t.Fatalf("FMMFAM_TRAVERSAL=dfs did not override Traversal=bfs (fanout %d)", p.Fanout())
	}

	t.Setenv("FMMFAM_TRAVERSAL", "sideways")
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid FMMFAM_TRAVERSAL accepted")
	}
}

// TestTraversalBFSEndToEnd drives the full Multiplier stack under forced
// BFS: correctness against the reference on divisible and fringed sizes,
// and run-to-run bit-identical repeats (the BFS determinism contract).
func TestTraversalBFSEndToEnd(t *testing.T) {
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 4, Traversal: TraversalBFS}
	mu := NewMultiplier(cfg, PaperArch())
	rng := rand.New(rand.NewSource(60))
	for _, s := range [][3]int{{128, 128, 128}, {200, 130, 170}, {97, 61, 113}} {
		a, b := NewMatrix(s[0], s[1]), NewMatrix(s[1], s[2])
		a.FillRand(rng)
		b.FillRand(rng)
		want := NewMatrix(s[0], s[2])
		matrix.MulAdd(want, a, b)
		c := NewMatrix(s[0], s[2])
		if err := mu.MulAdd(c, a, b); err != nil {
			t.Fatal(err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("bfs MulAdd %v: diff %g", s, d)
		}
		c2 := NewMatrix(s[0], s[2])
		if err := mu.MulAdd(c2, a, b); err != nil {
			t.Fatal(err)
		}
		if d := c.MaxAbsDiff(c2); d != 0 {
			t.Fatalf("bfs MulAdd %v not run-to-run deterministic: %g", s, d)
		}
	}
}

// TestTraversalDFSKeepsSerialBits: under FMMFAM_TRAVERSAL=dfs a parallel
// multiplier produces exactly the serial multiplier's bits — the property
// that keeps the float64 golden fingerprints valid with the knob thrown.
func TestTraversalDFSKeepsSerialBits(t *testing.T) {
	t.Setenv("FMMFAM_TRAVERSAL", "dfs")
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 1}
	rng := rand.New(rand.NewSource(61))
	a, b := NewMatrix(160, 144), NewMatrix(144, 176)
	a.FillRand(rng)
	b.FillRand(rng)
	c1 := NewMatrix(160, 176)
	if err := NewMultiplier(cfg, PaperArch()).MulAdd(c1, a, b); err != nil {
		t.Fatal(err)
	}
	cfg.Threads = 4
	c2 := NewMatrix(160, 176)
	if err := NewMultiplier(cfg, PaperArch()).MulAdd(c2, a, b); err != nil {
		t.Fatal(err)
	}
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatal("Threads=4 under forced dfs is not bit-identical to serial")
	}
}

// TestTraversalAutoMatchesReference: whatever the model chooses for a
// parallel multiplier, results must match the reference and stay
// deterministic across repeats.
func TestTraversalAutoMatchesReference(t *testing.T) {
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 4}
	mu := NewMultiplier(cfg, PaperArch())
	rng := rand.New(rand.NewSource(62))
	a, b := NewMatrix(256, 256), NewMatrix(256, 256)
	a.FillRand(rng)
	b.FillRand(rng)
	want := NewMatrix(256, 256)
	matrix.MulAdd(want, a, b)
	c := NewMatrix(256, 256)
	if err := mu.MulAdd(c, a, b); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("auto MulAdd diff %g", d)
	}
	c2 := NewMatrix(256, 256)
	if err := mu.MulAdd(c2, a, b); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(c2); d != 0 {
		t.Fatalf("auto MulAdd not run-to-run deterministic: %g", d)
	}
}
