package fmmfam

import (
	"fmt"
	"math"
	"time"

	"fmmfam/internal/autotune"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
	"fmmfam/internal/model"
	"fmmfam/internal/shard"
)

// This file wires the internal/autotune bandit into the serving layer: with
// Config.Autotune on, every plan-cache entry carries a per-shape-class Tuner
// whose arms are fully-built alternative plans (the model's next-best
// candidates, the opposite term traversal, an alternative kernel backend),
// the sharded path carries a grid tuner per shape class, every MulAdd is
// timed against the arm that served it, and promotions feed measured medians
// back into model selection (model.Feedback) and the traversal fold-cost
// calibration (model.FitFoldScale).
//
// Determinism: the bandit only ever chooses WHICH plan serves a call. Each
// arm is itself a deterministic plan (or shard spec), so a call's result
// carries the determinism guarantees of the arm that ran it — the same
// contract as flipping Config knobs between calls by hand.

// planArm is one executable alternative for a shape class: a fully-built
// plan, the candidate it came from (for feedback keying), and its BFS prefix
// depth (for fold-cost fitting on promotions that cross traversal modes).
type planArm[E matrix.Element] struct {
	plan  *fmmexec.Plan[E]
	cand  Candidate
	depth int
}

// planTuner is the autotune state of one plan-cache entry: the bandit and
// its arms, plus the shape-class identity the arms were built for. arms is
// immutable after construction, so the serving path reads it lock-free.
type planTuner[E matrix.Element] struct {
	tuner      *autotune.Tuner
	arms       map[string]planArm[E]
	shape      string
	bm, bk, bn int // bucketed dims the arms were built for
}

// trLabel names an arm's traversal for plan keys: "dfs" or "bfs<depth>".
func trLabel(depth int) string {
	if depth == 0 {
		return TraversalDFS
	}
	return fmt.Sprintf("%s%d", TraversalBFS, depth)
}

// buildArm constructs one arm: cand executed with the given traversal steps
// and kernel backend (empty kern = the multiplier's configured backend). The
// returned key encodes candidate, traversal, and backend, so two arms never
// collide unless they would execute identically.
func (mu *GenericMultiplier[E]) buildArm(cand Candidate, steps []fmmexec.Step, kern string) (string, planArm[E], error) {
	gcfg := mu.cfg.gemmConfig()
	if kern != "" {
		gcfg.Kernel = kern
	}
	depth := 0
	for _, s := range steps {
		if s == fmmexec.BFS {
			depth++
		}
	}
	kname, ok := kernel.ResolveNameFor(gcfg.Kernel, matrix.DtypeOf[E]())
	if !ok {
		kname = gcfg.Kernel
	}
	key := cand.Name() + "|tr=" + trLabel(depth) + "|kern=" + kname
	p, err := fmmexec.NewPlanTraversal[E](gcfg, cand.Variant, steps, cand.Levels...)
	if err != nil {
		return key, planArm[E]{}, err
	}
	return key, planArm[E]{plan: p, cand: cand, depth: depth}, nil
}

// newPlanTuner builds the bandit for one shape class. The incumbent is the
// model's pick exactly as untuned serving would build it; the challenger
// queue explores, in order, the opposite term traversal (auto mode with ≥ 2
// workers only — a forced Config.Traversal is a user decision the tuner
// respects), the model's next two candidates under their own auto traversal,
// and the first alternative kernel backend registered for this dtype. A
// challenger whose plan cannot be built (e.g. blocking below the alternative
// backend's micro-tile) is skipped rather than failing serving; only an
// unbuildable incumbent is an error.
func (mu *GenericMultiplier[E]) newPlanTuner(shape string, m, k, n int) (*planTuner[E], error) {
	top := model.TopK(mu.arch, defaultCandidates(), m, k, n, 3, mu.feedback, shape)
	incSteps := mu.traversalFor(top[0], m, k, n)
	incKey, incArm, err := mu.buildArm(top[0], incSteps, "")
	if err != nil {
		return nil, err
	}
	pt := &planTuner[E]{
		arms:  map[string]planArm[E]{incKey: incArm},
		shape: shape,
		bm:    bucket(m), bk: bucket(k), bn: bucket(n),
	}
	var chalKeys []string
	addChallenger := func(cand Candidate, steps []fmmexec.Step, kern string) {
		key, a, err := mu.buildArm(cand, steps, kern)
		if err != nil {
			return
		}
		if _, dup := pt.arms[key]; dup {
			return
		}
		pt.arms[key] = a
		chalKeys = append(chalKeys, key)
	}
	if mu.traversal == TraversalAuto && mu.cfg.Threads >= 2 {
		flipped := []fmmexec.Step(nil) // incumbent went BFS: try the serial loop
		if incArm.depth == 0 {
			flipped = make([]fmmexec.Step, len(top[0].Levels))
			flipped[0] = fmmexec.BFS // incumbent went DFS: try one fanned level
		}
		addChallenger(top[0], flipped, "")
	}
	for _, cand := range top[1:] {
		addChallenger(cand, mu.traversalFor(cand, m, k, n), "")
	}
	for _, name := range kernel.BackendsFor(matrix.DtypeOf[E]()) {
		if resolved, ok := kernel.ResolveNameFor(name, matrix.DtypeOf[E]()); ok && resolved != incKeyKernel(incKey) {
			addChallenger(top[0], incSteps, name)
			break
		}
	}
	pt.tuner = autotune.New(autotune.Config{Fraction: mu.tuneFrac}, incKey, chalKeys)
	return pt, nil
}

// incKeyKernel extracts the backend name from an arm key (the "|kern=" tail).
func incKeyKernel(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '=' {
			return key[i+1:]
		}
	}
	return ""
}

// mulAdd serves one call through the bandit: route to an arm, execute its
// plan under a monotonic wall-time measurement, record the sample, and apply
// the feedback side effects when the record triggered a promotion.
func (pt *planTuner[E]) mulAdd(mu *GenericMultiplier[E], c, a, b matrix.Mat[E]) error {
	key, _ := pt.tuner.Route()
	arm, ok := pt.arms[key]
	if !ok {
		// Defensive: an arm key the tuner knows but we never built cannot
		// happen today (arms and tuner are constructed together), but losing
		// a call to it would be worse than serving the incumbent untimed.
		arm = pt.arms[pt.tuner.Incumbent()]
		arm.plan.MulAdd(c, a, b)
		return nil
	}
	start := time.Now()
	arm.plan.MulAdd(c, a, b)
	if promo, promoted := pt.tuner.Record(key, time.Since(start).Seconds()); promoted {
		mu.tunePromoted(pt, promo)
	}
	return nil
}

// tunePromoted applies a promotion's feedback: both arms' window medians are
// recorded against their candidates so model.RankMeasured keeps preferring
// the measured winner even after a cache eviction rebuilds this shape class,
// and a promotion that crossed traversal modes fits the traversal model's
// fold-cost scale to the BFS arm's measurement (the ROADMAP's "calibrate
// TraversalPlan fold-cost from measured runs") for every plan built after.
func (mu *GenericMultiplier[E]) tunePromoted(pt *planTuner[E], promo autotune.Promotion) {
	from, to := pt.arms[promo.From], pt.arms[promo.To]
	mu.feedback.Record(pt.shape, from.cand.Name(), promo.FromMedian)
	mu.feedback.Record(pt.shape, to.cand.Name(), promo.ToMedian)
	if from.depth == to.depth {
		return
	}
	bfs, measured := to, promo.ToMedian
	if bfs.depth == 0 {
		bfs, measured = from, promo.FromMedian
	}
	if bfs.depth > 0 {
		scale := model.FitFoldScale(mu.arch, bfs.cand.Variant, pt.bm, pt.bk, pt.bn, bfs.cand.Levels, mu.cfg.Threads, bfs.depth, measured)
		mu.foldScale.Store(math.Float64bits(scale))
	}
}

// shardTuner is the bandit of one sharded shape class: arms are shard grids
// rather than plans (the tile products below still go through the serial
// twin, which runs its own plan-level tuner). grids is immutable after
// construction.
type shardTuner struct {
	tuner *autotune.Tuner
	grids map[string][3]int // key -> (GridM, GridN, GridK)
}

func gridArmKey(gm, gn, gk int) string {
	return fmt.Sprintf("grid=%dx%dx%d", gm, gn, gk)
}

// shardTunerFor returns (building on first use) the shape class's grid
// tuner. The incumbent arm is the grid the model just chose for this call;
// the single challenger is the second-best grid — found by re-running the
// shard search with the incumbent's grid priced out — when a distinct one
// exists. Returns nil (serve untuned) once the tuner map has reached the
// plan-cache cap, so diverse-shape servers stay bounded.
func (mu *GenericMultiplier[E]) shardTunerFor(spec shard.Spec, m, k, n int) *shardTuner {
	key := shapeClass(m, k, n)
	mu.shardTuns.Lock()
	defer mu.shardTuns.Unlock()
	if mu.shardTuns.m == nil {
		mu.shardTuns.m = make(map[string]*shardTuner)
	}
	if st, ok := mu.shardTuns.m[key]; ok {
		return st
	}
	if cap := mu.cfg.planCacheCap(); cap > 0 && len(mu.shardTuns.m) >= cap {
		return nil
	}
	inc := [3]int{spec.GridM, spec.GridN, spec.GridK}
	st := &shardTuner{grids: map[string][3]int{gridArmKey(inc[0], inc[1], inc[2]): inc}}
	var chal []string
	alt, ok := shard.Split(m, k, n, shard.Options{
		Workers: mu.cfg.Threads,
		MinTile: mu.shardMinTile(),
		KSplit:  mu.cfg.shardKSplit(),
		Cost: func(gm, gn, gk int) float64 {
			if gm == inc[0] && gn == inc[1] && gk == inc[2] {
				return math.Inf(1) // price the incumbent out: find the runner-up
			}
			return model.ShardMakespan(mu.arch, m, k, n, gm, gn, gk, mu.cfg.Threads)
		},
	})
	if ok {
		g := [3]int{alt.GridM, alt.GridN, alt.GridK}
		if g != inc {
			gk := gridArmKey(g[0], g[1], g[2])
			st.grids[gk] = g
			chal = append(chal, gk)
		}
	}
	st.tuner = autotune.New(autotune.Config{Fraction: mu.tuneFrac}, gridArmKey(inc[0], inc[1], inc[2]), chal)
	mu.shardTuns.m[key] = st
	return st
}

// mulAddShardedTuned is the sharded MulAdd under autotuning: route to a grid
// arm, rebuild the spec for this call's concrete dimensions (shapes within a
// class vary; grids transfer, tile extents do not), execute, and record the
// wall time under the grid that actually ran. A routed grid that does not
// fit the concrete dimensions falls back to the model's spec — its sample
// then lands on the incumbent arm, or is dropped if the grid is unknown.
func (mu *GenericMultiplier[E]) mulAddShardedTuned(spec shard.Spec, c, a, b matrix.Mat[E]) error {
	m, k, n := a.Rows, a.Cols, b.Cols
	st := mu.shardTunerFor(spec, m, k, n)
	if st == nil {
		return mu.mulAddSharded(spec, c, a, b)
	}
	key, _ := st.tuner.Route()
	use := spec
	if g, ok := st.grids[key]; ok && g[0] <= m && g[1] <= n && g[2] <= k {
		use = shard.Spec{M: m, K: k, N: n, GridM: g[0], GridN: g[1], GridK: g[2]}
	}
	start := time.Now()
	if err := mu.mulAddSharded(use, c, a, b); err != nil {
		return err
	}
	st.tuner.Record(gridArmKey(use.GridM, use.GridN, use.GridK), time.Since(start).Seconds())
	return nil
}

// ShapeTuning is the observable autotune state of one shape class: the arm
// table, traffic split, and promotion history of its bandit.
type ShapeTuning struct {
	// Shape is the shape-class key ("m/k/n", power-of-two buckets).
	Shape string
	// Kind is "plan" for plan-arm tuners, "shard" for grid tuners.
	Kind string
	// Serial marks tuners of the internal serial twin — the engine behind
	// MulAddBatch, sharded tiles, and MulAddAsync jobs.
	Serial bool
	autotune.Snapshot
}

// MultiplierStats is the multiplier's observability surface: whether
// autotuning is on, its effective knobs, and a point-in-time snapshot of
// every shape class's bandit — per-arm sample counts, window medians, roles,
// traffic split, and the full promotion history.
type MultiplierStats struct {
	// Kernel is the micro-kernel backend this engine resolved from its
	// configuration (Config.Kernel / FMMFAM_KERNEL; empty selections resolve
	// to the default backend). A configured-but-unavailable backend is
	// reported with an " (unavailable)" suffix — every compute call is
	// failing validation in that state. Autotune promotions may route
	// individual shape classes to other backends; those show per-shape in
	// Shapes.
	Kernel string
	// Autotune and Fraction are the resolved serving knobs (after the
	// FMMFAM_AUTOTUNE override).
	Autotune bool
	Fraction float64
	// FoldScale is the current traversal fold-cost calibration: 1 until a
	// promotion crossing traversal modes fits a measured scale.
	FoldScale float64
	// CachedPlans mirrors CachedPlans() for one-stop observability.
	CachedPlans int
	// Shapes holds one entry per tuned shape class, sorted by (Serial, Kind,
	// Shape). Empty when autotuning is off or no traffic has been served.
	Shapes []ShapeTuning
}

// Stats returns a point-in-time snapshot of the multiplier's serving and
// autotuning state. Safe for concurrent use with serving traffic; the
// snapshot is internally consistent per shape class (each bandit is
// snapshotted under its own lock) but not across classes.
func (mu *GenericMultiplier[E]) Stats() MultiplierStats {
	s := MultiplierStats{
		Kernel:      mu.resolvedKernel(),
		Autotune:    mu.tune,
		Fraction:    mu.tuneFrac,
		FoldScale:   mu.foldScaleVal(),
		CachedPlans: mu.plans.len(),
	}
	s.Shapes = mu.shapeTunings(false)
	if tw := mu.serial.Load(); tw != nil {
		s.Shapes = append(s.Shapes, tw.shapeTunings(true)...)
	}
	sortShapeTunings(s.Shapes)
	return s
}

// resolvedKernel names the backend this engine's configuration resolves to
// at its element type, marking a selection that cannot resolve on this host.
func (mu *GenericMultiplier[E]) resolvedKernel() string {
	name, ok := kernel.ResolveNameFor(mu.cfg.Kernel, matrix.DtypeOf[E]())
	if !ok {
		return name + " (unavailable)"
	}
	return name
}

func (mu *GenericMultiplier[E]) shapeTunings(serial bool) []ShapeTuning {
	var out []ShapeTuning
	for key, e := range mu.plans.entries() {
		if e.tun != nil {
			out = append(out, ShapeTuning{Shape: key, Kind: "plan", Serial: serial, Snapshot: e.tun.tuner.Snapshot()})
		}
	}
	mu.shardTuns.Lock()
	for key, st := range mu.shardTuns.m {
		out = append(out, ShapeTuning{Shape: key, Kind: "shard", Serial: serial, Snapshot: st.tuner.Snapshot()})
	}
	mu.shardTuns.Unlock()
	return out
}

func sortShapeTunings(s []ShapeTuning) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && shapeTuningLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func shapeTuningLess(a, b ShapeTuning) bool {
	if a.Serial != b.Serial {
		return !a.Serial
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Shape < b.Shape
}
