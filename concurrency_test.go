package fmmfam

// Concurrency tests for the execution engine's contract: immutable
// Plans/Multipliers, all mutable state pooled per call. Run with -race;
// the CI workflow always does.

import (
	"math/rand"
	"sync"
	"testing"

	"fmmfam/internal/matrix"
)

// concurrencyShapes mixes divisible, fringed, and rank-k problems so
// concurrent callers exercise different plans, exec-state pools, and the
// peeling paths at once.
var concurrencyShapes = [][3]int{
	{64, 64, 64}, {48, 16, 48}, {33, 77, 51}, {100, 30, 100}, {31, 29, 37},
}

// refProduct precomputes the naive reference C = A·B for one shape.
type refProduct struct {
	a, b, want Matrix
}

func makeRefProducts(seed int64) []refProduct {
	rng := rand.New(rand.NewSource(seed))
	out := make([]refProduct, len(concurrencyShapes))
	for i, s := range concurrencyShapes {
		a, b := NewMatrix(s[0], s[1]), NewMatrix(s[1], s[2])
		a.FillRand(rng)
		b.FillRand(rng)
		want := NewMatrix(s[0], s[2])
		matrix.MulAdd(want, a, b)
		out[i] = refProduct{a: a, b: b, want: want}
	}
	return out
}

// TestMultiplierConcurrentMixedShapes hammers one Multiplier from many
// goroutines with mixed shapes and checks every result against the naive
// reference. Under -race this proves MulAdd shares no mutable state across
// callers (plan cache, packing workspaces, exec-state pools).
func TestMultiplierConcurrentMixedShapes(t *testing.T) {
	mu := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 2}, PaperArch())
	refs := makeRefProducts(1)
	const goroutines = 8
	const iters = 6
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				r := refs[(g+it)%len(refs)]
				c := NewMatrix(r.want.Rows, r.want.Cols)
				if err := mu.MulAdd(c, r.a, r.b); err != nil {
					errc <- err
					return
				}
				if d := c.MaxAbsDiff(r.want); d > 1e-9 {
					t.Errorf("goroutine %d iter %d: diff %g", g, it, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestPlanConcurrentCallersShareOnePlan drives a single cached Plan (not
// just a shared Multiplier) from many goroutines on different sizes within
// its shape class — the case the old plan-owned asum/bsum/mtmp buffers made
// impossible.
func TestPlanConcurrentCallersShareOnePlan(t *testing.T) {
	mu := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 2}, PaperArch())
	p, err := mu.PlanFor(60, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	sizes := [][3]int{{60, 60, 60}, {57, 61, 59}, {64, 50, 64}}
	type job struct{ a, b, want Matrix }
	jobs := make([]job, len(sizes))
	for i, s := range sizes {
		a, b := NewMatrix(s[0], s[1]), NewMatrix(s[1], s[2])
		a.FillRand(rng)
		b.FillRand(rng)
		want := NewMatrix(s[0], s[2])
		matrix.MulAdd(want, a, b)
		jobs[i] = job{a, b, want}
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 4; it++ {
				j := jobs[(g+it)%len(jobs)]
				c := NewMatrix(j.want.Rows, j.want.Cols)
				p.MulAdd(c, j.a, j.b)
				if d := c.MaxAbsDiff(j.want); d > 1e-9 {
					t.Errorf("goroutine %d: diff %g", g, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMulAddBatch checks the batch API: results match the reference, and a
// bad job reports an error without poisoning the rest of the batch.
func TestMulAddBatch(t *testing.T) {
	mu := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 4}, PaperArch())
	refs := makeRefProducts(3)
	jobs := make([]BatchJob, 0, 3*len(refs))
	wants := make([]Matrix, 0, 3*len(refs))
	for rep := 0; rep < 3; rep++ {
		for _, r := range refs {
			c := NewMatrix(r.want.Rows, r.want.Cols)
			jobs = append(jobs, BatchJob{C: c, A: r.a, B: r.b})
			wants = append(wants, r.want)
		}
	}
	if err := mu.MulAddBatch(jobs); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if d := j.C.MaxAbsDiff(wants[i]); d > 1e-9 {
			t.Fatalf("job %d: diff %g", i, d)
		}
	}

	// One mismatched job errors; the good job beside it still runs.
	good := refs[0]
	c := NewMatrix(good.want.Rows, good.want.Cols)
	err := mu.MulAddBatch([]BatchJob{
		{C: NewMatrix(2, 2), A: NewMatrix(2, 3), B: NewMatrix(2, 2)},
		{C: c, A: good.a, B: good.b},
	})
	if err == nil {
		t.Fatal("expected dim error from bad job")
	}
	if d := c.MaxAbsDiff(good.want); d > 1e-9 {
		t.Fatalf("good job skipped after bad job: diff %g", d)
	}
}

// TestDefaultMultiplierReusesPlans verifies package-level Multiply routes
// through the shared default Multiplier (the old implementation rebuilt a
// full plan — buffers and all — on every call).
func TestDefaultMultiplierReusesPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := NewMatrix(40, 40), NewMatrix(40, 40)
	a.FillRand(rng)
	b.FillRand(rng)
	want := NewMatrix(40, 40)
	matrix.MulAdd(want, a, b)
	c := NewMatrix(40, 40)
	if err := Multiply(c, a, b); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("diff %g", d)
	}
	before := defaultMultiplier().CachedPlans()
	c.Zero()
	if err := Multiply(c, a, b); err != nil {
		t.Fatal(err)
	}
	if after := defaultMultiplier().CachedPlans(); after != before {
		t.Fatalf("second Multiply built a new plan: %d → %d", before, after)
	}
	p1, err := defaultMultiplier().PlanFor(40, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := defaultMultiplier().PlanFor(40, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("default multiplier did not cache the plan")
	}
}
