package fmmfam

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"fmmfam/internal/matrix"
)

// TestConfigValidate is the table-driven contract of Config.Validate: every
// knob's failure mode, including per-backend blocking floors (MC=4 is legal
// for the 4×4 kernel, illegal for the 8×4 one).
func TestConfigValidate(t *testing.T) {
	valid := Config{MC: 96, KC: 256, NC: 2048, Threads: 1}
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(c *Config) {}, true},
		{"parallel", func(c *Config) { c.Threads = 8 }, true},
		{"explicit default kernel", func(c *Config) { c.Kernel = "go4x4" }, true},
		{"go8x4 kernel", func(c *Config) { c.Kernel = "go8x4" }, true},
		{"serving knobs at defaults", func(c *Config) {
			c.ShardThreshold, c.ShardMinTile, c.QueueWorkers, c.QueueDepth, c.PlanCacheCap = 0, 0, 0, 0, 0
		}, true},
		{"negative sentinels allowed", func(c *Config) {
			c.ShardThreshold, c.ShardKSplit, c.PlanCacheCap = -1, -1, -1
		}, true},

		{"zero workers", func(c *Config) { c.Threads = 0 }, false},
		{"negative workers", func(c *Config) { c.Threads = -4 }, false},
		{"unknown kernel", func(c *Config) { c.Kernel = "avx512-not-yet" }, false},
		{"zero blocking", func(c *Config) { c.MC, c.KC, c.NC = 0, 0, 0 }, false},
		{"negative MC", func(c *Config) { c.MC = -96 }, false},
		{"KC zero", func(c *Config) { c.KC = 0 }, false},
		{"NC below NR", func(c *Config) { c.NC = 3 }, false},
		{"MC below default backend MR", func(c *Config) { c.MC = 3 }, false},
		{"MC=4 ok for go4x4", func(c *Config) { c.MC = 4; c.Kernel = "go4x4" }, true},
		{"MC=4 below go8x4 MR", func(c *Config) { c.MC = 4; c.Kernel = "go8x4" }, false},
		{"negative ShardMinTile", func(c *Config) { c.ShardMinTile = -1 }, false},
		{"negative QueueWorkers", func(c *Config) { c.QueueWorkers = -1 }, false},
		{"negative QueueDepth", func(c *Config) { c.QueueDepth = -2 }, false},
		{"serve knobs set", func(c *Config) {
			c.ServeAddr, c.CoalesceWindow, c.CoalesceMaxJobs, c.AdmissionDepth = "127.0.0.1:0", 250e3, 16, 8
		}, true},
		{"coalescing disabled by negative window", func(c *Config) { c.CoalesceWindow = -1 }, true},
		{"negative CoalesceMaxJobs", func(c *Config) { c.CoalesceMaxJobs = -1 }, false},
		{"negative AdmissionDepth", func(c *Config) { c.AdmissionDepth = -3 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("config %+v accepted, want error", cfg)
			}
		})
	}
}

// TestInvalidConfigSurfacesFromEveryEntryPoint: a Multiplier built from an
// invalid config reports the validation error from MulAdd, MulAddBatch, and
// MulAddAsync instead of panicking deep in the stack.
func TestInvalidConfigSurfacesFromEveryEntryPoint(t *testing.T) {
	bad := Config{MC: 96, KC: 256, NC: 2048, Threads: 1, Kernel: "no-such-kernel"}
	mu := NewMultiplier(bad, PaperArch())
	c, a, b := NewMatrix(8, 8), NewMatrix(8, 8), NewMatrix(8, 8)
	if err := mu.MulAdd(c, a, b); err == nil {
		t.Fatal("MulAdd on invalid config succeeded")
	}
	if err := mu.MulAddBatch([]BatchJob{{C: c, A: a, B: b}}); err == nil {
		t.Fatal("MulAddBatch on invalid config succeeded")
	}
	if err := mu.MulAddAsync(c, a, b).Wait(); err == nil {
		t.Fatal("MulAddAsync on invalid config succeeded")
	}
}

// TestDefaultKernelPlanGolden pins the full selection→plan→execution path on
// the default backend to the exact bits it produced before the Backend
// interface existed (hash captured from the PR-3 tree on amd64): plan
// selection and kernel numerics together are the reproducibility surface.
// Skipped off amd64, where the compiler may fuse a*b+c into FMA and round
// differently.
func TestDefaultKernelPlanGolden(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden fingerprint captured on amd64; GOARCH=%s may fuse FMA", runtime.GOARCH)
	}
	rng := rand.New(rand.NewSource(4096))
	a, b := NewMatrix(96, 96), NewMatrix(96, 96)
	c := NewMatrix(96, 96)
	a.FillRand(rng)
	b.FillRand(rng)
	mu := NewMultiplier(DefaultConfig(), PaperArch())
	if err := mu.MulAdd(c, a, b); err != nil {
		t.Fatal(err)
	}
	if got := c.Fingerprint(); got != 0xcf7d1834413624e4 {
		t.Errorf("default plan path fingerprint %#x, want %#x (no longer bit-identical to pre-backend-interface results)",
			got, uint64(0xcf7d1834413624e4))
	}
}

// TestKernelBackendEndToEnd drives every registered backend through the full
// Multiplier stack — plan selection, sharding, batch — and checks results
// against the reference.
func TestKernelBackendEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := NewMatrix(200, 130), NewMatrix(130, 170)
	a.FillRand(rng)
	b.FillRand(rng)
	want := NewMatrix(200, 170)
	matrix.MulAdd(want, a, b)
	for _, name := range Kernels() {
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				MC: 32, KC: 32, NC: 64, Threads: 4,
				Kernel:         name,
				ShardThreshold: 128, ShardMinTile: 48, // force the sharded path
			}
			mu := NewMultiplier(cfg, PaperArch())
			c := NewMatrix(200, 170)
			if err := mu.MulAdd(c, a, b); err != nil {
				t.Fatal(err)
			}
			if d := c.MaxAbsDiff(want); d > 1e-9 {
				t.Fatalf("sharded MulAdd diff %g", d)
			}
			// Repeat must be bit-identical (the serving determinism contract
			// holds for every conforming backend).
			c2 := NewMatrix(200, 170)
			if err := mu.MulAdd(c2, a, b); err != nil {
				t.Fatal(err)
			}
			if d := c.MaxAbsDiff(c2); d != 0 {
				t.Fatalf("backend %s not deterministic under sharding: %g", name, d)
			}
			// Batch path.
			c3 := NewMatrix(200, 170)
			if err := mu.MulAddBatch([]BatchJob{{C: c3, A: a, B: b}}); err != nil {
				t.Fatal(err)
			}
			if d := c3.MaxAbsDiff(want); d > 1e-9 {
				t.Fatalf("batch diff %g", d)
			}
		})
	}
}

// TestKernelsListsBuiltins: the public registry view exposes both pure-Go
// backends, so Config.Kernel / FMMFAM_KERNEL values are discoverable.
func TestKernelsListsBuiltins(t *testing.T) {
	found := map[string]bool{}
	for _, n := range Kernels() {
		found[n] = true
	}
	if !found["go4x4"] || !found["go8x4"] {
		t.Fatalf("Kernels() = %v, want both go4x4 and go8x4", Kernels())
	}
}

// TestServeParams pins the serve-knob resolution order: environment mirrors
// win over Config fields, zero fields fill defaults, a negative window
// disables coalescing, and malformed mirror values fail both ServeParams and
// Validate (a deployment typo must stop the server at startup, not silently
// serve defaults).
func TestServeParams(t *testing.T) {
	base := Config{MC: 96, KC: 256, NC: 2048, Threads: 1}

	t.Run("defaults", func(t *testing.T) {
		p, err := base.ServeParams()
		if err != nil {
			t.Fatal(err)
		}
		want := ServeParams{
			Addr:            DefaultServeAddr,
			CoalesceWindow:  DefaultCoalesceWindow,
			CoalesceMaxJobs: DefaultCoalesceMaxJobs,
			AdmissionDepth:  DefaultAdmissionDepth,
		}
		if p != want {
			t.Fatalf("ServeParams() = %+v, want %+v", p, want)
		}
		if !p.Coalesce() {
			t.Fatal("default params must enable coalescing")
		}
	})

	t.Run("fields", func(t *testing.T) {
		cfg := base
		cfg.ServeAddr = "127.0.0.1:9000"
		cfg.CoalesceWindow = 250 * time.Microsecond
		cfg.CoalesceMaxJobs = 8
		cfg.AdmissionDepth = 4
		p, err := cfg.ServeParams()
		if err != nil {
			t.Fatal(err)
		}
		want := ServeParams{Addr: "127.0.0.1:9000", CoalesceWindow: 250 * time.Microsecond, CoalesceMaxJobs: 8, AdmissionDepth: 4}
		if p != want {
			t.Fatalf("ServeParams() = %+v, want %+v", p, want)
		}
	})

	t.Run("negative window disables coalescing", func(t *testing.T) {
		cfg := base
		cfg.CoalesceWindow = -1
		p, err := cfg.ServeParams()
		if err != nil {
			t.Fatal(err)
		}
		if p.Coalesce() {
			t.Fatalf("Coalesce() = true with window %v", p.CoalesceWindow)
		}
	})

	t.Run("env mirrors win", func(t *testing.T) {
		t.Setenv("FMMFAM_SERVE_ADDR", "127.0.0.1:9911")
		t.Setenv("FMMFAM_COALESCE_WINDOW", "2ms")
		t.Setenv("FMMFAM_COALESCE_MAXJOBS", "5")
		t.Setenv("FMMFAM_ADMISSION_DEPTH", "7")
		cfg := base
		cfg.ServeAddr = "ignored:1"
		cfg.CoalesceWindow = time.Second
		cfg.CoalesceMaxJobs = 99
		cfg.AdmissionDepth = 99
		p, err := cfg.ServeParams()
		if err != nil {
			t.Fatal(err)
		}
		want := ServeParams{Addr: "127.0.0.1:9911", CoalesceWindow: 2 * time.Millisecond, CoalesceMaxJobs: 5, AdmissionDepth: 7}
		if p != want {
			t.Fatalf("ServeParams() = %+v, want %+v", p, want)
		}
	})

	t.Run("malformed env fails Validate", func(t *testing.T) {
		for env, bad := range map[string]string{
			"FMMFAM_COALESCE_WINDOW":  "fast",
			"FMMFAM_COALESCE_MAXJOBS": "many",
			"FMMFAM_ADMISSION_DEPTH":  "-2",
		} {
			t.Setenv(env, bad)
			if _, err := base.ServeParams(); err == nil {
				t.Errorf("%s=%q: ServeParams() accepted", env, bad)
			}
			if err := base.Validate(); err == nil {
				t.Errorf("%s=%q: Validate() accepted", env, bad)
			}
			t.Setenv(env, "")
		}
	})
}
