package fmmfam

// Dtype-generic serving tests: the float32 surface against a float64
// reference on the PR-3 K-split acceptance shapes, and mixed-dtype pool
// integrity — interleaved float32/float64 traffic through one process must
// never hand a pooled buffer of the wrong element size across surfaces
// (structurally impossible now that every pool is typed []E; these tests
// pin that with bit-determinism under concurrency) and must not leak
// goroutines.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"fmmfam/internal/matrix"
)

// kSplitAcceptanceShapes are the PR-3 K-split acceptance shapes: K-dominant
// problems that only the 3D decomposition can shard.
var kSplitAcceptanceShapes = [][3]int{
	{48, 512, 48},  // K-dominant, divisible
	{40, 513, 52},  // non-dividing K and ragged output
	{64, 1024, 80}, // deeper K, more slabs available
}

// kSplitServingCfg is the blocking the PR-3 acceptance tests shard those
// shapes under.
func kSplitServingCfg() Config {
	return Config{
		MC: 16, KC: 16, NC: 32, Threads: 4,
		ShardThreshold: 256, ShardMinTile: 48,
	}
}

// float32Tol is the FLOP-scaled float32 tolerance for |float32 result −
// float64 reference| on a depth-k product of operands in [−1, 1): the same
// eps-scaled form the conformance suite uses, with headroom for the FMM
// variants' extra additions.
func float32Tol(k int) float64 {
	return 180 * matrix.Eps[float32]() * float64(k+16)
}

// TestFloat32MatchesFloat64OnKSplitShapes is the PR-5 acceptance criterion:
// a float32 end-to-end MulAdd — plan selection, sharding, K-split reduction
// buffers and all — stays within FLOP-scaled float32 tolerance of a float64
// reference computed from the exact same inputs, on the PR-3 K-split
// acceptance shapes.
func TestFloat32MatchesFloat64OnKSplitShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, s := range kSplitAcceptanceShapes {
		m, k, n := s[0], s[1], s[2]
		mu := NewMultiplier32(kSplitServingCfg(), PaperArch())
		if spec, ok := mu.shardSpec(m, k, n); !ok || spec.GridK < 2 {
			t.Fatalf("shape %v: float32 surface should K-split like the float64 one, got %v ok=%v", s, spec, ok)
		}
		a, b := NewMatrix32(m, k), NewMatrix32(k, n)
		a.FillRand(rng)
		b.FillRand(rng)
		got := NewMatrix32(m, n)
		if err := mu.MulAdd(got, a, b); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		// float64 reference over the exact same values (float32→float64 is
		// exact), via the naive oracle.
		ref := NewMatrix(m, n)
		matrix.MulAdd(ref, matrix.ToFloat64(a), matrix.ToFloat64(b))
		if d := matrix.ToFloat64(got).MaxAbsDiff(ref); d > float32Tol(k) {
			t.Fatalf("shape %v: float32 result off by %g > %g vs float64 reference", s, d, float32Tol(k))
		}
	}
}

// TestMixedDtypePoolIntegrity interleaves concurrent float32 and float64
// MulAdd traffic — including the K-split path, whose reduction buffers are
// pooled per multiplier — and checks every call's result is bit-identical
// to that surface's sequential answer. Workspace pools are typed per
// element, so a buffer of the wrong element size can never cross surfaces;
// if it somehow did, the corrupted numbers would break the fingerprint
// pins here. Run under -race in CI.
func TestMixedDtypePoolIntegrity(t *testing.T) {
	cfg := kSplitServingCfg()
	mu64 := NewMultiplier(cfg, PaperArch())
	mu32 := NewMultiplier32(cfg, PaperArch())
	rng := rand.New(rand.NewSource(64))
	m, k, n := 48, 512, 48 // K-split acceptance shape: exercises redBufs too

	a64, b64 := NewMatrix(m, k), NewMatrix(k, n)
	a64.FillRand(rng)
	b64.FillRand(rng)
	a32, b32 := matrix.ToFloat32(a64), matrix.ToFloat32(b64)

	// Sequential answers fix the expected fingerprints (both shard paths are
	// run-to-run bit-deterministic).
	want64 := NewMatrix(m, n)
	if err := mu64.MulAdd(want64, a64, b64); err != nil {
		t.Fatal(err)
	}
	want32 := NewMatrix32(m, n)
	if err := mu32.MulAdd(want32, a32, b32); err != nil {
		t.Fatal(err)
	}
	fp64, fp32 := want64.Fingerprint(), want32.Fingerprint()

	const goroutines, iters = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if (g+it)%2 == 0 {
					c := NewMatrix(m, n)
					if err := mu64.MulAdd(c, a64, b64); err != nil {
						errs <- err
						return
					}
					if c.Fingerprint() != fp64 {
						errs <- fmt.Errorf("goroutine %d iter %d: float64 result corrupted under mixed-dtype load", g, it)
						return
					}
				} else {
					c := NewMatrix32(m, n)
					if err := mu32.MulAdd(c, a32, b32); err != nil {
						errs <- err
						return
					}
					if c.Fingerprint() != fp32 {
						errs <- fmt.Errorf("goroutine %d iter %d: float32 result corrupted under mixed-dtype load", g, it)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMixedDtypeNoGoroutineLeak runs synchronous and async traffic through
// both dtype surfaces, closes them, and requires the goroutine count to
// settle back — the float32 serving stack must be as leak-free per
// multiplier lifetime as the float64 one (pinned by PR-4's async tests).
func TestMixedDtypeNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := Config{MC: 16, KC: 16, NC: 32, Threads: 2}
	mu64 := NewMultiplier(cfg, PaperArch())
	mu32 := NewMultiplier32(cfg, PaperArch())
	rng := rand.New(rand.NewSource(9))
	a64, b64, c64 := NewMatrix(40, 40), NewMatrix(40, 40), NewMatrix(40, 40)
	a64.FillRand(rng)
	b64.FillRand(rng)
	a32, b32, c32 := matrix.ToFloat32(a64), matrix.ToFloat32(b64), NewMatrix32(40, 40)
	var futures []*Future
	for i := 0; i < 8; i++ {
		futures = append(futures, mu64.MulAddAsync(c64, a64, b64))
		if err := futures[len(futures)-1].Wait(); err != nil {
			t.Fatal(err)
		}
		futures = append(futures, mu32.MulAddAsync(c32, a32, b32))
		if err := futures[len(futures)-1].Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := mu64.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mu32.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("leaked goroutines: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
