package fmmfam

// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one family per table/figure (see DESIGN.md §4 for the mapping and
// cmd/experiments for the full sweeps). Sizes are scaled down from the
// paper's m=n=14400 — the pure-Go kernel is ~10× slower than the paper's
// assembly — but keep the paper's *shape* ratios: rank-k updates use
// k ≈ base/3, near-square uses k = base. Every benchmark reports effective
// GFLOPS (2·m·n·k/time), the paper's metric.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/gemm"
	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
	"fmmfam/internal/model"
)

const benchBase = 480 // m = n for benchmark problems

func benchMulAdd(b *testing.B, m, k, n int, fn func(c, a, bm matrix.Mat[float64])) {
	b.Helper()
	a, bm := matrix.New[float64](m, k), matrix.New[float64](k, n)
	a.Fill(1.0 / 3)
	bm.Fill(-2.0 / 3)
	c := matrix.New[float64](m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(c, a, bm)
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(model.EffectiveGFLOPS(m, k, n, secs), "effGFLOPS")
}

func planFor(b *testing.B, v fmmexec.Variant, threads int, levels ...core.Algorithm) *fmmexec.Plan[float64] {
	b.Helper()
	cfg := gemm.DefaultConfig()
	cfg.Threads = threads
	p, err := fmmexec.NewPlan[float64](cfg, v, levels...)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkGEMMBaseline is the BLIS-style baseline all figures compare to.
func BenchmarkGEMMBaseline(b *testing.B) {
	ctx := gemm.MustNewContext[float64](gemm.DefaultConfig())
	for _, k := range []int{benchBase / 3, benchBase} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchMulAdd(b, benchBase, k, benchBase, func(c, a, bm matrix.Mat[float64]) { ctx.MulAdd(c, a, bm) })
		})
	}
}

// BenchmarkFigure2 regenerates the practical-speedup columns of the Figure-2
// table: every catalog shape, one-level ABC, rank-k (#1) and near-square
// (#2) problems.
func BenchmarkFigure2(b *testing.B) {
	for _, e := range core.Catalog() {
		p := planFor(b, fmmexec.ABC, 1, e.Algorithm)
		b.Run(fmt.Sprintf("%s/rankk", e.Shape()), func(b *testing.B) {
			benchMulAdd(b, benchBase, benchBase/3, benchBase, p.MulAdd)
		})
		b.Run(fmt.Sprintf("%s/square", e.Shape()), func(b *testing.B) {
			benchMulAdd(b, benchBase, benchBase, benchBase, p.MulAdd)
		})
	}
}

// BenchmarkFigure6 regenerates the measured panels of Figure 6: one-level
// implementations in all three variants across the k sweep.
func BenchmarkFigure6(b *testing.B) {
	shapes := [][3]int{{2, 2, 2}, {2, 3, 2}, {3, 3, 3}, {3, 6, 3}}
	for _, v := range fmmexec.Variants {
		for _, s := range shapes {
			algo := core.Generate(s[0], s[1], s[2])
			p := planFor(b, v, 1, algo)
			for _, k := range []int{benchBase / 4, benchBase / 2, benchBase} {
				b.Run(fmt.Sprintf("%s/%s/k=%d", v, algo.ShapeString(), k), func(b *testing.B) {
					benchMulAdd(b, benchBase, k, benchBase, p.MulAdd)
				})
			}
		}
	}
}

// BenchmarkFigure7 regenerates the measured panels of Figure 7: two-level
// ABC on the paper's three problem-shape families.
func BenchmarkFigure7(b *testing.B) {
	shapes := [][3]int{{2, 2, 2}, {2, 3, 2}, {3, 3, 3}}
	for _, s := range shapes {
		algo := core.Generate(s[0], s[1], s[2])
		p := planFor(b, fmmexec.ABC, 1, algo, algo)
		b.Run(fmt.Sprintf("%s+%s/square", algo.ShapeString(), algo.ShapeString()), func(b *testing.B) {
			benchMulAdd(b, benchBase, benchBase, benchBase, p.MulAdd)
		})
		b.Run(fmt.Sprintf("%s+%s/ksweep", algo.ShapeString(), algo.ShapeString()), func(b *testing.B) {
			benchMulAdd(b, benchBase, benchBase/3, benchBase, p.MulAdd)
		})
		b.Run(fmt.Sprintf("%s+%s/mnsweep", algo.ShapeString(), algo.ShapeString()), func(b *testing.B) {
			benchMulAdd(b, benchBase, 256, benchBase, p.MulAdd)
		})
	}
}

// BenchmarkFigure8 regenerates the selection experiment: the model-selected
// implementation per problem shape (vs the GEMM baseline above).
func BenchmarkFigure8(b *testing.B) {
	arch := model.PaperIvyBridge()
	for _, s := range [][3]int{
		{benchBase, benchBase, benchBase},
		{benchBase, benchBase / 3, benchBase},
		{benchBase, 256, benchBase},
	} {
		cand := Recommend(arch, s[0]*30, s[1]*30, s[2]*30) // model at paper-like scale
		p := planFor(b, cand.Variant, 1, cand.Levels...)
		b.Run(fmt.Sprintf("%dx%dx%d/%s", s[0], s[1], s[2], cand.Name()), func(b *testing.B) {
			benchMulAdd(b, s[0], s[1], s[2], p.MulAdd)
		})
	}
}

// BenchmarkFigure9 regenerates the hybrid-partition comparison at fixed k.
func BenchmarkFigure9(b *testing.B) {
	s222 := core.Generate(2, 2, 2)
	s232 := core.Generate(2, 3, 2)
	s333 := core.Generate(3, 3, 3)
	plans := []struct {
		name   string
		levels []core.Algorithm
	}{
		{"2L_222", []core.Algorithm{s222, s222}},
		{"2L_232", []core.Algorithm{s232, s232}},
		{"2L_333", []core.Algorithm{s333, s333}},
		{"hybrid_222_232", []core.Algorithm{s222, s232}},
		{"hybrid_222_333", []core.Algorithm{s222, s333}},
	}
	kfix := 384
	for _, threads := range []int{1, runtime.GOMAXPROCS(0)} {
		for _, pl := range plans {
			p := planFor(b, fmmexec.ABC, threads, pl.levels...)
			b.Run(fmt.Sprintf("t%d/%s", threads, pl.name), func(b *testing.B) {
				benchMulAdd(b, benchBase, kfix, benchBase, p.MulAdd)
			})
		}
	}
}

// BenchmarkFigure10 regenerates the multicore comparison: ours (ABC) vs the
// reference style of [1] (Naive) vs GEMM, all cores.
func BenchmarkFigure10(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	cfg := gemm.DefaultConfig()
	cfg.Threads = threads
	ctx := gemm.MustNewContext[float64](cfg)
	algo := core.Strassen()
	ours := planFor(b, fmmexec.ABC, threads, algo)
	ref := planFor(b, fmmexec.Naive, threads, algo)
	for _, k := range []int{benchBase / 3, benchBase} {
		b.Run(fmt.Sprintf("gemm/k=%d", k), func(b *testing.B) {
			benchMulAdd(b, benchBase, k, benchBase, func(c, a, bm matrix.Mat[float64]) { ctx.MulAdd(c, a, bm) })
		})
		b.Run(fmt.Sprintf("ours_ABC/k=%d", k), func(b *testing.B) {
			benchMulAdd(b, benchBase, k, benchBase, ours.MulAdd)
		})
		b.Run(fmt.Sprintf("reference_Naive/k=%d", k), func(b *testing.B) {
			benchMulAdd(b, benchBase, k, benchBase, ref.MulAdd)
		})
	}
}

// BenchmarkParallelThroughput measures serving throughput: many concurrent
// callers hammering one shared Multiplier via b.RunParallel, the scenario
// the pooled-workspace engine exists for. Aggregate effGFLOPS across all
// callers is the serving metric future PRs track (vs the single-call
// latency of the figure benchmarks); it must scale with callers rather than
// serialize on plan workspace. Plans run single-threaded here so the
// parallelism measured is across calls, not within one.
func BenchmarkParallelThroughput(b *testing.B) {
	const size = 192
	mu := NewMultiplier(DefaultConfig(), PaperArch())
	a, bm := matrix.New[float64](size, size), matrix.New[float64](size, size)
	a.Fill(1.0 / 3)
	bm.Fill(-2.0 / 3)
	if _, err := mu.PlanFor(size, size, size); err != nil {
		b.Fatal(err) // plan once so the measurement is steady-state
	}
	b.Run("callers=1", func(b *testing.B) {
		c := matrix.New[float64](size, size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mu.MulAdd(c, a, bm); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		secs := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(model.EffectiveGFLOPS(size, size, size, secs), "aggGFLOPS")
	})
	b.Run(fmt.Sprintf("parallel_callers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			c := matrix.New[float64](size, size)
			for pb.Next() {
				if err := mu.MulAdd(c, a, bm); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		secs := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(model.EffectiveGFLOPS(size, size, size, secs), "aggGFLOPS")
	})
}

// BenchmarkBatchThroughput measures MulAddBatch on a mixed-shape batch — the
// bulk-scheduling path (e.g. blocked algorithms issuing many independent
// block products).
func BenchmarkBatchThroughput(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Threads = runtime.GOMAXPROCS(0)
	mu := NewMultiplier(cfg, PaperArch())
	shapes := [][3]int{{192, 192, 192}, {192, 64, 192}, {128, 128, 128}}
	var jobs []BatchJob
	var flops float64
	for rep := 0; rep < 4; rep++ {
		for _, s := range shapes {
			a, bm := matrix.New[float64](s[0], s[1]), matrix.New[float64](s[1], s[2])
			a.Fill(1.0 / 3)
			bm.Fill(-2.0 / 3)
			jobs = append(jobs, BatchJob{C: matrix.New[float64](s[0], s[2]), A: a, B: bm})
			flops += 2 * float64(s[0]) * float64(s[1]) * float64(s[2])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mu.MulAddBatch(jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(flops/secs*1e-9, "aggGFLOPS")
}

// BenchmarkShardedLarge compares auto-sharded MulAdd against the unsharded
// parallel path on one large square problem — the serving-layer bet that
// scheduling independent block products across the pool beats parallelizing
// one product's loops (Benson–Ballard). The default 1024³ keeps CI fast with
// the pure-Go kernel; set FMMFAM_BENCH_LARGE=4096 for a paper-scale run.
func BenchmarkShardedLarge(b *testing.B) {
	size := 1024
	if s := os.Getenv("FMMFAM_BENCH_LARGE"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("FMMFAM_BENCH_LARGE=%q: %v", s, err)
		}
		size = v
	}
	threads := runtime.GOMAXPROCS(0)
	if threads < 2 {
		threads = 2 // sharding needs a pool; keep the comparison fair on 1 CPU
	}
	a, bm := matrix.New[float64](size, size), matrix.New[float64](size, size)
	a.Fill(1.0 / 3)
	bm.Fill(-2.0 / 3)
	run := func(b *testing.B, cfg Config) {
		mu := NewMultiplier(cfg, PaperArch())
		c := matrix.New[float64](size, size)
		if err := mu.MulAdd(c, a, bm); err != nil { // warm the plan caches
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mu.MulAdd(c, a, bm); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		secs := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(model.EffectiveGFLOPS(size, size, size, secs), "effGFLOPS")
	}
	unsharded := DefaultConfig()
	unsharded.Threads = threads
	unsharded.ShardThreshold = -1
	b.Run("unsharded", func(b *testing.B) { run(b, unsharded) })
	sharded := DefaultConfig()
	sharded.Threads = threads
	sharded.ShardThreshold = size // force the sharded path at this size
	b.Run("sharded", func(b *testing.B) { run(b, sharded) })
}

// BenchmarkSharded3D compares auto-sharded MulAdd against the unsharded
// parallel path on a K-dominant problem — small M×N output, huge inner
// dimension, the inner-product shape of ML reduction workloads. The 2D
// decomposition has no room for two above-floor output tiles here, so only
// the K-split path (slab products into reduction buffers, folded into C in
// slab order) can shard it; this benchmark is the serving-layer proof that
// the fold overhead is worth the pool. The default 256×8192×256 keeps CI
// fast with the pure-Go kernel; set FMMFAM_BENCH_K=32768 for the paper-scale
// acceptance shape.
func BenchmarkSharded3D(b *testing.B) {
	const mn = 256
	k := 8192
	if s := os.Getenv("FMMFAM_BENCH_K"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("FMMFAM_BENCH_K=%q: %v", s, err)
		}
		k = v
	}
	threads := runtime.GOMAXPROCS(0)
	if threads < 2 {
		threads = 2 // sharding needs a pool; keep the comparison fair on 1 CPU
	}
	a, bm := matrix.New[float64](mn, k), matrix.New[float64](k, mn)
	a.Fill(1.0 / 3)
	bm.Fill(-2.0 / 3)
	run := func(b *testing.B, cfg Config) {
		mu := NewMultiplier(cfg, PaperArch())
		c := matrix.New[float64](mn, mn)
		if err := mu.MulAdd(c, a, bm); err != nil { // warm the plan caches and pools
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mu.MulAdd(c, a, bm); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		secs := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(model.EffectiveGFLOPS(mn, k, mn, secs), "effGFLOPS")
	}
	unsharded := DefaultConfig()
	unsharded.Threads = threads
	unsharded.ShardThreshold = -1
	b.Run("unsharded", func(b *testing.B) { run(b, unsharded) })
	ksplit := DefaultConfig()
	ksplit.Threads = threads // default knobs: k ≥ ShardThreshold triggers the K-split path
	b.Run("ksplit", func(b *testing.B) { run(b, ksplit) })
}

// BenchmarkAsyncThroughput measures the submit-and-collect serving flow: a
// stream of mixed-shape products submitted through the bounded MulAddAsync
// queue, all futures collected per iteration. Aggregate effGFLOPS across the
// stream is the serving metric.
func BenchmarkAsyncThroughput(b *testing.B) {
	cfg := DefaultConfig().Parallel()
	mu := NewMultiplier(cfg, PaperArch())
	defer mu.Close()
	shapes := [][3]int{{192, 192, 192}, {192, 64, 192}, {128, 128, 128}}
	type job struct{ c, a, b matrix.Mat[float64] }
	var jobs []job
	var flops float64
	for rep := 0; rep < 8; rep++ {
		for _, s := range shapes {
			a, bm := matrix.New[float64](s[0], s[1]), matrix.New[float64](s[1], s[2])
			a.Fill(1.0 / 3)
			bm.Fill(-2.0 / 3)
			jobs = append(jobs, job{c: matrix.New[float64](s[0], s[2]), a: a, b: bm})
			flops += 2 * float64(s[0]) * float64(s[1]) * float64(s[2])
		}
	}
	futures := make([]*Future, len(jobs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, jb := range jobs {
			futures[j] = mu.MulAddAsync(jb.c, jb.a, jb.b)
		}
		for _, f := range futures {
			if err := f.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(flops/secs*1e-9, "aggGFLOPS")
}

// BenchmarkAblationPeeling measures the dynamic-peeling overhead: divisible
// size vs worst-case fringe (every dimension off by one).
func BenchmarkAblationPeeling(b *testing.B) {
	p := planFor(b, fmmexec.ABC, 1, core.Strassen(), core.Strassen())
	b.Run("divisible", func(b *testing.B) {
		benchMulAdd(b, 480, 480, 480, p.MulAdd)
	})
	b.Run("fringed", func(b *testing.B) {
		benchMulAdd(b, 481, 481, 481, p.MulAdd)
	})
}

// BenchmarkAblationKernel isolates the micro-kernel (every registered
// backend at both element types — the GFLOPS ratio between backends is what
// model.RegisterKernelDtypeEfficiency records; the micro32 rows are where an
// AVX2 backend's doubled float32 lanes show as doubled flop rate) and the
// fused packing.
func BenchmarkAblationKernel(b *testing.B) {
	const kc = 256
	for _, name := range kernel.BackendsFor(matrix.Float64) {
		benchMicro[float64](b, "micro/"+name, name, kc)
	}
	for _, name := range kernel.BackendsFor(matrix.Float32) {
		benchMicro[float32](b, "micro32/"+name, name, kc)
	}
	src1, src2 := matrix.New[float64](96, kc), matrix.New[float64](96, kc)
	src1.Fill(1)
	src2.Fill(2)
	buf := make([]float64, kernel.PackABufLen(96, kc))
	b.Run("packA_single", func(b *testing.B) {
		terms := kernel.SingleTerm(src1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kernel.PackA(buf, terms, 0, 0, 96, kc)
		}
	})
	b.Run("packA_fused2", func(b *testing.B) {
		terms := []kernel.Term[float64]{{Coef: 1, M: src1}, {Coef: -1, M: src2}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kernel.PackA(buf, terms, 0, 0, 96, kc)
		}
	})
}

// benchMicro times one backend's micro-kernel at element type E over a
// steady rank-kc update and reports realized GFLOPS.
func benchMicro[E matrix.Element](b *testing.B, row, name string, kc int) {
	bk := kernel.MustResolve[E](name)
	ap := make([]E, bk.PackABufLen(bk.MR(), kc))
	bp := make([]E, bk.PackBBufLen(kc, bk.NR()))
	for i := range ap {
		ap[i] = 1.5
	}
	for i := range bp {
		bp[i] = -0.5
	}
	b.Run(row, func(b *testing.B) {
		acc := make([]E, bk.MR()*bk.NR())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bk.Micro(kc, ap, bp, acc)
		}
		secs := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(2*float64(bk.MR())*float64(bk.NR())*float64(kc)/secs*1e-9, "GFLOPS")
	})
}

// BenchmarkAblationDtype runs the same GEMM shape at both element types
// through every registered kernel backend — the ablation behind the model's
// per-dtype τ pricing: float32 moves half the bytes per element, so its
// effective GFLOPS ceiling sits higher wherever the driver is
// bandwidth-bound, while the scalar pure-Go kernels retire both dtypes at
// the same flop rate.
func BenchmarkAblationDtype(b *testing.B) {
	for _, name := range kernel.BackendsFor(matrix.Float64) {
		name := name
		b.Run("float64/"+name, func(b *testing.B) {
			benchDtypeGEMM[float64](b, name, benchBase, benchBase, benchBase)
		})
	}
	for _, name := range kernel.BackendsFor(matrix.Float32) {
		name := name
		b.Run("float32/"+name, func(b *testing.B) {
			benchDtypeGEMM[float32](b, name, benchBase, benchBase, benchBase)
		})
	}
}

func benchDtypeGEMM[E matrix.Element](b *testing.B, kernelName string, m, k, n int) {
	b.Helper()
	cfg := gemm.DefaultConfig()
	cfg.Kernel = kernelName
	ctx := gemm.MustNewContext[E](cfg)
	a, bm := matrix.New[E](m, k), matrix.New[E](k, n)
	a.Fill(1.0 / 3)
	bm.Fill(-2.0 / 3)
	c := matrix.New[E](m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.MulAdd(c, a, bm)
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(model.EffectiveGFLOPS(m, k, n, secs), "effGFLOPS")
}

// BenchmarkAblationVariants compares the three variants head-to-head at the
// rank-k shape where the ABC fusion matters most.
func BenchmarkAblationVariants(b *testing.B) {
	for _, v := range fmmexec.Variants {
		p := planFor(b, v, 1, core.Strassen())
		b.Run(v.String(), func(b *testing.B) {
			benchMulAdd(b, benchBase, benchBase/3, benchBase, p.MulAdd)
		})
	}
}

// BenchmarkIntraPlan measures the PR-6 tentpole: term-level BFS fan-out
// inside one medium MulAdd (below the shard threshold) against the serial
// DFS traversal, across worker counts and both dtypes, on a two-level
// Strassen ABC plan with the model's typical prefix traversal (BFS at the
// outer level, DFS inside — fanout 7). The 1024³ case is the acceptance
// shape ("bfs/w8 ≥ 3× dfs/w1"); set FMMFAM_BENCH_INTRA=1 to add the 2048³
// sweep (~8× the work per iteration, plus ~7 core-C shadow buffers).
func BenchmarkIntraPlan(b *testing.B) {
	sizes := []int{1024}
	if os.Getenv("FMMFAM_BENCH_INTRA") != "" {
		sizes = append(sizes, 2048)
	}
	workers := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, size := range sizes {
		for _, w := range workers {
			if seen[w] {
				continue
			}
			seen[w] = true
			for _, tr := range []string{"dfs", "bfs"} {
				tr := tr
				b.Run(fmt.Sprintf("%d/%s/w%d/f64", size, tr, w), func(b *testing.B) {
					benchIntraPlan[float64](b, size, w, tr == "bfs")
				})
				b.Run(fmt.Sprintf("%d/%s/w%d/f32", size, tr, w), func(b *testing.B) {
					benchIntraPlan[float32](b, size, w, tr == "bfs")
				})
			}
		}
		for k := range seen {
			delete(seen, k)
		}
	}
}

func benchIntraPlan[E matrix.Element](b *testing.B, size, workers int, bfs bool) {
	b.Helper()
	cfg := gemm.DefaultConfig()
	cfg.Threads = workers
	var steps []fmmexec.Step
	if bfs {
		steps = []fmmexec.Step{fmmexec.BFS, fmmexec.DFS}
	}
	p, err := fmmexec.NewPlanTraversal[E](cfg, fmmexec.ABC, steps, core.Strassen(), core.Strassen())
	if err != nil {
		b.Fatal(err)
	}
	a, bm := matrix.New[E](size, size), matrix.New[E](size, size)
	a.Fill(1.0 / 3)
	bm.Fill(-2.0 / 3)
	c := matrix.New[E](size, size)
	p.MulAdd(c, a, bm) // warm workspace and reduction-buffer pools
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MulAdd(c, a, bm)
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(model.EffectiveGFLOPS(size, size, size, secs), "effGFLOPS")
}
