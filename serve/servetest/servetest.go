// Package servetest spins a serve.Server on a loopback listener so
// integration, race, fault, and benchmark code drives the real HTTP stack —
// real sockets, real handler goroutines, real shutdown ordering — without
// touching a fixed port or importing testing. It is the reusable harness
// behind the serving test suite and BenchmarkServeCoalesce.
package servetest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"fmmfam"
	"fmmfam/serve"
)

// Harness is one running server: the serve.Server, the http.Server wrapping
// it, and the loopback base URL clients dial.
type Harness struct {
	Server *serve.Server
	HTTP   *http.Server
	URL    string

	ln       net.Listener
	serveErr chan error

	closeOnce sync.Once
	closeErr  error
}

// Start builds a serve.Server from cfg and serves it on an ephemeral
// loopback port (cfg.ServeAddr and its env mirror are ignored — a test
// harness must never collide on a fixed port). The returned harness is
// ready: the listener is accepting before Start returns.
func Start(cfg fmmfam.Config, arch fmmfam.Arch) (*Harness, error) {
	s, err := serve.New(cfg, arch)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &Harness{
		Server:   s,
		HTTP:     &http.Server{Handler: s},
		URL:      "http://" + ln.Addr().String(),
		ln:       ln,
		serveErr: make(chan error, 1),
	}
	go func() { h.serveErr <- h.HTTP.Serve(ln) }()
	return h, nil
}

// Client returns a client dialing this harness.
func (h *Harness) Client() *serve.Client {
	return &serve.Client{BaseURL: h.URL}
}

// Close shuts the harness down in production order: stop the listener and
// wait out in-flight handlers (http.Server.Shutdown), then drain compute
// (serve.Server.Close). Safe to call more than once; a shutdown that cannot
// drain within a minute reports an error rather than hanging the caller.
func (h *Harness) Close() error {
	h.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		shutdownErr := h.HTTP.Shutdown(ctx)
		closeErr := h.Server.Close()
		var serveErr error
		select {
		case err := <-h.serveErr:
			if !errors.Is(err, http.ErrServerClosed) {
				serveErr = err
			}
		case <-ctx.Done():
			serveErr = fmt.Errorf("servetest: serve loop did not exit: %w", ctx.Err())
		}
		h.closeErr = errors.Join(shutdownErr, closeErr, serveErr)
	})
	return h.closeErr
}
