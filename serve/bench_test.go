package serve_test

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"fmmfam"
	"fmmfam/serve"
	"fmmfam/serve/servetest"
)

// BenchmarkServeCoalesce measures small-request serving throughput with the
// coalescing window on vs off, many concurrent clients hammering one
// /v1/multiply endpoint with 32³ products — the amortization regime the
// window exists for. CI pins the coalesce/direct ratio; the gate lives there
// rather than here so a noisy single-CPU dev box doesn't flake the suite.
func BenchmarkServeCoalesce(b *testing.B) {
	modes := []struct {
		name   string
		window time.Duration
	}{
		{"coalesce", 200 * time.Microsecond},
		{"direct", -1},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			cfg := fmmfam.DefaultConfig().Parallel()
			cfg.CoalesceWindow = mode.window
			cfg.CoalesceMaxJobs = 64
			cfg.AdmissionDepth = 1024
			h, err := servetest.Start(cfg, fmmfam.PaperArch())
			if err != nil {
				b.Fatalf("servetest.Start: %v", err)
			}
			defer h.Close()

			rng := rand.New(rand.NewSource(1))
			a, bb := fmmfam.NewMatrix(32, 32), fmmfam.NewMatrix(32, 32)
			a.FillRand(rng)
			bb.FillRand(rng)
			frame := serve.AppendRequest[float64](nil, a, bb)

			b.SetParallelism(32) // a flood: ~32·GOMAXPROCS concurrent clients
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				tr := &http.Transport{}
				defer tr.CloseIdleConnections()
				cl := &http.Client{Transport: tr}
				for pb.Next() {
					resp, err := cl.Post(h.URL+"/v1/multiply", "application/octet-stream", bytes.NewReader(frame))
					if err != nil {
						b.Error(err)
						return
					}
					_, cpErr := io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if cpErr != nil || resp.StatusCode != http.StatusOK {
						b.Errorf("status %d, body err %v", resp.StatusCode, cpErr)
						return
					}
				}
			})
			b.StopTimer()
			st, err := h.Client().Stats()
			if err != nil {
				b.Fatalf("stats: %v", err)
			}
			if st.Coalesce64.Batches > 0 {
				b.ReportMetric(float64(st.Coalesce64.Jobs)/float64(st.Coalesce64.Batches), "jobs/batch")
			}
		})
	}
}
