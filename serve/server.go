package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fmmfam"
	"fmmfam/internal/matrix"
)

// maxBodyBytes caps a compute endpoint's request body: the frame payload
// cap plus generous header slack for a maximally-split batch. Bodies past
// it are refused with 413 before being buffered.
const maxBodyBytes = int64(8*MaxFrameElems) + int64(headerLen)*(maxBatchFrames+1) + 4

// maxBatchFrames caps the frame count of one /v1/batch request; the window
// amortization argument saturates long before this, and the cap keeps a
// hostile count prefix from sizing a huge allocation.
const maxBatchFrames = 4096

// retryAfterSeconds is the Retry-After hint sent with every 429: long
// enough for a window's worth of in-flight work to drain on any plausible
// machine, short enough that honoring it doesn't idle a client.
const retryAfterSeconds = 1

// Server is the wire front-end: an http.Handler serving the multiply,
// batch, async, and stats endpoints over a float64 + float32 multiplier
// pair built from one Config. It does not own a listener — hand it to an
// http.Server (or servetest.Start), shut that down first, then call Close
// to drain compute. See the package comment for the endpoint map.
type Server struct {
	params fmmfam.ServeParams
	mu64   *fmmfam.Multiplier
	mu32   *fmmfam.Multiplier32
	co64   *coalescer[float64] // nil when coalescing is disabled
	co32   *coalescer[float32]
	mux    *http.ServeMux

	// admit is the admission gate: a slot is held for the duration of every
	// compute request (for async, until its Future resolves), and an empty
	// channel means the next request is refused with 429 + Retry-After —
	// the async queue's backpressure semantics, with rejection in place of
	// blocking (a blocked handler would just hide the queue in the TCP
	// accept backlog).
	admit    chan struct{}
	admitted atomic.Uint64
	rejected atomic.Uint64

	completed atomic.Uint64
	errcount  atomic.Uint64
	hist      map[string]*histogram // fixed keys after construction; values are atomic

	closed   atomic.Bool
	watchers sync.WaitGroup // async future-watcher goroutines

	asyncs struct {
		sync.Mutex
		m    map[uint64]*pendingAsync
		next uint64
	}
}

// pendingAsync is one submitted-but-uncollected async result: the engine
// future and the encoder that frames its C once resolved.
type pendingAsync struct {
	f     *fmmfam.Future
	frame func() []byte
}

// New builds a Server from cfg: both engines (the same blocking, threads,
// and serving knobs at each precision), the per-dtype coalescers, and the
// admission gate, with the serve knobs resolved through cfg.ServeParams
// (environment mirrors win). cfg.QueueDepth is floored to the admission
// depth so the wire layer's 429 gate always trips before MulAddAsync's
// blocking backpressure — a wire client is never silently parked on the
// internal queue.
func New(cfg fmmfam.Config, arch fmmfam.Arch) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	params, err := cfg.ServeParams()
	if err != nil {
		return nil, err
	}
	if cfg.QueueDepth < params.AdmissionDepth {
		cfg.QueueDepth = params.AdmissionDepth
	}
	s := &Server{
		params: params,
		mu64:   fmmfam.NewMultiplier(cfg, arch),
		mu32:   fmmfam.NewMultiplier32(cfg, arch),
		admit:  make(chan struct{}, params.AdmissionDepth),
		hist: map[string]*histogram{
			"multiply":      new(histogram),
			"batch":         new(histogram),
			"async-submit":  new(histogram),
			"async-collect": new(histogram),
			"stats":         new(histogram),
		},
	}
	if params.Coalesce() {
		s.co64 = newCoalescer[float64](s.mu64, params)
		s.co32 = newCoalescer[float32](s.mu32, params)
	}
	s.asyncs.m = make(map[uint64]*pendingAsync)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/multiply", s.handleMultiply)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/async", s.handleAsyncSubmit)
	s.mux.HandleFunc("GET /v1/async/{id}", s.handleAsyncCollect)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// Addr returns the resolved listen address (for the owner to listen on;
// the Server itself never opens a socket).
func (s *Server) Addr() string { return s.params.Addr }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close drains the server's compute: the open coalescing windows flush (their
// waiters complete normally), async future watchers are waited out, and both
// engines' async queues drain through Multiplier.Close. Submissions racing
// or following Close fail with ErrServerClosed (HTTP 503) instead of
// hanging. Close does not touch the HTTP listener — the owner shuts its
// http.Server down first (completing in-flight handlers), then calls Close.
// Idempotent and safe for concurrent use.
func (s *Server) Close() error {
	if s.closed.CompareAndSwap(false, true) && s.co64 != nil {
		s.co64.close()
		s.co32.close()
	}
	s.watchers.Wait()
	return errors.Join(s.mu64.Close(), s.mu32.Close())
}

// writeError sends a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// decodeStatus maps a frame-decode failure to its HTTP status.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.Is(err, ErrTooLarge) || errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// acquire takes an admission slot, or reports failure having sent the 429.
func (s *Server) acquire(w http.ResponseWriter) bool {
	select {
	case s.admit <- struct{}{}:
		s.admitted.Add(1)
		return true
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("serve: admission queue full (depth %d); retry after %ds", s.params.AdmissionDepth, retryAfterSeconds))
		return false
	}
}

func (s *Server) release() { <-s.admit }

// finish records one compute request's outcome and latency.
func (s *Server) finish(endpoint string, start time.Time, err error) {
	s.hist[endpoint].observe(time.Since(start))
	if err != nil {
		s.errcount.Add(1)
	} else {
		s.completed.Add(1)
	}
}

// readBody reads a compute request's body under the size cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
}

// dispatch routes one decoded multiply to the engine: sub-threshold
// problems join the coalescing window (when enabled), everything else goes
// straight to MulAdd and picks up auto-sharding and intra-plan parallelism
// there. The C it returns is freshly allocated — the wire computes C = A·B,
// and clients fold the product into their accumulator locally.
func dispatch[E matrix.Element](mul *fmmfam.GenericMultiplier[E], co *coalescer[E], a, b matrix.Mat[E]) (matrix.Mat[E], error) {
	c := matrix.New[E](a.Rows, b.Cols)
	if co != nil && a.Rows <= coalesceSizeLimit && a.Cols <= coalesceSizeLimit && b.Cols <= coalesceSizeLimit {
		return c, co.submit(c, a, b)
	}
	return c, mul.MulAdd(c, a, b)
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrServerClosed)
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	h, a64, b64, a32, b32, err := DecodeRequest(buf)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	var frame []byte
	if h.Dtype == matrix.Float32 {
		var c matrix.Mat[float32]
		c, err = dispatch(s.mu32, s.co32, a32, b32)
		if err == nil {
			frame = AppendResult(buf[:0], c)
		}
	} else {
		var c matrix.Mat[float64]
		c, err = dispatch(s.mu64, s.co64, a64, b64)
		if err == nil {
			frame = AppendResult(buf[:0], c)
		}
	}
	s.finish("multiply", start, err)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrServerClosed) || errors.Is(err, fmmfam.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

// batchFrames splits a batch body (uint32 count + count request frames)
// into its per-frame byte slices, validating the total payload budget.
func batchFrames(buf []byte) ([][]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: batch body %d bytes, need a uint32 count", ErrTruncated, len(buf))
	}
	count := binary.LittleEndian.Uint32(buf)
	if count == 0 {
		return nil, nil
	}
	if count > maxBatchFrames {
		return nil, fmt.Errorf("%w: batch count %d, cap %d", ErrTooLarge, count, maxBatchFrames)
	}
	rest := buf[4:]
	frames := make([][]byte, 0, count)
	var totalElems int64
	for i := uint32(0); i < count; i++ {
		h, err := DecodeHeader(rest)
		if err != nil {
			return nil, fmt.Errorf("batch frame %d: %w", i, err)
		}
		totalElems += h.reqElems()
		if totalElems > MaxFrameElems {
			return nil, fmt.Errorf("%w: batch payload %d elements by frame %d, cap %d", ErrTooLarge, totalElems, i, MaxFrameElems)
		}
		fl := int64(headerLen) + h.reqElems()*int64(h.Dtype.Size())
		if int64(len(rest)) < fl {
			return nil, fmt.Errorf("batch frame %d: %w: %d bytes left, frame needs %d", i, ErrTruncated, len(rest), fl)
		}
		frames = append(frames, rest[:fl])
		rest = rest[fl:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d bytes after batch frame %d", ErrTrailing, len(rest), count-1)
	}
	return frames, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrServerClosed)
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	frames, err := batchFrames(buf)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	// Decode every frame before admission so a malformed batch never holds
	// a slot. Jobs may mix dtypes; each group dispatches through its
	// engine's batch pool, and the response frames keep request order.
	type slot struct {
		dt  matrix.Dtype
		c64 matrix.Mat[float64]
		c32 matrix.Mat[float32]
	}
	slots := make([]slot, len(frames))
	var jobs64 []fmmfam.BatchJob
	var jobs32 []fmmfam.BatchJob32
	for i, fb := range frames {
		h, a64, b64, a32, b32, err := DecodeRequest(fb)
		if err != nil {
			writeError(w, decodeStatus(err), fmt.Errorf("batch frame %d: %w", i, err))
			return
		}
		slots[i].dt = h.Dtype
		if h.Dtype == matrix.Float32 {
			slots[i].c32 = matrix.New[float32](h.M, h.N)
			jobs32 = append(jobs32, fmmfam.BatchJob32{C: slots[i].c32, A: a32, B: b32})
		} else {
			slots[i].c64 = matrix.New[float64](h.M, h.N)
			jobs64 = append(jobs64, fmmfam.BatchJob{C: slots[i].c64, A: a64, B: b64})
		}
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	if len(jobs64) > 0 {
		err = s.mu64.MulAddBatch(jobs64)
	}
	if err == nil && len(jobs32) > 0 {
		err = s.mu32.MulAddBatch(jobs32)
	}
	s.finish("batch", start, err)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]byte, 0, len(buf))
	for _, sl := range slots {
		if sl.dt == matrix.Float32 {
			out = AppendResult(out, sl.c32)
		} else {
			out = AppendResult(out, sl.c64)
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

// asyncPendingCap bounds submitted-but-uncollected async results so clients
// that never collect cannot grow server memory without bound; at the cap,
// submissions are refused with 429 like an admission failure.
func (s *Server) asyncPendingCap() int { return 4 * s.params.AdmissionDepth }

func (s *Server) handleAsyncSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrServerClosed)
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	h, a64, b64, a32, b32, err := DecodeRequest(buf)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if !s.acquire(w) {
		return
	}
	// The admission slot is held until the Future resolves, not until this
	// handler returns — async work in flight is still in-flight work.
	p := &pendingAsync{}
	if h.Dtype == matrix.Float32 {
		c := matrix.New[float32](h.M, h.N)
		p.f = s.mu32.MulAddAsync(c, a32, b32)
		p.frame = func() []byte { return AppendResult(nil, c) }
	} else {
		c := matrix.New[float64](h.M, h.N)
		p.f = s.mu64.MulAddAsync(c, a64, b64)
		p.frame = func() []byte { return AppendResult(nil, c) }
	}
	s.asyncs.Lock()
	if len(s.asyncs.m) >= s.asyncPendingCap() {
		s.asyncs.Unlock()
		// The submission is already queued; wait it out on a watcher so the
		// slot still releases, but refuse to retain the result.
		s.watchAsync(p.f)
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("serve: %d uncollected async results (cap %d); collect or retry after %ds", s.asyncPendingCap(), s.asyncPendingCap(), retryAfterSeconds))
		return
	}
	s.asyncs.next++
	id := s.asyncs.next
	s.asyncs.m[id] = p
	s.asyncs.Unlock()
	s.watchAsync(p.f)
	s.finish("async-submit", start, nil)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": strconv.FormatUint(id, 10)})
}

// watchAsync releases the submission's admission slot when its Future
// resolves. The watcher is counted so Close can wait every slot release out
// before draining the engines.
func (s *Server) watchAsync(f *fmmfam.Future) {
	s.watchers.Add(1)
	go func() { //fmm:go-ok: service-lifecycle watcher, bounded by AdmissionDepth and joined by Close — not compute fan-out
		defer s.watchers.Done()
		<-f.Done()
		s.release()
	}()
}

func (s *Server) handleAsyncCollect(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad async id %q", r.PathValue("id")))
		return
	}
	s.asyncs.Lock()
	p, ok := s.asyncs.m[id]
	// Collect-once: the result leaves the pending table on lookup, so a
	// concurrent duplicate collect gets 404 rather than two readers racing
	// one frame.
	delete(s.asyncs.m, id)
	s.asyncs.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown or already-collected async id %d", id))
		return
	}
	select {
	case <-p.f.Done():
	case <-r.Context().Done():
		// Client went away mid-wait; the result is already detached and is
		// dropped (collect-once), the engine work completes regardless.
		s.finish("async-collect", start, r.Context().Err())
		return
	}
	err = p.f.Wait()
	s.finish("async-collect", start, err)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, fmmfam.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(p.frame())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	st := Stats{
		Completed:    s.completed.Load(),
		Errors:       s.errcount.Load(),
		Endpoints:    make(map[string]HistogramSnapshot, len(s.hist)),
		Admission:    AdmissionStats{Depth: s.params.AdmissionDepth, Admitted: s.admitted.Load(), Rejected: s.rejected.Load(), InFlight: len(s.admit)},
		Multiplier:   s.mu64.Stats(),
		Multiplier32: s.mu32.Stats(),
		CPU:          fmmfam.HostCPU(),
		Kernels:      fmmfam.KernelStatuses(),
	}
	for name, h := range s.hist {
		st.Endpoints[name] = h.snapshot()
	}
	if s.co64 != nil {
		st.Coalesce64 = s.co64.snapshot()
		st.Coalesce32 = s.co32.snapshot()
	}
	s.asyncs.Lock()
	st.AsyncPending = len(s.asyncs.m)
	s.asyncs.Unlock()
	s.hist["stats"].observe(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
