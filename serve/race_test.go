// Race-detector stress: coalescing windows filling and flushing while the
// engines autotune on served traffic and a poller hammers /v1/stats. This is
// the serving-layer extension of the engine's stats_race_test — same idea,
// but through real sockets with the coalescer's timer/size flush race in the
// loop. The assertions are tolerance-based because autotuning deliberately
// routes calls across plan variants.
package serve_test

import (
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fmmfam"
)

func TestServeRaceCoalesceAutotuneStats(t *testing.T) {
	beforeGoroutines := runtime.NumGoroutine()
	cfg := fmmfam.Config{
		MC: 16, KC: 16, NC: 32, Threads: 2,
		ShardThreshold: 128, ShardMinTile: 48, ShardKSplit: -1,
		Autotune: true, AutotuneFraction: 0.5,
		CoalesceWindow: 100 * time.Microsecond, CoalesceMaxJobs: 4,
		AdmissionDepth: 32,
	}
	h := startHarness(t, cfg)
	closed := false
	defer func() {
		if !closed {
			h.Close()
		}
	}()

	rng := rand.New(rand.NewSource(21))
	a, b := fmmfam.NewMatrix(48, 48), fmmfam.NewMatrix(48, 48)
	a.FillRand(rng)
	b.FillRand(rng)
	want := fmmfam.NewMatrix(48, 48)
	refCfg := cfg
	refCfg.Threads = 1
	refCfg.Autotune = false
	ref := fmmfam.NewMultiplier(refCfg, fmmfam.PaperArch())
	if err := ref.MulAdd(want, a, b); err != nil {
		t.Fatalf("reference: %v", err)
	}
	if err := ref.Close(); err != nil {
		t.Fatalf("reference close: %v", err)
	}

	const clients = 4
	const iters = 40
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Stats poller: runs flat out until the clients finish, checking every
	// snapshot is self-consistent JSON.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr := &http.Transport{}
		defer tr.CloseIdleConnections()
		cl := h.Client()
		cl.HTTPClient = &http.Client{Transport: tr}
		for !stop.Load() {
			st, err := cl.Stats()
			if err != nil {
				t.Errorf("stats poll: %v", err)
				return
			}
			if !st.Multiplier.Autotune || st.Multiplier.Fraction != 0.5 {
				t.Errorf("stats: autotune knobs lost in flight: %+v", st.Multiplier)
				return
			}
			if st.Coalesce64.Jobs < st.Coalesce64.Batches {
				t.Errorf("stats: coalesce jobs %d < batches %d", st.Coalesce64.Jobs, st.Coalesce64.Batches)
				return
			}
		}
	}()

	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := &http.Transport{}
			defer tr.CloseIdleConnections()
			cl := h.Client()
			cl.HTTPClient = &http.Client{Transport: tr}
			cl.Retry429 = 8
			for it := 0; it < iters; it++ {
				c := fmmfam.NewMatrix(48, 48)
				if err := cl.Multiply(c, a, b); err != nil {
					t.Errorf("client %d iter %d: %v", g, it, err)
					return
				}
				// Autotune routes a fraction of calls to alternate plans, so
				// equality is up to roundoff, matching the engine's own
				// autotune race test.
				if d := c.MaxAbsDiff(want); d > 1e-9 {
					t.Errorf("client %d iter %d: off by %g under autotune", g, it, d)
					return
				}
			}
		}(g)
	}

	// Let the clients finish, then stop the poller.
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	// The first Wait covers the client goroutines' natural completion; the
	// poller needs the stop flag. Poll for the client count via the shared
	// WaitGroup indirectly: flip stop once all client work is observable in
	// stats, bounded by a deadline.
	deadline := time.After(30 * time.Second)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	cl := h.Client()
	for {
		st, err := cl.Stats()
		if err != nil {
			t.Fatalf("final stats: %v", err)
		}
		if st.Completed+st.Errors >= clients*iters {
			stop.Store(true)
			break
		}
		select {
		case <-deadline:
			t.Fatalf("clients did not finish: %d/%d requests accounted", st.Completed+st.Errors, clients*iters)
		case <-tick.C:
		}
	}
	<-done

	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("final stats: %v", err)
	}
	if st.Coalesce64.Batches == 0 {
		t.Errorf("race run never coalesced: %+v", st.Coalesce64)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	closed = true
	http.DefaultClient.CloseIdleConnections()
	checkNoGoroutineLeak(t, beforeGoroutines)
}
