// Fault-path tests: malformed payloads, dimension mismatches, oversized
// requests, queue-full 429s with a Retry-After that is actually honored, and
// shutdown racing in-flight work.
package serve_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"fmmfam"
	"fmmfam/serve"
	"fmmfam/serve/servetest"
)

// postRaw posts raw bytes to a harness endpoint and returns the status.
func postRaw(t *testing.T, h *servetest.Harness, path string, body []byte) int {
	t.Helper()
	resp, err := http.Post(h.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestServeMalformedRequests drives each decode failure through the real
// HTTP stack and checks the mapped status: frame-shape garbage is a client
// error (400), anything that tripped a size cap is 413, and none of it may
// consume an admission slot or count as a completed request.
func TestServeMalformedRequests(t *testing.T) {
	h := startHarness(t, serveCfg())
	defer h.Close()

	a, b := fmmfam.NewMatrix(2, 3), fmmfam.NewMatrix(3, 2)
	good := serve.AppendRequest[float64](nil, a, b)

	badMagic := append([]byte("NOPE"), good[4:]...)
	badDtype := append([]byte(nil), good...)
	badDtype[4] = 99
	trailing := append(append([]byte(nil), good...), 0xAB)
	oversize := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(oversize[5:], 1<<20) // m far past MaxDim

	cases := []struct {
		name string
		path string
		body []byte
		want int
	}{
		{"empty-body", "/v1/multiply", nil, http.StatusBadRequest},
		{"bad-magic", "/v1/multiply", badMagic, http.StatusBadRequest},
		{"bad-dtype", "/v1/multiply", badDtype, http.StatusBadRequest},
		{"truncated", "/v1/multiply", good[:len(good)-5], http.StatusBadRequest},
		{"trailing", "/v1/multiply", trailing, http.StatusBadRequest},
		{"oversize-dims", "/v1/multiply", oversize, http.StatusRequestEntityTooLarge},
		{"async-bad-magic", "/v1/async", badMagic, http.StatusBadRequest},
		{"batch-no-count", "/v1/batch", []byte{1, 2}, http.StatusBadRequest},
		{"batch-count-overrun", "/v1/batch", func() []byte {
			body := make([]byte, 4)
			binary.LittleEndian.PutUint32(body, 3) // claims 3 frames, carries 1
			return append(body, good...)
		}(), http.StatusBadRequest},
		{"batch-count-cap", "/v1/batch", func() []byte {
			body := make([]byte, 4)
			binary.LittleEndian.PutUint32(body, 1<<20)
			return append(body, good...)
		}(), http.StatusRequestEntityTooLarge},
		{"batch-trailing", "/v1/batch", func() []byte {
			body := make([]byte, 4)
			binary.LittleEndian.PutUint32(body, 1)
			return append(append(body, good...), 0xCD)
		}(), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := postRaw(t, h, tc.path, tc.body); got != tc.want {
				t.Fatalf("POST %s (%s) = %d, want %d", tc.path, tc.name, got, tc.want)
			}
		})
	}

	// Unknown and malformed async ids.
	for _, tc := range []struct {
		id   string
		want int
	}{{"999999", http.StatusNotFound}, {"not-a-number", http.StatusBadRequest}} {
		resp, err := http.Get(h.URL + "/v1/async/" + tc.id)
		if err != nil {
			t.Fatalf("GET /v1/async/%s: %v", tc.id, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET /v1/async/%s = %d, want %d", tc.id, resp.StatusCode, tc.want)
		}
	}

	st, err := h.Client().Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Completed != 0 {
		t.Errorf("malformed requests counted as completed: %d", st.Completed)
	}
	if st.Admission.InFlight != 0 {
		t.Errorf("malformed requests left %d admission slots held", st.Admission.InFlight)
	}
	if st.Admission.Admitted != 0 {
		t.Errorf("malformed requests acquired %d admission slots before failing decode", st.Admission.Admitted)
	}
}

// TestServeAdmissionControl fills the admission gate with slow async work,
// checks that the next request is refused with 429 + Retry-After, and that a
// client honoring the hint eventually gets through once the gate drains.
func TestServeAdmissionControl(t *testing.T) {
	cfg := serveCfg()
	cfg.AdmissionDepth = 2
	cfg.CoalesceWindow = -1 // direct dispatch keeps slot accounting deterministic
	cfg.Threads = 1         // one worker: the second job queues behind the first
	h := startHarness(t, cfg)
	defer h.Close()
	cl := h.Client()

	rng := rand.New(rand.NewSource(5))
	// Chunky products on a single worker: the first job alone runs for
	// hundreds of milliseconds, so both admission slots stay held (one
	// executing, one queued) long after the submit round-trips return.
	a, b := fmmfam.NewMatrix(512, 512), fmmfam.NewMatrix(512, 512)
	a.FillRand(rng)
	b.FillRand(rng)
	var handles []*serve.AsyncHandle
	for i := 0; i < 2; i++ {
		hnd, err := cl.SubmitAsync(fmmfam.NewMatrix(512, 512), a, b)
		if err != nil {
			t.Fatalf("SubmitAsync %d: %v", i, err)
		}
		handles = append(handles, hnd)
	}

	// Gate is full: a bare client (no retry budget) must see 429 with a
	// usable Retry-After.
	sa, sb := fmmfam.NewMatrix(8, 8), fmmfam.NewMatrix(8, 8)
	sa.FillRand(rng)
	sb.FillRand(rng)
	err := cl.Multiply(fmmfam.NewMatrix(8, 8), sa, sb)
	var herr *serve.HTTPError
	if !errors.As(err, &herr) || herr.Status != http.StatusTooManyRequests {
		t.Fatalf("multiply against a full gate = %v, want HTTP 429", err)
	}
	if herr.RetryAfter <= 0 {
		t.Fatalf("429 carried no Retry-After hint: %+v", herr)
	}

	// A client that honors Retry-After succeeds once the async work drains.
	patient := h.Client()
	patient.Retry429 = 10
	if err := patient.Multiply(fmmfam.NewMatrix(8, 8), sa, sb); err != nil {
		t.Fatalf("retrying multiply never got through: %v", err)
	}

	for i, hnd := range handles {
		if err := hnd.Collect(); err != nil {
			t.Fatalf("Collect %d: %v", i, err)
		}
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Admission.Rejected == 0 {
		t.Errorf("stats: no rejections recorded after observed 429s: %+v", st.Admission)
	}
	if st.Admission.InFlight != 0 {
		t.Errorf("stats: %d slots still held after all work drained", st.Admission.InFlight)
	}
}

// TestServeShutdown covers both halves of shutdown: an in-flight request
// racing harness teardown completes cleanly (HTTP drains before compute
// closes), and requests after Server.Close get a clean 503, not a hang.
func TestServeShutdown(t *testing.T) {
	t.Run("in-flight-completes", func(t *testing.T) {
		h := startHarness(t, serveCfg())
		rng := rand.New(rand.NewSource(9))
		a, b := fmmfam.NewMatrix(320, 320), fmmfam.NewMatrix(320, 320)
		a.FillRand(rng)
		b.FillRand(rng)
		cl := h.Client()

		var wg sync.WaitGroup
		var mulErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			mulErr = cl.Multiply(fmmfam.NewMatrix(320, 320), a, b)
		}()
		// Close only after the request has demonstrably reached the engine
		// (it holds an admission slot) — a fixed sleep flakes on a loaded
		// single-core runner where the client goroutine may not have dialed
		// yet.
		admitDeadline := time.Now().Add(10 * time.Second)
		for {
			st, err := h.Client().Stats()
			if err != nil {
				t.Fatalf("stats while waiting for admission: %v", err)
			}
			if st.Admission.Admitted >= 1 {
				break
			}
			if time.Now().After(admitDeadline) {
				t.Fatal("multiply never acquired an admission slot")
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err := h.Close(); err != nil {
			t.Fatalf("Close with work in flight: %v", err)
		}
		wg.Wait()
		if mulErr != nil {
			t.Fatalf("in-flight multiply failed during shutdown: %v", mulErr)
		}
	})

	t.Run("post-close-503", func(t *testing.T) {
		h := startHarness(t, serveCfg())
		defer h.Close()
		// Close compute directly while the listener still accepts: the
		// handler must answer 503 ErrServerClosed, never hang on a closed
		// engine.
		if err := h.Server.Close(); err != nil {
			t.Fatalf("Server.Close: %v", err)
		}
		rng := rand.New(rand.NewSource(13))
		a, b := fmmfam.NewMatrix(16, 16), fmmfam.NewMatrix(16, 16)
		a.FillRand(rng)
		b.FillRand(rng)
		err := h.Client().Multiply(fmmfam.NewMatrix(16, 16), a, b)
		var herr *serve.HTTPError
		if !errors.As(err, &herr) || herr.Status != http.StatusServiceUnavailable {
			t.Fatalf("multiply after Close = %v, want HTTP 503", err)
		}
		if _, err := h.Client().SubmitAsync(fmmfam.NewMatrix(16, 16), a, b); !errors.As(err, &herr) || herr.Status != http.StatusServiceUnavailable {
			t.Fatalf("async submit after Close = %v, want HTTP 503", err)
		}
	})
}
