package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fmmfam"
	"fmmfam/internal/matrix"
)

// ErrServerClosed is reported for work submitted after shutdown began.
var ErrServerClosed = errors.New("serve: server closed")

// coalesceSizeLimit is the threshold below which a multiply request is
// coalesced instead of dispatched directly: requests with max(m,k,n) ≤ this
// join a window and ship as one MulAddBatch. 128 keeps coalescing to the
// regime where per-call overhead (HTTP handling, plan-cache lookup, pool
// dispatch) is comparable to the product itself — the small-matrix
// ML-inference traffic the batch path amortizes — while anything larger
// goes straight to MulAdd, whose auto-sharding and intra-plan parallelism
// want the whole worker pool, not a single-threaded batch slot.
const coalesceSizeLimit = 128

// coalescer collects small multiply requests into time/size-bounded windows
// and dispatches each window as one MulAddBatch, amortizing plan lookup and
// pool scheduling across the window. The first request of a window arms a
// timer (ServeParams.CoalesceWindow); the window flushes when the timer
// fires or when CoalesceMaxJobs requests have joined, whichever happens
// first. No dedicated dispatcher goroutine exists: a size-triggered flush
// runs the batch on the submitter that filled the window, and a
// time-triggered flush runs on the timer's callback goroutine — every
// waiter blocks on its window's done channel either way.
//
// Error granularity is per window: MulAddBatch joins per-job errors, and
// the join is reported to every waiter of the window. Requests are
// dimension-checked at decode time, so a window error is systemic (an
// invalid engine config), not one job's bad input taking out its
// neighbours.
type coalescer[E matrix.Element] struct {
	mul     *fmmfam.GenericMultiplier[E]
	window  time.Duration
	maxJobs int

	mtx    sync.Mutex
	closed bool
	open   *coalesceWindow[E] // the accepting window, nil when none

	// Observability counters, read by Stats.
	batches      atomic.Uint64 // windows dispatched
	jobs         atomic.Uint64 // requests that went through a window
	sizeFlushes  atomic.Uint64 // windows flushed by reaching maxJobs
	timerFlushes atomic.Uint64 // windows flushed by the timer
}

// coalesceWindow is one batch in the making: its jobs, the timer racing the
// size bound, and the done channel its waiters block on. err is written
// once before done is closed.
type coalesceWindow[E matrix.Element] struct {
	jobs  []fmmfam.GenericBatchJob[E]
	timer *time.Timer
	done  chan struct{}
	err   error
}

func newCoalescer[E matrix.Element](mul *fmmfam.GenericMultiplier[E], p fmmfam.ServeParams) *coalescer[E] {
	return &coalescer[E]{mul: mul, window: p.CoalesceWindow, maxJobs: p.CoalesceMaxJobs}
}

// submit adds c += a·b to the open window (opening one if needed) and
// blocks until the window's batch has executed. Exactly one goroutine runs
// each window: the submitter that fills it, or the timer callback — the
// detach-under-lock handshake in submit and flushTimer guarantees a window
// is taken off co.open exactly once.
func (co *coalescer[E]) submit(c, a, b matrix.Mat[E]) error {
	co.mtx.Lock()
	if co.closed {
		co.mtx.Unlock()
		return ErrServerClosed
	}
	w := co.open
	if w == nil {
		w = &coalesceWindow[E]{done: make(chan struct{})}
		w.timer = time.AfterFunc(co.window, func() { co.flushTimer(w) })
		co.open = w
	}
	w.jobs = append(w.jobs, fmmfam.GenericBatchJob[E]{C: c, A: a, B: b})
	full := len(w.jobs) >= co.maxJobs
	if full {
		co.open = nil // detached: the timer callback will find co.open != w and stand down
	}
	co.mtx.Unlock()
	if full {
		w.timer.Stop()
		co.sizeFlushes.Add(1)
		co.run(w)
	}
	<-w.done
	return w.err
}

// flushTimer is the timer callback: detach the window if it is still the
// accepting one and run it. When the size path (or close) detached it
// first, that path owns the flush and this callback stands down.
func (co *coalescer[E]) flushTimer(w *coalesceWindow[E]) {
	co.mtx.Lock()
	if co.open != w {
		co.mtx.Unlock()
		return
	}
	co.open = nil
	co.mtx.Unlock()
	co.timerFlushes.Add(1)
	co.run(w)
}

// run executes a detached window and releases its waiters.
func (co *coalescer[E]) run(w *coalesceWindow[E]) {
	w.err = co.mul.MulAddBatch(w.jobs)
	co.batches.Add(1)
	co.jobs.Add(uint64(len(w.jobs)))
	close(w.done)
}

// close flushes the open window (its waiters complete normally) and fails
// all later submits with ErrServerClosed. Idempotent.
func (co *coalescer[E]) close() {
	co.mtx.Lock()
	co.closed = true
	w := co.open
	co.open = nil
	co.mtx.Unlock()
	if w != nil {
		w.timer.Stop()
		co.run(w)
	}
}

// snapshot reads the counters for Stats.
func (co *coalescer[E]) snapshot() CoalesceStats {
	return CoalesceStats{
		Enabled:      true,
		WindowNS:     co.window.Nanoseconds(),
		MaxJobs:      co.maxJobs,
		Batches:      co.batches.Load(),
		Jobs:         co.jobs.Load(),
		SizeFlushes:  co.sizeFlushes.Load(),
		TimerFlushes: co.timerFlushes.Load(),
	}
}
