package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"fmmfam"
	"fmmfam/internal/matrix"
)

// Client is a Go client for a Server. The zero HTTPClient means
// http.DefaultClient. With Retry429 > 0, a 429 response is retried up to
// that many times, sleeping the server's Retry-After hint between attempts;
// at 0 the *HTTPError surfaces to the caller, which can inspect RetryAfter
// itself.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	Retry429   int
}

// HTTPError is a non-2xx response: the status, the server's JSON error
// message, and the parsed Retry-After hint when the server sent one.
type HTTPError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Msg)
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return http.DefaultClient
}

// do posts body and returns the response bytes, applying the 429 retry
// policy.
func (cl *Client) do(method, path string, body []byte) ([]byte, int, error) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, cl.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/octet-stream")
		}
		resp, err := cl.httpClient().Do(req)
		if err != nil {
			return nil, 0, err
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, resp.StatusCode, err
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return out, resp.StatusCode, nil
		}
		herr := &HTTPError{Status: resp.StatusCode, Msg: errorMessage(out)}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			herr.RetryAfter = time.Duration(ra) * time.Second
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < cl.Retry429 {
			// Honor the server's hint: it sized the wait to its own drain
			// rate; hammering sooner just earns another rejection.
			time.Sleep(herr.RetryAfter)
			continue
		}
		return nil, resp.StatusCode, herr
	}
}

// errorMessage extracts the server's {"error": ...} body, falling back to
// the raw bytes.
func errorMessage(body []byte) string {
	var m map[string]string
	if err := json.Unmarshal(body, &m); err == nil && m["error"] != "" {
		return m["error"]
	}
	return string(bytes.TrimSpace(body))
}

// multiply is the dtype-generic body of Multiply/Multiply32: POST one
// request frame, decode the product frame, fold it into c (the wire
// computes C = A·B; adding the product into a zeroed c reproduces MulAdd's
// bits exactly).
func multiply[E matrix.Element](cl *Client, c, a, b matrix.Mat[E]) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("serve: dims C(%d×%d) += A(%d×%d)·B(%d×%d)", c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	body, _, err := cl.do(http.MethodPost, "/v1/multiply", AppendRequest[E](nil, a, b))
	if err != nil {
		return err
	}
	got, err := DecodeResult[E](body)
	if err != nil {
		return err
	}
	c.AddScaled(1, got)
	return nil
}

// Multiply computes c += a·b on the server (float64).
func (cl *Client) Multiply(c, a, b fmmfam.Matrix) error { return multiply(cl, c, a, b) }

// Multiply32 computes c += a·b on the server (float32).
func (cl *Client) Multiply32(c, a, b fmmfam.Matrix32) error { return multiply(cl, c, a, b) }

// MultiplyBatch ships the jobs as one /v1/batch request and folds each
// returned product into its job's C. Jobs must be independent, like
// Multiplier.MulAddBatch.
func (cl *Client) MultiplyBatch(jobs []fmmfam.BatchJob) error {
	if len(jobs) == 0 {
		return nil
	}
	body := make([]byte, 4)
	binary.LittleEndian.PutUint32(body, uint32(len(jobs)))
	for i, j := range jobs {
		if j.A.Cols != j.B.Rows || j.C.Rows != j.A.Rows || j.C.Cols != j.B.Cols {
			return fmt.Errorf("serve: batch job %d: dims C(%d×%d) += A(%d×%d)·B(%d×%d)", i, j.C.Rows, j.C.Cols, j.A.Rows, j.A.Cols, j.B.Rows, j.B.Cols)
		}
		body = AppendRequest[float64](body, j.A, j.B)
	}
	out, _, err := cl.do(http.MethodPost, "/v1/batch", body)
	if err != nil {
		return err
	}
	for i, j := range jobs {
		fl := int64(headerLen) + int64(j.C.Rows)*int64(j.C.Cols)*8
		if int64(len(out)) < fl {
			return fmt.Errorf("serve: batch response truncated at job %d", i)
		}
		got, err := DecodeResult[float64](out[:fl])
		if err != nil {
			return fmt.Errorf("serve: batch response job %d: %w", i, err)
		}
		j.C.AddScaled(1, got)
		out = out[fl:]
	}
	return nil
}

// AsyncHandle is one submitted-but-uncollected server-side product.
type AsyncHandle struct {
	cl *Client
	id string
	c  fmmfam.Matrix
}

// ID returns the server-assigned submission id.
func (h *AsyncHandle) ID() string { return h.id }

// SubmitAsync submits c += a·b (float64) and returns immediately with a
// handle; Collect blocks until the server has the result and folds it into
// c. Each handle collects exactly once.
func (cl *Client) SubmitAsync(c, a, b fmmfam.Matrix) (*AsyncHandle, error) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return nil, fmt.Errorf("serve: dims C(%d×%d) += A(%d×%d)·B(%d×%d)", c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	body, _, err := cl.do(http.MethodPost, "/v1/async", AppendRequest[float64](nil, a, b))
	if err != nil {
		return nil, err
	}
	var resp map[string]string
	if err := json.Unmarshal(body, &resp); err != nil || resp["id"] == "" {
		return nil, fmt.Errorf("serve: bad async submit response %q", body)
	}
	return &AsyncHandle{cl: cl, id: resp["id"], c: c}, nil
}

// Collect blocks until the submission has executed, folds the product into
// the destination passed to SubmitAsync, and releases the server-side
// result.
func (h *AsyncHandle) Collect() error {
	body, _, err := h.cl.do(http.MethodGet, "/v1/async/"+h.id, nil)
	if err != nil {
		return err
	}
	got, err := DecodeResult[float64](body)
	if err != nil {
		return err
	}
	h.c.AddScaled(1, got)
	return nil
}

// Stats fetches the server's /v1/stats snapshot.
func (cl *Client) Stats() (Stats, error) {
	body, _, err := cl.do(http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
