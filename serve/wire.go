// Package serve is the wire-facing serving front-end of the engine: an
// HTTP service (binary matrix payloads, JSON control surfaces) wrapping a
// GenericMultiplier pair (float64 + float32) with small-request coalescing
// into MulAddBatch, bounded admission control that refuses with 429 +
// Retry-After instead of queueing unbounded work, async submit/collect on
// top of MulAddAsync, graceful shutdown that drains in-flight work through
// Multiplier.Close, and a /stats endpoint exposing Multiplier.Stats plus
// per-endpoint latency histograms.
//
// The wire format is deliberately dumb: a fixed little-endian header naming
// the element type and dimensions, followed by the operands' row-major
// bits. No compression, no self-describing schema — a multiply request is
// decoded with two slice casts' worth of work, which matters when the
// payloads are 32×32 matrices arriving from 64 concurrent clients.
//
// Endpoints (see the README "Serving over the wire" section):
//
//	POST /v1/multiply  one request frame  → one result frame
//	POST /v1/batch     uint32 count + count request frames → count result frames
//	POST /v1/async     one request frame  → 202 {"id": "..."}
//	GET  /v1/async/{id}                   → one result frame (collect once)
//	GET  /v1/stats                        → JSON Stats
//	GET  /healthz                         → 200 ok
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"fmmfam/internal/matrix"
)

// Wire-format constants. A request frame is
//
//	magic "FMM1" | dtype uint8 | m, k, n uint32 LE | A (m·k elems) | B (k·n elems)
//
// and a result frame is
//
//	magic "FMM1" | dtype uint8 | rows, cols uint32 LE | C (rows·cols elems)
//
// with every element little-endian IEEE-754 in row-major order.
const (
	// Magic opens every frame; a mismatch fails fast with ErrBadMagic so a
	// stray JSON or HTML body never reaches the dimension logic.
	Magic = "FMM1"
	// headerLen is the frame header size: magic + dtype + three uint32 dims.
	headerLen = 4 + 1 + 3*4
	// MaxDim caps each dimension of a wire request. It exists to bound the
	// decoder, not the engine: a single 65536² operand is already 32 GiB of
	// float64s, far past what one request should ship over HTTP.
	MaxDim = 1 << 16
	// MaxFrameElems caps the total element count of one frame's payload
	// (both operands of a request together): 2²⁶ elements is 512 MiB of
	// float64s. Oversized requests are refused with ErrTooLarge before any
	// allocation happens.
	MaxFrameElems = 1 << 26
)

// Decode failure modes, distinguished so the HTTP layer can map payload
// size violations to 413 and everything else to 400.
var (
	// ErrBadMagic reports a frame that does not open with Magic.
	ErrBadMagic = errors.New("serve: bad frame magic")
	// ErrBadDtype reports an unknown element-type tag.
	ErrBadDtype = errors.New("serve: unknown dtype tag")
	// ErrTruncated reports a frame shorter than its header claims.
	ErrTruncated = errors.New("serve: frame shorter than header dimensions require")
	// ErrTrailing reports extra bytes after the payload the header claims.
	ErrTrailing = errors.New("serve: trailing bytes after frame payload")
	// ErrTooLarge reports dimensions past MaxDim or a payload past
	// MaxFrameElems.
	ErrTooLarge = errors.New("serve: frame exceeds size limits")
	// ErrBadDims reports a request frame with a zero dimension. Zero dims
	// are refused outright: a k=0 request carries no payload at all yet
	// names an m×n result, which would let a 17-byte frame demand a
	// gigabyte allocation.
	ErrBadDims = errors.New("serve: zero dimension in request frame")
)

// Header is a decoded frame header: the element type and the three
// dimensions of C(m×n) = A(m×k)·B(k×n). Result frames carry the result's
// rows in M and cols in K, with N zero.
type Header struct {
	Dtype   matrix.Dtype
	M, K, N int
}

// appendHeader writes a frame header. Result frames pass n == 0.
func appendHeader(dst []byte, dt matrix.Dtype, m, k, n int) []byte {
	dst = append(dst, Magic...)
	dst = append(dst, byte(dt))
	var dims [12]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(m))
	binary.LittleEndian.PutUint32(dims[4:], uint32(k))
	binary.LittleEndian.PutUint32(dims[8:], uint32(n))
	return append(dst, dims[:]...)
}

// DecodeHeader decodes and validates a frame header: magic, a known dtype
// tag, and dimensions within MaxDim. It does not check the payload length —
// the per-frame decoders do, since request and result frames size
// differently.
func DecodeHeader(buf []byte) (Header, error) {
	if len(buf) < headerLen {
		return Header{}, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(buf), headerLen)
	}
	if string(buf[:4]) != Magic {
		return Header{}, fmt.Errorf("%w: % x", ErrBadMagic, buf[:4])
	}
	var h Header
	switch buf[4] {
	case byte(matrix.Float64):
		h.Dtype = matrix.Float64
	case byte(matrix.Float32):
		h.Dtype = matrix.Float32
	default:
		return Header{}, fmt.Errorf("%w: %d", ErrBadDtype, buf[4])
	}
	h.M = int(binary.LittleEndian.Uint32(buf[5:]))
	h.K = int(binary.LittleEndian.Uint32(buf[9:]))
	h.N = int(binary.LittleEndian.Uint32(buf[13:]))
	if h.M > MaxDim || h.K > MaxDim || h.N > MaxDim {
		return Header{}, fmt.Errorf("%w: dims %d×%d×%d, MaxDim %d", ErrTooLarge, h.M, h.K, h.N, MaxDim)
	}
	return h, nil
}

// reqElems returns the total payload element count of a request frame with
// header h. The dims are each ≤ MaxDim = 2¹⁶, so the products stay far from
// overflowing int64 (and int: the package requires a 64-bit platform for
// payloads near the cap, like the rest of the engine).
func (h Header) reqElems() int64 {
	return int64(h.M)*int64(h.K) + int64(h.K)*int64(h.N)
}

// AppendRequest encodes one multiply request frame, C(m×n) = A·B, appending
// to dst. The operands may be strided views; the wire always carries tight
// row-major data.
func AppendRequest[E matrix.Element](dst []byte, a, b matrix.Mat[E]) []byte {
	dst = appendHeader(dst, matrix.DtypeOf[E](), a.Rows, a.Cols, b.Cols)
	dst = appendElems(dst, a)
	return appendElems(dst, b)
}

// DecodeRequest decodes a request frame into its operands (and the result
// header), allocating tight backing for A and B. The payload length must
// match the header dimensions exactly.
func DecodeRequest(buf []byte) (h Header, a64, b64 matrix.Mat[float64], a32, b32 matrix.Mat[float32], err error) {
	h, err = DecodeHeader(buf)
	if err != nil {
		return
	}
	if h.M < 1 || h.K < 1 || h.N < 1 {
		err = fmt.Errorf("%w: dims %d×%d×%d", ErrBadDims, h.M, h.K, h.N)
		return
	}
	// Cap the result alongside the operands: with k small, m·k + k·n can sit
	// far under the payload cap while m·n names a huge C allocation.
	elems := h.reqElems()
	if elems > MaxFrameElems || int64(h.M)*int64(h.N) > MaxFrameElems {
		err = fmt.Errorf("%w: %d payload + %d result elements, cap %d", ErrTooLarge, elems, int64(h.M)*int64(h.N), MaxFrameElems)
		return
	}
	payload := buf[headerLen:]
	want := elems * int64(h.Dtype.Size())
	switch {
	case int64(len(payload)) < want:
		err = fmt.Errorf("%w: %d payload bytes, dims %d×%d×%d need %d", ErrTruncated, len(payload), h.M, h.K, h.N, want)
		return
	case int64(len(payload)) > want:
		err = fmt.Errorf("%w: %d payload bytes, dims %d×%d×%d need %d", ErrTrailing, len(payload), h.M, h.K, h.N, want)
		return
	}
	if h.Dtype == matrix.Float32 {
		a32 = decodeElems[float32](payload, h.M, h.K)
		b32 = decodeElems[float32](payload[int64(h.M)*int64(h.K)*4:], h.K, h.N)
	} else {
		a64 = decodeElems[float64](payload, h.M, h.K)
		b64 = decodeElems[float64](payload[int64(h.M)*int64(h.K)*8:], h.K, h.N)
	}
	return
}

// AppendResult encodes one result frame (rows×cols matrix C), appending to
// dst.
func AppendResult[E matrix.Element](dst []byte, c matrix.Mat[E]) []byte {
	dst = appendHeader(dst, matrix.DtypeOf[E](), c.Rows, c.Cols, 0)
	return appendElems(dst, c)
}

// DecodeResult decodes a result frame of element type E. The frame's dtype
// tag must match E and the payload must size to rows×cols exactly.
func DecodeResult[E matrix.Element](buf []byte) (matrix.Mat[E], error) {
	h, err := DecodeHeader(buf)
	if err != nil {
		return matrix.Mat[E]{}, err
	}
	if h.Dtype != matrix.DtypeOf[E]() {
		return matrix.Mat[E]{}, fmt.Errorf("%w: result dtype %s, want %s", ErrBadDtype, h.Dtype, matrix.DtypeOf[E]())
	}
	elems := int64(h.M) * int64(h.K)
	if elems > MaxFrameElems {
		return matrix.Mat[E]{}, fmt.Errorf("%w: %d payload elements, cap %d", ErrTooLarge, elems, MaxFrameElems)
	}
	payload := buf[headerLen:]
	want := elems * int64(h.Dtype.Size())
	if int64(len(payload)) != want {
		return matrix.Mat[E]{}, fmt.Errorf("%w: %d payload bytes, %d×%d result needs %d", ErrTruncated, len(payload), h.M, h.K, want)
	}
	return decodeElems[E](payload, h.M, h.K), nil
}

// appendElems appends m's elements row-major little-endian. Strided views
// are walked row by row; the wire layout is always tight.
func appendElems[E matrix.Element](dst []byte, m matrix.Mat[E]) []byte {
	var scratch [8]byte
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, v := range row {
			switch v := any(v).(type) {
			case float64:
				binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
				dst = append(dst, scratch[:8]...)
			case float32:
				binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(v))
				dst = append(dst, scratch[:4]...)
			}
		}
	}
	return dst
}

// decodeElems decodes rows×cols little-endian elements from the front of
// payload into a freshly-allocated tight matrix. The caller has already
// checked payload is long enough.
func decodeElems[E matrix.Element](payload []byte, rows, cols int) matrix.Mat[E] {
	out := matrix.New[E](rows, cols)
	if matrix.DtypeOf[E]() == matrix.Float32 {
		data := any(out.Data).([]float32)
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
		}
	} else {
		data := any(out.Data).([]float64)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	}
	return out
}
