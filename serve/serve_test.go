// End-to-end integration tests for the serving front-end: N concurrent
// clients over real loopback sockets mixing small multiplies (coalesced),
// large multiplies (auto-sharded), wire batches, and async submissions, with
// results checked against serial reference multipliers and the harness torn
// down to zero leaked goroutines. Run with -race; the CI workflow always
// does.
package serve_test

import (
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"fmmfam"
	"fmmfam/serve/servetest"
)

// serveCfg is the integration config: small blocking so test-sized problems
// exercise real plan recursion, aggressive 2D-only sharding (ShardKSplit
// disabled keeps the sharded path bit-deterministic), and a short coalescing
// window so both flush paths fire at test speeds.
func serveCfg() fmmfam.Config {
	return fmmfam.Config{
		MC: 16, KC: 16, NC: 32, Threads: 4,
		ShardThreshold: 128, ShardMinTile: 48, ShardKSplit: -1,
		CoalesceWindow: 200 * time.Microsecond, CoalesceMaxJobs: 8,
		AdmissionDepth: 64,
	}
}

// startHarness wraps servetest.Start with test plumbing.
func startHarness(t *testing.T, cfg fmmfam.Config) *servetest.Harness {
	t.Helper()
	h, err := servetest.Start(cfg, fmmfam.PaperArch())
	if err != nil {
		t.Fatalf("servetest.Start: %v", err)
	}
	return h
}

// checkNoGoroutineLeak polls until the goroutine count returns to the
// pre-test baseline (background runtime goroutines settle asynchronously
// after Close).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type refProduct struct {
	a, b, want fmmfam.Matrix
}

type refProduct32 struct {
	a, b, want fmmfam.Matrix32
}

// TestServeIntegration is the end-to-end test the issue asks for: concurrent
// clients mix small multiplies that ride the coalescing window, large
// multiplies that route through auto-sharding MulAdd, wire batches, and
// async submissions, all against one live server. Small-multiply and batch
// results must be bit-identical to a serial reference (they execute on the
// engine's serial twin); large and async results go through parallel plan
// execution and are checked to the serving tolerance. After the clients
// finish, /v1/stats must account for the traffic, and shutdown must leak
// nothing.
func TestServeIntegration(t *testing.T) {
	beforeGoroutines := runtime.NumGoroutine()
	cfg := serveCfg()
	h := startHarness(t, cfg)
	closed := false
	defer func() {
		if !closed {
			h.Close()
		}
	}()

	// Serial references: the same engine config at Threads 1 — the coalesced
	// and batch paths promise bit-identity against exactly this.
	refCfg := cfg
	refCfg.Threads = 1
	ref64 := fmmfam.NewMultiplier(refCfg, fmmfam.PaperArch())
	ref32 := fmmfam.NewMultiplier32(refCfg, fmmfam.PaperArch())

	rng := rand.New(rand.NewSource(42))
	mkRef := func(m, k, n int) refProduct {
		a, b := fmmfam.NewMatrix(m, k), fmmfam.NewMatrix(k, n)
		a.FillRand(rng)
		b.FillRand(rng)
		want := fmmfam.NewMatrix(m, n)
		if err := ref64.MulAdd(want, a, b); err != nil {
			t.Fatalf("reference MulAdd %dx%dx%d: %v", m, k, n, err)
		}
		return refProduct{a, b, want}
	}
	mkRef32 := func(m, k, n int) refProduct32 {
		a, b := fmmfam.NewMatrix32(m, k), fmmfam.NewMatrix32(k, n)
		a.FillRand(rng)
		b.FillRand(rng)
		want := fmmfam.NewMatrix32(m, n)
		if err := ref32.MulAdd(want, a, b); err != nil {
			t.Fatalf("reference MulAdd32 %dx%dx%d: %v", m, k, n, err)
		}
		return refProduct32{a, b, want}
	}

	small := []refProduct{mkRef(24, 16, 32), mkRef(48, 48, 48), mkRef(64, 32, 16), mkRef(128, 96, 128)}
	small32 := []refProduct32{mkRef32(32, 32, 32), mkRef32(56, 40, 24)}
	large := []refProduct{mkRef(192, 160, 96), mkRef(256, 64, 192)}
	async := []refProduct{mkRef(80, 64, 80), mkRef(160, 48, 160)}

	const clients = 12
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*iters*4)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each client owns its transport so keep-alive connections are
			// torn down before the leak check.
			tr := &http.Transport{}
			defer tr.CloseIdleConnections()
			cl := h.Client()
			cl.HTTPClient = &http.Client{Transport: tr}
			cl.Retry429 = 8
			for it := 0; it < iters; it++ {
				// Small float64: coalesced, bit-exact against the serial
				// reference.
				p := small[(g+it)%len(small)]
				c := fmmfam.NewMatrix(p.want.Rows, p.want.Cols)
				if err := cl.Multiply(c, p.a, p.b); err != nil {
					errs <- err
					continue
				}
				if d := c.MaxAbsDiff(p.want); d != 0 {
					t.Errorf("client %d iter %d: small multiply differs from serial reference by %g (want bit-exact)", g, it, d)
				}

				// Small float32: same contract at the other precision.
				q := small32[(g+it)%len(small32)]
				c32 := fmmfam.NewMatrix32(q.want.Rows, q.want.Cols)
				if err := cl.Multiply32(c32, q.a, q.b); err != nil {
					errs <- err
				} else if d := c32.MaxAbsDiff(q.want); d != 0 {
					t.Errorf("client %d iter %d: small float32 multiply differs from serial reference by %g (want bit-exact)", g, it, d)
				}

				// Large float64: auto-sharded MulAdd; the tile decomposition
				// groups additions differently from the reference's full-size
				// plan, so equality is up to roundoff.
				p = large[(g+it)%len(large)]
				c = fmmfam.NewMatrix(p.want.Rows, p.want.Cols)
				if err := cl.Multiply(c, p.a, p.b); err != nil {
					errs <- err
				} else if d := c.MaxAbsDiff(p.want); d > 1e-9 {
					t.Errorf("client %d iter %d: large multiply off by %g", g, it, d)
				}

				// Wire batch: rides MulAddBatch, bit-exact like the coalesced
				// path.
				jobs := make([]fmmfam.BatchJob, 0, 3)
				for j := 0; j < 3; j++ {
					bp := small[(g+it+j)%len(small)]
					jobs = append(jobs, fmmfam.BatchJob{
						C: fmmfam.NewMatrix(bp.want.Rows, bp.want.Cols), A: bp.a, B: bp.b,
					})
				}
				if err := cl.MultiplyBatch(jobs); err != nil {
					errs <- err
				} else {
					for j, job := range jobs {
						bp := small[(g+it+j)%len(small)]
						if d := job.C.MaxAbsDiff(bp.want); d != 0 {
							t.Errorf("client %d iter %d: batch job %d differs from serial reference by %g (want bit-exact)", g, it, j, d)
						}
					}
				}

				// Async: submit, then collect a beat later.
				p = async[(g+it)%len(async)]
				c = fmmfam.NewMatrix(p.want.Rows, p.want.Cols)
				hnd, err := cl.SubmitAsync(c, p.a, p.b)
				if err != nil {
					errs <- err
					continue
				}
				if err := hnd.Collect(); err != nil {
					errs <- err
				} else if d := c.MaxAbsDiff(p.want); d > 1e-9 {
					t.Errorf("client %d iter %d: async multiply off by %g", g, it, d)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client error: %v", err)
	}

	// The server's own accounting must cover the traffic.
	cl := h.Client()
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	wantCompleted := uint64(clients * iters * 4) // multiply + multiply32 + large + batch (+ async submits on top)
	if st.Completed < wantCompleted {
		t.Errorf("stats: Completed = %d, want ≥ %d", st.Completed, wantCompleted)
	}
	if st.Errors != 0 {
		t.Errorf("stats: Errors = %d, want 0", st.Errors)
	}
	if !st.Coalesce64.Enabled || st.Coalesce64.Batches == 0 {
		t.Errorf("stats: coalescing saw no float64 batches: %+v", st.Coalesce64)
	}
	if st.Coalesce64.Jobs < st.Coalesce64.Batches {
		t.Errorf("stats: coalesce jobs %d < batches %d", st.Coalesce64.Jobs, st.Coalesce64.Batches)
	}
	if st.Coalesce32.Jobs == 0 {
		t.Errorf("stats: coalescing saw no float32 jobs: %+v", st.Coalesce32)
	}
	if st.Admission.Admitted == 0 || st.Admission.Depth != 64 {
		t.Errorf("stats: admission gate unused or misconfigured: %+v", st.Admission)
	}
	if st.AsyncPending != 0 {
		t.Errorf("stats: %d uncollected async results after all collects", st.AsyncPending)
	}
	for _, ep := range []string{"multiply", "batch", "async-submit", "async-collect"} {
		if st.Endpoints[ep].Count == 0 {
			t.Errorf("stats: endpoint %q recorded no requests", ep)
		}
	}
	// The coalesced and sharded paths both execute on the serial twin, so the
	// parent plan cache can legitimately be empty; FoldScale is always ≥ 1,
	// which pins that the embedded engine stats survive the JSON round-trip.
	if st.Multiplier.FoldScale < 1 {
		t.Errorf("stats: embedded float64 multiplier stats empty: %+v", st.Multiplier)
	}

	// Graceful shutdown, then the goroutine count must return to baseline:
	// no handler, watcher, coalescer, or pool goroutine may survive.
	http.DefaultClient.CloseIdleConnections()
	if err := h.Close(); err != nil {
		t.Fatalf("harness close: %v", err)
	}
	closed = true
	if err := ref64.Close(); err != nil {
		t.Fatalf("reference close: %v", err)
	}
	if err := ref32.Close(); err != nil {
		t.Fatalf("reference32 close: %v", err)
	}
	checkNoGoroutineLeak(t, beforeGoroutines)
}

// TestServeCoalesceDisabled pins the CoalesceWindow < 0 escape hatch: every
// request dispatches directly and /v1/stats reports the layer off.
func TestServeCoalesceDisabled(t *testing.T) {
	cfg := serveCfg()
	cfg.CoalesceWindow = -1
	h := startHarness(t, cfg)
	defer h.Close()

	cl := h.Client()
	rng := rand.New(rand.NewSource(3))
	a, b := fmmfam.NewMatrix(32, 32), fmmfam.NewMatrix(32, 32)
	a.FillRand(rng)
	b.FillRand(rng)
	c := fmmfam.NewMatrix(32, 32)
	if err := cl.Multiply(c, a, b); err != nil {
		t.Fatalf("Multiply with coalescing disabled: %v", err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Coalesce64.Enabled || st.Coalesce64.Batches != 0 {
		t.Errorf("coalescing disabled but stats report %+v", st.Coalesce64)
	}
	if st.Completed != 1 {
		t.Errorf("Completed = %d, want 1", st.Completed)
	}
}

// TestServeHealthz pins the liveness endpoint.
func TestServeHealthz(t *testing.T) {
	h := startHarness(t, serveCfg())
	defer h.Close()
	resp, err := http.Get(h.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", resp.StatusCode)
	}
}
