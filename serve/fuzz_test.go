package serve_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fmmfam"
	"fmmfam/internal/matrix"
	"fmmfam/serve"
)

// FuzzServeRequest fuzzes the wire request decoder — the one parser that
// faces raw network bytes. Invariants on any input: no panic; on error, no
// partial matrices escape; on success, the header is within the advertised
// caps and re-encoding the decoded matrices reproduces the input frame
// byte-for-byte (the codec is a bijection on valid frames).
// scripts/fuzz_smoke.sh picks this target up by Fuzz* discovery.
func FuzzServeRequest(f *testing.F) {
	a, b := fmmfam.NewMatrix(2, 3), fmmfam.NewMatrix(3, 4)
	for i := range a.Data {
		a.Data[i] = float64(i) * 0.5
	}
	for i := range b.Data {
		b.Data[i] = -float64(i)
	}
	a32, b32 := fmmfam.NewMatrix32(3, 2), fmmfam.NewMatrix32(2, 1)
	f.Add(serve.AppendRequest[float64](nil, a, b))
	f.Add(serve.AppendRequest[float32](nil, a32, b32))
	f.Add([]byte("FMM1"))                                                     // truncated header
	f.Add([]byte("NOPE\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")) // bad magic
	f.Add(append(serve.AppendRequest[float64](nil, a, b), 0x00))              // trailing byte
	huge := serve.AppendRequest[float64](nil, fmmfam.NewMatrix(1, 1), fmmfam.NewMatrix(1, 1))
	binary.LittleEndian.PutUint32(huge[5:], 1<<31-1) // absurd m
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, a64, b64, af32, bf32, err := serve.DecodeRequest(data)
		if err != nil {
			if a64.Data != nil || b64.Data != nil || af32.Data != nil || bf32.Data != nil {
				t.Fatalf("decode error %v but partial matrices escaped", err)
			}
			return
		}
		if h.M <= 0 || h.K <= 0 || h.N <= 0 || h.M > serve.MaxDim || h.K > serve.MaxDim || h.N > serve.MaxDim {
			t.Fatalf("accepted out-of-cap dims %d×%d×%d", h.M, h.K, h.N)
		}
		if int64(h.M)*int64(h.N) > serve.MaxFrameElems {
			t.Fatalf("accepted dims %d×%d×%d whose result alone is %d elements", h.M, h.K, h.N, int64(h.M)*int64(h.N))
		}
		var re []byte
		if h.Dtype == matrix.Float32 {
			if af32.Rows != h.M || af32.Cols != h.K || bf32.Rows != h.K || bf32.Cols != h.N {
				t.Fatalf("float32 matrices %d×%d · %d×%d disagree with header %d×%d×%d",
					af32.Rows, af32.Cols, bf32.Rows, bf32.Cols, h.M, h.K, h.N)
			}
			re = serve.AppendRequest[float32](nil, af32, bf32)
		} else {
			if a64.Rows != h.M || a64.Cols != h.K || b64.Rows != h.K || b64.Cols != h.N {
				t.Fatalf("float64 matrices %d×%d · %d×%d disagree with header %d×%d×%d",
					a64.Rows, a64.Cols, b64.Rows, b64.Cols, h.M, h.K, h.N)
			}
			re = serve.AppendRequest[float64](nil, a64, b64)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode of accepted %d-byte frame produced different %d-byte frame", len(data), len(re))
		}
	})
}
