package serve

import (
	"sync/atomic"
	"time"

	"fmmfam"
)

// histBuckets is the per-endpoint latency histogram resolution: bucket i
// counts requests that completed in under 1µs·2^i, so the 28 buckets span
// 1µs … ~134s logarithmically (the last bucket is the catch-all). Log₂
// buckets cost one bit-scan per observation and are plenty for serving
// dashboards — the interesting signal is "did p99 move a bucket", not
// microsecond precision.
const histBuckets = 28

// histogram is a lock-free fixed-bucket latency histogram. The zero value
// is ready to use.
type histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// observe records one request latency.
func (h *histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(uint64(ns))
	b := 0
	for us := ns / 1e3; us > 0 && b < histBuckets-1; us >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
}

// HistogramSnapshot is one endpoint's latency distribution at a point in
// time.
type HistogramSnapshot struct {
	// Count and SumNS are the request count and summed latency (ns); their
	// ratio is the mean.
	Count uint64
	SumNS uint64
	// Buckets[i] counts requests under UpperUS[i] microseconds (the last
	// bucket is the catch-all for everything slower).
	UpperUS []int64
	Buckets []uint64
}

// Quantile returns an upper bound on the q-quantile latency (q in [0, 1])
// from the bucket counts: the upper edge of the bucket where the q·Count-th
// request landed. Zero when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen > rank {
			return time.Duration(s.UpperUS[i]) * time.Microsecond
		}
	}
	return time.Duration(s.UpperUS[len(s.UpperUS)-1]) * time.Microsecond
}

// snapshot copies the histogram. The reads are individually atomic but not
// mutually consistent — fine for observability, same contract as
// Multiplier.Stats.
func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumNS:   h.sumNS.Load(),
		UpperUS: make([]int64, histBuckets),
		Buckets: make([]uint64, histBuckets),
	}
	for i := range s.Buckets {
		s.UpperUS[i] = int64(1) << i
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// CoalesceStats is the coalescing layer's observable state for one element
// type.
type CoalesceStats struct {
	// Enabled reports whether coalescing is on (CoalesceWindow > 0).
	Enabled bool
	// WindowNS and MaxJobs are the resolved knobs.
	WindowNS int64
	MaxJobs  int
	// Batches and Jobs count dispatched windows and the requests they
	// carried; Jobs/Batches is the realized amortization factor.
	Batches uint64
	Jobs    uint64
	// SizeFlushes and TimerFlushes split Batches by what closed the window.
	SizeFlushes  uint64
	TimerFlushes uint64
}

// AdmissionStats is the admission gate's observable state.
type AdmissionStats struct {
	// Depth is the resolved in-flight bound.
	Depth int
	// Admitted and Rejected count requests that acquired a slot vs were
	// refused with 429.
	Admitted uint64
	Rejected uint64
	// InFlight is the point-in-time occupied slot count.
	InFlight int
}

// Stats is the /v1/stats response: serving-layer counters plus both
// engines' Multiplier.Stats.
type Stats struct {
	// Completed and Errors count finished requests by outcome across all
	// compute endpoints (an admission rejection counts as neither — see
	// Admission.Rejected).
	Completed uint64
	Errors    uint64
	// Endpoints maps endpoint name (multiply, batch, async-submit,
	// async-collect) to its latency histogram.
	Endpoints map[string]HistogramSnapshot
	// Coalesce64 and Coalesce32 are the per-dtype coalescing layers.
	Coalesce64 CoalesceStats
	Coalesce32 CoalesceStats
	// Admission is the shared admission gate.
	Admission AdmissionStats
	// AsyncPending counts submitted-but-uncollected async results held by
	// the server.
	AsyncPending int
	// Multiplier and Multiplier32 are the engines' own observability
	// surfaces (resolved kernel backend, plan cache, autotune arms,
	// promotions).
	Multiplier   fmmfam.MultiplierStats
	Multiplier32 fmmfam.MultiplierStats
	// CPU and Kernels report the host's dispatch-relevant CPU features and
	// every known micro-kernel backend's availability (with the reason when
	// one could not register — e.g. avx2 without AVX2+FMA hardware), so
	// operators can see at a glance whether the assembly backend is actually
	// in use and why not when it isn't.
	CPU     fmmfam.CPUInfo
	Kernels []fmmfam.KernelStatus
}
