package serve_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fmmfam"
	"fmmfam/serve"
)

// TestWireRoundTrip encodes request and result frames at both precisions and
// decodes them back, checking bit-identity (including non-finite values) and
// that strided views encode the same bytes as dense matrices.
func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))

	t.Run("float64", func(t *testing.T) {
		a, b := fmmfam.NewMatrix(5, 7), fmmfam.NewMatrix(7, 3)
		a.FillRand(rng)
		b.FillRand(rng)
		a.Set(0, 0, math.Inf(1))
		a.Set(1, 2, math.NaN())
		buf := serve.AppendRequest[float64](nil, a, b)
		h, a64, b64, _, _, err := serve.DecodeRequest(buf)
		if err != nil {
			t.Fatalf("DecodeRequest: %v", err)
		}
		if h.M != 5 || h.K != 7 || h.N != 3 {
			t.Fatalf("header dims %d×%d×%d, want 5×7×3", h.M, h.K, h.N)
		}
		for i := 0; i < 5; i++ {
			for j := 0; j < 7; j++ {
				if math.Float64bits(a64.At(i, j)) != math.Float64bits(a.At(i, j)) {
					t.Fatalf("A(%d,%d) bits changed in transit", i, j)
				}
			}
		}
		if b64.MaxAbsDiff(b) != 0 {
			t.Fatal("B changed in transit")
		}
	})

	t.Run("float32", func(t *testing.T) {
		a, b := fmmfam.NewMatrix32(4, 6), fmmfam.NewMatrix32(6, 2)
		a.FillRand(rng)
		b.FillRand(rng)
		buf := serve.AppendRequest[float32](nil, a, b)
		_, _, _, a32, b32, err := serve.DecodeRequest(buf)
		if err != nil {
			t.Fatalf("DecodeRequest: %v", err)
		}
		if a32.MaxAbsDiff(a) != 0 || b32.MaxAbsDiff(b) != 0 {
			t.Fatal("float32 payload changed in transit")
		}
	})

	t.Run("result", func(t *testing.T) {
		c := fmmfam.NewMatrix(3, 9)
		c.FillRand(rng)
		got, err := serve.DecodeResult[float64](serve.AppendResult(nil, c))
		if err != nil {
			t.Fatalf("DecodeResult: %v", err)
		}
		if got.MaxAbsDiff(c) != 0 {
			t.Fatal("result frame changed in transit")
		}
	})

	t.Run("strided-view", func(t *testing.T) {
		// A view into a larger matrix must serialize its logical elements,
		// not its backing stride.
		big := fmmfam.NewMatrix(10, 10)
		big.FillRand(rng)
		view := big.View(2, 3, 4, 5)
		dense := fmmfam.NewMatrix(4, 5)
		dense.AddScaled(1, view)
		id := fmmfam.NewMatrix(5, 5)
		vb := serve.AppendRequest[float64](nil, view, id)
		db := serve.AppendRequest[float64](nil, dense, id)
		if len(vb) != len(db) {
			t.Fatalf("view frame %d bytes, dense frame %d", len(vb), len(db))
		}
		for i := range vb {
			if vb[i] != db[i] {
				t.Fatalf("view and dense frames diverge at byte %d", i)
			}
		}
	})
}

// TestWireDecodeErrors drives each decoder failure mode and checks the
// sentinel it maps to.
func TestWireDecodeErrors(t *testing.T) {
	a, b := fmmfam.NewMatrix(2, 3), fmmfam.NewMatrix(3, 2)
	good := serve.AppendRequest[float64](nil, a, b)
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, serve.ErrTruncated},
		{"short-header", good[:10], serve.ErrTruncated},
		{"bad-magic", append([]byte("NOPE"), good[4:]...), serve.ErrBadMagic},
		{"bad-dtype", func() []byte { c := append([]byte(nil), good...); c[4] = 99; return c }(), serve.ErrBadDtype},
		{"truncated-payload", good[:len(good)-8], serve.ErrTruncated},
		{"trailing-bytes", append(append([]byte(nil), good...), 0xFF), serve.ErrTrailing},
		{"oversize-dim", func() []byte {
			c := append([]byte(nil), good...)
			c[5], c[6], c[7], c[8] = 0xFF, 0xFF, 0xFF, 0x00 // m = 2^24-1 > MaxDim
			return c
		}(), serve.ErrTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, _, _, err := serve.DecodeRequest(tc.buf); !errors.Is(err, tc.want) {
				t.Fatalf("DecodeRequest(%s) = %v, want %v", tc.name, err, tc.want)
			}
		})
	}
}
