package fmmfam

import (
	"math/rand"
	"testing"

	"fmmfam/internal/matrix"
)

func TestMultiplierCorrectAcrossShapes(t *testing.T) {
	mu := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 2}, PaperArch())
	rng := rand.New(rand.NewSource(1))
	for _, s := range [][3]int{{64, 64, 64}, {100, 30, 100}, {33, 77, 51}, {64, 64, 64}} {
		a, b := NewMatrix(s[0], s[1]), NewMatrix(s[1], s[2])
		a.FillRand(rng)
		b.FillRand(rng)
		c := NewMatrix(s[0], s[2])
		want := NewMatrix(s[0], s[2])
		matrix.MulAdd(want, a, b)
		if err := mu.MulAdd(c, a, b); err != nil {
			t.Fatal(err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("shape %v: diff %g", s, d)
		}
	}
}

func TestMultiplierCachesPlans(t *testing.T) {
	mu := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 1}, PaperArch())
	p1, err := mu.PlanFor(100, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := mu.PlanFor(101, 99, 100) // same power-of-two bucket
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("nearby sizes should share a cached plan")
	}
	if _, err := mu.PlanFor(1000, 100, 1000); err != nil {
		t.Fatal(err)
	}
	if mu.CachedPlans() != 2 {
		t.Fatalf("cached %d plans, want 2", mu.CachedPlans())
	}
}

func TestMultiplierDimError(t *testing.T) {
	mu := NewMultiplier(DefaultConfig(), PaperArch())
	if err := mu.MulAdd(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2)); err == nil {
		t.Fatal("expected error")
	}
}

func TestMultiplierZeroSizeNoop(t *testing.T) {
	mu := NewMultiplier(DefaultConfig(), PaperArch())
	c := NewMatrix(3, 3)
	c.Fill(1)
	if err := mu.MulAdd(c, NewMatrix(3, 0), NewMatrix(0, 3)); err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 1 {
		t.Fatal("k=0 must not touch C")
	}
}

// TestPlanCacheLRUEviction pins the bounded-cache contract for long-running
// servers: with PlanCacheCap distinct shape classes in flight the cache
// never exceeds its cap, the least-recently-used class is the one evicted,
// and recently-touched plans keep their identity (callers of a live shape
// class always share one plan).
func TestPlanCacheLRUEviction(t *testing.T) {
	cfg := Config{MC: 16, KC: 16, NC: 32, Threads: 1, PlanCacheCap: 2}
	mu := NewMultiplier(cfg, PaperArch())
	pA, err := mu.PlanFor(64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := mu.PlanFor(128, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := mu.PlanFor(64, 64, 64); again != pA {
		t.Fatal("cache hit must return the shared plan")
	}
	// Inserting a third class evicts the LRU class — B, since A was just
	// touched.
	if _, err := mu.PlanFor(256, 64, 256); err != nil {
		t.Fatal(err)
	}
	if got := mu.CachedPlans(); got != 2 {
		t.Fatalf("cache holds %d plans, cap is 2", got)
	}
	if pA2, _ := mu.PlanFor(64, 64, 64); pA2 != pA {
		t.Fatal("recently-used plan was evicted")
	}
	if pB2, _ := mu.PlanFor(128, 128, 128); pB2 == pB {
		t.Fatal("LRU plan should have been evicted and rebuilt")
	}
	if got := mu.CachedPlans(); got != 2 {
		t.Fatalf("cache holds %d plans after refill, cap is 2", got)
	}

	// Negative cap means unbounded.
	unb := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 1, PlanCacheCap: -1}, PaperArch())
	for _, s := range [][3]int{{64, 64, 64}, {128, 64, 64}, {256, 64, 64}, {512, 64, 64}} {
		if _, err := unb.PlanFor(s[0], s[1], s[2]); err != nil {
			t.Fatal(err)
		}
	}
	if got := unb.CachedPlans(); got != 4 {
		t.Fatalf("unbounded cache holds %d plans, want 4", got)
	}
}

func TestBucketPowersOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 64: 64, 65: 128, 1000: 1024}
	for x, want := range cases {
		if got := bucket(x); got != want {
			t.Fatalf("bucket(%d) = %d, want %d", x, got, want)
		}
	}
}
