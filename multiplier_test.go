package fmmfam

import (
	"math/rand"
	"testing"

	"fmmfam/internal/matrix"
)

func TestMultiplierCorrectAcrossShapes(t *testing.T) {
	mu := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 2}, PaperArch())
	rng := rand.New(rand.NewSource(1))
	for _, s := range [][3]int{{64, 64, 64}, {100, 30, 100}, {33, 77, 51}, {64, 64, 64}} {
		a, b := NewMatrix(s[0], s[1]), NewMatrix(s[1], s[2])
		a.FillRand(rng)
		b.FillRand(rng)
		c := NewMatrix(s[0], s[2])
		want := NewMatrix(s[0], s[2])
		matrix.MulAdd(want, a, b)
		if err := mu.MulAdd(c, a, b); err != nil {
			t.Fatal(err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("shape %v: diff %g", s, d)
		}
	}
}

func TestMultiplierCachesPlans(t *testing.T) {
	mu := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 1}, PaperArch())
	p1, err := mu.PlanFor(100, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := mu.PlanFor(101, 99, 100) // same power-of-two bucket
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("nearby sizes should share a cached plan")
	}
	if _, err := mu.PlanFor(1000, 100, 1000); err != nil {
		t.Fatal(err)
	}
	if mu.CachedPlans() != 2 {
		t.Fatalf("cached %d plans, want 2", mu.CachedPlans())
	}
}

func TestMultiplierDimError(t *testing.T) {
	mu := NewMultiplier(DefaultConfig(), PaperArch())
	if err := mu.MulAdd(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2)); err == nil {
		t.Fatal("expected error")
	}
}

func TestMultiplierZeroSizeNoop(t *testing.T) {
	mu := NewMultiplier(DefaultConfig(), PaperArch())
	c := NewMatrix(3, 3)
	c.Fill(1)
	if err := mu.MulAdd(c, NewMatrix(3, 0), NewMatrix(0, 3)); err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 1 {
		t.Fatal("k=0 must not touch C")
	}
}

func TestBucketPowersOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 64: 64, 65: 128, 1000: 1024}
	for x, want := range cases {
		if got := bucket(x); got != want {
			t.Fatalf("bucket(%d) = %d, want %d", x, got, want)
		}
	}
}
