package fmmfam

// Lifecycle tests for the MulAddAsync pool under adversarial concurrency:
// submitters racing Close, concurrent double-Close, and the goroutine-leak
// guarantee. PR 3 added the leak check for sharded execution only; these pin
// the async pool's side. Run with -race; the CI workflow always does.

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"fmmfam/internal/matrix"
)

// TestAsyncSubmittersRacingClose hammers one multiplier with concurrent
// submitters while Close runs in the middle of the storm (twice, from two
// goroutines — double-Close must be idempotent under race too). Every future
// must resolve — either with a correct product or with ErrClosed — no send
// may panic on a closed queue, and after the dust settles no pool goroutine
// may survive. The deliberately tiny queue keeps submitters blocked in the
// send (holding the pool's read lock) at the moment Close takes the write
// lock, the exact interleaving the RWMutex ordering exists for.
func TestAsyncSubmittersRacingClose(t *testing.T) {
	for round := 0; round < 5; round++ {
		before := runtime.NumGoroutine()
		cfg := Config{MC: 16, KC: 16, NC: 32, Threads: 2, QueueWorkers: 2, QueueDepth: 1}
		mu := NewMultiplier(cfg, PaperArch())

		rng := rand.New(rand.NewSource(int64(round)))
		a, b := NewMatrix(48, 32), NewMatrix(32, 48)
		a.FillRand(rng)
		b.FillRand(rng)
		want := NewMatrix(48, 48)
		matrix.MulAdd(want, a, b)

		const submitters = 8
		const perSubmitter = 6
		var wg sync.WaitGroup
		start := make(chan struct{})
		errs := make(chan error, submitters*perSubmitter+2)
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for it := 0; it < perSubmitter; it++ {
					c := NewMatrix(48, 48)
					f := mu.MulAddAsync(c, a, b)
					if err := f.Wait(); err != nil {
						if !errors.Is(err, ErrClosed) {
							errs <- err
						}
						continue // rejected after Close: fine, but must resolve
					}
					if d := c.MaxAbsDiff(want); d > 1e-9 {
						errs <- errors.New("accepted future computed wrong product")
					}
				}
			}()
		}
		// Two racing Closes in the middle of the submission storm.
		for i := 0; i < 2; i++ {
			wg.Add(1)
			delay := time.Duration(rng.Intn(2)) * time.Millisecond
			go func() {
				defer wg.Done()
				<-start
				time.Sleep(delay)
				if err := mu.Close(); err != nil {
					errs <- err
				}
			}()
		}
		close(start)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		// Third Close after the race: still idempotent.
		if err := mu.Close(); err != nil {
			t.Fatalf("post-race Close: %v", err)
		}
		// Submissions after Close resolve with ErrClosed.
		if err := mu.MulAddAsync(NewMatrix(48, 48), a, b).Wait(); !errors.Is(err, ErrClosed) {
			t.Fatalf("submission after Close: err=%v, want ErrClosed", err)
		}
		// No worker goroutine survives Close. Compared with retries because
		// exiting goroutines are only eventually gone.
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				t.Fatalf("round %d leaked goroutines: %d before, %d after Close",
					round, before, runtime.NumGoroutine())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestAsyncConcurrentDoubleCloseUnusedPool: two Closes racing on a
// multiplier whose async path was never used — the lazy-materialization edge
// — must both return nil and leave no goroutines.
func TestAsyncConcurrentDoubleCloseUnusedPool(t *testing.T) {
	before := runtime.NumGoroutine()
	mu := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 2}, PaperArch())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := mu.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("leaked goroutines: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
