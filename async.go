package fmmfam

// Async serving: MulAddAsync submits one C += A·B to a bounded queue drained
// by a fixed worker pool and returns a Future immediately, so
// latency-insensitive callers submit many products and collect results when
// they need them. The queue bound is the backpressure: when QueueDepth jobs
// are waiting, submitters block until a worker frees a slot, so a burst of
// traffic cannot queue unbounded work. Jobs execute single-threaded through
// the multiplier's serial twin — the same contract as MulAddBatch — so the
// machine never runs more than QueueWorkers concurrent products. Each
// multiplier instantiation (float64 or float32) owns its own queue and
// workers.

import (
	"errors"
	"sync"

	"fmmfam/internal/matrix"
)

// ErrClosed is reported by futures submitted after Close.
var ErrClosed = errors.New("fmmfam: multiplier closed")

// Future is the handle to one in-flight MulAddAsync submission. The zero
// Future is invalid; futures are created by MulAddAsync only.
type Future struct {
	done chan struct{}
	err  error // written once by the executing worker before done is closed
}

// Wait blocks until the submission has executed and returns its error.
// Wait may be called any number of times and from any goroutine.
func (f *Future) Wait() error {
	<-f.done
	return f.err
}

// Done returns a channel closed when the submission has executed, for use
// in select loops. After Done is closed, Wait returns without blocking.
func (f *Future) Done() <-chan struct{} { return f.done }

func resolvedFuture(err error) *Future {
	f := &Future{done: make(chan struct{}), err: err}
	close(f.done)
	return f
}

// asyncJob is one queued submission.
type asyncJob[E matrix.Element] struct {
	c, a, b matrix.Mat[E]
	f       *Future
}

// asyncPool is the lazily-started queue + worker pool behind MulAddAsync.
// The RWMutex orders submissions against Close: submitters hold the read
// lock across the channel send, Close takes the write lock to flip closed
// and close the queue, so a send never races a close.
type asyncPool[E matrix.Element] struct {
	q  chan asyncJob[E]
	wg sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// asyncState lazily starts the pool: QueueWorkers goroutines draining a
// QueueDepth-bounded channel, executing through the serial twin.
func (mu *GenericMultiplier[E]) asyncState() *asyncPool[E] {
	mu.asyncOnce.Do(func() {
		p := &asyncPool[E]{q: make(chan asyncJob[E], mu.cfg.queueDepth())}
		exec := mu.serialMultiplier()
		workers := mu.cfg.queueWorkers()
		p.wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer p.wg.Done()
				for j := range p.q {
					j.f.err = exec.MulAdd(j.c, j.a, j.b)
					close(j.f.done)
				}
			}()
		}
		mu.async = p
	})
	return mu.async
}

// MulAddAsync submits c += a·b to the multiplier's bounded queue and returns
// a Future immediately; call Wait (or select on Done) to collect the result.
// Submissions block when the queue is full — that bound is the serving
// layer's backpressure. Dimension errors resolve the returned Future
// immediately without occupying a queue slot. The caller must not touch c
// (nor mutate a or b) until the Future completes. Safe for concurrent
// submitters.
func (mu *GenericMultiplier[E]) MulAddAsync(c, a, b matrix.Mat[E]) *Future {
	if mu.cfgErr != nil {
		return resolvedFuture(mu.cfgErr)
	}
	if err := checkMulDims(c, a, b); err != nil {
		return resolvedFuture(err)
	}
	p := mu.asyncState()
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return resolvedFuture(ErrClosed)
	}
	f := &Future{done: make(chan struct{})}
	p.q <- asyncJob[E]{c: c, a: a, b: b, f: f}
	return f
}

// Close drains the async queue and stops its workers: it waits for every
// already-submitted Future to complete, then returns. Submissions after
// Close resolve immediately with ErrClosed — including on a multiplier
// whose async path was never used, since Close materializes the pool just
// to mark it closed (its workers exit immediately). Close is idempotent and
// safe to call concurrently with MulAddAsync submitters and with other
// Close calls: the pool's RWMutex orders every submission against the
// close, so each racing Future either executes and resolves normally or
// resolves with ErrClosed — never hangs or panics on a closed queue — and
// no worker goroutine outlives Close. The synchronous MulAdd/MulAddBatch
// paths are unaffected and remain usable after Close.
func (mu *GenericMultiplier[E]) Close() error {
	p := mu.asyncState()
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.q)
	}
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}
