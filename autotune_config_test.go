package fmmfam

import (
	"math/rand"
	"sync"
	"testing"

	"fmmfam/internal/autotune"
	"fmmfam/internal/matrix"
)

// TestConfigAutotuneValidation: AutotuneFraction accepts exactly [0, 0.5],
// from both Validate and the multiplier entry points.
func TestConfigAutotuneValidation(t *testing.T) {
	base := Config{MC: 32, KC: 32, NC: 64, Threads: 2, Autotune: true}
	for _, ok := range []float64{0, 0.01, 0.25, 0.5} {
		cfg := base
		cfg.AutotuneFraction = ok
		if err := cfg.Validate(); err != nil {
			t.Fatalf("AutotuneFraction=%g rejected: %v", ok, err)
		}
	}
	for _, bad := range []float64{-0.1, 0.51, 2} {
		cfg := base
		cfg.AutotuneFraction = bad
		if err := cfg.Validate(); err == nil {
			t.Fatalf("AutotuneFraction=%g accepted by Validate", bad)
		}
		mu := NewMultiplier(cfg, PaperArch())
		c, a, b := NewMatrix(8, 8), NewMatrix(8, 8), NewMatrix(8, 8)
		if err := mu.MulAdd(c, a, b); err == nil {
			t.Fatalf("multiplier with AutotuneFraction=%g executed", bad)
		}
	}
	// The fraction bound applies even with Autotune off in the Config: the
	// env var can still switch tuning on, so a nonsense fraction is never
	// latent.
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 2, AutotuneFraction: 0.9}
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-range fraction accepted with Autotune=false")
	}
}

// TestAutotuneEnvOverridesConfig: FMMFAM_AUTOTUNE wins over the Config
// fields in both directions, a bare fraction both enables and sets the
// share, and garbage surfaces as an error rather than silently falling back.
func TestAutotuneEnvOverridesConfig(t *testing.T) {
	base := Config{MC: 32, KC: 32, NC: 64, Threads: 2}

	// Off by default: Stats reports tuning disabled and no shape tuners
	// appear after serving.
	mu := NewMultiplier(base, PaperArch())
	c, a, b := NewMatrix(64, 64), NewMatrix(64, 64), NewMatrix(64, 64)
	if err := mu.MulAdd(c, a, b); err != nil {
		t.Fatal(err)
	}
	if s := mu.Stats(); s.Autotune || len(s.Shapes) != 0 {
		t.Fatalf("default multiplier reports tuning: %+v", s)
	}

	// Env "on" overrides Autotune=false, with the default fraction.
	t.Setenv("FMMFAM_AUTOTUNE", "on")
	if s := NewMultiplier(base, PaperArch()).Stats(); !s.Autotune || s.Fraction != autotune.DefaultFraction {
		t.Fatalf("FMMFAM_AUTOTUNE=on: %+v", s)
	}

	// Env "on" respects a Config fraction.
	cfg := base
	cfg.AutotuneFraction = 0.25
	if s := NewMultiplier(cfg, PaperArch()).Stats(); !s.Autotune || s.Fraction != 0.25 {
		t.Fatalf("FMMFAM_AUTOTUNE=on with Config fraction: %+v", s)
	}

	// Env fraction both enables and overrides the Config fraction.
	t.Setenv("FMMFAM_AUTOTUNE", "0.1")
	if s := NewMultiplier(cfg, PaperArch()).Stats(); !s.Autotune || s.Fraction != 0.1 {
		t.Fatalf("FMMFAM_AUTOTUNE=0.1: %+v", s)
	}

	// Env "off" overrides Autotune=true.
	t.Setenv("FMMFAM_AUTOTUNE", "off")
	cfg = base
	cfg.Autotune = true
	if s := NewMultiplier(cfg, PaperArch()).Stats(); s.Autotune {
		t.Fatalf("FMMFAM_AUTOTUNE=off did not win: %+v", s)
	}

	// Garbage is an error from Validate and every entry point.
	for _, bad := range []string{"yes", "0.6", "-0.1", "0.0"} {
		t.Setenv("FMMFAM_AUTOTUNE", bad)
		if err := base.Validate(); err == nil {
			t.Fatalf("FMMFAM_AUTOTUNE=%q accepted", bad)
		}
		if err := NewMultiplier(base, PaperArch()).MulAdd(c, a, b); err == nil {
			t.Fatalf("multiplier with FMMFAM_AUTOTUNE=%q executed", bad)
		}
	}
}

// TestAutotuneServesCorrectly: with tuning on, every call — incumbent- or
// challenger-served — still computes c += a·b correctly, and Stats shows
// the traffic split arriving at the configured fraction.
func TestAutotuneServesCorrectly(t *testing.T) {
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 2, Autotune: true, AutotuneFraction: 0.25}
	mu := NewMultiplier(cfg, PaperArch())
	rng := rand.New(rand.NewSource(70))
	a, b := NewMatrix(192, 160), NewMatrix(160, 176)
	a.FillRand(rng)
	b.FillRand(rng)
	want := NewMatrix(192, 176)
	matrix.MulAdd(want, a, b)
	const calls = 24
	for i := 0; i < calls; i++ {
		c := NewMatrix(192, 176)
		if err := mu.MulAdd(c, a, b); err != nil {
			t.Fatal(err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("call %d: diff %g", i, d)
		}
	}
	s := mu.Stats()
	if !s.Autotune || s.Fraction != 0.25 {
		t.Fatalf("stats knobs: %+v", s)
	}
	if len(s.Shapes) != 1 || s.Shapes[0].Kind != "plan" || s.Shapes[0].Serial {
		t.Fatalf("stats shapes: %+v", s.Shapes)
	}
	sh := s.Shapes[0]
	if sh.Served+sh.Shadowed != calls {
		t.Fatalf("routed %d calls, want %d", sh.Served+sh.Shadowed, calls)
	}
	// With at least one challenger arm, a 1/4 fraction shadows every 4th call.
	if len(sh.Arms) > 1 && sh.Shadowed != calls/4 {
		t.Fatalf("shadowed %d of %d calls at fraction 0.25", sh.Shadowed, calls)
	}
	// Total recorded samples equal routed calls — every MulAdd was timed.
	var samples uint64
	for _, arm := range sh.Arms {
		samples += arm.Samples
	}
	if samples != calls {
		t.Fatalf("recorded %d samples over %d calls", samples, calls)
	}
}

// TestAutotunePromotionLifecycle drives one shape class's bandit through the
// full serve → shadow → promote cycle with seeded two-arm samples (synthetic
// wall times recorded directly, so the test is deterministic on any
// machine), asserting Stats reflects every transition: roles before, the
// promotion record, roles after, and the measured-feedback visible in the
// incumbent swap.
func TestAutotunePromotionLifecycle(t *testing.T) {
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 2, Autotune: true, AutotuneFraction: 0.25}
	mu := NewMultiplier(cfg, PaperArch())
	// Build the shape class's tuner through the serving path.
	c, a, b := NewMatrix(192, 192), NewMatrix(192, 192), NewMatrix(192, 192)
	if err := mu.MulAdd(c, a, b); err != nil {
		t.Fatal(err)
	}
	e, err := mu.entryFor(192, 192, 192)
	if err != nil {
		t.Fatal(err)
	}
	if e.tun == nil {
		t.Fatal("tuned multiplier built an untuned entry")
	}
	snap := e.tun.tuner.Snapshot()
	if snap.Arms[0].Role != autotune.RoleIncumbent {
		t.Fatalf("fresh tuner roles: %+v", snap.Arms)
	}
	if len(snap.Arms) < 2 {
		t.Skip("shape class produced no challenger arms on this config")
	}
	incKey := snap.Arms[0].Plan
	chalKey := snap.Arms[1].Plan
	if e.tun.arms[chalKey].plan == nil {
		t.Fatalf("challenger arm %q has no plan", chalKey)
	}

	// Seed the two arms directly: incumbent slow, challenger clearly faster
	// with tight jitter, through enough checkpoints to promote.
	promoted := 0
	for i := 0; i < 64 && promoted == 0; i++ {
		jitter := float64(i%3) * 1e-4
		e.tun.tuner.Record(incKey, 2.0+jitter)
		if _, ok := e.tun.tuner.Record(chalKey, 1.0+jitter); ok {
			mu.tunePromoted(e.tun, e.tun.tuner.Snapshot().Promotions[0])
			promoted++
		}
	}
	if promoted != 1 {
		t.Fatal("seeded faster challenger never promoted")
	}

	// Stats reflects the transition: the challenger now leads, the former
	// incumbent shadows or waits, and the promotion history records the move
	// with its justifying medians.
	s := mu.Stats()
	var sh *ShapeTuning
	for i := range s.Shapes {
		if s.Shapes[i].Kind == "plan" && !s.Shapes[i].Serial {
			sh = &s.Shapes[i]
		}
	}
	if sh == nil {
		t.Fatalf("no plan tuning in stats: %+v", s.Shapes)
	}
	if len(sh.Promotions) != 1 {
		t.Fatalf("promotions: %+v", sh.Promotions)
	}
	p := sh.Promotions[0]
	if p.From != incKey || p.To != chalKey || p.ToMedian >= p.FromMedian {
		t.Fatalf("promotion record: %+v", p)
	}
	roles := map[string]autotune.Role{}
	for _, arm := range sh.Arms {
		roles[arm.Plan] = arm.Role
	}
	if roles[chalKey] != autotune.RoleIncumbent || roles[incKey] == autotune.RoleIncumbent {
		t.Fatalf("roles after promotion: %v", roles)
	}
	// The promotion fed the measured medians back into selection.
	if mu.feedback.Len() == 0 {
		t.Fatal("promotion recorded no model feedback")
	}
	// And serving now routes non-shadow traffic to the promoted arm.
	if key, isChal := e.tun.tuner.Route(); !isChal && key != chalKey {
		t.Fatalf("post-promotion route = %q, want %q", key, chalKey)
	}
}

// TestAutotuneConcurrentMulAdd: concurrent tuned serving is race-free and
// correct (meaningful under -race — the acceptance gate for the feature).
func TestAutotuneConcurrentMulAdd(t *testing.T) {
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 2, Autotune: true, AutotuneFraction: 0.25}
	mu := NewMultiplier(cfg, PaperArch())
	rng := rand.New(rand.NewSource(71))
	a, b := NewMatrix(128, 128), NewMatrix(128, 128)
	a.FillRand(rng)
	b.FillRand(rng)
	want := NewMatrix(128, 128)
	matrix.MulAdd(want, a, b)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				c := NewMatrix(128, 128)
				if err := mu.MulAdd(c, a, b); err != nil {
					errs[g] = err
					return
				}
				if d := c.MaxAbsDiff(want); d > 1e-9 {
					errs[g] = errDiff(d)
					return
				}
				mu.Stats()
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	s := mu.Stats()
	var routed uint64
	for _, sh := range s.Shapes {
		routed += sh.Served + sh.Shadowed
	}
	if routed != 8*12 {
		t.Fatalf("routed %d calls, want %d", routed, 8*12)
	}
}

type errDiff float64

func (e errDiff) Error() string { return "result diverged" }

// TestAutotuneSerialTwinInheritsResolvedState: the serial twin behind
// MulAddBatch is built lazily, but it must execute under the parent's
// construction-time autotune resolution — an env change between
// construction and first batch call must not split parent and twin.
func TestAutotuneSerialTwinInheritsResolvedState(t *testing.T) {
	t.Setenv("FMMFAM_AUTOTUNE", "0.25")
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 2}
	mu := NewMultiplier(cfg, PaperArch())
	t.Setenv("FMMFAM_AUTOTUNE", "off")

	rng := rand.New(rand.NewSource(73))
	a, b := NewMatrix(96, 96), NewMatrix(96, 96)
	a.FillRand(rng)
	b.FillRand(rng)
	jobs := make([]BatchJob, 4)
	for i := range jobs {
		jobs[i] = BatchJob{C: NewMatrix(96, 96), A: a, B: b}
	}
	if err := mu.MulAddBatch(jobs); err != nil {
		t.Fatal(err)
	}
	s := mu.Stats()
	if !s.Autotune || s.Fraction != 0.25 {
		t.Fatalf("parent knobs: %+v", s)
	}
	var serialRouted uint64
	for _, sh := range s.Shapes {
		if sh.Serial {
			serialRouted += sh.Served + sh.Shadowed
		}
	}
	if serialRouted != uint64(len(jobs)) {
		t.Fatalf("serial twin routed %d of %d batch jobs — twin re-resolved the env instead of inheriting", serialRouted, len(jobs))
	}
}

// TestAutotuneShardedPath: a sharded-size problem under tuning builds a
// shard-grid tuner, serves correctly, and records every call.
func TestAutotuneShardedPath(t *testing.T) {
	cfg := Config{MC: 32, KC: 32, NC: 64, Threads: 4, Autotune: true, AutotuneFraction: 0.25, ShardThreshold: 256, ShardMinTile: 64}
	mu := NewMultiplier(cfg, PaperArch())
	rng := rand.New(rand.NewSource(72))
	a, b := NewMatrix(256, 128), NewMatrix(128, 256)
	a.FillRand(rng)
	b.FillRand(rng)
	want := NewMatrix(256, 256)
	matrix.MulAdd(want, a, b)
	const calls = 8
	for i := 0; i < calls; i++ {
		c := NewMatrix(256, 256)
		if err := mu.MulAdd(c, a, b); err != nil {
			t.Fatal(err)
		}
		if d := c.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("call %d: diff %g", i, d)
		}
	}
	s := mu.Stats()
	var shardTun *ShapeTuning
	for i := range s.Shapes {
		if s.Shapes[i].Kind == "shard" {
			shardTun = &s.Shapes[i]
		}
	}
	if shardTun == nil {
		t.Skip("problem did not shard under this config")
	}
	if shardTun.Served+shardTun.Shadowed != calls {
		t.Fatalf("shard tuner routed %d calls, want %d", shardTun.Served+shardTun.Shadowed, calls)
	}
}
