package fmmfam

import (
	"testing"

	"fmmfam/internal/matrix"
)

// TestCalibrateOptIn: Config.Calibrate replaces the provided Arch with
// measured constants — recorded against the (kernel, dtype) pair in use —
// and the process-wide cache hands every later multiplier of the same pair
// the identical measurement instead of re-probing (the serial twins depend
// on this staying cheap).
func TestCalibrateOptIn(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probes take ~100ms per (kernel, dtype) pair")
	}
	cfg := DefaultConfig()
	cfg.Calibrate = true
	paper := PaperArch()

	mu := NewMultiplier(cfg, paper)
	if mu.cfgErr != nil {
		t.Fatal(mu.cfgErr)
	}
	got := mu.arch
	if got.Kernel != "go4x4" || got.Dtype != matrix.Float64 {
		t.Fatalf("calibrated arch should record (go4x4, float64), got (%q, %s)", got.Kernel, got.Dtype)
	}
	if got.TauA <= 0 || got.TauB <= 0 {
		t.Fatalf("calibrated constants must be positive: %+v", got)
	}
	if got.TauA == paper.TauA && got.TauB == paper.TauB {
		t.Fatal("calibration left the paper's Ivy Bridge constants untouched")
	}

	// Same (kernel, dtype) pair → the cached measurement verbatim.
	mu2 := NewMultiplier(cfg, PaperArch())
	if mu2.arch != got {
		t.Fatalf("second construction re-measured: %+v vs cached %+v", mu2.arch, got)
	}

	// The float32 surface calibrates its own pair and records its dtype.
	mu32 := NewMultiplier32(cfg, PaperArch())
	if mu32.cfgErr != nil {
		t.Fatal(mu32.cfgErr)
	}
	if mu32.arch.Dtype != matrix.Float32 || mu32.arch.Kernel != "go4x4" {
		t.Fatalf("float32 calibration should record (go4x4, float32), got (%q, %s)", mu32.arch.Kernel, mu32.arch.Dtype)
	}
	if mu32.arch == got {
		t.Fatal("float32 surface reused the float64 measurement")
	}

	// And the multiplier still multiplies correctly on measured constants.
	a, b, c := NewMatrix(64, 64), NewMatrix(64, 64), NewMatrix(64, 64)
	a.Fill(1.0 / 3)
	b.Fill(-2.0 / 3)
	if err := mu.MulAdd(c, a, b); err != nil {
		t.Fatal(err)
	}
}

// TestCalibrateEnvVar: FMMFAM_CALIBRATE=1 enables the same opt-in without
// touching the Config — the no-recompile switch for deployed binaries.
func TestCalibrateEnvVar(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probes take ~100ms per (kernel, dtype) pair")
	}
	t.Setenv("FMMFAM_CALIBRATE", "1")
	cfg := DefaultConfig()
	cfg.Kernel = "go8x4" // a pair the other test does not touch
	mu := NewMultiplier(cfg, PaperArch())
	if mu.cfgErr != nil {
		t.Fatal(mu.cfgErr)
	}
	if mu.arch.Kernel != "go8x4" || mu.arch.Dtype != matrix.Float64 {
		t.Fatalf("env-enabled calibration should record (go8x4, float64), got (%q, %s)", mu.arch.Kernel, mu.arch.Dtype)
	}
	if mu.arch.TauA == PaperArch().TauA {
		t.Fatal("env-enabled calibration left the paper τa untouched")
	}
}
