package codegen

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
)

func TestGenerateStrassenABCParses(t *testing.T) {
	src, err := Generate(Spec{
		Package: "strassen", FuncName: "MulAdd",
		Levels:  []core.Algorithm{core.Strassen()},
		Variant: fmmexec.ABC,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := string(src)
	for _, want := range []string{
		"package strassen",
		"func MulAdd(ctx *gemm.Context[float64], c, a, b matrix.Mat[float64])",
		"R=7",
		"func Predict(arch model.Arch",
		"NnzU: 12",
		"// M0 = (A0 + A3) · (B0 + B3); C0 += M; C3 += M",
		"Dynamic peeling",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("generated source missing %q:\n%s", want, s)
		}
	}
	// ABC must not allocate temporaries.
	if strings.Contains(s, "matrix.New[float64](sm, sn)") {
		t.Fatal("ABC variant emitted a temporary")
	}
}

func TestGenerateVariantsStructure(t *testing.T) {
	for _, v := range fmmexec.Variants {
		src, err := Generate(Spec{Package: "p", FuncName: "F", Levels: []core.Algorithm{core.Strassen()}, Variant: v})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		s := string(src)
		switch v {
		case fmmexec.Naive:
			if !strings.Contains(s, "asum.Zero()") || !strings.Contains(s, "ctx.MulAdd(mt, asum, bsum)") {
				t.Fatal("Naive structure wrong")
			}
		case fmmexec.AB:
			if !strings.Contains(s, "gemm.SingleTerm(mt)") || strings.Contains(s, "asum") {
				t.Fatal("AB structure wrong")
			}
		case fmmexec.ABC:
			if strings.Contains(s, "mt.Zero()") {
				t.Fatal("ABC must not form M explicitly")
			}
		}
	}
}

func TestGenerateTwoLevelCounts(t *testing.T) {
	src, err := Generate(Spec{
		Package: "p", FuncName: "F",
		Levels:  []core.Algorithm{core.Strassen(), core.Strassen()},
		Variant: fmmexec.ABC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(src, []byte("// M")); got != 49 {
		t.Fatalf("expected 49 typical operations, found %d", got)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{FuncName: "F", Levels: []core.Algorithm{core.Strassen()}, Variant: fmmexec.ABC}); err == nil {
		t.Fatal("missing package accepted")
	}
	if _, err := Generate(Spec{Package: "p", FuncName: "F", Variant: fmmexec.ABC}); err == nil {
		t.Fatal("no levels accepted")
	}
	if _, err := Generate(Spec{Package: "p", FuncName: "F", Levels: []core.Algorithm{core.Strassen()}, Variant: fmmexec.Variant(5)}); err == nil {
		t.Fatal("bad variant accepted")
	}
	if _, err := Generate(Spec{Package: "notmain", FuncName: "F", Levels: []core.Algorithm{core.Strassen()}, Variant: fmmexec.ABC, SelfTest: true}); err == nil {
		t.Fatal("SelfTest outside main accepted")
	}
	bad := core.Strassen()
	bad.U = bad.U.Clone()
	bad.U.Set(0, 0, 9)
	if _, err := Generate(Spec{Package: "p", FuncName: "F", Levels: []core.Algorithm{bad}, Variant: fmmexec.ABC}); err == nil {
		t.Fatal("invalid level accepted")
	}
}

// Full integration: generate a self-testing main, compile and run it with the
// local toolchain. Exercises that emitted code actually computes C += AB.
func TestGeneratedCodeCompilesAndRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a program")
	}
	root := moduleRoot(t)
	for _, tc := range []struct {
		name    string
		levels  []core.Algorithm
		variant fmmexec.Variant
	}{
		{"strassen_abc", []core.Algorithm{core.Strassen()}, fmmexec.ABC},
		{"hybrid_naive", []core.Algorithm{core.Strassen(), core.Generate(2, 3, 2)}, fmmexec.Naive},
		{"gen232_ab", []core.Algorithm{core.Generate(2, 3, 2)}, fmmexec.AB},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src, err := Generate(Spec{
				Package: "main", FuncName: "MulAdd",
				Levels: tc.levels, Variant: tc.variant, SelfTest: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(root, "tmp_codegen_"+tc.name)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			defer os.RemoveAll(dir)
			if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command("go", "run", "./"+filepath.Base(dir))
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("generated program failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), "ok") {
				t.Fatalf("unexpected output: %s", out)
			}
		})
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}
