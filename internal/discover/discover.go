// Package discover searches for new fast matrix multiplication algorithms
// numerically, the substrate behind the coefficient files of Benson–Ballard
// [1] and Smirnov [12] that the paper consumes, and the paper's "finding new
// FMM algorithms" future-work item. The matrix multiplication tensor of
// ⟨m,k,n⟩ is decomposed as a rank-R CP sum with alternating least squares
// (ALS) plus ridge regularization; converged factors are canonically rescaled
// and snapped to the small dyadic grid {0, ±1/2, ±1, ±3/2, ±2} and accepted
// only if the exact Brent verification of internal/core passes — the module
// can therefore never emit an invalid algorithm.
package discover

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fmmfam/internal/core"
	"fmmfam/internal/matrix"
)

// Problem specifies the target tensor ⟨m,k,n⟩ and the sought rank R.
type Problem struct {
	M, K, N int
	R       int
}

func (p Problem) String() string { return fmt.Sprintf("<%d,%d,%d>;%d", p.M, p.K, p.N, p.R) }

func (p Problem) validate() error {
	if p.M < 1 || p.K < 1 || p.N < 1 {
		return fmt.Errorf("discover: bad shape %s", p)
	}
	if p.R < 1 || p.R > p.M*p.K*p.N {
		return fmt.Errorf("discover: rank %d outside [1, %d]", p.R, p.M*p.K*p.N)
	}
	return nil
}

// Options tunes the search.
type Options struct {
	Restarts int     // independent random starts (default 20)
	Iters    int     // ALS sweeps per start (default 400)
	Ridge    float64 // initial ridge regularization (default 1e-2)
	Tol      float64 // residual² at which a start is considered converged (default 1e-16)
	Seed     int64   // RNG seed (default 1)
}

func (o Options) withDefaults() Options {
	if o.Restarts == 0 {
		o.Restarts = 20
	}
	if o.Iters == 0 {
		o.Iters = 400
	}
	if o.Ridge == 0 {
		o.Ridge = 1e-2
	}
	if o.Tol == 0 {
		o.Tol = 1e-16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ErrNotFound reports that the search budget was exhausted without a
// verified discrete algorithm.
var ErrNotFound = errors.New("discover: no exact algorithm found within budget")

// nonzero is one unit entry of the ⟨m,k,n⟩ tensor.
type nonzero struct{ i, j, p int }

// tensorNonzeros enumerates the m·k·n unit entries: i=(im,ik), j=(ik,in),
// p=(im,in).
func tensorNonzeros(m, k, n int) []nonzero {
	out := make([]nonzero, 0, m*k*n)
	for im := 0; im < m; im++ {
		for ik := 0; ik < k; ik++ {
			for in := 0; in < n; in++ {
				out = append(out, nonzero{i: im*k + ik, j: ik*n + in, p: im*n + in})
			}
		}
	}
	return out
}

// factors is a working CP decomposition.
type factors struct {
	p       Problem
	u, v, w matrix.Mat[float64]
	nz      []nonzero
}

func newFactors(p Problem, rng *rand.Rand) *factors {
	f := &factors{
		p:  p,
		u:  matrix.New[float64](p.M*p.K, p.R),
		v:  matrix.New[float64](p.K*p.N, p.R),
		w:  matrix.New[float64](p.M*p.N, p.R),
		nz: tensorNonzeros(p.M, p.K, p.N),
	}
	f.u.FillRand(rng)
	f.v.FillRand(rng)
	f.w.FillRand(rng)
	return f
}

func fromAlgorithm(a core.Algorithm) *factors {
	return &factors{
		p:  Problem{M: a.M, K: a.K, N: a.N, R: a.R},
		u:  a.U.Clone(),
		v:  a.V.Clone(),
		w:  a.W.Clone(),
		nz: tensorNonzeros(a.M, a.K, a.N),
	}
}

// residual returns ||T − Σ_r u_r∘v_r∘w_r||², looping over the full dense
// index space (sizes here are tiny).
func (f *factors) residual() float64 {
	r2 := 0.0
	isNZ := map[[3]int]bool{}
	for _, t := range f.nz {
		isNZ[[3]int{t.i, t.j, t.p}] = true
	}
	for i := 0; i < f.u.Rows; i++ {
		for j := 0; j < f.v.Rows; j++ {
			for p := 0; p < f.w.Rows; p++ {
				s := 0.0
				for r := 0; r < f.p.R; r++ {
					s += f.u.At(i, r) * f.v.At(j, r) * f.w.At(p, r)
				}
				if isNZ[[3]int{i, j, p}] {
					s -= 1
				}
				r2 += s * s
			}
		}
	}
	return r2
}

// alsSweep updates U, V, W once each by regularized least squares.
func (f *factors) alsSweep(ridge float64) {
	f.updateFactor(f.u, f.v, f.w, func(t nonzero) (int, int, int) { return t.i, t.j, t.p }, ridge)
	f.updateFactor(f.v, f.u, f.w, func(t nonzero) (int, int, int) { return t.j, t.i, t.p }, ridge)
	f.updateFactor(f.w, f.u, f.v, func(t nonzero) (int, int, int) { return t.p, t.i, t.j }, ridge)
}

// updateFactor solves, for every row x_i of target, the ridge system
// (G + ridge·I)·x_i = b_i with G = (AᵀA)∘(BᵀB) and b_i[r] = Σ_nz A[a,r]·B[b,r]
// over the tensor non-zeros whose target index is i.
func (f *factors) updateFactor(target, fa, fb matrix.Mat[float64], pick func(nonzero) (int, int, int), ridge float64) {
	r := f.p.R
	g := make([]float64, r*r)
	ga := gram(fa)
	gb := gram(fb)
	for x := 0; x < r; x++ {
		for y := 0; y < r; y++ {
			g[x*r+y] = ga[x*r+y] * gb[x*r+y]
		}
		g[x*r+x] += ridge
	}
	chol, ok := cholesky(g, r)
	if !ok {
		return // keep previous factor; a later sweep with larger ridge recovers
	}
	b := make([]float64, r)
	for i := 0; i < target.Rows; i++ {
		for x := range b {
			b[x] = ridge * target.At(i, x) // proximal term keeps ALS stable
		}
		for _, t := range f.nz {
			ti, ai, bi := pick(t)
			if ti != i {
				continue
			}
			for x := 0; x < r; x++ {
				b[x] += fa.At(ai, x) * fb.At(bi, x)
			}
		}
		cholSolve(chol, b, r)
		for x := 0; x < r; x++ {
			target.Set(i, x, b[x])
		}
	}
}

func gram(m matrix.Mat[float64]) []float64 {
	r := m.Cols
	g := make([]float64, r*r)
	for x := 0; x < r; x++ {
		for y := 0; y < r; y++ {
			s := 0.0
			for i := 0; i < m.Rows; i++ {
				s += m.At(i, x) * m.At(i, y)
			}
			g[x*r+y] = s
		}
	}
	return g
}

// cholesky factors the SPD matrix g (r×r, row-major) in place; returns false
// if g is not positive definite.
func cholesky(g []float64, r int) ([]float64, bool) {
	l := make([]float64, r*r)
	for i := 0; i < r; i++ {
		for j := 0; j <= i; j++ {
			s := g[i*r+j]
			for k := 0; k < j; k++ {
				s -= l[i*r+k] * l[j*r+k]
			}
			if i == j {
				if s <= 0 {
					return nil, false
				}
				l[i*r+i] = math.Sqrt(s)
			} else {
				l[i*r+j] = s / l[j*r+j]
			}
		}
	}
	return l, true
}

// cholSolve solves L·Lᵀ·x = b in place.
func cholSolve(l, b []float64, r int) {
	for i := 0; i < r; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*r+k] * b[k]
		}
		b[i] = s / l[i*r+i]
	}
	for i := r - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < r; k++ {
			s -= l[k*r+i] * b[k]
		}
		b[i] = s / l[i*r+i]
	}
}

// canonicalize rescales every rank-one triple (u_r, v_r, w_r) by (α, β, 1/αβ)
// so that max|u_r| = max|v_r| = 1, pushing all scale freedom into W — the
// normal form in which literature algorithms have grid coefficients.
func (f *factors) canonicalize() {
	for r := 0; r < f.p.R; r++ {
		mu := colMaxAbs(f.u, r)
		mv := colMaxAbs(f.v, r)
		if mu == 0 || mv == 0 {
			continue
		}
		scaleCol(f.u, r, 1/mu)
		scaleCol(f.v, r, 1/mv)
		scaleCol(f.w, r, mu*mv)
	}
}

func colMaxAbs(m matrix.Mat[float64], c int) float64 {
	v := 0.0
	for i := 0; i < m.Rows; i++ {
		if a := math.Abs(m.At(i, c)); a > v {
			v = a
		}
	}
	return v
}

func scaleCol(m matrix.Mat[float64], c int, s float64) {
	for i := 0; i < m.Rows; i++ {
		m.Set(i, c, m.At(i, c)*s)
	}
}

// snap rounds every coefficient to the nearest half-integer in [-2, 2].
func snap(m matrix.Mat[float64]) matrix.Mat[float64] {
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		for j := 0; j < out.Cols; j++ {
			v := math.Round(out.At(i, j)*2) / 2
			if v > 2 {
				v = 2
			} else if v < -2 {
				v = -2
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// blendTowardGrid canonicalizes and moves every coefficient a fraction gamma
// of the way to its nearest grid value, biasing ALS toward discrete
// solutions without forcing them.
func (f *factors) blendTowardGrid(gamma float64) {
	f.canonicalize()
	for _, m := range []matrix.Mat[float64]{f.u, f.v, f.w} {
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				v := m.At(i, j)
				g := math.Round(v*2) / 2
				if g > 2 {
					g = 2
				} else if g < -2 {
					g = -2
				}
				m.Set(i, j, v+gamma*(g-v))
			}
		}
	}
}

// perturb adds uniform noise of the given amplitude to every factor entry.
func (f *factors) perturb(rng *rand.Rand, amp float64) {
	for _, m := range []matrix.Mat[float64]{f.u, f.v, f.w} {
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				m.Add(i, j, amp*(2*rng.Float64()-1))
			}
		}
	}
}

// Round canonicalizes and snaps the factors of a (possibly approximate)
// algorithm to the dyadic grid, returning the result only if it passes exact
// Brent verification.
func Round(a core.Algorithm) (core.Algorithm, error) {
	f := fromAlgorithm(a)
	f.canonicalize()
	cand := core.Algorithm{
		Name: a.Name + "·rounded",
		M:    a.M, K: a.K, N: a.N, R: a.R,
		U: snap(f.u), V: snap(f.v), W: snap(f.w),
	}
	if err := cand.Verify(); err != nil {
		return core.Algorithm{}, err
	}
	return cand, nil
}

// Polish runs iters ALS sweeps starting from a's coefficients (useful for
// cleaning up noisy or hand-transcribed coefficient sets) and returns the
// refined approximate algorithm together with its final residual².
func Polish(a core.Algorithm, iters int) (core.Algorithm, float64) {
	f := fromAlgorithm(a)
	ridge := 1e-6
	for i := 0; i < iters; i++ {
		f.alsSweep(ridge)
	}
	out := core.Algorithm{Name: a.Name + "·polished", M: a.M, K: a.K, N: a.N, R: a.R, U: f.u, V: f.v, W: f.w}
	return out, f.residual()
}

// Search runs restarts independent ALS searches for Problem p and returns
// the first exactly verified discrete algorithm, or ErrNotFound. The
// returned algorithm, if any, always passes core verification.
func Search(p Problem, opts Options) (core.Algorithm, error) {
	if err := p.validate(); err != nil {
		return core.Algorithm{}, err
	}
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	for restart := 0; restart < o.Restarts; restart++ {
		f := newFactors(p, rng)
		ridge := o.Ridge
		prev := math.Inf(1)
		for it := 0; it < o.Iters; it++ {
			f.alsSweep(ridge)
			if it%25 != 24 {
				continue
			}
			res := f.residual()
			if res < 0.05 {
				// Close enough that snapping may complete the convergence:
				// rounding is guarded by exact verification, so trying it
				// early is free of false positives.
				approx := core.Algorithm{
					Name: fmt.Sprintf("als%s·r%d", p, restart),
					M:    p.M, K: p.K, N: p.N, R: p.R,
					U: f.u, V: f.v, W: f.w,
				}
				if exact, err := Round(approx); err == nil {
					return exact, nil
				}
				// Not discrete yet: anneal toward the grid.
				f.blendTowardGrid(0.25)
				ridge = math.Max(ridge*0.3, 1e-9)
			} else if res > prev*0.999 {
				// Stalled in a swamp: kick with noise and re-regularize.
				f.perturb(rng, 0.2)
				ridge = o.Ridge
			} else {
				ridge = math.Max(ridge*0.5, 1e-9)
			}
			prev = res
		}
	}
	return core.Algorithm{}, ErrNotFound
}
