package discover

import (
	"math"
	"math/rand"
	"testing"

	"fmmfam/internal/core"
)

func TestTensorNonzeros(t *testing.T) {
	nz := tensorNonzeros(2, 2, 2)
	if len(nz) != 8 {
		t.Fatalf("got %d nonzeros", len(nz))
	}
	// The entry for im=1, ik=0, in=1: i=2, j=1, p=3.
	found := false
	for _, e := range nz {
		if e.i == 2 && e.j == 1 && e.p == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("expected nonzero missing")
	}
}

func TestResidualZeroForExactAlgorithm(t *testing.T) {
	f := fromAlgorithm(core.Strassen())
	if r := f.residual(); r > 1e-20 {
		t.Fatalf("Strassen residual %g", r)
	}
	f2 := fromAlgorithm(core.Classical(2, 3, 2))
	if r := f2.residual(); r > 1e-20 {
		t.Fatalf("classical residual %g", r)
	}
}

func TestResidualPositiveForWrongFactors(t *testing.T) {
	a := core.Strassen()
	a.U = a.U.Clone()
	a.U.Set(0, 0, 0)
	if r := fromAlgorithm(a).residual(); r < 0.1 {
		t.Fatalf("corrupted residual only %g", r)
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD system [[4,2],[2,3]] x = [8,7] → x = [1,5/4]... check numerically:
	g := []float64{4, 2, 2, 3}
	l, ok := cholesky(append([]float64(nil), g...), 2)
	if !ok {
		t.Fatal("SPD matrix rejected")
	}
	b := []float64{8, 7}
	cholSolve(l, b, 2)
	// Verify A·x == rhs.
	if math.Abs(4*b[0]+2*b[1]-8) > 1e-12 || math.Abs(2*b[0]+3*b[1]-7) > 1e-12 {
		t.Fatalf("solution %v", b)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	if _, ok := cholesky([]float64{1, 2, 2, 1}, 2); ok {
		t.Fatal("indefinite accepted")
	}
}

func TestALSReducesResidualFromRandomStart(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := newFactors(Problem{M: 2, K: 2, N: 2, R: 8}, rng)
	before := f.residual()
	ridge := 1e-2
	for i := 0; i < 60; i++ {
		f.alsSweep(ridge)
		if i%20 == 19 {
			ridge *= 0.1
		}
	}
	after := f.residual()
	if after >= before/10 {
		t.Fatalf("ALS made little progress: %g → %g", before, after)
	}
	// Rank 8 ≥ classical rank, so near-exact fit is reachable.
	if after > 1e-3 {
		t.Fatalf("rank-8 fit should be near-exact, residual %g", after)
	}
}

func TestPolishRecoversPerturbedStrassen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	noisy := core.Strassen()
	noisy.U, noisy.V, noisy.W = noisy.U.Clone(), noisy.V.Clone(), noisy.W.Clone()
	for _, m := range []struct{ rows, cols int }{{4, 7}} {
		for i := 0; i < m.rows; i++ {
			for j := 0; j < m.cols; j++ {
				noisy.U.Add(i, j, 0.02*(2*rng.Float64()-1))
				noisy.V.Add(i, j, 0.02*(2*rng.Float64()-1))
				noisy.W.Add(i, j, 0.02*(2*rng.Float64()-1))
			}
		}
	}
	if noisy.Verify() == nil {
		t.Fatal("perturbation too small to be a meaningful test")
	}
	polished, res := Polish(noisy, 80)
	if res > 1e-10 {
		t.Fatalf("polish residual %g", res)
	}
	exact, err := Round(polished)
	if err != nil {
		t.Fatalf("rounding polished Strassen failed: %v", err)
	}
	if exact.R != 7 || exact.Verify() != nil {
		t.Fatal("recovered algorithm invalid")
	}
}

func TestRoundExactInputPassesThrough(t *testing.T) {
	got, err := Round(core.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	if got.R != 7 {
		t.Fatalf("rank %d", got.R)
	}
}

func TestRoundRejectsGarbage(t *testing.T) {
	bad := core.Strassen()
	bad.U = bad.U.Clone()
	bad.U.Set(0, 0, 0.37) // snaps to 0.5, breaking exactness
	if _, err := Round(bad); err == nil {
		t.Fatal("garbage rounded to a 'valid' algorithm")
	}
}

func TestSearchValidatesProblem(t *testing.T) {
	if _, err := Search(Problem{M: 0, K: 2, N: 2, R: 4}, Options{}); err == nil {
		t.Fatal("bad shape accepted")
	}
	if _, err := Search(Problem{M: 2, K: 2, N: 2, R: 9}, Options{}); err == nil {
		t.Fatal("rank above classical accepted")
	}
}

func TestSearchFindsTrivialRankOne(t *testing.T) {
	a, err := Search(Problem{M: 1, K: 1, N: 1, R: 1}, Options{Restarts: 5, Iters: 60, Seed: 2})
	if err != nil {
		t.Fatalf("rank-1 search failed: %v", err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchNeverReturnsInvalid(t *testing.T) {
	// Tight budget: usually ErrNotFound, but any returned algorithm must
	// verify (the module's core guarantee).
	for seed := int64(1); seed <= 3; seed++ {
		a, err := Search(Problem{M: 2, K: 2, N: 2, R: 7}, Options{Restarts: 2, Iters: 120, Seed: seed})
		if err != nil {
			if err != ErrNotFound {
				t.Fatalf("unexpected error: %v", err)
			}
			continue
		}
		if verr := a.Verify(); verr != nil {
			t.Fatalf("Search returned invalid algorithm: %v", verr)
		}
	}
}

func TestSearchRediscoversStrassenRank7(t *testing.T) {
	if testing.Short() {
		t.Skip("ALS rediscovery is slow")
	}
	// Seed 2 is a known-converging start: restart 3 reaches an exact
	// rank-7 decomposition of the <2,2,2> tensor.
	a, err := Search(Problem{M: 2, K: 2, N: 2, R: 7}, Options{Restarts: 10, Iters: 1500, Seed: 2})
	if err != nil {
		t.Fatalf("known-good seed failed to rediscover Strassen: %v", err)
	}
	if a.R != 7 || a.Verify() != nil {
		t.Fatal("found algorithm invalid")
	}
	t.Logf("rediscovered %s", a.String())
}
