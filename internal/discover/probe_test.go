package discover

import (
	"math/rand"
	"testing"
)

// Diagnostic (skipped by default): prints the residual trajectory of ALS.
func TestALSTrajectoryDiag(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	rng := rand.New(rand.NewSource(5))
	f := newFactors(Problem{M: 2, K: 2, N: 2, R: 7}, rng)
	ridge := 1e-2
	for it := 0; it < 2000; it++ {
		f.alsSweep(ridge)
		if it%200 == 199 {
			t.Logf("it=%d ridge=%g res=%g", it, ridge, f.residual())
			ridge *= 0.3
		}
	}
}
