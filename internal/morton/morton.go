// Package morton implements the recursive block storage indexing
// (Morton-like ordering) of Figure 3 of the paper and the mixed-radix index
// arithmetic that connects the Kronecker-product coefficient order of
// multi-level FMM algorithms to flat row-major block coordinates.
//
// For L levels with per-level grid (r_l × c_l), a block is addressed either
//   - recursively: index i = Σ_l i_l · Π_{l'>l}(r_{l'}·c_{l'}) with
//     i_l = row_l·c_l + col_l (this is the order in which Kronecker-product
//     coefficient rows are laid out), or
//   - flatly: (row, col) in the Π r_l × Π c_l grid obtained by fully
//     subdividing the matrix, with row = Σ row_l · Π_{l'>l} r_{l'} and
//     likewise for col.
package morton

import "fmt"

// Grid is one level's partitioning: R rows by C columns of blocks.
type Grid struct{ R, C int }

// Total returns the total block count Π r_l·c_l across levels.
func Total(levels []Grid) int {
	n := 1
	for _, g := range levels {
		n *= g.R * g.C
	}
	return n
}

// Dims returns the flat grid dimensions (Π r_l, Π c_l).
func Dims(levels []Grid) (rows, cols int) {
	rows, cols = 1, 1
	for _, g := range levels {
		rows *= g.R
		cols *= g.C
	}
	return rows, cols
}

// Decode splits a recursive index into per-level (row, col) digits, outermost
// level first.
func Decode(levels []Grid, idx int) (rows, cols []int) {
	n := Total(levels)
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("morton: index %d out of range [0,%d)", idx, n))
	}
	rows = make([]int, len(levels))
	cols = make([]int, len(levels))
	for l := len(levels) - 1; l >= 0; l-- {
		g := levels[l]
		d := idx % (g.R * g.C)
		idx /= g.R * g.C
		rows[l], cols[l] = d/g.C, d%g.C
	}
	return rows, cols
}

// Encode is the inverse of Decode.
func Encode(levels []Grid, rows, cols []int) int {
	if len(rows) != len(levels) || len(cols) != len(levels) {
		panic("morton: digit count mismatch")
	}
	idx := 0
	for l, g := range levels {
		r, c := rows[l], cols[l]
		if r < 0 || r >= g.R || c < 0 || c >= g.C {
			panic(fmt.Sprintf("morton: digit (%d,%d) out of %d×%d at level %d", r, c, g.R, g.C, l))
		}
		idx = idx*(g.R*g.C) + r*g.C + c
	}
	return idx
}

// ToFlat converts a recursive index to flat row-major grid coordinates.
func ToFlat(levels []Grid, idx int) (row, col int) {
	rows, cols := Decode(levels, idx)
	for l, g := range levels {
		row = row*g.R + rows[l]
		col = col*g.C + cols[l]
	}
	return row, col
}

// FromFlat converts flat grid coordinates to the recursive index.
func FromFlat(levels []Grid, row, col int) int {
	tr, tc := Dims(levels)
	if row < 0 || row >= tr || col < 0 || col >= tc {
		panic(fmt.Sprintf("morton: flat (%d,%d) out of %d×%d", row, col, tr, tc))
	}
	rows := make([]int, len(levels))
	cols := make([]int, len(levels))
	for l := len(levels) - 1; l >= 0; l-- {
		g := levels[l]
		rows[l], row = row%g.R, row/g.R
		cols[l], col = col%g.C, col/g.C
	}
	return Encode(levels, rows, cols)
}

// Permutation returns p where p[recursiveIndex] = flatRowMajorIndex, i.e. the
// row permutation that converts Kronecker-ordered coefficient rows to flat
// block order.
func Permutation(levels []Grid) []int {
	n := Total(levels)
	_, tc := Dims(levels)
	p := make([]int, n)
	for i := 0; i < n; i++ {
		r, c := ToFlat(levels, i)
		p[i] = r*tc + c
	}
	return p
}

// Table renders the recursive index of every flat block position as a grid of
// integers, reproducing Figure 3 of the paper for levels = three ⟨2,2⟩ grids.
func Table(levels []Grid) [][]int {
	tr, tc := Dims(levels)
	out := make([][]int, tr)
	for r := 0; r < tr; r++ {
		out[r] = make([]int, tc)
		for c := 0; c < tc; c++ {
			out[r][c] = FromFlat(levels, r, c)
		}
	}
	return out
}
