package morton

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lv(pairs ...int) []Grid {
	g := make([]Grid, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		g = append(g, Grid{pairs[i], pairs[i+1]})
	}
	return g
}

func TestTotalDims(t *testing.T) {
	levels := lv(2, 3, 4, 5)
	if Total(levels) != 120 {
		t.Fatalf("total %d", Total(levels))
	}
	r, c := Dims(levels)
	if r != 8 || c != 15 {
		t.Fatalf("dims %d×%d", r, c)
	}
}

// Figure 3 of the paper: three levels of 2×2 splitting of an 8-row grid.
// The first two rows of the figure read 0 1 4 5 16 17 20 21 / 2 3 6 7 ...
func TestFigure3Reproduction(t *testing.T) {
	tab := Table(lv(2, 2, 2, 2, 2, 2))
	wantRow0 := []int{0, 1, 4, 5, 16, 17, 20, 21}
	wantRow1 := []int{2, 3, 6, 7, 18, 19, 22, 23}
	wantRow7 := []int{42, 43, 46, 47, 58, 59, 62, 63}
	for j := range wantRow0 {
		if tab[0][j] != wantRow0[j] || tab[1][j] != wantRow1[j] || tab[7][j] != wantRow7[j] {
			t.Fatalf("figure 3 mismatch:\nrow0 %v\nrow1 %v\nrow7 %v", tab[0], tab[1], tab[7])
		}
	}
}

func TestSingleLevelIsRowMajor(t *testing.T) {
	levels := lv(3, 4)
	for i := 0; i < 12; i++ {
		r, c := ToFlat(levels, i)
		if r != i/4 || c != i%4 {
			t.Fatalf("idx %d → (%d,%d)", i, r, c)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	levels := lv(2, 3, 3, 2)
	for i := 0; i < Total(levels); i++ {
		rs, cs := Decode(levels, i)
		if Encode(levels, rs, cs) != i {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestToFromFlatBijection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := 1 + rng.Intn(3)
		levels := make([]Grid, nl)
		for l := range levels {
			levels[l] = Grid{1 + rng.Intn(3), 1 + rng.Intn(3)}
		}
		seen := map[[2]int]bool{}
		for i := 0; i < Total(levels); i++ {
			r, c := ToFlat(levels, i)
			if seen[[2]int{r, c}] {
				return false // not injective
			}
			seen[[2]int{r, c}] = true
			if FromFlat(levels, r, c) != i {
				return false
			}
		}
		tr, tc := Dims(levels)
		return len(seen) == tr*tc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	levels := lv(2, 2, 3, 2)
	p := Permutation(levels)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestDecodeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Decode(lv(2, 2), 4)
}

func TestFromFlatOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromFlat(lv(2, 2), 2, 0)
}

func TestEncodeBadDigitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Encode(lv(2, 2), []int{2}, []int{0})
}

// Hand-checked rectangular grid: one level 2×3 is plain row-major; two
// levels (2×1, 1×3) index rows-then-columns.
func TestRectangularGrids(t *testing.T) {
	tab := Table(lv(2, 1, 1, 3))
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	for r := range want {
		for c := range want[r] {
			if tab[r][c] != want[r][c] {
				t.Fatalf("got %v", tab)
			}
		}
	}
	tab2 := Table(lv(1, 3, 2, 1))
	// Outer splits into 3 column strips; inner splits each into 2 rows.
	want2 := [][]int{{0, 2, 4}, {1, 3, 5}}
	for r := range want2 {
		for c := range want2[r] {
			if tab2[r][c] != want2[r][c] {
				t.Fatalf("got %v", tab2)
			}
		}
	}
}
