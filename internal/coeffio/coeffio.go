// Package coeffio reads and writes ⟦U,V,W⟧ coefficient files, the exchange
// format in which FMM algorithms circulate (the paper's inputs are the
// coefficient files published by Benson–Ballard [1] and Smirnov [12]; with
// this package such files can be imported directly and registered as
// generator seeds, replacing the composed constructions with the literature
// algorithms wherever the files are available).
//
// Format (text, line oriented, '#' comments):
//
//	# optional comments
//	name <identifier>            (optional)
//	<m> <k> <n> <R>
//	U
//	<m·k rows of R entries>
//	V
//	<k·n rows of R entries>
//	W
//	<m·n rows of R entries>
//
// Entries are integers, decimals, or rationals like -1/2.
package coeffio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fmmfam/internal/core"
	"fmmfam/internal/matrix"
)

// Write serializes a in the coefficient-file format.
func Write(w io.Writer, a core.Algorithm) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# FMM coefficient file: <%d,%d,%d> with %d multiplications\n", a.M, a.K, a.N, a.R)
	if a.Name != "" {
		fmt.Fprintf(bw, "name %s\n", strings.ReplaceAll(a.Name, " ", "_"))
	}
	fmt.Fprintf(bw, "%d %d %d %d\n", a.M, a.K, a.N, a.R)
	for _, f := range []struct {
		label string
		m     matrix.Mat[float64]
	}{{"U", a.U}, {"V", a.V}, {"W", a.W}} {
		fmt.Fprintln(bw, f.label)
		for i := 0; i < f.m.Rows; i++ {
			for j := 0; j < f.m.Cols; j++ {
				if j > 0 {
					fmt.Fprint(bw, " ")
				}
				fmt.Fprint(bw, formatEntry(f.m.At(i, j)))
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// formatEntry renders exact dyadic rationals as fractions, everything else
// as decimals.
func formatEntry(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	for den := int64(2); den <= 64; den *= 2 {
		scaled := v * float64(den)
		if scaled == float64(int64(scaled)) {
			return fmt.Sprintf("%d/%d", int64(scaled), den)
		}
	}
	return strconv.FormatFloat(v, 'g', 17, 64)
}

// Read parses one algorithm from r and verifies it (Brent equations), so an
// imported file can never yield an incorrect algorithm.
func Read(r io.Reader) (core.Algorithm, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := func() (string, bool) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}

	line, ok := next()
	if !ok {
		return core.Algorithm{}, fmt.Errorf("coeffio: empty input")
	}
	name := ""
	if strings.HasPrefix(line, "name ") {
		name = strings.TrimSpace(strings.TrimPrefix(line, "name "))
		line, ok = next()
		if !ok {
			return core.Algorithm{}, fmt.Errorf("coeffio: missing header after name")
		}
	}
	dims := strings.Fields(line)
	if len(dims) != 4 {
		return core.Algorithm{}, fmt.Errorf("coeffio: header %q: want \"m k n R\"", line)
	}
	var m, k, n, rk int
	for i, dst := range []*int{&m, &k, &n, &rk} {
		v, err := strconv.Atoi(dims[i])
		if err != nil || v < 1 {
			return core.Algorithm{}, fmt.Errorf("coeffio: header %q: bad field %q", line, dims[i])
		}
		*dst = v
	}

	readFactor := func(label string, rows int) (matrix.Mat[float64], error) {
		line, ok := next()
		if !ok || line != label {
			return matrix.Mat[float64]{}, fmt.Errorf("coeffio: expected %q section, got %q", label, line)
		}
		f := matrix.New[float64](rows, rk)
		for i := 0; i < rows; i++ {
			line, ok := next()
			if !ok {
				return matrix.Mat[float64]{}, fmt.Errorf("coeffio: %s: unexpected EOF at row %d", label, i)
			}
			fields := strings.Fields(line)
			if len(fields) != rk {
				return matrix.Mat[float64]{}, fmt.Errorf("coeffio: %s row %d: %d entries, want %d", label, i, len(fields), rk)
			}
			for j, fstr := range fields {
				v, err := parseEntry(fstr)
				if err != nil {
					return matrix.Mat[float64]{}, fmt.Errorf("coeffio: %s row %d: %w", label, i, err)
				}
				f.Set(i, j, v)
			}
		}
		return f, nil
	}

	u, err := readFactor("U", m*k)
	if err != nil {
		return core.Algorithm{}, err
	}
	v, err := readFactor("V", k*n)
	if err != nil {
		return core.Algorithm{}, err
	}
	w, err := readFactor("W", m*n)
	if err != nil {
		return core.Algorithm{}, err
	}
	a := core.Algorithm{Name: name, M: m, K: k, N: n, R: rk, U: u, V: v, W: w}
	if a.Name == "" {
		a.Name = fmt.Sprintf("imported<%d,%d,%d>", m, k, n)
	}
	if err := a.Verify(); err != nil {
		return core.Algorithm{}, fmt.Errorf("coeffio: file parsed but algorithm is invalid: %w", err)
	}
	return a, nil
}

// parseEntry parses "-3", "0.5" or "-1/2".
func parseEntry(s string) (float64, error) {
	if num, den, found := strings.Cut(s, "/"); found {
		nv, err1 := strconv.ParseFloat(num, 64)
		dv, err2 := strconv.ParseFloat(den, 64)
		if err1 != nil || err2 != nil || dv == 0 {
			return 0, fmt.Errorf("bad rational %q", s)
		}
		return nv / dv, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad entry %q", s)
	}
	return v, nil
}
