package coeffio

import (
	"bytes"
	"strings"
	"testing"

	"fmmfam/internal/core"
	"fmmfam/internal/matrix"
)

func roundTrip(t *testing.T, a core.Algorithm) core.Algorithm {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("round trip failed: %v\nfile:\n%s", err, buf.String())
	}
	return got
}

func TestRoundTripStrassen(t *testing.T) {
	a := core.Strassen()
	got := roundTrip(t, a)
	if got.M != 2 || got.K != 2 || got.N != 2 || got.R != 7 {
		t.Fatalf("shape/rank lost: %s", got)
	}
	if got.U.MaxAbsDiff(a.U) != 0 || got.V.MaxAbsDiff(a.V) != 0 || got.W.MaxAbsDiff(a.W) != 0 {
		t.Fatal("coefficients changed in round trip")
	}
	if got.Name != "strassen" {
		t.Fatalf("name %q", got.Name)
	}
}

func TestRoundTripCatalog(t *testing.T) {
	for _, e := range core.Catalog() {
		got := roundTrip(t, e.Algorithm)
		if got.R != e.OurRank() {
			t.Fatalf("%s: rank %d != %d", e.Shape(), got.R, e.OurRank())
		}
	}
}

func TestRoundTripFractionalCoefficients(t *testing.T) {
	// Build a valid algorithm with a genuine 1/2: scale one rank-one term by
	// 2 in U and 1/2 in W (leaves the bilinear form unchanged).
	a := core.Strassen()
	a.U, a.W = a.U.Clone(), a.W.Clone()
	for i := 0; i < a.U.Rows; i++ {
		a.U.Set(i, 0, a.U.At(i, 0)*2)
	}
	for p := 0; p < a.W.Rows; p++ {
		a.W.Set(p, 0, a.W.At(p, 0)*0.5)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, a)
	if got.W.At(0, 0) != 0.5 {
		t.Fatalf("fraction lost: %v", got.W.At(0, 0))
	}
}

func TestWriteFormatIsHumanReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, core.Strassen()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"2 2 2 7", "\nU\n", "\nV\n", "\nW\n", "name strassen"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestReadRejectsInvalidAlgorithm(t *testing.T) {
	// Syntactically valid file whose coefficients do not satisfy Brent.
	file := `2 2 2 7
U
1 0 1 0 1 -1 0
0 0 0 0 1 0 1
0 1 0 0 0 1 0
1 1 0 1 0 0 -1
V
1 1 0 -1 0 1 0
0 0 1 0 0 1 0
0 0 0 1 0 0 1
1 0 -1 0 1 0 1
W
1 0 0 1 -1 0 1
0 0 1 0 1 0 0
0 1 0 1 0 0 0
1 -1 1 0 0 1 1
`
	if _, err := Read(strings.NewReader(file)); err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("want verification error, got %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"short header":   "2 2 2\nU\n",
		"bad dim":        "2 x 2 7\nU\n",
		"zero dim":       "0 2 2 7\nU\n",
		"missing U":      "1 1 1 1\nV\n1\n",
		"short row":      "1 1 1 1\nU\n\nV\n1\nW\n1\n",
		"bad entry":      "1 1 1 1\nU\nz\nV\n1\nW\n1\n",
		"truncated rows": "2 2 2 7\nU\n1 0 1 0 1 -1 0\n",
		"bad rational":   "1 1 1 1\nU\n1/0\nV\n1\nW\n1\n",
	}
	for name, file := range cases {
		if _, err := Read(strings.NewReader(file)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestReadAcceptsCommentsAndBlankLines(t *testing.T) {
	file := `
# a comment
# another

1 1 1 1

U
1
# interior comment
V
1
W
1
`
	a, err := Read(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if a.R != 1 || a.Name != "imported<1,1,1>" {
		t.Fatalf("got %s", a)
	}
}

func TestReadRationalEntries(t *testing.T) {
	file := `1 1 1 1
U
-4/2
V
1/2
W
-1
`
	a, err := Read(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if a.U.At(0, 0) != -2 || a.V.At(0, 0) != 0.5 || a.W.At(0, 0) != -1 {
		t.Fatalf("parsed %v %v %v", a.U.At(0, 0), a.V.At(0, 0), a.W.At(0, 0))
	}
}

func TestFormatEntry(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		-2:     "-2",
		0.5:    "1/2",
		-0.25:  "-1/4",
		0.0625: "1/16",
	}
	for v, want := range cases {
		if got := formatEntry(v); got != want {
			t.Fatalf("formatEntry(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRoundTripPreservesSemantics(t *testing.T) {
	// The imported algorithm must multiply correctly, not just verify.
	got := roundTrip(t, core.Generate(2, 3, 2))
	a := matrix.New[float64](4, 6)
	b := matrix.New[float64](6, 4)
	a.Fill(0.5)
	b.Fill(-2)
	c := matrix.New[float64](4, 4)
	got.Apply(c, a, b)
	want := matrix.New[float64](4, 4)
	matrix.MulAdd(want, a, b)
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Fatal("imported algorithm computes wrong product")
	}
}
