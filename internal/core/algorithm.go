// Package core implements the paper's central abstraction: a fast matrix
// multiplication (FMM) algorithm represented as a partition ⟨m̃,k̃,ñ⟩ together
// with a coefficient triple ⟦U,V,W⟧ (Section 3 of the paper). It provides
//
//   - exact validation via the Brent equations,
//   - the combinators that generate families of algorithms: Kronecker
//     products (multi-level FMM, §3.4–3.5), dimension permutations, direct
//     sums (dimension splits), and classical base cases,
//   - verified seeds (Strassen ⟨2,2,2⟩;7 from eq. (4), Winograd's variant),
//   - a dynamic-programming generator that produces the lowest-rank algorithm
//     reachable from the seeds for every requested shape, and
//   - the Figure-2 catalog of shapes evaluated in the paper.
package core

import (
	"fmt"
	"math"

	"fmmfam/internal/matrix"
)

// Algorithm is a one-level ⟨M,K,N⟩ FMM algorithm ⟦U,V,W⟧ with R
// multiplications. Submatrix indices are flat row-major: A's block (im,ik)
// has index im*K+ik, B's block (ik,in) index ik*N+in, C's block (im,in)
// index im*N+in. U is (M·K)×R, V is (K·N)×R, W is (M·N)×R, and
//
//	C_p += Σ_r W[p,r] · (Σ_i U[i,r]·A_i) · (Σ_j V[j,r]·B_j).
type Algorithm struct {
	Name    string
	M, K, N int
	R       int
	U, V, W matrix.Mat[float64]
}

// Shape returns the partition dimensions ⟨M,K,N⟩.
func (a Algorithm) Shape() (m, k, n int) { return a.M, a.K, a.N }

// ShapeString renders the partition as the paper writes it, e.g. "<2,2,2>".
func (a Algorithm) ShapeString() string { return fmt.Sprintf("<%d,%d,%d>", a.M, a.K, a.N) }

// String identifies the algorithm for logs and catalogs.
func (a Algorithm) String() string {
	return fmt.Sprintf("%s:%d(%s)", a.ShapeString(), a.R, a.Name)
}

// NNZ returns the non-zero entry counts of U, V and W, the quantities the
// performance model calls nnz(⊗U) etc.
func (a Algorithm) NNZ() (u, v, w int) {
	return nnz(a.U), nnz(a.V), nnz(a.W)
}

func nnz(m matrix.Mat[float64]) int {
	n := 0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != 0 {
				n++
			}
		}
	}
	return n
}

// TheoreticalSpeedup is the per-recursion-step speedup over classical
// multiplication, (m̃k̃ñ/R − 1), reported as a fraction (0.143 for Strassen).
// This is the "Theory" column of Figure 2.
func (a Algorithm) TheoreticalSpeedup() float64 {
	return float64(a.M*a.K*a.N)/float64(a.R) - 1
}

// brentTol bounds the residual accepted by Verify. Catalog coefficients are
// small dyadic rationals, so valid algorithms satisfy the Brent equations to
// well below this.
const brentTol = 1e-9

// Verify checks the Brent equations: for every triple of block indices,
//
//	Σ_r U[(im,ik),r]·V[(jk,jn),r]·W[(pm,pn),r] = δ(ik=jk)·δ(jn=pn)·δ(im=pm).
//
// It returns nil iff ⟦U,V,W⟧ exactly computes the ⟨M,K,N⟩ block product.
func (a Algorithm) Verify() error {
	if err := a.checkDims(); err != nil {
		return err
	}
	for im := 0; im < a.M; im++ {
		for ik := 0; ik < a.K; ik++ {
			urow := a.U.Data[(im*a.K+ik)*a.U.Stride:]
			for jk := 0; jk < a.K; jk++ {
				for jn := 0; jn < a.N; jn++ {
					vrow := a.V.Data[(jk*a.N+jn)*a.V.Stride:]
					for pm := 0; pm < a.M; pm++ {
						for pn := 0; pn < a.N; pn++ {
							wrow := a.W.Data[(pm*a.N+pn)*a.W.Stride:]
							sum := 0.0
							for r := 0; r < a.R; r++ {
								sum += urow[r] * vrow[r] * wrow[r]
							}
							want := 0.0
							if ik == jk && jn == pn && im == pm {
								want = 1
							}
							if math.Abs(sum-want) > brentTol {
								return fmt.Errorf("core: %s violates Brent equation at A(%d,%d) B(%d,%d) C(%d,%d): got %g want %g",
									a.String(), im, ik, jk, jn, pm, pn, sum, want)
							}
						}
					}
				}
			}
		}
	}
	return nil
}

func (a Algorithm) checkDims() error {
	switch {
	case a.M < 1 || a.K < 1 || a.N < 1:
		return fmt.Errorf("core: bad partition %s", a.ShapeString())
	case a.R < 1:
		return fmt.Errorf("core: bad rank %d", a.R)
	case a.U.Rows != a.M*a.K || a.U.Cols != a.R:
		return fmt.Errorf("core: U is %d×%d, want %d×%d", a.U.Rows, a.U.Cols, a.M*a.K, a.R)
	case a.V.Rows != a.K*a.N || a.V.Cols != a.R:
		return fmt.Errorf("core: V is %d×%d, want %d×%d", a.V.Rows, a.V.Cols, a.K*a.N, a.R)
	case a.W.Rows != a.M*a.N || a.W.Cols != a.R:
		return fmt.Errorf("core: W is %d×%d, want %d×%d", a.W.Rows, a.W.Cols, a.M*a.N, a.R)
	}
	return nil
}

// MustVerify panics if the algorithm is invalid. Used when constructing
// package-level seeds and catalogs.
func (a Algorithm) MustVerify() Algorithm {
	if err := a.Verify(); err != nil {
		panic(err)
	}
	return a
}

// Apply computes C += A·B by direct evaluation of the bilinear formula (3):
// explicit temporaries for the operand sums and each product Mr, with the
// naive reference multiply for the R submatrix products. It is the
// executable semantics of the algorithm and the oracle against which the
// high-performance executor is tested. Requires m%M == 0, k%K == 0, n%N == 0.
func (a Algorithm) Apply(c, am, bm matrix.Mat[float64]) {
	if am.Rows%a.M != 0 || am.Cols%a.K != 0 || bm.Cols%a.N != 0 {
		panic(fmt.Sprintf("core: %s cannot partition %d×%d·%d×%d", a.ShapeString(), am.Rows, am.Cols, bm.Rows, bm.Cols))
	}
	if am.Cols != bm.Rows || c.Rows != am.Rows || c.Cols != bm.Cols {
		panic("core: dimension mismatch")
	}
	bm2 := bm
	sm, sk, sn := am.Rows/a.M, am.Cols/a.K, bm.Cols/a.N
	asum := matrix.New[float64](sm, sk)
	bsum := matrix.New[float64](sk, sn)
	prod := matrix.New[float64](sm, sn)
	for r := 0; r < a.R; r++ {
		asum.Zero()
		bsum.Zero()
		prod.Zero()
		for i := 0; i < a.M*a.K; i++ {
			if u := a.U.At(i, r); u != 0 {
				asum.AddScaled(u, am.Block(i/a.K, i%a.K, a.M, a.K))
			}
		}
		for j := 0; j < a.K*a.N; j++ {
			if v := a.V.At(j, r); v != 0 {
				bsum.AddScaled(v, bm2.Block(j/a.N, j%a.N, a.K, a.N))
			}
		}
		matrix.MulAdd(prod, asum, bsum)
		for p := 0; p < a.M*a.N; p++ {
			if w := a.W.At(p, r); w != 0 {
				c.Block(p/a.N, p%a.N, a.M, a.N).AddScaled(w, prod)
			}
		}
	}
}

// Rename returns a copy of the algorithm with a new name (storage is shared).
func (a Algorithm) Rename(name string) Algorithm {
	a.Name = name
	return a
}
