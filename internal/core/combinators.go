package core

import (
	"fmt"

	"fmmfam/internal/matrix"
)

// Kron composes two algorithms into the two-level algorithm of §3.4 of the
// paper: the coefficients are ⟦Ua⊗Ub, Va⊗Vb, Wa⊗Wb⟧ with rows re-ordered
// from recursive block indexing to this package's flat row-major block
// indexing, yielding a plain one-level ⟨MaMb, KaKb, NaNb⟩ algorithm with
// rank Ra·Rb that can be executed iteratively.
func Kron(a, b Algorithm) Algorithm {
	m, k, n := a.M*b.M, a.K*b.K, a.N*b.N
	r := a.R * b.R
	u := kronFactor(a.U, b.U, a.M, a.K, b.M, b.K)
	v := kronFactor(a.V, b.V, a.K, a.N, b.K, b.N)
	w := kronFactor(a.W, b.W, a.M, a.N, b.M, b.N)
	return Algorithm{
		Name: a.Name + "⊗" + b.Name,
		M:    m, K: k, N: n, R: r,
		U: u, V: v, W: w,
	}
}

// kronFactor builds the row-permuted Kronecker product of two coefficient
// factors whose rows are indexed by (row, col) pairs over ra×ca and rb×cb
// grids: output row ((ra_i·rb + rb_i), (ca_j·cb + cb_j)) in the flattened
// (ra·rb)×(ca·cb) grid, output column r1·Rb + r2.
func kronFactor(fa, fb matrix.Mat[float64], ra, ca, rb, cb int) matrix.Mat[float64] {
	out := matrix.New[float64](ra*rb*ca*cb, fa.Cols*fb.Cols)
	for i1 := 0; i1 < ra; i1++ {
		for j1 := 0; j1 < ca; j1++ {
			rowA := fa.Data[(i1*ca+j1)*fa.Stride:]
			for i2 := 0; i2 < rb; i2++ {
				for j2 := 0; j2 < cb; j2++ {
					rowB := fb.Data[(i2*cb+j2)*fb.Stride:]
					flatRow := (i1*rb+i2)*(ca*cb) + (j1*cb + j2)
					dst := out.Data[flatRow*out.Stride:]
					for r1 := 0; r1 < fa.Cols; r1++ {
						av := rowA[r1]
						if av == 0 {
							continue
						}
						base := r1 * fb.Cols
						for r2 := 0; r2 < fb.Cols; r2++ {
							dst[base+r2] = av * rowB[r2]
						}
					}
				}
			}
		}
	}
	return out
}

// KronAll left-folds Kron over one or more levels, giving the L-level
// algorithm of §3.5 as a flat one-level algorithm.
func KronAll(levels ...Algorithm) Algorithm {
	if len(levels) == 0 {
		panic("core: KronAll needs at least one level")
	}
	out := levels[0]
	for _, l := range levels[1:] {
		out = Kron(out, l)
	}
	return out
}

// Rotate maps an ⟨m,k,n⟩ algorithm to a ⟨k,n,m⟩ algorithm (the cyclic
// symmetry of the matrix multiplication tensor): U' = V, V' = swap(W),
// W' = swap(U), where swap transposes a row index pair (x,y) → (y,x).
func Rotate(a Algorithm) Algorithm {
	return Algorithm{
		Name: a.Name + "·rot",
		M:    a.K, K: a.N, N: a.M, R: a.R,
		U: a.V.Clone(),
		V: swapRows(a.W, a.M, a.N),
		W: swapRows(a.U, a.M, a.K),
	}
}

// Transpose maps an ⟨m,k,n⟩ algorithm to an ⟨n,k,m⟩ algorithm (C = AB ⇒
// Cᵀ = BᵀAᵀ): U' = swap(V), V' = swap(U), W' = swap(W).
func Transpose(a Algorithm) Algorithm {
	return Algorithm{
		Name: a.Name + "·T",
		M:    a.N, K: a.K, N: a.M, R: a.R,
		U: swapRows(a.V, a.K, a.N),
		V: swapRows(a.U, a.M, a.K),
		W: swapRows(a.W, a.M, a.N),
	}
}

// swapRows reindexes the rows of f, which are addressed by pairs (x,y) over
// an rows×cols grid, to the transposed addressing (y,x) over cols×rows.
func swapRows(f matrix.Mat[float64], rows, cols int) matrix.Mat[float64] {
	out := matrix.New[float64](f.Rows, f.Cols)
	for x := 0; x < rows; x++ {
		for y := 0; y < cols; y++ {
			src := f.Data[(x*cols+y)*f.Stride : (x*cols+y)*f.Stride+f.Cols]
			dst := out.Data[(y*rows+x)*out.Stride:]
			copy(dst[:f.Cols], src)
		}
	}
	return out
}

// Reorient returns an algorithm with shape exactly ⟨m,k,n⟩ derived from a by
// some composition of Rotate and Transpose, or an error if no permutation of
// a's shape matches.
func Reorient(a Algorithm, m, k, n int) (Algorithm, error) {
	cands := []Algorithm{a, Rotate(a), Rotate(Rotate(a)), Transpose(a), Transpose(Rotate(a)), Transpose(Rotate(Rotate(a)))}
	for _, c := range cands {
		if c.M == m && c.K == k && c.N == n {
			return c, nil
		}
	}
	return Algorithm{}, fmt.Errorf("core: cannot reorient %s to <%d,%d,%d>", a.ShapeString(), m, k, n)
}

// Dim names the three partition dimensions for direct sums.
type Dim int

// The three partition dimensions.
const (
	DimM Dim = iota
	DimK
	DimN
)

func (d Dim) String() string { return [...]string{"m", "k", "n"}[d] }

// DirectSum splits one partition dimension between two algorithms:
//
//	DimM: ⟨m1,k,n⟩ ⊕ ⟨m2,k,n⟩ → ⟨m1+m2,k,n⟩  (row blocks of A and C)
//	DimN: ⟨m,k,n1⟩ ⊕ ⟨m,k,n2⟩ → ⟨m,k,n1+n2⟩  (column blocks of B and C)
//	DimK: ⟨m,k1,n⟩ ⊕ ⟨m,k2,n⟩ → ⟨m,k1+k2,n⟩  (C = A1·B1 + A2·B2)
//
// with rank R1+R2. This is the construction behind e.g. ⟨2,2,3⟩;11 =
// ⟨2,2,2⟩;7 ⊕ ⟨2,2,1⟩;4 (Hopcroft–Kerr rank).
func DirectSum(d Dim, a, b Algorithm) Algorithm {
	r := a.R + b.R
	name := fmt.Sprintf("(%s⊕%s%s)", a.Name, d, b.Name)
	switch d {
	case DimM:
		if a.K != b.K || a.N != b.N {
			panic("core: DirectSum(DimM) needs matching k,n")
		}
		m, k, n := a.M+b.M, a.K, a.N
		u := matrix.New[float64](m*k, r)
		stackPair(u, a.U, b.U, a.M, k, b.M, k, a.R)
		v := matrix.New[float64](k*n, r)
		concatCols(v, a.V, b.V)
		w := matrix.New[float64](m*n, r)
		stackPair(w, a.W, b.W, a.M, n, b.M, n, a.R)
		return Algorithm{Name: name, M: m, K: k, N: n, R: r, U: u, V: v, W: w}
	case DimN:
		if a.M != b.M || a.K != b.K {
			panic("core: DirectSum(DimN) needs matching m,k")
		}
		m, k, n := a.M, a.K, a.N+b.N
		u := matrix.New[float64](m*k, r)
		concatCols(u, a.U, b.U)
		v := matrix.New[float64](k*n, r)
		interleavePair(v, a.V, b.V, k, a.N, b.N, a.R)
		w := matrix.New[float64](m*n, r)
		interleavePair(w, a.W, b.W, m, a.N, b.N, a.R)
		return Algorithm{Name: name, M: m, K: k, N: n, R: r, U: u, V: v, W: w}
	case DimK:
		if a.M != b.M || a.N != b.N {
			panic("core: DirectSum(DimK) needs matching m,n")
		}
		m, k, n := a.M, a.K+b.K, a.N
		u := matrix.New[float64](m*k, r)
		interleavePair(u, a.U, b.U, m, a.K, b.K, a.R)
		v := matrix.New[float64](k*n, r)
		stackPair(v, a.V, b.V, a.K, n, b.K, n, a.R)
		w := matrix.New[float64](m*n, r)
		concatCols(w, a.W, b.W)
		return Algorithm{Name: name, M: m, K: k, N: n, R: r, U: u, V: v, W: w}
	}
	panic("core: bad Dim")
}

// concatCols writes [fa | fb] into dst (same row space, disjoint columns).
func concatCols(dst, fa, fb matrix.Mat[float64]) {
	for i := 0; i < fa.Rows; i++ {
		copy(dst.Data[i*dst.Stride:], fa.Data[i*fa.Stride:i*fa.Stride+fa.Cols])
		copy(dst.Data[i*dst.Stride+fa.Cols:], fb.Data[i*fb.Stride:i*fb.Stride+fb.Cols])
	}
}

// stackPair places fa's rows (grid ra×ca) before fb's rows (grid rb×cb, with
// ca == cb) in dst, fa occupying columns [0,colsA) and fb [colsA,R): the row
// grids are stacked along the first coordinate.
func stackPair(dst, fa, fb matrix.Mat[float64], ra, ca, rb, cb, colsA int) {
	for i := 0; i < fa.Rows; i++ {
		copy(dst.Data[i*dst.Stride:], fa.Data[i*fa.Stride:i*fa.Stride+fa.Cols])
	}
	for i := 0; i < fb.Rows; i++ {
		copy(dst.Data[(fa.Rows+i)*dst.Stride+colsA:], fb.Data[i*fb.Stride:i*fb.Stride+fb.Cols])
	}
}

// interleavePair merges row grids split along the *second* coordinate: dst
// rows are indexed (x, y) over rows×(ca+cb); y < ca rows come from fa
// (columns [0,colsA)), the rest from fb (columns [colsA,R)).
func interleavePair(dst, fa, fb matrix.Mat[float64], rows, ca, cb, colsA int) {
	for x := 0; x < rows; x++ {
		for y := 0; y < ca; y++ {
			copy(dst.Data[(x*(ca+cb)+y)*dst.Stride:], fa.Data[(x*ca+y)*fa.Stride:(x*ca+y)*fa.Stride+fa.Cols])
		}
		for y := 0; y < cb; y++ {
			copy(dst.Data[(x*(ca+cb)+ca+y)*dst.Stride+colsA:], fb.Data[(x*cb+y)*fb.Stride:(x*cb+y)*fb.Stride+fb.Cols])
		}
	}
}
