package core

import (
	"testing"
)

// Ranks the seed closure is expected to reach (see DESIGN.md §3): exact
// matches with Figure 2 where the paper's rank is achievable by direct sums
// and Kronecker products of Strassen, and the best-reachable rank elsewhere.
func TestGenerateRanks(t *testing.T) {
	cases := []struct {
		m, k, n int
		wantR   int
	}{
		{1, 1, 1, 1},
		{2, 2, 2, 7},  // paper 7 (exact)
		{2, 3, 2, 11}, // paper 11 (exact)
		{3, 2, 2, 11}, // paper 11 (exact)
		{2, 5, 2, 18}, // paper 18 (exact)
		{5, 2, 2, 18}, // paper 18 (exact)
		{4, 2, 2, 14}, // paper 14 (exact)
		{4, 4, 4, 49}, // Strassen⊗Strassen
		{3, 3, 3, 26}, // paper 23 (Smirnov; not in closure)
		{3, 2, 3, 17}, // paper 15
		{2, 3, 4, 22}, // paper 20
		{4, 4, 2, 26}, // paper 26 — closure reaches 26? expect ≤ 28
	}
	for _, tc := range cases {
		a := Generate(tc.m, tc.k, tc.n)
		if a.M != tc.m || a.K != tc.k || a.N != tc.n {
			t.Fatalf("Generate(%d,%d,%d) shape %s", tc.m, tc.k, tc.n, a.ShapeString())
		}
		if tc.m == 4 && tc.k == 4 && tc.n == 2 {
			if a.R > 28 {
				t.Fatalf("Generate(4,4,2) rank %d > 28", a.R)
			}
			continue
		}
		if a.R != tc.wantR {
			t.Fatalf("Generate(%d,%d,%d) rank %d, want %d (%s)", tc.m, tc.k, tc.n, a.R, tc.wantR, a.Name)
		}
	}
}

func TestGenerateOutputsVerify(t *testing.T) {
	for m := 1; m <= 4; m++ {
		for k := 1; k <= 4; k++ {
			for n := 1; n <= 4; n++ {
				a := Generate(m, k, n)
				if err := a.Verify(); err != nil {
					t.Fatalf("Generate(%d,%d,%d): %v", m, k, n, err)
				}
				if a.R > m*k*n {
					t.Fatalf("Generate(%d,%d,%d) worse than classical: %d", m, k, n, a.R)
				}
			}
		}
	}
}

func TestGeneratePermutationInvariance(t *testing.T) {
	r1 := Generate(2, 3, 4).R
	for _, s := range [][3]int{{2, 4, 3}, {3, 2, 4}, {3, 4, 2}, {4, 2, 3}, {4, 3, 2}} {
		if r := Generate(s[0], s[1], s[2]).R; r != r1 {
			t.Fatalf("rank not permutation-invariant: %v → %d vs %d", s, r, r1)
		}
	}
}

func TestGenerateMemoised(t *testing.T) {
	a := Generate(3, 3, 3)
	b := Generate(3, 3, 3)
	if &a.U.Data[0] != &b.U.Data[0] {
		t.Fatal("memo not shared")
	}
}

func TestRegisterSeedImprovesGenerate(t *testing.T) {
	// Register a fake better-rank seed is impossible (would fail Verify), so
	// instead register Winograd for <2,2,2>: same rank, must NOT replace.
	before := Generate(2, 2, 2)
	if err := RegisterSeed(Winograd()); err != nil {
		t.Fatal(err)
	}
	after := Generate(2, 2, 2)
	if after.Name != before.Name {
		t.Fatalf("equal-rank seed replaced existing: %s → %s", before.Name, after.Name)
	}
}

func TestRegisterSeedRejectsInvalid(t *testing.T) {
	bad := Strassen()
	bad.U = bad.U.Clone()
	bad.U.Set(0, 0, 2)
	if err := RegisterSeed(bad); err == nil {
		t.Fatal("invalid seed accepted")
	}
}

func TestCatalogCoversFigure2(t *testing.T) {
	cat := Catalog()
	if len(cat) != 23 {
		t.Fatalf("catalog has %d entries, want 23", len(cat))
	}
	for _, e := range cat {
		if err := e.Algorithm.Verify(); err != nil {
			t.Fatalf("%s: %v", e.Shape(), err)
		}
		if e.OurRank() < e.PaperRank {
			t.Fatalf("%s: our rank %d beats the literature rank %d — combinator bug",
				e.Shape(), e.OurRank(), e.PaperRank)
		}
		if e.OurRank() > e.M*e.K*e.N {
			t.Fatalf("%s: rank %d worse than classical", e.Shape(), e.OurRank())
		}
	}
}

func TestCatalogExactRankMatches(t *testing.T) {
	// Shapes whose Figure-2 rank the closure reproduces exactly.
	exact := [][3]int{{2, 2, 2}, {2, 3, 2}, {3, 2, 2}, {2, 5, 2}, {5, 2, 2}, {4, 2, 2}}
	for _, s := range exact {
		e, ok := CatalogShape(s[0], s[1], s[2])
		if !ok {
			t.Fatalf("%v missing from catalog", s)
		}
		if e.OurRank() != e.PaperRank {
			t.Fatalf("%s: our %d != paper %d", e.Shape(), e.OurRank(), e.PaperRank)
		}
	}
}

func TestCatalogShapeMissing(t *testing.T) {
	if _, ok := CatalogShape(7, 7, 7); ok {
		t.Fatal("unexpected catalog entry")
	}
}
