package core

import (
	"fmt"

	"fmmfam/internal/matrix"
)

// Classical returns the trivial ⟨m,k,n⟩ algorithm with R = m·k·n: every block
// product is computed directly. It is the identity element of the family
// generator and the fallback for shapes with no faster construction.
func Classical(m, k, n int) Algorithm {
	if m < 1 || k < 1 || n < 1 {
		panic(fmt.Sprintf("core: Classical(%d,%d,%d)", m, k, n))
	}
	r := m * k * n
	u := matrix.New[float64](m*k, r)
	v := matrix.New[float64](k*n, r)
	w := matrix.New[float64](m*n, r)
	idx := 0
	for im := 0; im < m; im++ {
		for ik := 0; ik < k; ik++ {
			for in := 0; in < n; in++ {
				u.Set(im*k+ik, idx, 1)
				v.Set(ik*n+in, idx, 1)
				w.Set(im*n+in, idx, 1)
				idx++
			}
		}
	}
	return Algorithm{Name: "classical", M: m, K: k, N: n, R: r, U: u, V: v, W: w}
}

// Strassen is the one-level ⟨2,2,2⟩;7 algorithm with the exact coefficients
// of equation (4) of the paper (Strassen 1969, computations (2)).
func Strassen() Algorithm {
	u := matrix.FromRows([][]float64{
		{1, 0, 1, 0, 1, -1, 0},
		{0, 0, 0, 0, 1, 0, 1},
		{0, 1, 0, 0, 0, 1, 0},
		{1, 1, 0, 1, 0, 0, -1},
	})
	v := matrix.FromRows([][]float64{
		{1, 1, 0, -1, 0, 1, 0},
		{0, 0, 1, 0, 0, 1, 0},
		{0, 0, 0, 1, 0, 0, 1},
		{1, 0, -1, 0, 1, 0, 1},
	})
	w := matrix.FromRows([][]float64{
		{1, 0, 0, 1, -1, 0, 1},
		{0, 0, 1, 0, 1, 0, 0},
		{0, 1, 0, 1, 0, 0, 0},
		{1, -1, 1, 0, 0, 1, 0},
	})
	return Algorithm{Name: "strassen", M: 2, K: 2, N: 2, R: 7, U: u, V: v, W: w}
}

// Winograd is the Strassen–Winograd ⟨2,2,2⟩;7 variant. As a flattened
// ⟦U,V,W⟧ triple it has *more* non-zeros than Strassen (the variant's saving
// comes from common subexpressions, which this representation does not
// capture — see §1 of the paper on [1] vs this work), so the catalog prefers
// Strassen; Winograd is retained as a second independent seed for tests and
// for the discovery module's canonicalization experiments.
func Winograd() Algorithm {
	// M1=(−A0+A2+A3)(B0−B1+B3), M2=A0·B0, M3=A1·B2, M4=(A0−A2)(B3−B1),
	// M5=(A2+A3)(B1−B0), M6=(A0+A1−A2−A3)·B3, M7=A3·(B0−B1−B2+B3);
	// C0=M2+M3, C1=M1+M2+M5+M6, C2=M1+M2+M4−M7, C3=M1+M2+M4+M5.
	u := matrix.FromRows([][]float64{
		{-1, 1, 0, 1, 0, 1, 0},
		{0, 0, 1, 0, 0, 1, 0},
		{1, 0, 0, -1, 1, -1, 0},
		{1, 0, 0, 0, 1, -1, 1},
	})
	v := matrix.FromRows([][]float64{
		{1, 1, 0, 0, -1, 0, 1},
		{-1, 0, 0, -1, 1, 0, -1},
		{0, 0, 1, 0, 0, 0, -1},
		{1, 0, 0, 1, 0, 1, 1},
	})
	w := matrix.FromRows([][]float64{
		{0, 1, 1, 0, 0, 0, 0},
		{1, 1, 0, 0, 1, 1, 0},
		{1, 1, 0, 1, 0, 0, -1},
		{1, 1, 0, 1, 1, 0, 0},
	})
	return Algorithm{Name: "winograd", M: 2, K: 2, N: 2, R: 7, U: u, V: v, W: w}
}

// seeds lists the verified nontrivial base algorithms available to the
// generator, keyed by shape. RegisterSeed adds more (e.g. from discovery).
var seeds = map[[3]int]Algorithm{}

func init() {
	RegisterSeed(Strassen())
}

// RegisterSeed verifies a and, if it improves on the current seed for its
// shape (strictly lower R), makes it available to the generator. It returns
// an error if the algorithm fails verification. Registering clears the
// generator memo so subsequent Generate calls see the new seed.
func RegisterSeed(a Algorithm) error {
	if err := a.Verify(); err != nil {
		return err
	}
	key := [3]int{a.M, a.K, a.N}
	if cur, ok := seeds[key]; ok && cur.R <= a.R {
		return nil
	}
	seeds[key] = a
	resetGenerateMemo()
	return nil
}

// SeedFor returns the registered seed for a shape, if any.
func SeedFor(m, k, n int) (Algorithm, bool) {
	a, ok := seeds[[3]int{m, k, n}]
	return a, ok
}
