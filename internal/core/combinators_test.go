package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fmmfam/internal/morton"
)

func TestKronStrassenStrassen(t *testing.T) {
	two := Kron(Strassen(), Strassen())
	if two.M != 4 || two.K != 4 || two.N != 4 || two.R != 49 {
		t.Fatalf("bad shape %s R=%d", two.ShapeString(), two.R)
	}
	if err := two.Verify(); err != nil {
		t.Fatal(err)
	}
	u, v, w := two.NNZ()
	if u != 144 || v != 144 || w != 144 {
		t.Fatalf("nnz(⊗U)=%d nnz(⊗V)=%d nnz(⊗W)=%d; want 12² each", u, v, w)
	}
	checkApply(t, two, 2, 2, 2, 3)
}

func TestKronHeterogeneous(t *testing.T) {
	h := Kron(Strassen(), Classical(2, 3, 2))
	if h.M != 4 || h.K != 6 || h.N != 4 || h.R != 7*12 {
		t.Fatalf("bad %s R=%d", h.ShapeString(), h.R)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	checkApply(t, h, 1, 1, 2, 4)
}

func TestKronAllThreeLevels(t *testing.T) {
	three := KronAll(Strassen(), Strassen(), Strassen())
	if three.M != 8 || three.R != 343 {
		t.Fatalf("bad three-level %s R=%d", three.ShapeString(), three.R)
	}
	if err := three.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestKronAllEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KronAll()
}

// The Kron combinator must equal the textbook Kronecker product with rows
// re-ordered by the Morton (recursive block) → flat permutation.
func TestKronMatchesMortonPermutedTextbookProduct(t *testing.T) {
	a, b := Strassen(), Classical(2, 1, 3)
	got := Kron(a, b)
	perm := morton.Permutation([]morton.Grid{{R: a.M, C: a.K}, {R: b.M, C: b.K}})
	for i1 := 0; i1 < a.M*a.K; i1++ {
		for i2 := 0; i2 < b.M*b.K; i2++ {
			rec := i1*(b.M*b.K) + i2
			for r1 := 0; r1 < a.R; r1++ {
				for r2 := 0; r2 < b.R; r2++ {
					want := a.U.At(i1, r1) * b.U.At(i2, r2)
					if got.U.At(perm[rec], r1*b.R+r2) != want {
						t.Fatalf("U mismatch at rec=%d r=(%d,%d)", rec, r1, r2)
					}
				}
			}
		}
	}
}

func TestRotatePreservesValidity(t *testing.T) {
	a := Classical(2, 3, 4)
	r := Rotate(a)
	if r.M != 3 || r.K != 4 || r.N != 2 {
		t.Fatalf("rotate shape %s", r.ShapeString())
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := Rotate(Strassen()).Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTransposePreservesValidity(t *testing.T) {
	a := Classical(2, 3, 4)
	tr := Transpose(a)
	if tr.M != 4 || tr.K != 3 || tr.N != 2 {
		t.Fatalf("transpose shape %s", tr.ShapeString())
	}
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRotateThriceIsIdentityShape(t *testing.T) {
	a := Classical(2, 3, 4)
	r3 := Rotate(Rotate(Rotate(a)))
	if r3.M != a.M || r3.K != a.K || r3.N != a.N {
		t.Fatalf("rotate³ shape %s", r3.ShapeString())
	}
	if r3.U.MaxAbsDiff(a.U) != 0 || r3.V.MaxAbsDiff(a.V) != 0 || r3.W.MaxAbsDiff(a.W) != 0 {
		t.Fatal("rotate³ is not the identity")
	}
}

func TestTransposeTwiceIsIdentity(t *testing.T) {
	a := Strassen()
	tt := Transpose(Transpose(a))
	if tt.U.MaxAbsDiff(a.U) != 0 || tt.V.MaxAbsDiff(a.V) != 0 || tt.W.MaxAbsDiff(a.W) != 0 {
		t.Fatal("transpose² is not the identity")
	}
}

func TestReorientAllSixOrientations(t *testing.T) {
	a := Classical(2, 3, 4)
	for _, s := range [][3]int{{2, 3, 4}, {2, 4, 3}, {3, 2, 4}, {3, 4, 2}, {4, 2, 3}, {4, 3, 2}} {
		ro, err := Reorient(a, s[0], s[1], s[2])
		if err != nil {
			t.Fatalf("reorient to %v: %v", s, err)
		}
		if err := ro.Verify(); err != nil {
			t.Fatalf("reorient to %v invalid: %v", s, err)
		}
	}
}

func TestReorientImpossible(t *testing.T) {
	if _, err := Reorient(Strassen(), 2, 2, 3); err == nil {
		t.Fatal("expected error")
	}
}

func TestDirectSumEachDim(t *testing.T) {
	s := Strassen()
	cases := []struct {
		name    string
		algo    Algorithm
		m, k, n int
		r       int
	}{
		{"N: <2,2,3>;11", DirectSum(DimN, s, Classical(2, 2, 1)), 2, 2, 3, 11},
		{"M: <3,2,2>;11", DirectSum(DimM, s, Classical(1, 2, 2)), 3, 2, 2, 11},
		{"K: <2,3,2>;11", DirectSum(DimK, s, Classical(2, 1, 2)), 2, 3, 2, 11},
	}
	for _, tc := range cases {
		if tc.algo.M != tc.m || tc.algo.K != tc.k || tc.algo.N != tc.n || tc.algo.R != tc.r {
			t.Fatalf("%s: got %s R=%d", tc.name, tc.algo.ShapeString(), tc.algo.R)
		}
		if err := tc.algo.Verify(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		checkApply(t, tc.algo, 2, 2, 2, 5)
	}
}

func TestDirectSumMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DirectSum(DimM, Strassen(), Classical(1, 3, 2))
}

// Property: random combinator expressions over verified algorithms stay
// verified. This exercises closure of the family under the generators.
func TestCombinatorClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := []Algorithm{Strassen(), Winograd(), Classical(1, 2, 1), Classical(2, 1, 2), Classical(1, 1, 2)}
		a := pool[rng.Intn(len(pool))]
		for step := 0; step < 3; step++ {
			switch rng.Intn(4) {
			case 0:
				a = Rotate(a)
			case 1:
				a = Transpose(a)
			case 2:
				b := pool[rng.Intn(len(pool))]
				if a.M*b.M*a.K*b.K*a.N*b.N <= 64 {
					a = Kron(a, b)
				}
			case 3:
				d := Dim(rng.Intn(3))
				var b Algorithm
				switch d {
				case DimM:
					b = Classical(1+rng.Intn(2), a.K, a.N)
				case DimK:
					b = Classical(a.M, 1+rng.Intn(2), a.N)
				default:
					b = Classical(a.M, a.K, 1+rng.Intn(2))
				}
				a = DirectSum(d, a, b)
			}
		}
		return a.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Every catalog algorithm stays valid under all six dimension permutations —
// the symmetry the generator's canonicalization relies on.
func TestCatalogReorientationClosure(t *testing.T) {
	if testing.Short() {
		t.Skip("23 shapes × 6 orientations")
	}
	for _, e := range Catalog() {
		dims := []int{e.M, e.K, e.N}
		perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		for _, p := range perms {
			ro, err := Reorient(e.Algorithm, dims[p[0]], dims[p[1]], dims[p[2]])
			if err != nil {
				t.Fatalf("%s → perm %v: %v", e.Shape(), p, err)
			}
			if err := ro.Verify(); err != nil {
				t.Fatalf("%s → perm %v invalid: %v", e.Shape(), p, err)
			}
			if ro.R != e.OurRank() {
				t.Fatalf("%s: rank changed under permutation", e.Shape())
			}
		}
	}
}

// nnz is preserved by permutations and multiplies under Kron.
func TestNNZInvariants(t *testing.T) {
	a := Generate(2, 3, 2)
	u0, v0, w0 := a.NNZ()
	r := Rotate(a)
	u1, v1, w1 := r.NNZ()
	if u0+v0+w0 != u1+v1+w1 {
		t.Fatal("rotation changed total nnz")
	}
	tp := Transpose(a)
	u2, v2, w2 := tp.NNZ()
	if u0+v0+w0 != u2+v2+w2 {
		t.Fatal("transpose changed total nnz")
	}
	kr := Kron(a, a)
	ku, kv, kw := kr.NNZ()
	if ku != u0*u0 || kv != v0*v0 || kw != w0*w0 {
		t.Fatalf("kron nnz (%d,%d,%d) != squares of (%d,%d,%d)", ku, kv, kw, u0, v0, w0)
	}
}

// Kron is associative up to coefficient equality (names differ).
func TestKronAssociativity(t *testing.T) {
	a, b, c := Strassen(), Classical(1, 2, 1), Generate(2, 2, 3)
	left := Kron(Kron(a, b), c)
	right := Kron(a, Kron(b, c))
	if left.M != right.M || left.K != right.K || left.N != right.N || left.R != right.R {
		t.Fatal("shape mismatch")
	}
	if left.U.MaxAbsDiff(right.U) != 0 || left.V.MaxAbsDiff(right.V) != 0 || left.W.MaxAbsDiff(right.W) != 0 {
		t.Fatal("Kron not associative")
	}
}

// Direct sums add ranks and nnz exactly.
func TestDirectSumAccounting(t *testing.T) {
	a, b := Strassen(), Classical(2, 2, 1)
	s := DirectSum(DimN, a, b)
	au, av, aw := a.NNZ()
	bu, bv, bw := b.NNZ()
	su, sv, sw := s.NNZ()
	if su != au+bu || sv != av+bv || sw != aw+bw {
		t.Fatalf("direct sum nnz (%d,%d,%d) != (%d,%d,%d)+(%d,%d,%d)", su, sv, sw, au, av, aw, bu, bv, bw)
	}
	if s.R != a.R+b.R {
		t.Fatal("rank not additive")
	}
}
