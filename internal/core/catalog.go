package core

import "fmt"

// CatalogEntry is one row of Figure 2 of the paper: an evaluated partition
// shape, the literature rank the paper reports, its provenance, and the
// algorithm our generator produces for that shape.
type CatalogEntry struct {
	M, K, N   int
	PaperRank int    // R in Figure 2
	PaperRef  string // source cited by Figure 2
	Algorithm Algorithm
}

// Shape renders the partition as the paper writes it.
func (e CatalogEntry) Shape() string { return fmt.Sprintf("<%d,%d,%d>", e.M, e.K, e.N) }

// OurRank is the rank of the generated algorithm for this shape.
func (e CatalogEntry) OurRank() int { return e.Algorithm.R }

// figure2Rows lists every ⟨m̃,k̃,ñ⟩ evaluated in Figure 2, with the rank and
// citation the paper gives.
var figure2Rows = []struct {
	m, k, n, r int
	ref        string
}{
	{2, 2, 2, 7, "Strassen [11]"},
	{2, 3, 2, 11, "Benson-Ballard [1]"},
	{2, 3, 4, 20, "Benson-Ballard [1]"},
	{2, 4, 3, 20, "Ballard et al. [10]"},
	{2, 5, 2, 18, "Ballard et al. [10]"},
	{3, 2, 2, 11, "Ballard et al. [10]"},
	{3, 2, 3, 15, "Ballard et al. [10]"},
	{3, 2, 4, 20, "Ballard et al. [10]"},
	{3, 3, 2, 15, "Ballard et al. [10]"},
	{3, 3, 3, 23, "Smirnov [12]"},
	{3, 3, 6, 40, "Smirnov [12]"},
	{3, 4, 2, 20, "Benson-Ballard [1]"},
	{3, 4, 3, 29, "Smirnov [12]"},
	{3, 5, 3, 36, "Smirnov [12]"},
	{3, 6, 3, 40, "Smirnov [12]"},
	{4, 2, 2, 14, "Ballard et al. [10]"},
	{4, 2, 3, 20, "Benson-Ballard [1]"},
	{4, 2, 4, 26, "Ballard et al. [10]"},
	{4, 3, 2, 20, "Ballard et al. [10]"},
	{4, 3, 3, 29, "Ballard et al. [10]"},
	{4, 4, 2, 26, "Ballard et al. [10]"},
	{5, 2, 2, 18, "Ballard et al. [10]"},
	{6, 3, 3, 40, "Smirnov [12]"},
}

// Catalog returns the Figure-2 family: one entry per shape the paper
// evaluates, each carrying the generator's algorithm for that shape. The
// slice is freshly built on each call (entries share coefficient storage via
// the generator memo, which callers must treat as read-only).
func Catalog() []CatalogEntry {
	out := make([]CatalogEntry, len(figure2Rows))
	for i, row := range figure2Rows {
		out[i] = CatalogEntry{
			M: row.m, K: row.k, N: row.n,
			PaperRank: row.r,
			PaperRef:  row.ref,
			Algorithm: Generate(row.m, row.k, row.n).Rename(fmt.Sprintf("gen<%d,%d,%d>", row.m, row.k, row.n)),
		}
	}
	return out
}

// CatalogShape returns the catalog entry for one shape, or false if the shape
// is not part of the Figure-2 family.
func CatalogShape(m, k, n int) (CatalogEntry, bool) {
	for _, row := range figure2Rows {
		if row.m == m && row.k == k && row.n == n {
			return CatalogEntry{
				M: m, K: k, N: n,
				PaperRank: row.r,
				PaperRef:  row.ref,
				Algorithm: Generate(m, k, n).Rename(fmt.Sprintf("gen<%d,%d,%d>", m, k, n)),
			}, true
		}
	}
	return CatalogEntry{}, false
}
