package core

import (
	"math/rand"
	"strings"
	"testing"

	"fmmfam/internal/matrix"
)

// brute-force check that a.Apply matches the reference product on random
// matrices whose dimensions are sm/sk/sn multiples of the partition.
func checkApply(t *testing.T, a Algorithm, sm, sk, sn int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	am := matrix.New[float64](a.M*sm, a.K*sk)
	bm := matrix.New[float64](a.K*sk, a.N*sn)
	am.FillRand(rng)
	bm.FillRand(rng)
	c := matrix.New[float64](a.M*sm, a.N*sn)
	c.FillRand(rng)
	want := c.Clone()
	matrix.MulAdd(want, am, bm)
	a.Apply(c, am, bm)
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("%s Apply diverges from reference by %g", a, d)
	}
}

func TestStrassenVerifies(t *testing.T) {
	if err := Strassen().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestWinogradVerifies(t *testing.T) {
	if err := Winograd().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestClassicalVerifies(t *testing.T) {
	for _, s := range [][3]int{{1, 1, 1}, {2, 2, 2}, {3, 2, 4}, {1, 5, 2}} {
		if err := Classical(s[0], s[1], s[2]).Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStrassenApplyMatchesReference(t *testing.T) {
	checkApply(t, Strassen(), 3, 4, 5, 1)
}

func TestWinogradApplyMatchesReference(t *testing.T) {
	checkApply(t, Winograd(), 4, 3, 2, 2)
}

func TestVerifyRejectsCorruptedStrassen(t *testing.T) {
	a := Strassen()
	a.U = a.U.Clone()
	a.U.Set(0, 0, 0) // knock out one coefficient
	if a.Verify() == nil {
		t.Fatal("corrupted algorithm passed verification")
	}
}

func TestVerifyRejectsBadDims(t *testing.T) {
	a := Strassen()
	a.R = 6
	if err := a.Verify(); err == nil || !strings.Contains(err.Error(), "U is") {
		t.Fatalf("want dimension error, got %v", err)
	}
	b := Strassen()
	b.M = 0
	if b.Verify() == nil {
		t.Fatal("bad partition accepted")
	}
}

func TestNNZStrassen(t *testing.T) {
	u, v, w := Strassen().NNZ()
	if u != 12 || v != 12 || w != 12 {
		t.Fatalf("Strassen nnz = %d,%d,%d; want 12,12,12", u, v, w)
	}
}

func TestTheoreticalSpeedup(t *testing.T) {
	s := Strassen().TheoreticalSpeedup()
	if s < 0.142 || s > 0.143 {
		t.Fatalf("Strassen theoretical speedup %v, want 1/7", s)
	}
	if Classical(3, 3, 3).TheoreticalSpeedup() != 0 {
		t.Fatal("classical speedup must be 0")
	}
}

func TestShapeString(t *testing.T) {
	if s := Strassen().ShapeString(); s != "<2,2,2>" {
		t.Fatalf("got %q", s)
	}
}

func TestApplyPanicsOnIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := Strassen()
	a.Apply(matrix.New[float64](3, 4), matrix.New[float64](3, 4), matrix.New[float64](4, 4))
}

func TestMustVerifyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := Strassen()
	a.U = matrix.New[float64](4, 7) // all zeros
	a.MustVerify()
}
