package core

import (
	"fmt"
	"sort"
	"sync"
)

// The generator performs dynamic programming over the closure of the seed
// algorithms under direct sums (all splits of each dimension), Kronecker
// products (all component-wise factorizations) and dimension permutations,
// taking the classical algorithm as the base case. The result for any shape
// is a verified algorithm with the smallest rank reachable from the seeds.
//
// This is the "generating families" substrate of the paper: the paper takes
// its ⟦U,V,W⟧ inputs from the searches of Benson–Ballard [1] and Smirnov
// [12]; those coefficient files are external data, so we reconstruct a family
// from first principles (see DESIGN.md §3/§5). Ranks that the closure
// reproduces exactly include ⟨2,2,2⟩;7, ⟨2,3,2⟩;11, ⟨2,5,2⟩;18, ⟨4,2,2⟩;14
// and all their permutations; for the Smirnov shapes our ranks are higher
// (e.g. ⟨3,3,3⟩;26 vs 23) and EXPERIMENTS.md reports both.

var (
	genMu   sync.Mutex
	genMemo map[[3]int]Algorithm
)

func resetGenerateMemo() {
	genMu.Lock()
	genMemo = nil
	genMu.Unlock()
}

// Generate returns the lowest-rank algorithm for shape ⟨m,k,n⟩ reachable from
// the registered seeds, verified. Dimensions must be ≥ 1; the generator is
// intended for the small partition dimensions used in practice (≤ ~8).
func Generate(m, k, n int) Algorithm {
	if m < 1 || k < 1 || n < 1 {
		panic(fmt.Sprintf("core: Generate(%d,%d,%d)", m, k, n))
	}
	genMu.Lock()
	defer genMu.Unlock()
	if genMemo == nil {
		genMemo = map[[3]int]Algorithm{}
	}
	return generateLocked(m, k, n)
}

func generateLocked(m, k, n int) Algorithm {
	key := [3]int{m, k, n}
	if a, ok := genMemo[key]; ok {
		return a
	}
	// Canonicalize to the sorted shape: rank is invariant under the six
	// dimension permutations, and solving one orientation suffices.
	s := [3]int{m, k, n}
	sort.Ints(s[:])
	var best Algorithm
	if s == key {
		best = bestCanonicalLocked(s[0], s[1], s[2])
	} else {
		canon := generateLocked(s[0], s[1], s[2])
		var err error
		best, err = Reorient(canon, m, k, n)
		if err != nil {
			panic(err) // unreachable: canon has the same multiset of dims
		}
	}
	genMemo[key] = best
	return best
}

// bestCanonicalLocked solves the DP for a sorted shape m ≤ k ≤ n.
func bestCanonicalLocked(m, k, n int) Algorithm {
	best := Classical(m, k, n)
	consider := func(a Algorithm) {
		if a.R < best.R {
			best = a
		}
	}
	// Seeds, in any orientation.
	for _, perm := range [][3]int{{m, k, n}, {m, n, k}, {k, m, n}, {k, n, m}, {n, m, k}, {n, k, m}} {
		if s, ok := seeds[perm]; ok {
			if ro, err := Reorient(s, m, k, n); err == nil {
				consider(ro)
			}
		}
	}
	// Direct sums: split each dimension d = d1 + d2.
	type split struct {
		dim   Dim
		total int
		sub   func(d1 int) ([3]int, [3]int)
	}
	splits := []split{
		{DimM, m, func(d1 int) ([3]int, [3]int) { return [3]int{d1, k, n}, [3]int{m - d1, k, n} }},
		{DimK, k, func(d1 int) ([3]int, [3]int) { return [3]int{m, d1, n}, [3]int{m, k - d1, n} }},
		{DimN, n, func(d1 int) ([3]int, [3]int) { return [3]int{m, k, d1}, [3]int{m, k, n - d1} }},
	}
	for _, sp := range splits {
		for d1 := 1; d1 <= sp.total/2; d1++ {
			s1, s2 := sp.sub(d1)
			a := generateLocked(s1[0], s1[1], s1[2])
			b := generateLocked(s2[0], s2[1], s2[2])
			if a.R+b.R < best.R {
				consider(DirectSum(sp.dim, a, b))
			}
		}
	}
	// Kronecker factorizations: (m,k,n) = (m1·m2, k1·k2, n1·n2), nontrivial.
	for _, m1 := range divisors(m) {
		for _, k1 := range divisors(k) {
			for _, n1 := range divisors(n) {
				m2, k2, n2 := m/m1, k/k1, n/n1
				if m1*k1*n1 == 1 || m2*k2*n2 == 1 {
					continue
				}
				a := generateLocked(m1, k1, n1)
				b := generateLocked(m2, k2, n2)
				if a.R*b.R < best.R {
					consider(Kron(a, b))
				}
			}
		}
	}
	return best
}

func divisors(n int) []int {
	var ds []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
		}
	}
	return ds
}
