package stability

import (
	"testing"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/gemm"
)

func cfg() gemm.Config { return gemm.Config{MC: 16, KC: 16, NC: 32, Threads: 1} }

func TestMeasureErrorsAreTiny(t *testing.T) {
	p := fmmexec.MustNewPlan[float64](cfg(), fmmexec.ABC, core.Strassen())
	r := Measure(p, 48, 48, 48, 1)
	if r.MaxErr <= 0 || r.MaxErr > 1e-11 {
		t.Fatalf("Strassen error %g out of expected range", r.MaxErr)
	}
	if r.GemmErr <= 0 || r.GemmErr > 1e-12 {
		t.Fatalf("GEMM error %g out of expected range", r.GemmErr)
	}
	if r.RelErr <= 0 || r.RelErr > 1e-10 {
		t.Fatalf("relative error %g", r.RelErr)
	}
	if r.Plan != "<2,2,2> ABC" {
		t.Fatalf("plan name %q", r.Plan)
	}
}

func TestFMMLessAccurateThanGemm(t *testing.T) {
	// The paper's stability caveat: Strassen's error exceeds classical GEMM's.
	p := fmmexec.MustNewPlan[float64](cfg(), fmmexec.ABC, core.Strassen(), core.Strassen())
	r := Measure(p, 64, 64, 64, 2)
	if r.MaxErr <= r.GemmErr {
		t.Fatalf("expected FMM err %g > gemm err %g", r.MaxErr, r.GemmErr)
	}
}

func TestLevelSweepErrorGrows(t *testing.T) {
	rs, err := LevelSweep(cfg(), core.Strassen(), fmmexec.ABC, 3, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	// Error is expected to grow (not necessarily strictly) with levels;
	// require three levels to be worse than one.
	if rs[2].MaxErr <= rs[0].MaxErr {
		t.Fatalf("3-level error %g not above 1-level %g", rs[2].MaxErr, rs[0].MaxErr)
	}
}

func TestLevelSweepValidates(t *testing.T) {
	if _, err := LevelSweep(cfg(), core.Strassen(), fmmexec.ABC, 0, 16, 1); err == nil {
		t.Fatal("maxLevels 0 accepted")
	}
}
