// Package stability measures the forward error of FMM implementations
// against a compensated-summation reference, quantifying the numerical
// degradation the paper cites as the reason only a few recursion levels are
// used in practice (§2.2, refs [8,9,10]).
package stability

import (
	"fmt"
	"math/rand"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/gemm"
	"fmmfam/internal/matrix"
)

// Result is one error measurement.
type Result struct {
	Plan    string
	M, K, N int
	MaxErr  float64 // max elementwise |FMM − Kahan reference|
	RelErr  float64 // MaxErr normalized by max |reference|
	GemmErr float64 // same metric for the plain blocked GEMM, as a floor
}

// Measure runs plan and the plain GEMM baseline on random uniform [-1,1)
// inputs of the given size and reports both errors against the Kahan oracle.
func Measure(p *fmmexec.Plan[float64], m, k, n int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	a, b := matrix.New[float64](m, k), matrix.New[float64](k, n)
	a.FillRand(rng)
	b.FillRand(rng)

	ref := matrix.New[float64](m, n)
	matrix.MulAddKahan(ref, a, b)
	scale := ref.MaxAbs()
	if scale == 0 {
		scale = 1
	}

	cf := matrix.New[float64](m, n)
	p.MulAdd(cf, a, b)

	cg := matrix.New[float64](m, n)
	p.Context().MulAdd(cg, a, b)

	return Result{
		Plan: p.String(),
		M:    m, K: k, N: n,
		MaxErr:  cf.MaxAbsDiff(ref),
		RelErr:  cf.MaxAbsDiff(ref) / scale,
		GemmErr: cg.MaxAbsDiff(ref),
	}
}

// LevelSweep measures the error growth of repeated self-composition of algo
// (1..maxLevels levels), the experiment behind the observation that FMM
// "becomes more numerically unstable particularly when more than two levels
// of recursion are employed".
func LevelSweep(cfg gemm.Config, algo core.Algorithm, variant fmmexec.Variant, maxLevels, size int, seed int64) ([]Result, error) {
	if maxLevels < 1 {
		return nil, fmt.Errorf("stability: maxLevels %d", maxLevels)
	}
	var out []Result
	levels := []core.Algorithm{}
	for l := 1; l <= maxLevels; l++ {
		levels = append(levels, algo)
		p, err := fmmexec.NewPlan[float64](cfg, variant, levels...)
		if err != nil {
			return nil, err
		}
		out = append(out, Measure(p, size, size, size, seed))
	}
	return out, nil
}
