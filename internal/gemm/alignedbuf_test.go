package gemm

import (
	"testing"
	"unsafe"
)

// TestAlignedBuf sweeps sizes and alignments through alignedBuf and checks
// the three properties its unsafe.Pointer arithmetic must uphold: the
// returned slice has exactly the requested length, its first element is
// aligned to align·sizeof(E) bytes, and every element is writable (full
// capacity is clipped to the aligned window, so an off-by-one in the offset
// computation trips the bounds check — or, under -asan, the shadow poison
// of the over-allocation's redzone). CI runs this package with -asan on
// linux/amd64 for exactly that reason.
func TestAlignedBuf(t *testing.T) {
	checkBuf := func(t *testing.T, buf []float64, n, align int) {
		t.Helper()
		if len(buf) != n {
			t.Fatalf("alignedBuf(%d, %d): len = %d", n, align, len(buf))
		}
		if n == 0 {
			return
		}
		if cap(buf) != n {
			t.Errorf("alignedBuf(%d, %d): cap = %d, want clipped to %d", n, align, cap(buf), n)
		}
		if align > 1 {
			size := unsafe.Sizeof(buf[0])
			addr := uintptr(unsafe.Pointer(&buf[0]))
			if addr%(uintptr(align)*size) != 0 {
				t.Errorf("alignedBuf(%d, %d): first element at %#x not %d-element aligned", n, align, addr, align)
			}
		}
		// Touch every element, first and last especially: reads/writes past
		// the aligned window are what -asan exists to catch.
		for i := range buf {
			buf[i] = float64(i)
		}
		if buf[0] != 0 || buf[n-1] != float64(n-1) {
			t.Errorf("alignedBuf(%d, %d): readback mismatch", n, align)
		}
	}
	for _, n := range []int{0, 1, 2, 3, 7, 8, 15, 64, 1023, 4096} {
		for _, align := range []int{0, 1, 2, 4, 8, 16} {
			checkBuf(t, alignedBuf[float64](n, align), n, align)
		}
	}
}

// TestAlignedBufFloat32 pins the element-size arithmetic for the narrower
// dtype: alignment is in elements, so align 8 means 32 bytes for float32,
// not 64.
func TestAlignedBufFloat32(t *testing.T) {
	for _, align := range []int{2, 4, 8, 16} {
		buf := alignedBuf[float32](100, align)
		if len(buf) != 100 {
			t.Fatalf("len = %d", len(buf))
		}
		size := unsafe.Sizeof(buf[0])
		addr := uintptr(unsafe.Pointer(&buf[0]))
		if addr%(uintptr(align)*size) != 0 {
			t.Errorf("align %d: first element at %#x not aligned to %d bytes", align, addr, uintptr(align)*size)
		}
		for i := range buf {
			buf[i] = float32(i)
		}
	}
}
