// Package gemm implements the GotoBLAS/BLIS five-loop matrix multiplication
// driver of Figure 1 (left) of the paper over the micro-kernel and packing
// routines of internal/kernel — generalized, as in Figure 1 (right), to the
// fused operation
//
//	M := (Σ u_t·A_t)·(Σ v_t·B_t);   C_t += w_t·M  for every C-side term,
//
// which is the building block every generated FMM variant is assembled from.
// Plain GEMM is the degenerate single-term call, so the baseline and all FMM
// implementations share packing and kernel code exactly as in the paper.
//
// The driver is generic over the element type: Context[float64] is the
// historical bit-stable engine, Context[float32] runs the same five loops
// over float32 panels with half the memory traffic. Each instantiation is
// fully specialized — there is no boxing or dynamic dtype dispatch on the
// hot path.
//
// Parallelism mirrors the paper (§5.1): the third loop around the
// micro-kernel (the ic loop over mC-sized row panels of A) is divided among
// goroutines, the Go analogue of the OpenMP data parallelism of [20].
//
// Concurrency contract: a Context is immutable after construction and safe
// for unlimited concurrent callers. All mutable state (the Ã/B̃ packing
// buffers) lives in per-call Workspaces rented from a bounded pool, so
// concurrent multiplications never contend on shared buffers.
package gemm

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
	"fmmfam/internal/sched"
)

// Term re-exports kernel.Term: one weighted operand of a fused combination.
type Term[E matrix.Element] = kernel.Term[E]

// SingleTerm wraps a matrix as the trivial combination 1.0·M.
func SingleTerm[E matrix.Element](m matrix.Mat[E]) []Term[E] { return kernel.SingleTerm(m) }

// Config carries the cache blocking parameters {mC, kC, nC} of Figure 1, the
// worker count, and the micro-kernel backend selection. The defaults suit the
// pure-Go micro-kernel: Ã(mC×kC) ≈ 192 KiB target L2 residency, B̃(kC×nC)
// sized for L3, as in §5.1. The blocking is expressed in elements, so one
// Config serves both dtypes (a float32 context simply fits twice the
// elements per cache byte).
type Config struct {
	MC, KC, NC int
	Threads    int

	// Kernel selects the registered micro-kernel backend by name; empty means
	// kernel.DefaultBackend. The blocking must satisfy the backend's tile
	// shape: MC ≥ MR, NC ≥ NR.
	Kernel string

	// WorkspacePoolSpan, when positive, sets how many concurrent workspace
	// renters the context's pool provisions for (the idle-retention count),
	// overriding the default 2·Threads when larger. The FMM executor's BFS
	// traversal rents one workspace per parallel term job from a Threads=1
	// context, so it sets this to its fan-out — without it the single-
	// threaded pool would retain 2 workspaces and every fan-out beyond that
	// would allocate fresh packing buffers on each call. The
	// maxRetainedFloats cap still bounds total retained memory. Zero keeps
	// the default; negative is invalid.
	WorkspacePoolSpan int
}

// DefaultConfig returns the blocking used throughout the experiments.
func DefaultConfig() Config {
	return Config{MC: 96, KC: 256, NC: 2048, Threads: 1}
}

// Parallel returns c with Threads set to the machine's logical CPU count.
func (c Config) Parallel() Config {
	c.Threads = runtime.GOMAXPROCS(0)
	return c
}

// Validate checks the driver-facing configuration for the default (float64)
// element type: the kernel backend must be registered, Threads ≥ 1, and the
// blocking must fit the backend's micro-tile (MC ≥ MR, KC ≥ 1, NC ≥ NR).
// ValidateFor is the dtype-explicit form; together they are the single
// source of these rules — the top-level fmmfam.Config.Validate delegates
// here.
func (c Config) Validate() error {
	return ValidateFor[float64](c)
}

// ValidateFor checks the driver-facing configuration against the backends
// registered for element type E; see Config.Validate.
func ValidateFor[E matrix.Element](c Config) error {
	_, err := resolveBackend[E](c)
	return err
}

// resolveBackend validates c and returns its micro-kernel backend for
// element type E, so construction paths resolve the registry exactly once.
func resolveBackend[E matrix.Element](c Config) (kernel.Backend[E], error) {
	bk, err := kernel.Resolve[E](c.Kernel)
	if err != nil {
		return nil, fmt.Errorf("gemm: %w", err)
	}
	if c.Threads < 1 {
		return nil, fmt.Errorf("gemm: Threads=%d, need ≥ 1", c.Threads)
	}
	if c.WorkspacePoolSpan < 0 {
		return nil, fmt.Errorf("gemm: WorkspacePoolSpan=%d, need ≥ 0 (0 = 2·Threads)", c.WorkspacePoolSpan)
	}
	if c.MC < bk.MR() || c.KC < 1 || c.NC < bk.NR() {
		return nil, fmt.Errorf("gemm: blocking MC=%d KC=%d NC=%d too small for kernel %s (needs MC ≥ %d, KC ≥ 1, NC ≥ %d)",
			c.MC, c.KC, c.NC, bk.Name(), bk.MR(), bk.NR())
	}
	return bk, nil
}

// Context is the immutable kernel driver for one element type: a validated
// Config plus a bounded pool of packing Workspaces. It is safe for any
// number of concurrent callers — every MulAdd/FusedMulAdd rents a Workspace
// from the pool for the duration of the call, so calls never share mutable
// state — and each call additionally exploits parallelism internally
// (Config.Threads workers).
type Context[E matrix.Element] struct {
	cfg  Config
	bk   kernel.Backend[E]
	pool *workspacePool[E]
	// sp is the context's bounded worker budget for packing and ic-loop
	// fan-out. All goroutine fan-out rides internal/sched (the detorder
	// analyzer enforces this): the pool's non-blocking token budget keeps
	// concurrent callers from oversubscribing the machine, and nested calls
	// degrade to serial instead of deadlocking.
	sp *sched.Pool

	// fast marks the default backend, whose inner loops run through the
	// specialized free functions of internal/kernel (direct calls, constant
	// MR/NR) instead of interface dispatch — the micro-kernel is invoked once
	// per MR×NR output tile, where dynamic dispatch and variable-divisor
	// index math are measurable. Other backends take the generic path.
	fast bool
}

// NewContext validates cfg, resolves its micro-kernel backend for element
// type E, and prepares the workspace pool (one workspace is pre-allocated so
// the first call does not pay the allocation).
func NewContext[E matrix.Element](cfg Config) (*Context[E], error) {
	bk, err := resolveBackend[E](cfg)
	if err != nil {
		return nil, err
	}
	ctx := &Context[E]{cfg: cfg, bk: bk, pool: newWorkspacePool[E](cfg, bk), sp: sched.NewPool(cfg.Threads), fast: bk.Name() == kernel.DefaultBackend}
	ctx.pool.put(newWorkspace[E](cfg, bk))
	return ctx, nil
}

// MustNewContext is NewContext for known-good configs.
func MustNewContext[E matrix.Element](cfg Config) *Context[E] {
	ctx, err := NewContext[E](cfg)
	if err != nil {
		panic(err)
	}
	return ctx
}

// Config returns the context's configuration.
func (ctx *Context[E]) Config() Config { return ctx.cfg }

// Backend returns the micro-kernel backend the context drives.
func (ctx *Context[E]) Backend() kernel.Backend[E] { return ctx.bk }

// MulAdd computes c += a·b (plain GEMM through the fused path). Safe for
// concurrent callers.
func (ctx *Context[E]) MulAdd(c, a, b matrix.Mat[E]) {
	ctx.FusedMulAdd(kernel.SingleTerm(c), kernel.SingleTerm(a), kernel.SingleTerm(b))
}

// MulAddWS is MulAdd with a caller-managed Workspace; see FusedMulAddWS.
func (ctx *Context[E]) MulAddWS(ws *Workspace[E], c, a, b matrix.Mat[E]) {
	ctx.FusedMulAddWS(ws, kernel.SingleTerm(c), kernel.SingleTerm(a), kernel.SingleTerm(b))
}

// GetWorkspace rents a workspace from the context's pool; return it with
// PutWorkspace. Callers issuing many back-to-back operations (e.g. the FMM
// executor's per-term loop) rent once and use the *WS entry points so the
// pool is not hit once per operation.
func (ctx *Context[E]) GetWorkspace() *Workspace[E] { return ctx.pool.get() }

// PutWorkspace returns a rented workspace to the pool.
func (ctx *Context[E]) PutWorkspace(ws *Workspace[E]) { ctx.pool.put(ws) }

// FusedMulAdd executes the generalized operation. All A-side terms must have
// equal dimensions m×k, B-side k×n, C-side m×n. Safe for concurrent callers.
func (ctx *Context[E]) FusedMulAdd(cTerms, aTerms, bTerms []Term[E]) {
	ws := ctx.pool.get()
	defer ctx.pool.put(ws)
	ctx.FusedMulAddWS(ws, cTerms, aTerms, bTerms)
}

// FusedMulAddWS is FusedMulAdd with a caller-managed Workspace (see
// NewWorkspace). The workspace must have been sized for this context's
// Config and element type and must not be used by another call concurrently.
func (ctx *Context[E]) FusedMulAddWS(ws *Workspace[E], cTerms, aTerms, bTerms []Term[E]) {
	m, k := dims(aTerms, "A")
	k2, n := dims(bTerms, "B")
	mc, nc2 := dims(cTerms, "C")
	if k != k2 || m != mc || n != nc2 {
		panic(fmt.Sprintf("gemm: fused dims C(%d×%d) += A(%d×%d)·B(%d×%d)", mc, nc2, m, k, k2, n))
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	cfg := ctx.cfg
	for jc := 0; jc < n; jc += cfg.NC {
		ncur := min(cfg.NC, n-jc)
		for pc := 0; pc < k; pc += cfg.KC {
			kcur := min(cfg.KC, k-pc)
			ctx.packB(ws, bTerms, pc, jc, kcur, ncur)
			ctx.icLoop(ws, cTerms, aTerms, pc, jc, m, kcur, ncur)
		}
	}
}

// packB fills the B̃ buffer, splitting the column-panel range across workers
// when parallel (packing is memory-bound and, for FMM term lists, a large
// serial fraction otherwise — BLIS likewise packs in parallel).
func (ctx *Context[E]) packB(ws *Workspace[E], bTerms []Term[E], pc, jc, kcur, ncur int) {
	nr := ctx.bk.NR()
	panels := (ncur + nr - 1) / nr
	workers := min(ctx.cfg.Threads, panels)
	if workers <= 1 {
		ctx.bk.PackB(ws.bbuf, bTerms, pc, jc, kcur, ncur)
		return
	}
	// One job per panel chunk, run on the context's sched.Pool (the caller
	// participates, helpers join as the shared budget allows). Chunks write
	// disjoint B̃ panel ranges, so the packed buffer is bit-identical under
	// any schedule.
	chunk := (panels + workers - 1) / workers
	jobs := make([]sched.Job, 0, workers)
	for lo := 0; lo < panels; lo += chunk {
		lo, hi := lo, min(lo+chunk, panels)
		jobs = append(jobs, sched.Job{
			Cost: int64(hi-lo) * int64(kcur),
			Run: func() {
				ctx.bk.PackBRange(ws.bbuf, bTerms, pc, jc, kcur, ncur, lo, hi)
			},
		})
	}
	ctx.sp.Run(jobs)
}

// icLoop runs the third loop around the micro-kernel, parallelized over
// mC-sized row panels.
func (ctx *Context[E]) icLoop(ws *Workspace[E], cTerms, aTerms []Term[E], pc, jc, m, kcur, ncur int) {
	cfg := ctx.cfg
	nBlocks := (m + cfg.MC - 1) / cfg.MC
	workers := min(cfg.Threads, nBlocks)
	if workers <= 1 {
		for ic := 0; ic < m; ic += cfg.MC {
			ctx.macroKernel(ws, ws.abufs[0], ws.acc(0), cTerms, aTerms, ic, pc, jc, min(cfg.MC, m-ic), kcur, ncur)
		}
		return
	}
	// One job per worker slot on the context's sched.Pool: job w exclusively
	// owns Ã buffer and accumulator w (each job runs exactly once, so no two
	// goroutines ever share a buffer), and a shared atomic counter deals out
	// MC row-blocks dynamically — the same schedule the previous bare-
	// goroutine fan-out realized, now drawing from the bounded worker budget.
	// Blocks write disjoint C row panels, so C is bit-identical under any
	// schedule.
	var nextBlock atomic.Int64
	jobCost := int64(nBlocks/workers+1) * int64(cfg.MC) * int64(kcur)
	jobs := make([]sched.Job, workers)
	for w := range jobs {
		abuf, acc := ws.abufs[w], ws.acc(w)
		jobs[w] = sched.Job{
			Cost: jobCost,
			Run: func() {
				for {
					b := int(nextBlock.Add(1)) - 1
					if b >= nBlocks {
						return
					}
					ic := b * cfg.MC
					ctx.macroKernel(ws, abuf, acc, cTerms, aTerms, ic, pc, jc, min(cfg.MC, m-ic), kcur, ncur)
				}
			},
		}
	}
	ctx.sp.Run(jobs)
}

// macroKernel packs one Ã block and sweeps the second and first loops around
// the micro-kernel, scattering each register tile into every C-side term.
// abuf and acc are the calling worker's private Ã buffer and accumulator
// tile.
//
//fmm:hotpath
func (ctx *Context[E]) macroKernel(ws *Workspace[E], abuf, acc []E, cTerms, aTerms []Term[E], ic, pc, jc, mcur, kcur, ncur int) {
	if ctx.fast {
		macroKernelDefault(ws, abuf, cTerms, aTerms, ic, pc, jc, mcur, kcur, ncur)
		return
	}
	bk := ctx.bk
	mrk, nrk := bk.MR(), bk.NR()
	bk.PackA(abuf, aTerms, ic, pc, mcur, kcur)
	for jr := 0; jr < ncur; jr += nrk {
		nr := min(nrk, ncur-jr)
		bp := ws.bbuf[(jr/nrk)*kcur*nrk:]
		for ir := 0; ir < mcur; ir += mrk {
			mr := min(mrk, mcur-ir)
			ap := abuf[(ir/mrk)*mrk*kcur:]
			bk.Micro(kcur, ap, bp, acc)
			for _, ct := range cTerms {
				bk.Scatter(ct.M, ic+ir, jc+jr, ct.Coef, acc, mr, nr)
			}
		}
	}
}

// macroKernelDefault is macroKernel devirtualized for the default backend:
// identical loop structure, but the packing, micro-kernel, and scatter are
// the specialized free functions with MR/NR as compile-time constants and a
// stack-resident accumulator tile — byte-for-byte the pre-interface hot
// loop, instantiated once per element type. It performs the same arithmetic
// in the same order as the generic path over the go4x4 backend, so results
// stay bit-identical either way.
//
//fmm:hotpath
func macroKernelDefault[E matrix.Element](ws *Workspace[E], abuf []E, cTerms, aTerms []Term[E], ic, pc, jc, mcur, kcur, ncur int) {
	kernel.PackA(abuf, aTerms, ic, pc, mcur, kcur)
	var acc [kernel.MR * kernel.NR]E
	for jr := 0; jr < ncur; jr += kernel.NR {
		nr := min(kernel.NR, ncur-jr)
		bp := ws.bbuf[(jr/kernel.NR)*kcur*kernel.NR:]
		for ir := 0; ir < mcur; ir += kernel.MR {
			mr := min(kernel.MR, mcur-ir)
			ap := abuf[(ir/kernel.MR)*kernel.MR*kcur:]
			kernel.Micro(kcur, ap, bp, &acc)
			for _, ct := range cTerms {
				kernel.Scatter(ct.M, ic+ir, jc+jr, ct.Coef, &acc, mr, nr)
			}
		}
	}
}

func dims[E matrix.Element](terms []Term[E], side string) (r, c int) {
	if len(terms) == 0 {
		panic("gemm: empty " + side + " term list")
	}
	r, c = terms[0].M.Rows, terms[0].M.Cols
	for _, t := range terms[1:] {
		if t.M.Rows != r || t.M.Cols != c {
			panic(fmt.Sprintf("gemm: ragged %s terms: %d×%d vs %d×%d", side, t.M.Rows, t.M.Cols, r, c))
		}
	}
	return r, c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
