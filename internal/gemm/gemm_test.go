package gemm

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
)

func smallCfg() Config { return Config{MC: 8, KC: 8, NC: 16, Threads: 1} }

func randMat(rng *rand.Rand, r, c int) matrix.Mat[float64] {
	m := matrix.New[float64](r, c)
	m.FillRand(rng)
	return m
}

func TestMulAddMatchesReferenceVariedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ctx := MustNewContext[float64](smallCfg())
	shapes := [][3]int{
		{1, 1, 1}, {4, 4, 4}, {5, 7, 3}, {8, 8, 8}, {9, 17, 33},
		{16, 1, 16}, {1, 32, 1}, {33, 9, 2}, {40, 40, 40},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		c := randMat(rng, m, n)
		want := c.Clone()
		matrix.MulAdd(want, a, b)
		ctx.MulAdd(c, a, b)
		if d := c.MaxAbsDiff(want); d > 1e-10 {
			t.Fatalf("shape %v: diff %g", s, d)
		}
	}
}

func TestMulAddLargeBlocksCrossingAllLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ctx := MustNewContext[float64](Config{MC: 12, KC: 10, NC: 20, Threads: 1})
	// Sizes chosen to exercise partial blocks in every one of the 5 loops.
	m, k, n := 37, 23, 45
	a, b := randMat(rng, m, k), randMat(rng, k, n)
	c := randMat(rng, m, n)
	want := c.Clone()
	matrix.MulAdd(want, a, b)
	ctx.MulAdd(c, a, b)
	if d := c.MaxAbsDiff(want); d > 1e-10 {
		t.Fatalf("diff %g", d)
	}
}

func TestMulAddOnViews(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ctx := MustNewContext[float64](smallCfg())
	big := randMat(rng, 30, 30)
	a := big.View(2, 3, 10, 9)
	b := big.View(12, 0, 9, 11)
	c := matrix.New[float64](10, 11)
	want := matrix.New[float64](10, 11)
	matrix.MulAdd(want, a, b)
	ctx.MulAdd(c, a, b)
	if d := c.MaxAbsDiff(want); d > 1e-10 {
		t.Fatalf("diff %g", d)
	}
}

func TestFusedMulAddStrassenRow(t *testing.T) {
	// The representative computation of Fig. 1 (right):
	// M = (X+Y)(V+W); C += M; D -= M.
	rng := rand.New(rand.NewSource(4))
	ctx := MustNewContext[float64](smallCfg())
	x, y := randMat(rng, 12, 10), randMat(rng, 12, 10)
	v, w := randMat(rng, 10, 14), randMat(rng, 10, 14)
	c, d := randMat(rng, 12, 14), randMat(rng, 12, 14)
	wantC, wantD := c.Clone(), d.Clone()

	xs := x.Clone()
	xs.AddScaled(1, y)
	vs := v.Clone()
	vs.AddScaled(1, w)
	mtmp := matrix.New[float64](12, 14)
	matrix.MulAdd(mtmp, xs, vs)
	wantC.AddScaled(1, mtmp)
	wantD.AddScaled(-1, mtmp)

	ctx.FusedMulAdd(
		[]Term[float64]{{Coef: 1, M: c}, {Coef: -1, M: d}},
		[]Term[float64]{{Coef: 1, M: x}, {Coef: 1, M: y}},
		[]Term[float64]{{Coef: 1, M: v}, {Coef: 1, M: w}},
	)
	if c.MaxAbsDiff(wantC) > 1e-10 || d.MaxAbsDiff(wantD) > 1e-10 {
		t.Fatal("fused Strassen row diverges from explicit computation")
	}
}

func TestFusedMulAddFractionalCoefs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := MustNewContext[float64](smallCfg())
	a1, a2 := randMat(rng, 9, 9), randMat(rng, 9, 9)
	b1 := randMat(rng, 9, 9)
	c := matrix.New[float64](9, 9)
	as := a1.Clone()
	as.Scale(0.5)
	as.AddScaled(-1.5, a2)
	want := matrix.New[float64](9, 9)
	matrix.MulAdd(want, as, b1)
	ctx.FusedMulAdd(
		kernel.SingleTerm(c),
		[]Term[float64]{{Coef: 0.5, M: a1}, {Coef: -1.5, M: a2}},
		kernel.SingleTerm(b1),
	)
	if d := c.MaxAbsDiff(want); d > 1e-10 {
		t.Fatalf("diff %g", d)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, k, n := 67, 41, 53
	a, b := randMat(rng, m, k), randMat(rng, k, n)
	c1, c2 := matrix.New[float64](m, n), matrix.New[float64](m, n)
	serial := MustNewContext[float64](Config{MC: 8, KC: 16, NC: 32, Threads: 1})
	parallel := MustNewContext[float64](Config{MC: 8, KC: 16, NC: 32, Threads: 4})
	serial.MulAdd(c1, a, b)
	parallel.MulAdd(c2, a, b)
	if d := c1.MaxAbsDiff(c2); d != 0 {
		t.Fatalf("parallel result differs by %g", d)
	}
}

func TestParallelFusedMultiC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randMat(rng, 40, 24), randMat(rng, 24, 36)
	c1a, c1b := matrix.New[float64](40, 36), matrix.New[float64](40, 36)
	c2a, c2b := matrix.New[float64](40, 36), matrix.New[float64](40, 36)
	serial := MustNewContext[float64](Config{MC: 8, KC: 8, NC: 16, Threads: 1})
	parallel := MustNewContext[float64](Config{MC: 8, KC: 8, NC: 16, Threads: 3})
	serial.FusedMulAdd([]Term[float64]{{Coef: 1, M: c1a}, {Coef: -2, M: c1b}}, kernel.SingleTerm(a), kernel.SingleTerm(b))
	parallel.FusedMulAdd([]Term[float64]{{Coef: 1, M: c2a}, {Coef: -2, M: c2b}}, kernel.SingleTerm(a), kernel.SingleTerm(b))
	if c1a.MaxAbsDiff(c2a) != 0 || c1b.MaxAbsDiff(c2b) != 0 {
		t.Fatal("parallel fused result differs")
	}
}

func TestEmptyDimsNoop(t *testing.T) {
	ctx := MustNewContext[float64](smallCfg())
	c := matrix.New[float64](3, 3)
	c.Fill(1)
	ctx.MulAdd(c, matrix.New[float64](3, 0), matrix.New[float64](0, 3))
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != 1 {
				t.Fatal("k=0 must be a no-op")
			}
		}
	}
}

func TestNewContextRejectsBadConfig(t *testing.T) {
	if _, err := NewContext[float64](Config{MC: 2, KC: 8, NC: 16, Threads: 1}); err == nil {
		t.Fatal("MC < MR accepted")
	}
	if _, err := NewContext[float64](Config{MC: 8, KC: 8, NC: 16, Threads: 0}); err == nil {
		t.Fatal("0 threads accepted")
	}
}

func TestDimMismatchPanics(t *testing.T) {
	ctx := MustNewContext[float64](smallCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctx.MulAdd(matrix.New[float64](3, 3), matrix.New[float64](3, 4), matrix.New[float64](3, 3))
}

func TestRaggedTermsPanics(t *testing.T) {
	ctx := MustNewContext[float64](smallCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctx.FusedMulAdd(
		kernel.SingleTerm(matrix.New[float64](4, 4)),
		[]Term[float64]{{Coef: 1, M: matrix.New[float64](4, 4)}, {Coef: 1, M: matrix.New[float64](4, 5)}},
		kernel.SingleTerm(matrix.New[float64](4, 4)),
	)
}

// Property: GEMM through the blocked driver equals the reference for random
// shapes and random blocking parameters.
func TestBlockedEqualsReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			MC:      4 * (1 + rng.Intn(4)),
			KC:      1 + rng.Intn(24),
			NC:      4 * (1 + rng.Intn(6)),
			Threads: 1 + rng.Intn(3),
		}
		ctx := MustNewContext[float64](cfg)
		m, k, n := 1+rng.Intn(30), 1+rng.Intn(30), 1+rng.Intn(30)
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		c := randMat(rng, m, n)
		want := c.Clone()
		matrix.MulAdd(want, a, b)
		ctx.MulAdd(c, a, b)
		return c.MaxAbsDiff(want) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExtremeBlockingKC1(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ctx := MustNewContext[float64](Config{MC: 4, KC: 1, NC: 4, Threads: 1})
	a, b := randMat(rng, 9, 7), randMat(rng, 7, 5)
	c := matrix.New[float64](9, 5)
	want := matrix.New[float64](9, 5)
	matrix.MulAdd(want, a, b)
	ctx.MulAdd(c, a, b)
	if d := c.MaxAbsDiff(want); d > 1e-10 {
		t.Fatalf("KC=1 diff %g", d)
	}
}

// TestContextConcurrentCallers drives one Context from many goroutines (each
// itself running internally parallel) and checks results against the
// reference — the workspace-pool contract, meaningful under -race.
func TestContextConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx := MustNewContext[float64](Config{MC: 8, KC: 8, NC: 16, Threads: 2})
	type job struct{ a, b, want matrix.Mat[float64] }
	shapes := [][3]int{{20, 14, 18}, {33, 9, 25}, {8, 8, 8}, {17, 40, 5}}
	jobs := make([]job, len(shapes))
	for i, s := range shapes {
		a, b := randMat(rng, s[0], s[1]), randMat(rng, s[1], s[2])
		want := matrix.New[float64](s[0], s[2])
		matrix.MulAdd(want, a, b)
		jobs[i] = job{a, b, want}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				j := jobs[(g+it)%len(jobs)]
				c := matrix.New[float64](j.want.Rows, j.want.Cols)
				ctx.MulAdd(c, j.a, j.b)
				if d := c.MaxAbsDiff(j.want); d > 1e-10 {
					t.Errorf("goroutine %d: diff %g", g, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWorkspacePoolBounded checks the pool's rent/return discipline: returns
// beyond the bound are dropped rather than queued or blocking.
func TestWorkspacePoolBounded(t *testing.T) {
	cfg := smallCfg()
	p := newWorkspacePool(cfg, kernel.MustResolve[float64](cfg.Kernel))
	bound := workspacePoolBound[float64](cfg, kernel.MustResolve[float64](cfg.Kernel))
	for i := 0; i < bound+3; i++ {
		p.put(NewWorkspace[float64](cfg)) // must not block past the bound
	}
	if got := len(p.free); got != bound {
		t.Fatalf("pool retained %d workspaces, bound is %d", got, bound)
	}
	for i := 0; i < bound+3; i++ {
		if p.get() == nil { // empties the pool, then falls back to fresh allocs
			t.Fatal("nil workspace")
		}
	}
}

// TestWorkspacePoolBoundRespectsMemoryCap: when one workspace alone exceeds
// maxRetainedFloats the bound must drop to 0 — retain nothing, allocate
// fresh on every get — instead of the old floor of 2, which silently kept
// two oversized workspaces (far past the documented cap) warm forever.
func TestWorkspacePoolBoundRespectsMemoryCap(t *testing.T) {
	huge := Config{MC: 1 << 10, KC: 1 << 10, NC: 1 << 14, Threads: 4}
	per := kernel.PackBBufLen(huge.KC, huge.NC) + huge.Threads*kernel.PackABufLen(huge.MC, huge.KC)
	if per <= maxRetainedFloats {
		t.Fatalf("test config too small to exceed the cap: %d ≤ %d", per, maxRetainedFloats)
	}
	if got := workspacePoolBound[float64](huge, kernel.MustResolve[float64](huge.Kernel)); got != 0 {
		t.Fatalf("bound %d for an over-cap workspace, want 0", got)
	}
	// An empty pool must still serve gets (fresh allocations) and drop puts.
	p := newWorkspacePool(huge, kernel.MustResolve[float64](huge.Kernel))
	ws := p.get()
	if ws == nil {
		t.Fatal("nil workspace from empty pool")
	}
	p.put(ws) // must not block
	if len(p.free) != 0 {
		t.Fatal("zero-bound pool retained a workspace")
	}
	// Small configs still retain 2×Threads.
	small := smallCfg()
	if got, want := workspacePoolBound[float64](small, kernel.MustResolve[float64](small.Kernel)), 2*small.Threads; got != want {
		t.Fatalf("bound %d for small config, want %d", got, want)
	}
}

func TestOperandsAsStridedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	big := randMat(rng, 64, 64)
	a := big.View(1, 1, 20, 30)
	b := big.View(25, 10, 30, 22)
	cHost := matrix.New[float64](40, 40)
	c := cHost.View(3, 5, 20, 22)
	want := matrix.New[float64](20, 22)
	matrix.MulAdd(want, a, b)
	MustNewContext[float64](Config{MC: 8, KC: 8, NC: 16, Threads: 2}).MulAdd(c, a, b)
	if d := c.Clone().MaxAbsDiff(want); d > 1e-10 {
		t.Fatalf("view diff %g", d)
	}
	// The host matrix outside the view must be untouched.
	if cHost.At(0, 0) != 0 || cHost.At(39, 39) != 0 || cHost.At(2, 5) != 0 {
		t.Fatal("write leaked outside the C view")
	}
}

func TestManyCTermsScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := randMat(rng, 12, 12), randMat(rng, 12, 12)
	targets := make([]Term[float64], 5)
	for i := range targets {
		targets[i] = Term[float64]{Coef: float64(i) - 2, M: matrix.New[float64](12, 12)}
	}
	MustNewContext[float64](smallCfg()).FusedMulAdd(targets, kernel.SingleTerm(a), kernel.SingleTerm(b))
	prod := matrix.New[float64](12, 12)
	matrix.MulAdd(prod, a, b)
	for i, tm := range targets {
		want := matrix.New[float64](12, 12)
		want.AddScaled(float64(i)-2, prod)
		if d := tm.M.MaxAbsDiff(want); d > 1e-10 {
			t.Fatalf("target %d diff %g", i, d)
		}
	}
}

// TestDefaultBackendBitIdenticalGolden pins the default backend's output to
// the exact bit pattern it produced before the Backend interface existed
// (hashes captured from the PR-3 tree on amd64). The default kernel's
// numerics are a compatibility surface — the serving layer's bit-determinism
// contracts and cross-version reproducibility stand on it — so any refactor
// of the kernel seam must keep these fingerprints stable. Skipped off amd64:
// the Go spec lets other architectures fuse a*b+c into FMA, which rounds
// differently, so the goldens are per-architecture by nature.
func TestDefaultBackendBitIdenticalGolden(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden fingerprints captured on amd64; GOARCH=%s may fuse FMA", runtime.GOARCH)
	}
	rng := rand.New(rand.NewSource(2024))
	a, b := randMat(rng, 129, 67), randMat(rng, 67, 93)
	c := randMat(rng, 129, 93)
	MustNewContext[float64](Config{MC: 96, KC: 256, NC: 2048, Threads: 1}).MulAdd(c, a, b)
	if got := c.Fingerprint(); got != 0xc8256f6c555923f0 {
		t.Errorf("plain MulAdd fingerprint %#x, want %#x (default backend no longer bit-identical)", got, uint64(0xc8256f6c555923f0))
	}

	rng = rand.New(rand.NewSource(77))
	x, y := randMat(rng, 40, 24), randMat(rng, 40, 24)
	v, w := randMat(rng, 24, 36), randMat(rng, 24, 36)
	c1, c2 := randMat(rng, 40, 36), randMat(rng, 40, 36)
	MustNewContext[float64](Config{MC: 8, KC: 8, NC: 16, Threads: 3}).FusedMulAdd(
		[]Term[float64]{{Coef: 1, M: c1}, {Coef: -0.5, M: c2}},
		[]Term[float64]{{Coef: 1, M: x}, {Coef: 0.25, M: y}},
		[]Term[float64]{{Coef: 1, M: v}, {Coef: -1, M: w}},
	)
	if got := c1.Fingerprint(); got != 0x6f376137339adffa {
		t.Errorf("fused C1 fingerprint %#x, want %#x", got, uint64(0x6f376137339adffa))
	}
	if got := c2.Fingerprint(); got != 0xbda2c638fe5c9862 {
		t.Errorf("fused C2 fingerprint %#x, want %#x", got, uint64(0xbda2c638fe5c9862))
	}
}

// TestKernelSelection: a context built with Config.Kernel drives the named
// backend, its results match the reference, and an unknown name is rejected
// at construction.
func TestKernelSelection(t *testing.T) {
	if _, err := NewContext[float64](Config{MC: 8, KC: 8, NC: 16, Threads: 1, Kernel: "no-such-kernel"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	for _, name := range kernel.Backends() {
		bk := kernel.MustResolve[float64](name)
		cfg := Config{MC: 2 * bk.MR(), KC: 8, NC: 2 * bk.NR(), Threads: 2, Kernel: name}
		ctx, err := NewContext[float64](cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := ctx.Backend().Name(); got != name {
			t.Fatalf("context drives %q, want %q", got, name)
		}
		rng := rand.New(rand.NewSource(21))
		a, b := randMat(rng, 37, 29), randMat(rng, 29, 41)
		c := matrix.New[float64](37, 41)
		want := matrix.New[float64](37, 41)
		matrix.MulAdd(want, a, b)
		ctx.MulAdd(c, a, b)
		if d := c.MaxAbsDiff(want); d > 1e-10 {
			t.Fatalf("%s: diff %g", name, d)
		}
	}
}

// TestValidateRejectsBlockingBelowBackendTile: the blocking floor is the
// selected backend's micro-tile, not the package default's — MC=4 is fine
// for go4x4 but must be rejected for the 8-row go8x4 tile.
func TestValidateRejectsBlockingBelowBackendTile(t *testing.T) {
	if _, err := NewContext[float64](Config{MC: 4, KC: 8, NC: 16, Threads: 1}); err != nil {
		t.Fatalf("MC=4 must be valid for the default 4×4 backend: %v", err)
	}
	if _, err := NewContext[float64](Config{MC: 4, KC: 8, NC: 16, Threads: 1, Kernel: "go8x4"}); err == nil {
		t.Fatal("MC=4 accepted for the 8×4 backend")
	}
}

// alignedBuf's property tests live in alignedbuf_test.go; CI additionally
// runs this package with -asan to shadow-check the unsafe.Pointer offset
// arithmetic.
