package gemm

import (
	"testing"

	"fmmfam/internal/kernel"
)

// TestWorkspacePoolSpanRaisesBound: a declared per-call renter count above
// 2×Threads (the FMM executor's BFS fan-out rents one workspace per term
// job) widens the pool so steady-state fan-out recycles instead of
// allocating — still capped by maxRetainedFloats.
func TestWorkspacePoolSpanRaisesBound(t *testing.T) {
	cfg := smallCfg()
	bk := kernel.MustResolve[float64](cfg.Kernel)
	base := workspacePoolBound[float64](cfg, bk)

	cfg.WorkspacePoolSpan = base + 7
	if got := workspacePoolBound[float64](cfg, bk); got != base+7 {
		t.Fatalf("bound %d with span %d, want %d", got, base+7, base+7)
	}
	// A span below the default is a no-op, not a shrink.
	cfg.WorkspacePoolSpan = 1
	if got := workspacePoolBound[float64](cfg, bk); got != base {
		t.Fatalf("bound %d with small span, want default %d", got, base)
	}
	// The memory cap still wins over an absurd span.
	cfg.WorkspacePoolSpan = 1 << 30
	per := bk.PackBBufLen(cfg.KC, cfg.NC) + cfg.Threads*bk.PackABufLen(cfg.MC, cfg.KC)
	if got, lim := workspacePoolBound[float64](cfg, bk), maxRetainedFloats/per; got != lim {
		t.Fatalf("bound %d with huge span, want cap %d", got, lim)
	}
}

// TestWorkspacePoolSpanValidation: negative spans are a config error; zero
// and positive construct fine.
func TestWorkspacePoolSpanValidation(t *testing.T) {
	cfg := smallCfg()
	cfg.WorkspacePoolSpan = -1
	if _, err := NewContext[float64](cfg); err == nil {
		t.Fatal("negative WorkspacePoolSpan accepted")
	}
	cfg.WorkspacePoolSpan = 8
	if _, err := NewContext[float64](cfg); err != nil {
		t.Fatal(err)
	}
}
