package gemm_test

// External test package so the fuzz target can delegate to the conformance
// suite's differential check (conformance imports gemm, so an internal test
// would be a cycle) — the tolerance formula and naive-reference construction
// live in exactly one place.

import (
	"testing"

	"fmmfam/internal/kernel/conformance"
)

// FuzzFusedMulAddVsNaive differentially fuzzes the fused driver on the
// default backend against the naive triple-loop reference: random shapes,
// random blocking, random coefficient lists on all three sides (including
// multiple fused C-side terms), compared with a FLOP-scaled tolerance — the
// two evaluations associate the same real polynomial differently, so the
// admissible gap grows with the reduction depth k. The seed corpus pins the
// PR-3 K-split acceptance shapes (K-dominant problems whose slab products
// stress deep reductions) alongside fringe-heavy shapes.
func FuzzFusedMulAddVsNaive(f *testing.F) {
	// PR-3 acceptance shapes (serving_test.go TestShardedKSplit).
	f.Add(int64(1), uint16(48), uint16(512), uint16(48), uint8(1), uint8(1), uint8(1))
	f.Add(int64(2), uint16(40), uint16(513), uint16(52), uint8(2), uint8(1), uint8(2))
	f.Add(int64(3), uint16(64), uint16(1024), uint16(80), uint8(1), uint8(2), uint8(1))
	// Fringe-heavy and degenerate shapes.
	f.Add(int64(4), uint16(1), uint16(1), uint16(1), uint8(1), uint8(1), uint8(3))
	f.Add(int64(5), uint16(37), uint16(23), uint16(45), uint8(3), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, m16, k16, n16 uint16, nA8, nB8, nC8 uint8) {
		conformance.DifferentialCheck[float64](t, "", seed, m16, k16, n16, nA8, nB8, nC8)
	})
}
