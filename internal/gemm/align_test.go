package gemm

import (
	"fmt"
	"testing"
	"unsafe"

	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
)

// alignStub is a minimal Backend whose only interesting property is its
// declared tile shape and alignment: exactly what workspace construction
// consults. Pack/Micro/Scatter are never called here.
type alignStub[E matrix.Element] struct {
	mr, nr, align int
}

func (s alignStub[E]) Name() string { return "alignstub" }
func (s alignStub[E]) MR() int      { return s.mr }
func (s alignStub[E]) NR() int      { return s.nr }
func (s alignStub[E]) Align() int   { return s.align }
func (s alignStub[E]) PackA(dst []E, terms []kernel.Term[E], r0, c0, mc, kc int) int {
	return 0
}
func (s alignStub[E]) PackB(dst []E, terms []kernel.Term[E], r0, c0, kc, nc int) int {
	return 0
}
func (s alignStub[E]) PackBRange(dst []E, terms []kernel.Term[E], r0, c0, kc, nc, lo, hi int) {}
func (s alignStub[E]) Micro(kc int, ap, bp, acc []E)                                          {}
func (s alignStub[E]) Scatter(m matrix.Mat[E], r0, c0 int, coef E, acc []E, mr, nr int)       {}
func (s alignStub[E]) PackABufLen(mc, kc int) int {
	return ((mc + s.mr - 1) / s.mr) * s.mr * kc
}
func (s alignStub[E]) PackBBufLen(kc, nc int) int {
	return ((nc + s.nr - 1) / s.nr) * s.nr * kc
}

// elemAligned reports whether the first element of buf sits on an
// align-element boundary.
func elemAligned[E matrix.Element](buf []E, align int) bool {
	if len(buf) == 0 || align <= 1 {
		return true
	}
	return uintptr(unsafe.Pointer(&buf[0]))%(uintptr(align)*unsafe.Sizeof(buf[0])) == 0
}

// testWorkspacePanelAlignment is the property the SIMD backends stand on:
// for any Align ∈ {1, 4, 8} elements (1 = scalar, 4 = 32 bytes of float64,
// 8 = 32 bytes of float32), every packed buffer newWorkspace hands a backend
// starts on an Align-element boundary, and every Ã row-panel start inside
// the buffer does too whenever the backend's panel stride (MR·kc) is a
// multiple of Align — which holds for both avx2 tile shapes at any kc. B̃
// column-panel starts are additionally checked when the stride kc·NR happens
// to be Align-divisible; the avx2 kernels only broadcast single elements
// from B̃, so only the buffer start carries a hard guarantee there.
func testWorkspacePanelAlignment[E matrix.Element](t *testing.T) {
	shapes := []struct{ mr, nr int }{
		{8, 6},  // avx2 float64 tile
		{16, 6}, // avx2 float32 tile
		{16, 8}, // B̃-panel-aligned shape: kc·NR divisible by every tested Align
	}
	for _, align := range []int{1, 4, 8} {
		for _, sh := range shapes {
			for _, blk := range []struct{ mc, kc, nc, threads int }{
				{sh.mr, 1, sh.nr, 1},
				{2*sh.mr + 1, 7, 2*sh.nr + 3, 3},
				{3 * sh.mr, 5, 3 * sh.nr, 2},
			} {
				name := fmt.Sprintf("align%d/mr%d_nr%d/mc%d_kc%d_nc%d_t%d",
					align, sh.mr, sh.nr, blk.mc, blk.kc, blk.nc, blk.threads)
				bk := alignStub[E]{mr: sh.mr, nr: sh.nr, align: align}
				cfg := Config{MC: blk.mc, KC: blk.kc, NC: blk.nc, Threads: blk.threads, Kernel: "alignstub"}
				ws := newWorkspace[E](cfg, bk)
				if !elemAligned(ws.bbuf, align) {
					t.Fatalf("%s: B̃ buffer start misaligned", name)
				}
				for w, abuf := range ws.abufs {
					if !elemAligned(abuf, align) {
						t.Fatalf("%s: Ã buffer %d start misaligned", name, w)
					}
					if (sh.mr*blk.kc)%align == 0 {
						for off := 0; off < len(abuf); off += sh.mr * blk.kc {
							if !elemAligned(abuf[off:], align) {
								t.Fatalf("%s: Ã panel at element %d misaligned", name, off)
							}
						}
					}
					if !elemAligned(ws.accs[w], align) {
						t.Fatalf("%s: acc tile %d start misaligned", name, w)
					}
				}
				if (blk.kc*sh.nr)%align == 0 {
					for off := 0; off < len(ws.bbuf); off += blk.kc * sh.nr {
						if !elemAligned(ws.bbuf[off:], align) {
							t.Fatalf("%s: B̃ panel at element %d misaligned", name, off)
						}
					}
				}
			}
		}
	}
}

// TestWorkspacePanelAlignment asserts (not just computes) the Backend.Align
// contract for both element types; the construction-time assertAligned check
// backs the same property in production builds.
func TestWorkspacePanelAlignment(t *testing.T) {
	t.Run("float64", testWorkspacePanelAlignment[float64])
	t.Run("float32", testWorkspacePanelAlignment[float32])
}

// TestWorkspaceBackendAlignment pins the property on the real registered
// backends, including avx2 where this host registers it: the workspaces the
// driver actually rents satisfy each backend's own declared alignment.
func TestWorkspaceBackendAlignment(t *testing.T) {
	for _, name := range kernel.BackendsFor(matrix.Float64) {
		bk := kernel.MustResolve[float64](name)
		cfg := Config{MC: 2 * bk.MR(), KC: 7, NC: 2 * bk.NR(), Threads: 2, Kernel: name}
		ws := newWorkspace[float64](cfg, bk)
		if !elemAligned(ws.bbuf, bk.Align()) {
			t.Fatalf("%s: B̃ start misaligned", name)
		}
		for w, abuf := range ws.abufs {
			if !elemAligned(abuf, bk.Align()) {
				t.Fatalf("%s: Ã %d start misaligned", name, w)
			}
		}
	}
}
