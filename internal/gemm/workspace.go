package gemm

import "fmmfam/internal/kernel"

// Workspace holds the mutable per-call state of one FusedMulAdd execution:
// the shared B̃ packing buffer and one Ã packing buffer per worker. A
// Workspace is rented from the Context's pool at the start of every
// multiplication and returned when it finishes, so a single Context can
// serve any number of concurrent callers while steady-state calls still
// allocate nothing.
type Workspace struct {
	bbuf  []float64
	abufs [][]float64 // one Ã per worker
}

// NewWorkspace allocates packing buffers sized for cfg. Most callers never
// need this — Context rents workspaces internally — but it is exposed for
// callers that want to manage workspace lifetime themselves (e.g. arena-style
// reuse in tight custom loops).
func NewWorkspace(cfg Config) *Workspace {
	ws := &Workspace{
		bbuf:  make([]float64, kernel.PackBBufLen(cfg.KC, cfg.NC)),
		abufs: make([][]float64, cfg.Threads),
	}
	for i := range ws.abufs {
		ws.abufs[i] = make([]float64, kernel.PackABufLen(cfg.MC, cfg.KC))
	}
	return ws
}

// workspacePool is a bounded free list of Workspaces for one Context. Get
// falls back to allocating a fresh Workspace when the pool is empty, and Put
// drops the workspace (leaving it to the GC) when the pool already retains
// its bound — so concurrency is never limited by the pool, only the idle
// memory kept warm is.
//
// A plain sync.Pool would also work, but its retention policy is opaque
// (cleared on every GC cycle) and unbounded between cycles; a fixed-capacity
// channel gives a hard cap on retained packing memory, which matters because
// one Workspace is O(KC·NC + Threads·MC·KC) floats.
type workspacePool struct {
	cfg  Config
	free chan *Workspace
}

// maxRetainedFloats caps the idle packing memory one Context keeps warm
// (≈64 MiB of float64s). Without it the retained memory would scale as
// O(Threads²): 2·Threads pooled workspaces, each holding Threads Ã buffers.
const maxRetainedFloats = 1 << 23

// workspacePoolBound returns how many idle workspaces a context retains:
// enough that a steady stream of Threads-wide concurrent callers recycles
// buffers instead of allocating, bounded so total retained packing memory
// stays under maxRetainedFloats on many-core machines. The bound may be 0 —
// when a single workspace already exceeds the cap, nothing is retained and
// every get allocates fresh (get and put handle an empty pool) — rather
// than silently keeping oversized workspaces alive past the documented cap.
func workspacePoolBound(cfg Config) int {
	per := kernel.PackBBufLen(cfg.KC, cfg.NC) + cfg.Threads*kernel.PackABufLen(cfg.MC, cfg.KC)
	n := 2 * cfg.Threads
	if lim := maxRetainedFloats / per; n > lim {
		n = lim
	}
	return n
}

func newWorkspacePool(cfg Config) *workspacePool {
	return &workspacePool{cfg: cfg, free: make(chan *Workspace, workspacePoolBound(cfg))}
}

func (p *workspacePool) get() *Workspace {
	select {
	case ws := <-p.free:
		return ws
	default:
		return NewWorkspace(p.cfg)
	}
}

func (p *workspacePool) put(ws *Workspace) {
	select {
	case p.free <- ws:
	default: // pool full: drop, the GC reclaims it
	}
}
