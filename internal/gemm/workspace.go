package gemm

import (
	"fmt"
	"unsafe"

	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
)

// Workspace holds the mutable per-call state of one FusedMulAdd execution:
// the shared B̃ packing buffer, and one Ã packing buffer — plus, for
// non-default backends, one micro-tile accumulator — per worker. A Workspace
// is rented from the Context's pool at the start of every multiplication and
// returned when it finishes, so a single Context can serve any number of
// concurrent callers while steady-state calls still allocate nothing.
// Buffer sizes and the accumulator tile derive from the configured backend's
// MR/NR, and buffer starts honor the backend's alignment requirement — a
// Workspace is only valid for Contexts configured with the same Config
// (including Kernel) and the same element type: the buffers are typed []E,
// so a float32 workspace can never be handed to a float64 call (the
// mixed-dtype pooling tests at the top layer pin this).
type Workspace[E matrix.Element] struct {
	bbuf  []E
	abufs [][]E // one Ã per worker
	// accs holds one MR×NR accumulator tile per worker for the generic
	// macro-kernel path; nil for the default backend, whose devirtualized
	// path uses a stack-resident tile instead.
	accs [][]E
}

// acc returns worker w's accumulator tile (nil for the default backend).
func (ws *Workspace[E]) acc(w int) []E {
	if ws.accs == nil {
		return nil
	}
	return ws.accs[w]
}

// NewWorkspace allocates packing buffers sized and aligned for cfg's backend
// at element type E. Most callers never need this — Context rents workspaces
// internally — but it is exposed for callers that want to manage workspace
// lifetime themselves (e.g. arena-style reuse in tight custom loops).
// NewWorkspace panics on an unknown cfg.Kernel; validate the config first
// (NewContext does).
func NewWorkspace[E matrix.Element](cfg Config) *Workspace[E] {
	return newWorkspace[E](cfg, kernel.MustResolve[E](cfg.Kernel))
}

func newWorkspace[E matrix.Element](cfg Config, bk kernel.Backend[E]) *Workspace[E] {
	align := bk.Align()
	ws := &Workspace[E]{
		bbuf:  alignedBuf[E](bk.PackBBufLen(cfg.KC, cfg.NC), align),
		abufs: make([][]E, cfg.Threads),
	}
	generic := bk.Name() != kernel.DefaultBackend
	if generic {
		ws.accs = make([][]E, cfg.Threads)
	}
	for i := range ws.abufs {
		ws.abufs[i] = alignedBuf[E](bk.PackABufLen(cfg.MC, cfg.KC), align)
		if generic {
			ws.accs[i] = alignedBuf[E](bk.MR()*bk.NR(), align)
		}
	}
	// Assert — not just compute — the backend's alignment contract on every
	// packed-panel start. A SIMD backend that declared Align and received a
	// misaligned panel would at best run slow and at worst fault on aligned
	// loads; catching the breach here, once per workspace construction, costs
	// a few pointer mods and names the offending buffer.
	assertAligned(ws.bbuf, align, "B̃")
	for i := range ws.abufs {
		assertAligned(ws.abufs[i], align, "Ã")
		if generic {
			assertAligned(ws.accs[i], align, "acc")
		}
	}
	return ws
}

// assertAligned panics when a packed buffer's start violates the backend's
// element-granular alignment requirement — an internal invariant of
// alignedBuf, checked at workspace construction (never on the hot path).
func assertAligned[E matrix.Element](buf []E, align int, what string) {
	if align <= 1 || len(buf) == 0 {
		return
	}
	addr := uintptr(unsafe.Pointer(&buf[0]))
	if addr%(uintptr(align)*unsafe.Sizeof(buf[0])) != 0 {
		panic(fmt.Sprintf("gemm: %s packing buffer start %#x violates backend alignment of %d elements", what, addr, align))
	}
}

// alignedBuf returns a length-n element slice whose first element is aligned
// to align·sizeof(E) bytes, over-allocating by up to align−1 elements when
// needed. Pure-Go backends use align=1 (any); SIMD backends need their
// vector width in elements.
func alignedBuf[E matrix.Element](n, align int) []E {
	if align <= 1 || n == 0 {
		return make([]E, n)
	}
	buf := make([]E, n+align-1)
	size := unsafe.Sizeof(buf[0])
	rem := int((uintptr(unsafe.Pointer(&buf[0])) / size) % uintptr(align))
	off := 0
	if rem != 0 {
		off = align - rem
	}
	return buf[off : off+n : off+n]
}

// workspacePool is a bounded free list of Workspaces for one Context. Get
// falls back to allocating a fresh Workspace when the pool is empty, and Put
// drops the workspace (leaving it to the GC) when the pool already retains
// its bound — so concurrency is never limited by the pool, only the idle
// memory kept warm is.
//
// A plain sync.Pool would also work, but its retention policy is opaque
// (cleared on every GC cycle) and unbounded between cycles; a fixed-capacity
// channel gives a hard cap on retained packing memory, which matters because
// one Workspace is O(KC·NC + Threads·MC·KC) elements.
type workspacePool[E matrix.Element] struct {
	cfg  Config
	bk   kernel.Backend[E]
	free chan *Workspace[E]
}

// maxRetainedFloats caps the idle packing memory one Context keeps warm, in
// elements (≈64 MiB of float64s, ≈32 MiB of float32s). Without it the
// retained memory would scale as O(Threads²): 2·Threads pooled workspaces,
// each holding Threads Ã buffers.
const maxRetainedFloats = 1 << 23

// workspacePoolBound returns how many idle workspaces a context retains:
// enough that a steady stream of Threads-wide concurrent callers recycles
// buffers instead of allocating — or, when Config.WorkspacePoolSpan declares
// a larger per-call renter count (the FMM executor's BFS fan-out rents one
// workspace per term job), enough for that — bounded so total retained
// packing memory stays under maxRetainedFloats on many-core machines. The
// bound may be 0 — when a single workspace already exceeds the cap, nothing
// is retained and every get allocates fresh (get and put handle an empty
// pool) — rather than silently keeping oversized workspaces alive past the
// documented cap.
func workspacePoolBound[E matrix.Element](cfg Config, bk kernel.Backend[E]) int {
	per := bk.PackBBufLen(cfg.KC, cfg.NC) + cfg.Threads*bk.PackABufLen(cfg.MC, cfg.KC)
	n := 2 * cfg.Threads
	if cfg.WorkspacePoolSpan > n {
		n = cfg.WorkspacePoolSpan
	}
	if lim := maxRetainedFloats / per; n > lim {
		n = lim
	}
	return n
}

func newWorkspacePool[E matrix.Element](cfg Config, bk kernel.Backend[E]) *workspacePool[E] {
	return &workspacePool[E]{cfg: cfg, bk: bk, free: make(chan *Workspace[E], workspacePoolBound(cfg, bk))}
}

func (p *workspacePool[E]) get() *Workspace[E] {
	select {
	case ws := <-p.free:
		return ws
	default:
		return newWorkspace[E](p.cfg, p.bk)
	}
}

func (p *workspacePool[E]) put(ws *Workspace[E]) {
	select {
	case p.free <- ws:
	default: // pool full: drop, the GC reclaims it
	}
}
