package gemm

import (
	"unsafe"

	"fmmfam/internal/kernel"
)

// Workspace holds the mutable per-call state of one FusedMulAdd execution:
// the shared B̃ packing buffer, and one Ã packing buffer — plus, for
// non-default backends, one micro-tile accumulator — per worker. A Workspace
// is rented from the Context's pool at the start of every multiplication and
// returned when it finishes, so a single Context can serve any number of
// concurrent callers while steady-state calls still allocate nothing.
// Buffer sizes and the accumulator tile derive from the configured backend's
// MR/NR, and buffer starts honor the backend's alignment requirement — a
// Workspace is only valid for Contexts configured with the same Config
// (including Kernel).
type Workspace struct {
	bbuf  []float64
	abufs [][]float64 // one Ã per worker
	// accs holds one MR×NR accumulator tile per worker for the generic
	// macro-kernel path; nil for the default backend, whose devirtualized
	// path uses a stack-resident tile instead.
	accs [][]float64
}

// acc returns worker w's accumulator tile (nil for the default backend).
func (ws *Workspace) acc(w int) []float64 {
	if ws.accs == nil {
		return nil
	}
	return ws.accs[w]
}

// NewWorkspace allocates packing buffers sized and aligned for cfg's backend.
// Most callers never need this — Context rents workspaces internally — but it
// is exposed for callers that want to manage workspace lifetime themselves
// (e.g. arena-style reuse in tight custom loops). NewWorkspace panics on an
// unknown cfg.Kernel; validate the config first (NewContext does).
func NewWorkspace(cfg Config) *Workspace {
	return newWorkspace(cfg, kernel.MustResolve(cfg.Kernel))
}

func newWorkspace(cfg Config, bk kernel.Backend) *Workspace {
	align := bk.Align()
	ws := &Workspace{
		bbuf:  alignedBuf(bk.PackBBufLen(cfg.KC, cfg.NC), align),
		abufs: make([][]float64, cfg.Threads),
	}
	generic := bk.Name() != kernel.DefaultBackend
	if generic {
		ws.accs = make([][]float64, cfg.Threads)
	}
	for i := range ws.abufs {
		ws.abufs[i] = alignedBuf(bk.PackABufLen(cfg.MC, cfg.KC), align)
		if generic {
			ws.accs[i] = alignedBuf(bk.MR()*bk.NR(), align)
		}
	}
	return ws
}

// alignedBuf returns a length-n float64 slice whose first element is aligned
// to align·8 bytes, over-allocating by up to align−1 elements when needed.
// Pure-Go backends use align=1 (any); SIMD backends need their vector width.
func alignedBuf(n, align int) []float64 {
	if align <= 1 || n == 0 {
		return make([]float64, n)
	}
	buf := make([]float64, n+align-1)
	rem := int((uintptr(unsafe.Pointer(&buf[0])) / 8) % uintptr(align))
	off := 0
	if rem != 0 {
		off = align - rem
	}
	return buf[off : off+n : off+n]
}

// workspacePool is a bounded free list of Workspaces for one Context. Get
// falls back to allocating a fresh Workspace when the pool is empty, and Put
// drops the workspace (leaving it to the GC) when the pool already retains
// its bound — so concurrency is never limited by the pool, only the idle
// memory kept warm is.
//
// A plain sync.Pool would also work, but its retention policy is opaque
// (cleared on every GC cycle) and unbounded between cycles; a fixed-capacity
// channel gives a hard cap on retained packing memory, which matters because
// one Workspace is O(KC·NC + Threads·MC·KC) floats.
type workspacePool struct {
	cfg  Config
	bk   kernel.Backend
	free chan *Workspace
}

// maxRetainedFloats caps the idle packing memory one Context keeps warm
// (≈64 MiB of float64s). Without it the retained memory would scale as
// O(Threads²): 2·Threads pooled workspaces, each holding Threads Ã buffers.
const maxRetainedFloats = 1 << 23

// workspacePoolBound returns how many idle workspaces a context retains:
// enough that a steady stream of Threads-wide concurrent callers recycles
// buffers instead of allocating, bounded so total retained packing memory
// stays under maxRetainedFloats on many-core machines. The bound may be 0 —
// when a single workspace already exceeds the cap, nothing is retained and
// every get allocates fresh (get and put handle an empty pool) — rather
// than silently keeping oversized workspaces alive past the documented cap.
func workspacePoolBound(cfg Config, bk kernel.Backend) int {
	per := bk.PackBBufLen(cfg.KC, cfg.NC) + cfg.Threads*bk.PackABufLen(cfg.MC, cfg.KC)
	n := 2 * cfg.Threads
	if lim := maxRetainedFloats / per; n > lim {
		n = lim
	}
	return n
}

func newWorkspacePool(cfg Config, bk kernel.Backend) *workspacePool {
	return &workspacePool{cfg: cfg, bk: bk, free: make(chan *Workspace, workspacePoolBound(cfg, bk))}
}

func (p *workspacePool) get() *Workspace {
	select {
	case ws := <-p.free:
		return ws
	default:
		return newWorkspace(p.cfg, p.bk)
	}
}

func (p *workspacePool) put(ws *Workspace) {
	select {
	case p.free <- ws:
	default: // pool full: drop, the GC reclaims it
	}
}
