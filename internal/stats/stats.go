// Package stats holds the small median-comparison toolkit shared by the
// bench regression gate (cmd/benchjson compare) and the online plan
// autotuner (internal/autotune): sample medians, the normal-approximation
// standard error of a median, and the 95%-confidence test on a median
// difference. Both consumers ask the same statistical question — "did this
// measured distribution get faster than that one, beyond noise?" — so the
// math lives here once and a fix in either consumer benefits the other.
package stats

import (
	"math"
	"sort"
)

// CIZ is the two-sided 95% normal quantile used for median-difference
// confidence intervals.
const CIZ = 1.96

// Median returns the middle of the sorted samples (mean of the middle two
// for even counts). It panics on empty input; callers only pass non-empty
// sample sets.
func Median(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// SEMedian estimates the standard error of the median under the normal
// approximation, ≈1.2533·σ/√n with σ the sample standard deviation. With
// fewer than two samples there is no variance estimate and it returns 0 —
// the confidence interval collapses to a point and any gate built on it
// degenerates to a plain median comparison.
func SEMedian(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range samples {
		mean += v
	}
	mean /= float64(n)
	ss := 0.0
	for _, v := range samples {
		ss += (v - mean) * (v - mean)
	}
	sigma := math.Sqrt(ss / float64(n-1))
	return 1.2533 * sigma / math.Sqrt(float64(n))
}

// Diff is an oriented median difference with its standard error: Diff > 0
// means the first sample set's median exceeds the second's, and SE is the
// quadrature sum of both medians' standard errors.
type Diff struct {
	Diff float64
	SE   float64
}

// MedianDiff returns Median(a) − Median(b) with the combined standard
// error. Both sample sets must be non-empty.
func MedianDiff(a, b []float64) Diff {
	return Diff{
		Diff: Median(a) - Median(b),
		SE:   math.Hypot(SEMedian(a), SEMedian(b)),
	}
}

// ExcludesZero reports whether the 95% confidence interval of the oriented
// difference lies entirely above zero — the evidence bar a measured
// improvement (or regression, depending on the caller's orientation) must
// clear. With no variance estimate (single samples on both sides) it
// reduces to Diff > 0.
func (d Diff) ExcludesZero() bool {
	return d.Diff-CIZ*d.SE > 0
}
