package stats

import (
	"math"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{10, 10, 10}, 10},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %g, want %g", c.in, got, c.want)
		}
	}
	// Median must not reorder the caller's slice.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestSEMedian(t *testing.T) {
	if se := SEMedian([]float64{7}); se != 0 {
		t.Errorf("single sample SE = %g, want 0", se)
	}
	if se := SEMedian(nil); se != 0 {
		t.Errorf("empty SE = %g, want 0", se)
	}
	if se := SEMedian([]float64{5, 5, 5, 5}); se != 0 {
		t.Errorf("zero-variance SE = %g, want 0", se)
	}
	// σ of {1,2,3,4,5} is √2.5; SE ≈ 1.2533·σ/√5.
	want := 1.2533 * math.Sqrt(2.5) / math.Sqrt(5)
	if se := SEMedian([]float64{1, 2, 3, 4, 5}); math.Abs(se-want) > 1e-12 {
		t.Errorf("SE = %g, want %g", se, want)
	}
}

func TestMedianDiffExcludesZero(t *testing.T) {
	// Clearly separated, tight distributions: CI excludes zero.
	slow := []float64{100, 101, 99, 100, 102, 98, 100, 101}
	fast := []float64{50, 51, 49, 50, 52, 48, 50, 51}
	d := MedianDiff(slow, fast)
	if d.Diff <= 0 {
		t.Fatalf("Diff = %g, want > 0", d.Diff)
	}
	if !d.ExcludesZero() {
		t.Fatalf("separated distributions: CI should exclude zero (diff %g ± %g)", d.Diff, CIZ*d.SE)
	}
	// Same distribution both sides: never excludes zero in this direction.
	if MedianDiff(fast, fast).ExcludesZero() {
		t.Fatal("identical distributions must not exclude zero")
	}
	// Wrong direction: negative diff can never exclude zero.
	if MedianDiff(fast, slow).ExcludesZero() {
		t.Fatal("negative diff must not exclude zero")
	}
	// Huge overlap: a small median gap inside wide noise stays inconclusive.
	noisyA := []float64{10, 200, 30, 170, 55, 140, 80, 110}
	noisyB := []float64{12, 195, 33, 168, 58, 137, 83, 108}
	if MedianDiff(noisyA, noisyB).ExcludesZero() {
		t.Fatal("overlapping noisy distributions must not exclude zero")
	}
	// Single samples: degenerates to a sign test.
	if !MedianDiff([]float64{2}, []float64{1}).ExcludesZero() {
		t.Fatal("single-sample degenerate case should reduce to Diff > 0")
	}
	if MedianDiff([]float64{1}, []float64{2}).ExcludesZero() {
		t.Fatal("single-sample negative diff should not exclude zero")
	}
}
