package lint

import (
	"go/ast"
	"go/types"
)

// LockSafe extends vet's copylocks to the engine's pool-holding state. A
// type is no-copy when it (transitively, through value fields, embedded
// fields, and arrays) contains a sync or sync/atomic state type — or when it
// is one of the engine types whose identity is load-bearing even without a
// mutex: a gemm Workspace (its buffers are owned by a bounded pool; a copy
// aliases the packing buffers across two apparent owners) or an fmmexec
// execState (same, for the term-list pools).
//
// No-copy types must not appear by value in function signatures (parameters,
// results, or receivers), be copied by assignment, be passed by value as
// call arguments, or be copied out as range values.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: `forbid copying lock- or pool-holding values

Types containing sync.Mutex/RWMutex/WaitGroup/Cond/Once/Pool/Map or
sync/atomic value types — and the engine's pool-owned Workspace and
execState — must be handled through pointers: value parameters, value
results, value receivers, assignments, value arguments, and range values all
silently fork the lock or pool state.`,
	Run: runLockSafe,
}

// syncNoCopy are the sync package's stateful types.
var syncNoCopy = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Cond":      true,
	"Once":      true,
	"Pool":      true,
	"Map":       true,
}

// extraNoCopy are engine types that own pooled buffers without carrying a
// lock; copying them aliases pool-owned memory. Matched by type name so the
// rule covers the real packages and fixtures alike.
var extraNoCopy = map[string]bool{
	"Workspace": true,
	"execState": true,
}

func runLockSafe(pass *Pass) error {
	memo := make(map[types.Type]string)
	why := func(t types.Type) string { return noCopyReason(t, memo, nil) }
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				obj, _ := objectOf(pass.Info, n.Name).(*types.Func)
				if obj != nil {
					checkSignature(pass, n, obj.Signature(), why)
				}
			case *ast.FuncLit:
				if sig, ok := pass.Info.Types[n].Type.(*types.Signature); ok {
					checkFuncLitSignature(pass, n, sig, why)
				}
			case *ast.AssignStmt:
				for _, r := range n.Rhs {
					checkCopySource(pass, r, "assignment copies", why)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopySource(pass, v, "assignment copies", why)
				}
			case *ast.CallExpr:
				if isConversion(pass, n) {
					break
				}
				for _, arg := range n.Args {
					checkCopySource(pass, arg, "call passes", why)
				}
			case *ast.RangeStmt:
				checkRangeCopies(pass, n, why)
			}
			return true
		})
	}
	return nil
}

func isConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// noCopyReason returns a short description of why t must not be copied
// ("sync.Mutex", "Workspace", …) or "" when copying is fine. seen guards
// recursive types.
func noCopyReason(t types.Type, memo map[types.Type]string, seen []types.Type) string {
	if t == nil {
		return ""
	}
	if r, ok := memo[t]; ok {
		return r
	}
	for _, s := range seen {
		if s == t {
			return ""
		}
	}
	seen = append(seen, t)
	r := noCopyReasonUncached(t, memo, seen)
	memo[t] = r
	return r
}

func noCopyReasonUncached(t types.Type, memo map[types.Type]string, seen []types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				if syncNoCopy[obj.Name()] {
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				// Every named type in sync/atomic (Int32, Int64, Uint64,
				// Bool, Pointer, Value, …) embeds noCopy or is address-
				// sensitive.
				return "sync/atomic." + obj.Name()
			}
		}
		if extraNoCopy[obj.Name()] {
			return obj.Name()
		}
		return noCopyReason(t.Underlying(), memo, seen)
	case *types.Alias:
		return noCopyReason(types.Unalias(t), memo, seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if r := noCopyReason(t.Field(i).Type(), memo, seen); r != "" {
				return r
			}
		}
	case *types.Array:
		return noCopyReason(t.Elem(), memo, seen)
	}
	// Pointers, slices, maps, channels, basics, interfaces, funcs, type
	// params: copying the reference is fine.
	return ""
}

func checkSignature(pass *Pass, fn *ast.FuncDecl, sig *types.Signature, why func(types.Type) string) {
	if recv := sig.Recv(); recv != nil {
		if r := why(recv.Type()); r != "" {
			pass.Reportf(fn.Name.Pos(), "method %s has value receiver of no-copy type (contains %s); use a pointer receiver", fn.Name.Name, r)
		}
	}
	checkTuple(pass, fn.Name.Name, sig, why)
}

func checkFuncLitSignature(pass *Pass, lit *ast.FuncLit, sig *types.Signature, why func(types.Type) string) {
	checkTuple(pass, "function literal", sig, why)
}

func checkTuple(pass *Pass, name string, sig *types.Signature, why func(types.Type) string) {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		v := params.At(i)
		if r := why(v.Type()); r != "" {
			pass.Reportf(v.Pos(), "%s takes %s by value (contains %s); pass a pointer", name, paramName(v), r)
		}
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		v := results.At(i)
		if r := why(v.Type()); r != "" {
			pass.Reportf(v.Pos(), "%s returns a no-copy value (contains %s); return a pointer", name, r)
		}
	}
}

func paramName(v *types.Var) string {
	if v.Name() != "" && v.Name() != "_" {
		return "parameter " + v.Name()
	}
	return "a parameter"
}

// checkCopySource flags expressions that read an existing no-copy value by
// value: identifiers, selectors, index expressions, and dereferences.
// Constructions (composite literals) and calls are fine here — a call
// returning a no-copy value by value is flagged at its declaration.
func checkCopySource(pass *Pass, e ast.Expr, verb string, why func(types.Type) string) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	// Only values copy; the same shapes also appear as type arguments of
	// builtins (new(execState[E])) and as conversion targets.
	tv, ok := pass.Info.Types[e]
	if !ok || !tv.IsValue() || tv.Type == nil {
		return
	}
	if r := why(tv.Type); r != "" {
		pass.Reportf(e.Pos(), "%s a no-copy value (contains %s); use a pointer", verb, r)
	}
}

func checkRangeCopies(pass *Pass, rs *ast.RangeStmt, why func(types.Type) string) {
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if v == nil {
			continue
		}
		id, ok := v.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := objectOf(pass.Info, id)
		if obj == nil {
			continue
		}
		if r := why(obj.Type()); r != "" {
			pass.Reportf(id.Pos(), "range copies a no-copy value into %s (contains %s); range over indices or pointers instead", id.Name, r)
		}
	}
}
