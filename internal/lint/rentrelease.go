package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RentRelease checks that every buffer rented from one of the engine's
// bounded pools is released on every path out of the renting function.
//
// The pools and their rent/release pairs are listed in rentSpecs; a rent
// whose result is bound to a local variable starts tracking, and the
// analyzer then runs a forward may-leak dataflow over the function's CFG:
// a token survives a statement unless the statement releases it (the paired
// release call, or calling the release closure — deferred forms count at
// registration, since a registered defer runs on every subsequent exit) or
// visibly transfers ownership (returning the value, storing it into a
// field/slice/map, passing it to another call, sending it, or capturing it
// in a function literal). A token still live at any function exit is a
// leak on at least one path and is reported at the rent site.
//
// Ownership transfers end tracking rather than being chased across
// functions — the analyzer is deliberately intraprocedural, so patterns
// like renting into a slice that a later loop releases (mulCoreBFS) are
// accepted, not verified. The cost is a false negative, never a false
// positive.
var RentRelease = &Analyzer{
	Name: "rentrelease",
	Doc: `check that pooled-buffer rents are released on every return path

Rents from the engine's bounded pools (gemm workspaces, fmmexec exec states
and term buffers, the multiplier's reduction buffers) must have their paired
release reachable on every path out of the renting function, deferred or
explicit. A leaked rent shrinks the pool until callers allocate on every
operation — or, for the bounded channels, until the pool is effectively
empty under load.`,
	Run: runRentRelease,
}

// rentSpec describes one rent/release pair by receiver type name and method
// name. Matching is by name rather than by package so the analyzer works
// identically on the real packages and on test fixtures.
type rentSpec struct {
	recv    string // receiver type name of both methods
	rent    string // renting method
	release string // paired releasing method ("" when closure)
	// resultIdx is the index of the rent call's result that carries the
	// obligation: the rented value itself, or (closure pairs) the release
	// closure.
	resultIdx int
	// closure marks pairs where the rent returns a release func that must be
	// called, rather than a value that must be passed to a release method.
	closure bool
}

var rentSpecs = []rentSpec{
	{recv: "Context", rent: "GetWorkspace", release: "PutWorkspace"},
	{recv: "workspacePool", rent: "get", release: "put"},
	{recv: "Plan", rent: "rentTermBuf", release: "returnTermBuf"},
	{recv: "GenericMultiplier", rent: "rentRedBuf", release: "returnRedBuf"},
	{recv: "Plan", rent: "stateFor", resultIdx: 1, closure: true},
}

func rentSpecFor(f *types.Func) *rentSpec {
	if f == nil {
		return nil
	}
	recv := recvTypeName(f)
	for i := range rentSpecs {
		if rentSpecs[i].rent == f.Name() && rentSpecs[i].recv == recv {
			return &rentSpecs[i]
		}
	}
	return nil
}

// rentInfo is one outstanding obligation: where the rent happened and which
// pair it came from. The tracked variable's object is the state key.
type rentInfo struct {
	pos  token.Pos
	spec *rentSpec
	name string
}

type rentState map[types.Object]rentInfo

func (s rentState) clone() rentState {
	out := make(rentState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s rentState) merge(other rentState) {
	for k, v := range other {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

func (s rentState) equal(other rentState) bool {
	if len(s) != len(other) {
		return false
	}
	for k, v := range s {
		o, ok := other[k]
		if !ok || o.pos != v.pos {
			return false
		}
	}
	return true
}

func runRentRelease(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkRentReleaseBody(pass, body)
			}
			return true
		})
	}
	return nil
}

// bodyHasRent is a cheap pre-filter: most functions rent nothing.
func bodyHasRent(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false // nested literals are analyzed as their own bodies
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if rentSpecFor(calleeFunc(pass.Info, call)) != nil {
				found = true
			}
		}
		return true
	})
	return found
}

func checkRentReleaseBody(pass *Pass, body *ast.BlockStmt) {
	if !bodyHasRent(pass, body) {
		return
	}
	g := buildCFG(body)
	if !g.ok {
		return // goto-using function: decline rather than guess
	}
	preds := make(map[*cfgBlock][]*cfgBlock)
	for _, b := range g.blocks {
		for _, s := range b.succs {
			preds[s] = append(preds[s], b)
		}
	}
	out := make(map[*cfgBlock]rentState)
	for _, b := range g.blocks {
		out[b] = rentState{}
	}
	// Forward fixpoint, union at joins: a token outstanding on any path into
	// a block stays outstanding. Kills are per-statement, so the transfer is
	// monotone and the iteration terminates.
	for changed := true; changed; {
		changed = false
		for _, b := range g.blocks {
			in := rentState{}
			for _, p := range preds[b] {
				in.merge(out[p])
			}
			o := in.clone()
			for _, stmt := range b.nodes {
				rrTransfer(pass, o, stmt)
			}
			if !o.equal(out[b]) {
				out[b] = o
				changed = true
			}
		}
	}
	// Any token live at an exit leaked on at least one path. Report each rent
	// site once.
	leaked := make(map[token.Pos]rentInfo)
	for _, e := range g.exits {
		for _, info := range out[e] {
			leaked[info.pos] = info
		}
	}
	positions := make([]token.Pos, 0, len(leaked))
	for pos := range leaked {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	for _, pos := range positions {
		info := leaked[pos]
		if info.spec.closure {
			pass.Reportf(pos, "%s returned by %s.%s is not called on every path out of the function",
				info.name, info.spec.recv, info.spec.rent)
		} else {
			pass.Reportf(pos, "%s rented via %s.%s is not released with %s on every path out of the function",
				info.name, info.spec.recv, info.spec.rent, info.spec.release)
		}
	}
}

// rrTransfer applies one statement to the state: first kills (releases and
// ownership transfers), then the statement's own rent binding, if any.
func rrTransfer(pass *Pass, state rentState, stmt ast.Stmt) {
	rrKillScan(pass, state, stmt)
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	spec := rentSpecFor(calleeFunc(pass.Info, call))
	if spec == nil || spec.resultIdx >= len(as.Lhs) {
		return
	}
	id, ok := as.Lhs[spec.resultIdx].(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := objectOf(pass.Info, id)
	if obj == nil {
		return
	}
	state[obj] = rentInfo{pos: call.Pos(), spec: spec, name: id.Name}
}

// rrKillScan removes every token the statement releases or whose ownership
// it transfers. Both end the obligation from the analyzer's point of view,
// so they share one mechanism: a token dies when its variable appears as a
// whole operand — a call argument (the release calls are exactly this
// shape), a call target (release closures), a return result, the right side
// of an assignment, a sent value, a composite-literal element, an
// address-taken operand — or anywhere inside a function literal (the
// closure may release it later; chasing that is out of scope). Mere uses of
// the rented value — selector or index bases like ws.bbuf, conditions —
// keep the obligation alive.
func rrKillScan(pass *Pass, state rentState, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			rrKillAllRefs(pass, state, n)
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if obj := objectOf(pass.Info, id); obj != nil {
					delete(state, obj) // release-closure call (or any func-var call)
				}
			}
			for _, arg := range n.Args {
				rrKillOperand(pass, state, arg)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				rrKillOperand(pass, state, r)
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				rrKillOperand(pass, state, r)
			}
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if obj := objectOf(pass.Info, id); obj != nil {
						delete(state, obj) // reassignment drops the old binding
					}
				}
			}
		case *ast.SendStmt:
			rrKillOperand(pass, state, n.Value)
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				rrKillOperand(pass, state, e)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				rrKillOperand(pass, state, n.X)
			}
		}
		return true
	})
}

// rrKillOperand kills a token used as a whole operand (modulo parens and &).
func rrKillOperand(pass *Pass, state rentState, e ast.Expr) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if obj := objectOf(pass.Info, id); obj != nil {
		delete(state, obj)
	}
}

// rrKillAllRefs kills every tracked token referenced anywhere inside a
// function literal: the closure may release or leak it on its own schedule.
func rrKillAllRefs(pass *Pass, state rentState, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objectOf(pass.Info, id); obj != nil {
				delete(state, obj)
			}
		}
		return true
	})
}
