package lint

import (
	"go/ast"
)

// This file implements a small statement-level control-flow graph, sufficient
// for the rentrelease analyzer's must-release dataflow. It supports the full
// structured-control subset of Go — if/for/range/switch/type-switch/select,
// labeled break and continue, return, defer — and declines functions that use
// goto (none exist in this module; the analyzer skips such functions rather
// than risk a wrong graph).

// cfgBlock is one basic block: straight-line statements plus successor edges.
type cfgBlock struct {
	nodes   []ast.Stmt
	succs   []*cfgBlock
	returns bool // block ends in an explicit return
}

// funcCFG is a function body's graph. exits lists every block from which
// control leaves the function: return blocks and the fall-off-the-end block.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
	exits  []*cfgBlock
	ok     bool // false when the body uses constructs the builder declines (goto)
}

type loopFrame struct {
	label     string
	brk, cont *cfgBlock // cont == nil for switch/select frames
}

type cfgBuilder struct {
	blocks  []*cfgBlock
	cur     *cfgBlock
	exits   []*cfgBlock
	frames  []loopFrame
	hasGoto bool
	// pendingLabel names the label attached to the next loop/switch statement.
	pendingLabel string
}

// buildCFG constructs the graph of one function (or function literal) body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{}
	entry := b.newBlock()
	b.cur = entry
	b.stmts(body.List)
	// Fall-off-the-end exit (reachable for functions without results, and for
	// panicking tails; unreachable tails are pruned by the reachability walk).
	if b.cur != nil {
		b.exits = append(b.exits, b.cur)
	}
	g := &funcCFG{entry: entry, blocks: b.blocks, exits: b.exits, ok: !b.hasGoto}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.blocks = append(b.blocks, blk)
	return blk
}

// edge links from → to (nil-safe: a nil from means unreachable code).
func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from != nil {
		from.succs = append(from.succs, to)
	}
}

func (b *cfgBuilder) add(s ast.Stmt) {
	if b.cur != nil {
		b.cur.nodes = append(b.cur.nodes, s)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// frameFor finds the innermost frame matching a break/continue label.
func (b *cfgBuilder) frameFor(label string, needCont bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.cur.returns = true
			b.exits = append(b.exits, b.cur)
		}
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag == nil && s.Init == nil, caseBodies(s.Body), s)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, false, caseBodies(s.Body), s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		// Straight-line statements: expressions, assignments, declarations,
		// sends, defers, go statements, empty statements.
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "goto":
		b.hasGoto = true
		b.cur = nil
	case "break":
		if f := b.frameFor(label, false); f != nil {
			b.edge(b.cur, f.brk)
		}
		b.cur = nil
	case "continue":
		if f := b.frameFor(label, true); f != nil {
			b.edge(b.cur, f.cont)
		}
		b.cur = nil
	case "fallthrough":
		// Handled by switchStmt via explicit chaining; reaching here means a
		// malformed tree — treat as straight-line.
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(&ast.ExprStmt{X: s.Cond})
	cond := b.cur
	after := b.newBlock()
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmts(s.Body.List)
	b.edge(b.cur, after)
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.nodes = append(head.nodes, &ast.ExprStmt{X: s.Cond})
	}
	after := b.newBlock()
	body := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	post := b.newBlock()
	if s.Post != nil {
		post.nodes = append(post.nodes, s.Post)
	}
	b.edge(post, head)
	b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: post})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, post)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.newBlock()
	// The range header (including the iteration-variable assignment) lives in
	// the head so rents/releases in the range expression are seen.
	head.nodes = append(head.nodes, &ast.ExprStmt{X: s.X})
	b.edge(b.cur, head)
	after := b.newBlock()
	body := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: head})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// switchStmt builds expression and type switches. alwaysTaken marks a bare
// `switch {}`-style statement, though for simplicity every switch keeps an
// edge from the head to after (a missing default) — a may-analysis over a
// superset of paths only errs toward reporting, which is the safe direction
// for a must-release check.
func (b *cfgBuilder) switchStmt(init ast.Stmt, alwaysTaken bool, bodies [][]ast.Stmt, s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if init != nil {
		b.add(init)
	}
	switch sw := s.(type) {
	case *ast.SwitchStmt:
		if sw.Tag != nil {
			b.add(&ast.ExprStmt{X: sw.Tag})
		}
	case *ast.TypeSwitchStmt:
		b.add(sw.Assign)
	}
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, brk: after})
	hasDefault := switchHasDefault(s)
	var caseBlocks []*cfgBlock
	for range bodies {
		cb := b.newBlock()
		b.edge(head, cb)
		caseBlocks = append(caseBlocks, cb)
	}
	for i, body := range bodies {
		b.cur = caseBlocks[i]
		b.stmtsWithFallthrough(body, caseBlocks, i)
		b.edge(b.cur, after)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// stmtsWithFallthrough runs a case body, wiring a trailing fallthrough to the
// next case block.
func (b *cfgBuilder) stmtsWithFallthrough(body []ast.Stmt, caseBlocks []*cfgBlock, i int) {
	for _, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			if i+1 < len(caseBlocks) {
				b.edge(b.cur, caseBlocks[i+1])
			}
			b.cur = nil
			return
		}
		b.stmt(s)
	}
}

func switchHasDefault(s ast.Stmt) bool {
	var list []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		list = s.Body.List
	case *ast.TypeSwitchStmt:
		list = s.Body.List
	case *ast.SelectStmt:
		list = s.Body.List
	}
	for _, c := range list {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, brk: after})
	for _, c := range s.Body.List {
		comm, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock()
		if comm.Comm != nil {
			cb.nodes = append(cb.nodes, comm.Comm)
		}
		b.edge(head, cb)
		b.cur = cb
		b.stmts(comm.Body)
		b.edge(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}
