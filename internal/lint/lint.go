// Package lint implements fmmlint, the repo's custom static-analysis suite.
// It encodes the engine's load-bearing conventions — contracts no off-the-shelf
// tool checks — as machine-checked analyzers:
//
//	rentrelease  — every buffer rented from a bounded pool (workspaces, exec
//	               states, reduction buffers) must have its paired release
//	               reachable on every path out of the renting function,
//	               deferred or explicit.
//	hotpathalloc — functions annotated //fmm:hotpath (micro-kernels, packing,
//	               scatter, fold loops) must not contain allocation-inducing
//	               constructs: non-constant make, append growth, new, slice/map
//	               literals, closures, conversions to interfaces, or fmt.
//	detorder     — in the determinism-critical packages (internal/fmmexec,
//	               internal/gemm, internal/shard) and multiplier.go, ranging
//	               over a map must not write output matrices or reduction
//	               buffers (map order is random; fold order into C is part of
//	               the bit-reproducibility contract), and all goroutine fan-out
//	               must go through internal/sched — bare go statements are
//	               forbidden outside that package.
//	locksafe     — types that embed locks or pool state (execState, Workspace,
//	               the plan cache, sched deques, …) must not be copied by
//	               value: not as parameters, results, assignments, call
//	               arguments, or range values. This extends vet's copylocks to
//	               the repo's pool-holding structs that carry no mutex.
//
// The suite is deliberately self-contained on the standard library (go/ast,
// go/types, go/importer): the module has no third-party dependencies and the
// analyzers must build in the same hermetic environment as the engine itself,
// so the golang.org/x/tools go/analysis framework is re-modelled here in
// miniature rather than imported. The shapes mirror x/tools (Analyzer, Pass,
// Diagnostic, a testdata-fixture runner with "// want" expectations) so a
// future migration is mechanical.
//
// Run the suite with cmd/fmmlint — standalone (`go run ./cmd/fmmlint ./...`)
// or as a vet tool (`go vet -vettool=$(which fmmlint) ./...`). The repo's own
// tests also run every analyzer over the whole module (TestRepoClean), so a
// violation fails `go test ./...` even without the vet step.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the fmmlint command
	// line. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces; the first line
	// is the summary shown by fmmlint -list.
	Doc string
	// Run inspects one package and reports violations through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (non-test files in loader-driven
	// runs; whatever the build system provided in vettool runs).
	Files []*ast.File
	// Path is the package's import path (e.g. "fmmfam/internal/gemm").
	Path string
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos. Diagnostics in _test.go files are
// dropped — the analyzers enforce production invariants, and test files
// legitimately spawn goroutines, allocate, and copy fixtures.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation, with its resolved file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzers returns the full fmmlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{RentRelease, HotPathAlloc, DetOrder, LockSafe}
}

// ByName resolves a comma-separated analyzer selection ("" selects all).
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", name, strings.Join(analyzerNames(all), ", "))
		}
	}
	return out, nil
}

func analyzerNames(as []*Analyzer) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

// RunPackage runs the given analyzers over one type-checked package and
// returns the diagnostics sorted by position. The package may come from the
// module loader (Load/LoadAll) or from an external build system (the vettool
// protocol in cmd/fmmlint).
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackages is RunPackage over a package list, with one combined sorted
// diagnostic slice.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// --- shared type/AST helpers used by several analyzers ---

// pathElems splits an import path into its elements.
func pathElems(path string) []string { return strings.Split(path, "/") }

// lastElem returns the final element of an import path.
func lastElem(path string) string {
	elems := pathElems(path)
	return elems[len(elems)-1]
}

// rootIdent descends selector/index/star/paren chains to the base identifier,
// or nil when the base is not a plain identifier (a call result, literal, …).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its types.Object via Defs or Uses.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or package-level function), or nil for builtins, conversions,
// and calls of function-typed variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: fmt.Sprintf, kernel.PackA, …
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := objectOf(info, fun).(*types.Func); ok {
			return f
		}
	case *ast.IndexExpr:
		// Explicitly instantiated generic function: grow[float64](…).
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if f, ok := objectOf(info, id).(*types.Func); ok {
				return f
			}
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if f, ok := objectOf(info, id).(*types.Func); ok {
				return f
			}
		}
	}
	return nil
}

// recvTypeName returns the name of a method's receiver type ("Context" for
// func (ctx *Context[E]) …), or "" for non-methods.
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// isMapType reports whether t's core type is a map. Type parameters are
// unwrapped through their core type when it is uniquely a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
