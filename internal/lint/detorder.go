package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// DetOrder enforces the engine's determinism contract in the packages where
// floating-point results are folded: fmmexec's term loops, gemm's blocked
// loops, shard's tile fold, the multiplier's sharded reduction, and the
// serve package's coalescing/dispatch layer.
//
// Two rules:
//
//  1. Inside those scopes, a range over a map must not write slice or array
//     elements or call matrix mutators: map iteration order is randomized
//     per run, and the order of additions into C (or any reduction buffer)
//     is exactly what the bit-reproducibility contract pins down. Writes to
//     other maps from inside a map range are fine — map insertion is
//     order-independent.
//
//  2. All goroutine fan-out must go through internal/sched: a bare go
//     statement bypasses the pool's bounded worker budget (oversubscribing
//     the machine under concurrent callers) and its deterministic
//     cost-sorted seeding. PR 6 removed exactly such a fan-out; this rule
//     keeps it out. A go statement whose line carries an //fmm:go-ok
//     comment is waived — that is for bounded service-lifecycle goroutines
//     (a shutdown watcher, a listener loop), never for compute fan-out, and
//     the comment must say why.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: `forbid nondeterministic fold order and bare goroutine fan-out

In internal/fmmexec, internal/gemm, internal/shard, serve, and
multiplier.go: ranging over a map while the loop body writes slice/array
elements or calls matrix mutators is forbidden (map order is random; fold
order into C is part of the bit-reproducibility contract — iterate a sorted
key slice instead), and bare go statements are forbidden (all fan-out goes
through internal/sched's bounded pool; a bounded service-lifecycle
goroutine may be waived with a //fmm:go-ok comment on its line explaining
why).`,
	Run: runDetOrder,
}

// detOrderPkgs are the determinism-critical packages, matched by final
// import-path element so fixtures exercise the same scoping.
var detOrderPkgs = map[string]bool{
	"fmmexec": true,
	"gemm":    true,
	"shard":   true,
	"serve":   true,
}

// goOKDirective waives the bare-go rule for the go statement on its line —
// the escape hatch for bounded service-lifecycle goroutines in scoped
// packages (mirroring hotpathalloc's //fmm:alloc-ok).
const goOKDirective = "fmm:go-ok"

// goOKLines collects the lines carrying an //fmm:go-ok waiver.
func goOKLines(pass *Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, goOKDirective) {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// matMutators are methods that mutate a matrix or reduction buffer in place.
var matMutators = map[string]bool{
	"AddScaled": true,
	"Zero":      true,
	"Set":       true,
	"Scale":     true,
}

func runDetOrder(pass *Pass) error {
	pkgScoped := detOrderPkgs[lastElem(pass.Path)]
	for _, file := range pass.Files {
		scoped := pkgScoped ||
			filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "multiplier.go"
		if !scoped {
			continue
		}
		goOK := goOKLines(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if goOK[pass.Fset.Position(n.Pos()).Line] {
					return true
				}
				pass.Reportf(n.Pos(), "bare go statement: route fan-out through internal/sched so the worker budget stays bounded and seeding deterministic (annotate the line //fmm:go-ok only for bounded service-lifecycle goroutines)")
			case *ast.RangeStmt:
				if isMapType(pass.Info.Types[n.X].Type) {
					checkMapRangeBody(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkMapRangeBody flags order-sensitive writes inside a map-range body.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if isSliceElemWrite(pass, l) {
					pass.Reportf(n.Pos(), "slice element written inside range over map: iteration order is nondeterministic — iterate a sorted key slice instead")
				}
			}
		case *ast.IncDecStmt:
			if isSliceElemWrite(pass, n.X) {
				pass.Reportf(n.Pos(), "slice element updated inside range over map: iteration order is nondeterministic — iterate a sorted key slice instead")
			}
		case *ast.CallExpr:
			if f := calleeFunc(pass.Info, n); f != nil && matMutators[f.Name()] && recvTypeName(f) != "" {
				pass.Reportf(n.Pos(), "matrix mutator %s.%s called inside range over map: fold order into the target is nondeterministic — iterate a sorted key slice instead", recvTypeName(f), f.Name())
			}
		}
		return true
	})
}

// isSliceElemWrite reports whether expr is an index into a slice or array —
// the write shapes whose order the determinism contract pins (map writes are
// order-independent and allowed).
func isSliceElemWrite(pass *Pass, expr ast.Expr) bool {
	idx, ok := ast.Unparen(expr).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.Info.Types[idx.X].Type
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}
