// Package rentrelease is the fixture for the rentrelease analyzer: mock
// pool types whose rent/release method names match the real engine's specs,
// plus violating and compliant renting functions.
package rentrelease

import "errors"

var errBoom = errors.New("boom")

type Workspace struct{ buf []float64 }

type workspacePool struct{ ch chan *Workspace }

func (p *workspacePool) get() *Workspace {
	select {
	case ws := <-p.ch:
		return ws
	default:
		return &Workspace{buf: make([]float64, 64)}
	}
}

func (p *workspacePool) put(ws *Workspace) {
	select {
	case p.ch <- ws:
	default:
	}
}

type Context struct{ pool *workspacePool }

// The wrapper transfers ownership to its caller: returning the rented value
// must not be reported.
func (c *Context) GetWorkspace() *Workspace   { return c.pool.get() }
func (c *Context) PutWorkspace(ws *Workspace) { c.pool.put(ws) }

type Mat struct {
	Rows, Cols int
	Data       []float64
}

type termState struct{ terms []int }

func (s *termState) use() { s.terms = s.terms[:0] }

type Plan struct {
	termBufs chan []float64
}

func (p *Plan) rentTermBuf(rows, cols int) Mat {
	var buf []float64
	select {
	case buf = <-p.termBufs:
	default:
		buf = make([]float64, rows*cols)
	}
	return Mat{Rows: rows, Cols: cols, Data: buf}
}

func (p *Plan) returnTermBuf(m Mat) {
	select {
	case p.termBufs <- m.Data:
	default:
	}
}

func (p *Plan) stateFor(sm, sk, sn int) (*termState, func()) {
	st := &termState{}
	return st, func() { st.terms = st.terms[:0] }
}

type GenericMultiplier struct{ redBufs chan []float64 }

func (mu *GenericMultiplier) rentRedBuf(rows, cols int) Mat {
	return Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

func (mu *GenericMultiplier) returnRedBuf(m Mat) {
	select {
	case mu.redBufs <- m.Data:
	default:
	}
}

// --- violations ---

func leakSimple(ctx *Context) {
	ws := ctx.GetWorkspace() // want `ws rented via Context\.GetWorkspace is not released with PutWorkspace on every path`
	ws.buf[0] = 1
}

func leakOnErrorPath(ctx *Context, fail bool) error {
	ws := ctx.GetWorkspace() // want `ws rented via Context\.GetWorkspace is not released with PutWorkspace on every path`
	ws.buf[0] = 1
	if fail {
		return errBoom // leaks ws
	}
	ctx.PutWorkspace(ws)
	return nil
}

func leakReleaseClosure(p *Plan, fail bool) {
	st, release := p.stateFor(1, 2, 3) // want `release returned by Plan\.stateFor is not called on every path`
	st.use()
	if fail {
		return // leaks the exec state
	}
	release()
}

func leakOnLoopBreak(mu *GenericMultiplier, n int) {
	for i := 0; i < n; i++ {
		m := mu.rentRedBuf(2, 2) // want `m rented via GenericMultiplier\.rentRedBuf is not released with returnRedBuf on every path`
		m.Data[0] = float64(i)
		if i == 3 {
			break // leaks m
		}
		mu.returnRedBuf(m)
	}
}

func leakTermBufOneArm(p *Plan, which bool) {
	m := p.rentTermBuf(4, 4) // want `m rented via Plan\.rentTermBuf is not released with returnTermBuf on every path`
	switch {
	case which:
		p.returnTermBuf(m)
	default:
		m.Data[0] = 1 // this arm forgets the release
	}
}

// --- compliant ---

func okDeferred(ctx *Context) {
	ws := ctx.GetWorkspace()
	defer ctx.PutWorkspace(ws)
	ws.buf[0] = 1
}

func okReleasedOnBothPaths(ctx *Context, fail bool) error {
	ws := ctx.GetWorkspace()
	ws.buf[0] = 1
	if fail {
		ctx.PutWorkspace(ws)
		return errBoom
	}
	ctx.PutWorkspace(ws)
	return nil
}

func okClosurePair(p *Plan) {
	st, release := p.stateFor(1, 1, 1)
	defer release()
	st.use()
}

func okPoolDirect(pool *workspacePool) {
	ws := pool.get()
	defer pool.put(ws)
	ws.buf[0] = 1
}

// Ownership transfers out of the function: the caller inherits the release
// obligation, so nothing is reported here.
func okOwnershipReturned(ctx *Context) *Workspace {
	ws := ctx.GetWorkspace()
	ws.buf[0] = 1
	return ws
}

// Renting into a slice transfers ownership to the container (released by a
// later loop); the analyzer accepts this without chasing it.
func okRentIntoSlice(p *Plan, n int) {
	bufs := make([]Mat, n)
	for i := range bufs {
		bufs[i] = p.rentTermBuf(4, 4)
	}
	for _, b := range bufs {
		p.returnTermBuf(b)
	}
}

// Jobs that rent inside a function literal are analyzed as their own
// bodies: rent and deferred release balance inside the closure.
func okRentInsideClosure(p *Plan, run func(func())) {
	run(func() {
		st, release := p.stateFor(2, 2, 2)
		defer release()
		st.use()
	})
}

func okRedBufStraightLine(mu *GenericMultiplier) {
	m := mu.rentRedBuf(2, 2)
	m.Data[0] = 1
	mu.returnRedBuf(m)
}
