// Package locksafe is the fixture for the locksafe analyzer: value copies
// of lock-holding structs and of the engine's pool-owned types (Workspace)
// in every flagged position, plus pointer-based compliant counterparts.
package locksafe

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// embeds embeds a guarded value, so it is transitively no-copy.
type embeds struct {
	g guarded
}

// Workspace matches the engine's pool-owned type name: no lock inside, but
// copying aliases pool-owned buffers.
type Workspace struct {
	bufs [][]float64
}

// --- violations ---

func badParam(g guarded) { // want `badParam takes parameter g by value \(contains sync\.Mutex\)`
	g.n++
}

func badReturn(g *guarded) guarded { // want `badReturn returns a no-copy value \(contains sync\.Mutex\)`
	return *g
}

func badEmbedded(e embeds) { // want `badEmbedded takes parameter e by value \(contains sync\.Mutex\)`
	e.g.n++
}

func badWorkspaceParam(ws Workspace) { // want `badWorkspaceParam takes parameter ws by value \(contains Workspace\)`
	ws.bufs = nil
}

func (g guarded) badValueReceiver() { // want `method badValueReceiver has value receiver of no-copy type \(contains sync\.Mutex\)`
	g.n++
}

func badAssign(g *guarded) {
	cp := *g // want `assignment copies a no-copy value \(contains sync\.Mutex\)`
	cp.n = 1
}

func badCallArg(g *guarded) {
	consumePtr(*g) // want `call passes a no-copy value \(contains sync\.Mutex\)`
}

// consumePtr's own signature is also a violation.
func consumePtr(x guarded) { // want `consumePtr takes parameter x by value \(contains sync\.Mutex\)`
	x.n++
}

func badRange(gs []guarded) {
	for _, g := range gs { // want `range copies a no-copy value into g \(contains sync\.Mutex\)`
		_ = g.n
	}
}

// --- compliant ---

func okPointerParam(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func okPointerReturn() *guarded {
	return &guarded{}
}

func okWorkspacePointer(ws *Workspace) {
	ws.bufs = append(ws.bufs, nil)
}

func okRangePointers(gs []*guarded) {
	for _, g := range gs {
		g.n++
	}
}

func okRangeIndices(gs []guarded) {
	for i := range gs {
		gs[i].n++
	}
}

// Plain structs without lock or pool state copy freely.
type plain struct{ a, b int }

func okPlainCopies(p plain) plain {
	q := p
	return q
}
