// Package other is the detorder out-of-scope fixture: the same constructs
// the in-scope fixture flags must produce no diagnostics here, because the
// package's import path is outside the determinism-critical scope.
package other

func fanOut(f func()) {
	go f() // out of scope: no diagnostic
}

func mapRangeSliceWrite(m map[string]float64, out []float64) {
	i := 0
	for _, v := range m {
		out[i] = v // out of scope: no diagnostic
		i++
	}
}
