// Package hotpathalloc is the fixture for the hotpathalloc analyzer:
// //fmm:hotpath-annotated functions containing each forbidden construct,
// //fmm:alloc-ok suppressions, and unannotated/clean counterparts.
package hotpathalloc

import "fmt"

type Mat struct {
	Rows, Cols int
	Data       []float64
}

func sink(x any) { _ = x }

// --- violations ---

//fmm:hotpath
func badMake(n int) []float64 {
	buf := make([]float64, n) // want `hot path badMake: make allocates`
	return buf
}

//fmm:hotpath
func badNew() *Mat {
	return new(Mat) // want `hot path badNew: new allocates`
}

//fmm:hotpath
func badAppend(dst []int, v int) []int {
	return append(dst, v) // want `hot path badAppend: append may grow its backing array`
}

//fmm:hotpath
func badSliceLit() []int {
	return []int{1, 2, 3} // want `hot path badSliceLit: slice literal allocates`
}

//fmm:hotpath
func badMapLit() map[string]int {
	return map[string]int{"a": 1} // want `hot path badMapLit: map literal allocates`
}

//fmm:hotpath
func badAddrOfComposite() *Mat {
	return &Mat{Rows: 1, Cols: 1} // want `hot path badAddrOfComposite: address of composite literal allocates`
}

//fmm:hotpath
func badClosure() func() int {
	n := 0
	return func() int { n++; return n } // want `hot path badClosure: function literal`
}

//fmm:hotpath
func badGo(f func()) {
	go f() // want `hot path badGo: go statement allocates a goroutine`
}

//fmm:hotpath
func badFmt(x int) {
	fmt.Println(x) // want `hot path badFmt: fmt\.Println allocates`
}

//fmm:hotpath
func badBoxing(v int) {
	sink(v) // want `hot path badBoxing: argument boxed into interface parameter`
}

//fmm:hotpath
func badIfaceConv(v int) any {
	return any(v) // want `hot path badIfaceConv: conversion to interface any allocates`
}

//fmm:hotpath
func badConcat(a, b string) string {
	return a + b // want `hot path badConcat: string concatenation allocates`
}

//fmm:hotpath
func badBytesToString(b []byte) string {
	return string(b) // want `hot path badBytesToString: byte/rune-slice to string conversion allocates`
}

// --- compliant ---

// okNotAnnotated allocates freely: no directive, no diagnostics.
func okNotAnnotated(n int) []float64 {
	return make([]float64, n)
}

//fmm:hotpath
func okCleanLoop(dst, src []float64, alpha float64) {
	for i := range src {
		dst[i] += alpha * src[i]
	}
}

//fmm:hotpath
func okStructValueAndArray(m *Mat) float64 {
	var acc [16]float64
	t := Mat{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
	for i := range acc {
		acc[i] = float64(t.Rows)
	}
	return acc[0]
}

//fmm:hotpath
func okAmortizedAppend(dst []float64, v float64) []float64 {
	dst = append(dst, v) //fmm:alloc-ok amortized growth into a reused pooled buffer
	return dst
}

//fmm:hotpath
func okInterfaceToInterface(x any) {
	sink(x) // interface-to-interface: no boxing
}

// --- assembly-wrapper shape ---
// A SIMD backend's Go wrapper reslices for bounds proofs and hands raw
// element pointers to a bodyless assembly routine (the avx2 backend's Micro
// wrappers are this shape). The wrapper rides the micro-kernel hot path, so
// it must stay allocation-free: reslicing, indexing, and taking element
// addresses are all fine; materializing a temporary tile is not.

func microAsm(kc int, ap, bp, acc *float64) // implemented in assembly

//fmm:hotpath
func okAsmWrapper(kc int, ap, bp, acc []float64) {
	acc = acc[:48:48]
	if kc <= 0 {
		for i := range acc {
			acc[i] = 0
		}
		return
	}
	ap = ap[: kc*8 : kc*8]
	bp = bp[: kc*6 : kc*6]
	microAsm(kc, &ap[0], &bp[0], &acc[0])
}

//fmm:hotpath
func badAsmWrapperTemp(kc int, ap, bp []float64) float64 {
	acc := make([]float64, 48) // want `hot path badAsmWrapperTemp: make allocates`
	microAsm(kc, &ap[0], &bp[0], &acc[0])
	return acc[0]
}
