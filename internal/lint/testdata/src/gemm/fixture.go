// Package gemm is the detorder fixture for an in-scope package (the final
// import-path element "gemm" matches the analyzer's scope list): bare go
// statements and order-sensitive writes under map ranges are reported,
// order-independent map-range bodies are not.
package gemm

import "sort"

type Mat struct{ Data []float64 }

func (m *Mat) AddScaled(alpha float64, b *Mat) {
	for i := range m.Data {
		m.Data[i] += alpha * b.Data[i]
	}
}

// --- violations ---

func badGo(f func()) {
	go f() // want `bare go statement`
}

func badMapRangeSliceWrite(m map[string]float64, out []float64) {
	i := 0
	for _, v := range m {
		out[i] = v // want `slice element written inside range over map`
		i++
	}
}

func badMapRangeMutator(m map[string]*Mat, c *Mat) {
	for _, v := range m {
		c.AddScaled(1, v) // want `matrix mutator Mat\.AddScaled called inside range over map`
	}
}

// --- compliant ---

// Copying into another map is order-independent: map insertion order does
// not affect the result.
func okMapRangeIntoMap(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Scalar reductions over commutative operations (max, count) are fine.
func okMapRangeScalar(m map[string]int) string {
	best, bestKey := -1, ""
	for k, v := range m {
		if v > best {
			best, bestKey = v, k
		}
	}
	return bestKey
}

// The deterministic pattern the analyzer pushes toward: extract keys, sort,
// then fold in sorted order.
func okSortedKeys(m map[string]float64, out []float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		out[i] = m[k]
	}
}
