// Package serve is the detorder fixture for the serving front-end scope
// (final import-path element "serve"): bare go statements are reported,
// //fmm:go-ok-waived service-lifecycle goroutines are not, and map-range
// fold-order rules apply like in the engine packages.
package serve

import "sync"

type Mat struct{ Data []float64 }

func (m *Mat) AddScaled(alpha float64, b *Mat) {
	for i := range m.Data {
		m.Data[i] += alpha * b.Data[i]
	}
}

// --- violations ---

func badComputeFanout(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func() { // want `bare go statement`
			defer wg.Done()
			j()
		}()
	}
	wg.Wait()
}

func badMapRangeFold(pending map[uint64]*Mat, c *Mat) {
	for _, m := range pending {
		c.AddScaled(1, m) // want `matrix mutator Mat\.AddScaled called inside range over map`
	}
}

// --- compliant ---

// A bounded service-lifecycle goroutine (shutdown watcher, listener loop)
// carries an //fmm:go-ok waiver naming its reason.
func okLifecycleWatcher(done <-chan struct{}, release func(), wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { //fmm:go-ok: bounded shutdown watcher, joined by Close
		defer wg.Done()
		<-done
		release()
	}()
}

// Snapshotting counters out of a map into another map is order-independent.
func okStatsSnapshot(hist map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(hist))
	for k, v := range hist {
		out[k] = v
	}
	return out
}
