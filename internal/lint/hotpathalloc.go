package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc checks functions annotated //fmm:hotpath for allocation-
// inducing constructs. The annotated functions are the per-tile and per-term
// inner loops — micro-kernels, packing, scatter, the term loops — which run
// millions of times per multiplication; a single allocation there turns into
// GC pressure proportional to the problem volume.
//
// Flagged constructs: make, new, append (suppressible per line with
// //fmm:alloc-ok for amortized growth into reused pooled buffers), slice and
// map composite literals, taking the address of a composite literal,
// function literals (closures generally escape when passed to the scheduler
// or deferred), go statements, string concatenation and conversions that
// build strings, explicit conversions to interface types, implicit boxing of
// a concrete argument into an interface parameter, and any call into fmt.
//
// The check is syntactic-plus-types, not an escape analysis: constructs the
// compiler might keep on the stack are still flagged, because hot-path code
// should not rely on escape analysis staying clever across compiler
// versions.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: `forbid allocation-inducing constructs in //fmm:hotpath functions

Functions annotated with a //fmm:hotpath directive are the engine's inner
loops. They may not contain make/new/append (append is allowed on lines
annotated //fmm:alloc-ok, for amortized growth into reused pooled buffers),
slice/map literals, closures, go statements, string building, conversions to
interfaces (explicit or by argument passing), or fmt calls.`,
	Run: runHotPathAlloc,
}

const (
	hotPathDirective = "//fmm:hotpath"
	allocOKDirective = "fmm:alloc-ok"
)

func runHotPathAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		allocOK := allocOKLines(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasHotPathDirective(fn.Doc) {
				continue
			}
			checkHotPath(pass, fn, allocOK)
		}
	}
	return nil
}

func hasHotPathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotPathDirective) {
			return true
		}
	}
	return false
}

// allocOKLines collects the lines carrying an //fmm:alloc-ok suppression.
func allocOKLines(pass *Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, allocOKDirective) {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func checkHotPath(pass *Pass, fn *ast.FuncDecl, allocOK map[int]bool) {
	name := fn.Name.Name
	report := func(pos token.Pos, format string, args ...any) {
		if allocOK[pass.Fset.Position(pos).Line] {
			return
		}
		args = append([]any{name}, args...)
		pass.Reportf(pos, "hot path %s: "+format, args...)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal (closures allocate when they escape)")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.CallExpr:
			checkHotPathCall(pass, n, report)
		case *ast.CompositeLit:
			t := pass.Info.Types[n].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates")
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.Info.Types[n].Type; t != nil && isStringType(t) {
					report(n.Pos(), "string concatenation allocates")
				}
			}
		}
		return true
	})
}

func checkHotPathCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := objectOf(pass.Info, id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array (annotate the line //fmm:alloc-ok if growth is amortized into a reused buffer)")
			}
			return
		}
	}
	// Conversions: T(x) where T is an interface or a string built from bytes.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if isInterfaceNotTypeParam(target) {
			report(call.Pos(), "conversion to interface %s allocates", types.TypeString(target, types.RelativeTo(pass.Pkg)))
		}
		if isStringType(target) && len(call.Args) == 1 {
			if at := pass.Info.Types[call.Args[0]].Type; at != nil {
				if _, ok := at.Underlying().(*types.Slice); ok {
					report(call.Pos(), "byte/rune-slice to string conversion allocates")
				}
			}
		}
		return
	}
	f := calleeFunc(pass.Info, call)
	if f == nil {
		return
	}
	if pkg := f.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		report(call.Pos(), "fmt.%s allocates and boxes its operands", f.Name())
		return
	}
	// Implicit boxing: a concrete argument passed for an interface parameter.
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no boxing here
			}
			pt = params.At(params.Len() - 1).Type()
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !isInterfaceNotTypeParam(pt) {
			continue
		}
		at := pass.Info.Types[arg].Type
		if at == nil || isUntypedNil(at) {
			continue
		}
		if _, ok := at.Underlying().(*types.Interface); ok {
			continue // interface-to-interface: no boxing
		}
		if _, ok := at.(*types.TypeParam); ok {
			continue
		}
		report(arg.Pos(), "argument boxed into interface parameter %s", types.TypeString(pt, types.RelativeTo(pass.Pkg)))
	}
}

// isInterfaceNotTypeParam reports whether t is an interface type, excluding
// type parameters (whose underlying is an interface but whose use does not
// box).
func isInterfaceNotTypeParam(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
