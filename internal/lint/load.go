package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("fmmfam/internal/gemm", or the fixture name
	// for testdata packages).
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// fileset is the process-wide FileSet shared by every loader and the stdlib
// source importer, so positions stay comparable across loads (and the heavy
// stdlib type-checking is paid once per process, not once per Loader).
var fileset = token.NewFileSet()

// stdImporter memoizes stdlib packages, type-checked from GOROOT source.
// The source importer is used instead of the gc importer because the module
// builds in hermetic environments with no pre-compiled stdlib export data.
var stdImporter = struct {
	sync.Mutex
	imp types.Importer
}{}

func stdImport(path string) (*types.Package, error) {
	stdImporter.Lock()
	defer stdImporter.Unlock()
	if stdImporter.imp == nil {
		stdImporter.imp = importer.ForCompiler(fileset, "source", nil)
	}
	return stdImporter.imp.Import(path)
}

// Loader parses and type-checks the packages of one Go module without
// shelling out to the go command: import paths under the module path map to
// directories, everything else resolves through the stdlib source importer.
// Test files (_test.go) are not loaded — the analyzers enforce production
// invariants.
type Loader struct {
	// ModRoot is the absolute module root (the directory holding go.mod).
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string
	// Overlay maps absolute file paths to replacement (or additional)
	// contents. Overlay files participate in parsing as if on disk — the
	// seeded-violation regression tests use this to inject a contract
	// breach into a real package without touching the tree.
	Overlay map[string][]byte

	mu       sync.Mutex
	pkgs     map[string]*Package
	checking map[string]bool
}

// NewLoader reads modRoot/go.mod for the module path and returns a Loader.
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", abs)
	}
	return &Loader{
		ModRoot:  abs,
		ModPath:  modPath,
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}, nil
}

// LoadAll loads every package under the module root (the "./..." pattern),
// in deterministic path order. Directories named testdata, vendor, or
// starting with "." or "_" are skipped, as the go tool does.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		if len(l.packageFiles(dir)) == 0 {
			continue
		}
		pkg, err := l.Load(l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// dirFor maps an import path under the module to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// packageFiles returns the buildable non-test Go files of dir (absolute
// paths), honoring build constraints for the host platform, plus any overlay
// files placed in dir.
func (l *Loader) packageFiles(dir string) []string {
	seen := make(map[string]bool)
	var files []string
	bp, err := build.Default.ImportDir(dir, 0)
	if err == nil {
		for _, name := range bp.GoFiles {
			abs := filepath.Join(dir, name)
			seen[abs] = true
			files = append(files, abs)
		}
	}
	for abs := range l.Overlay {
		if filepath.Dir(abs) == dir && strings.HasSuffix(abs, ".go") &&
			!strings.HasSuffix(abs, "_test.go") && !seen[abs] {
			files = append(files, abs)
		}
	}
	sort.Strings(files)
	return files
}

// Load type-checks the package at the given import path (which must be the
// module path or below), memoized per loader.
func (l *Loader) Load(path string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(path)
}

func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %s is outside module %s", path, l.ModPath)
	}
	filenames := l.packageFiles(dir)
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, fn := range filenames {
		var src any
		if data, ok := l.Overlay[fn]; ok {
			src = data
		}
		f, err := parser.ParseFile(fileset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	l.checking[path] = true
	defer delete(l.checking, path)
	pkg, err := checkPackage(path, dir, files, l.importFor)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importFor resolves one import during type-checking: module-internal paths
// recurse into the loader, everything else is stdlib.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return stdImport(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return f(path)
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// checkPackage type-checks one package's files. Type errors are hard errors:
// the analyzers' type queries are only meaningful on well-typed code.
func checkPackage(path, dir string, files []*ast.File, imp importerFunc) (*Package, error) {
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, fileset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fileset, Files: files, Types: tpkg, Info: info}, nil
}
