package lint

import (
	"path/filepath"
	"testing"
)

// TestFixtures runs each analyzer over its testdata fixture package and
// checks the reported diagnostics against the // want expectations —
// violations must be reported with the expected message, compliant
// counterparts must stay silent.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixture  string // directory under testdata/src, also the import path
	}{
		{RentRelease, "rentrelease"},
		{HotPathAlloc, "hotpathalloc"},
		{DetOrder, "gemm"},  // in scope: final path element matches
		{DetOrder, "serve"}, // in scope: serving front-end, with //fmm:go-ok waivers
		{DetOrder, "other"}, // out of scope: same constructs, no diagnostics
		{LockSafe, "locksafe"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name+"/"+tc.fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.fixture)
			failures, err := RunFixture(tc.analyzer, dir, tc.fixture)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range failures {
				t.Error(f)
			}
		})
	}
}

// TestByName covers the analyzer selection used by cmd/fmmlint.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 4 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 4, nil", len(all), err)
	}
	two, err := ByName("detorder, locksafe")
	if err != nil || len(two) != 2 || two[0].Name != "detorder" || two[1].Name != "locksafe" {
		t.Fatalf("ByName(detorder, locksafe) = %v, err %v", analyzerNames(two), err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) did not fail")
	}
}
