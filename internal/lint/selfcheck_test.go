package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot returns the module root (two levels up from internal/lint).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// runRepo loads every package of the module (with the given overlay, if any)
// and runs the full analyzer suite over them.
func runRepo(t *testing.T, overlay map[string][]byte) []Diagnostic {
	t.Helper()
	loader, err := NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	loader.Overlay = overlay
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackages(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestRepoClean is the suite's anchor: the production tree must pass every
// analyzer with zero diagnostics. A failure here means a contract violation
// crept into the repo (or an analyzer grew a false positive) — either way it
// must be resolved, not suppressed.
func TestRepoClean(t *testing.T) {
	for _, d := range runRepo(t, nil) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestSeededViolations checks end-to-end that each analyzer still fires on
// the real packages it guards: an overlay injects one contract breach per
// analyzer into the live tree, and the suite must report it. This is the
// regression test for the CI gate — if an analyzer silently stops seeing the
// real package shapes (say, a rename breaks the rent-spec match), these seeds
// go undetected and the test fails.
func TestSeededViolations(t *testing.T) {
	root := repoRoot(t)
	cases := []struct {
		name     string   // subtest, also the reporting analyzer unless analyzer is set
		analyzer string   // reporting analyzer when it differs from name
		file     string   // module-relative path of the seeded overlay file
		src      string   // seeded source
		wantSubs []string // substrings the diagnostic must contain
	}{
		{
			name: "rentrelease",
			file: "internal/fmmexec/seeded_violation.go",
			src: `package fmmexec

import "fmmfam/internal/matrix"

func seededStateLeak(p *Plan[float64], c, a, b matrix.Mat[float64], cond bool) {
	st, release := p.stateFor(1, 1, 1)
	st.aTerms = p.aTermsFor(st.aTerms[:0], a, 0)
	if cond {
		release()
	}
}
`,
			wantSubs: []string{"seeded_violation.go", "release", "stateFor", "not called on every path"},
		},
		{
			name: "hotpathalloc",
			file: "internal/gemm/seeded_violation.go",
			src: `package gemm

//fmm:hotpath
func seededHotAlloc(n int) []float64 {
	buf := make([]float64, n)
	return buf
}
`,
			wantSubs: []string{"seeded_violation.go", "hot path seededHotAlloc", "make"},
		},
		{
			name: "detorder",
			file: "internal/fmmexec/seeded_violation.go",
			src: `package fmmexec

func seededBareGo(done chan struct{}) {
	go func() { close(done) }()
}
`,
			wantSubs: []string{"seeded_violation.go", "bare go statement", "internal/sched"},
		},
		{
			name:     "detorder-serve",
			analyzer: "detorder",
			file:     "serve/seeded_violation.go",
			src: `package serve

func seededServeFanout(jobs []func()) {
	for _, j := range jobs {
		go j()
	}
}
`,
			wantSubs: []string{"seeded_violation.go", "bare go statement", "internal/sched"},
		},
		{
			name: "locksafe",
			file: "internal/fmmexec/seeded_violation.go",
			src: `package fmmexec

import "fmmfam/internal/gemm"

func seededWorkspaceCopy(ws gemm.Workspace[float64]) *gemm.Workspace[float64] {
	return &ws
}
`,
			wantSubs: []string{"seeded_violation.go", "by value", "Workspace"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			overlay := map[string][]byte{
				filepath.Join(root, filepath.FromSlash(tc.file)): []byte(tc.src),
			}
			diags := runRepo(t, overlay)
			var seeded []Diagnostic
			for _, d := range diags {
				if strings.Contains(d.Pos.Filename, "seeded_violation") {
					seeded = append(seeded, d)
				} else {
					t.Errorf("diagnostic outside the seeded file: %s", d)
				}
			}
			if len(seeded) == 0 {
				t.Fatalf("analyzer %s did not fire on the seeded violation", tc.name)
			}
			for _, want := range tc.wantSubs {
				found := false
				for _, d := range seeded {
					if strings.Contains(d.String(), want) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("no seeded diagnostic mentions %q; got %v", want, seeded)
				}
			}
			wantAnalyzer := tc.analyzer
			if wantAnalyzer == "" {
				wantAnalyzer = tc.name
			}
			for _, d := range seeded {
				if d.Analyzer != wantAnalyzer {
					t.Errorf("seeded violation reported by %s, want %s: %s", d.Analyzer, wantAnalyzer, d)
				}
			}
		})
	}
}
