package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// This file is a miniature of golang.org/x/tools/go/analysis/analysistest:
// fixture packages live under testdata/src/<name>, and their sources carry
// "// want `regex`" comments marking the lines where a diagnostic matching
// the regex is expected. RunFixture loads one fixture package, runs one
// analyzer, and returns a list of mismatches (unexpected diagnostics,
// unmatched expectations, regex errors) — empty means the fixture passed.

// wantRe matches one expectation: want "..." or want `...`; several may
// follow one want keyword.
var wantRe = regexp.MustCompile("// want ((?:[\"`][^\"`]*[\"`]\\s*)+)")

var wantArgRe = regexp.MustCompile("[\"`]([^\"`]*)[\"`]")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// LoadFixture parses and type-checks the fixture package in dir. The package
// is type-checked under the import path path (usually the directory base
// name — analyzers that scope by path element key off this). Fixture
// packages may import the standard library only.
func LoadFixture(dir, path string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	matches, err := filepath.Glob(filepath.Join(abs, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, fn := range matches {
		if strings.HasSuffix(fn, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fileset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in fixture %s", abs)
	}
	// Fixture imports resolve through the stdlib importer only.
	return checkPackage(path, abs, files, stdImport)
}

// RunFixture runs one analyzer over the fixture in dir and checks its
// diagnostics against the fixture's want comments.
func RunFixture(a *Analyzer, dir, path string) (failures []string, err error) {
	pkg, err := LoadFixture(dir, path)
	if err != nil {
		return nil, err
	}
	diags, err := RunPackage(pkg, []*Analyzer{a})
	if err != nil {
		return nil, err
	}
	expects, err := collectExpectations(pkg)
	if err != nil {
		return nil, err
	}
	for _, d := range diags {
		matched := false
		for i := range expects {
			e := &expects[i]
			if e.hit || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			failures = append(failures, fmt.Sprintf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message))
		}
	}
	for _, e := range expects {
		if !e.hit {
			failures = append(failures, fmt.Sprintf("no diagnostic matching %q at %s:%d", e.raw, filepath.Base(e.file), e.line))
		}
	}
	sort.Strings(failures)
	return failures, nil
}

// collectExpectations parses the want comments of every file in pkg.
func collectExpectations(pkg *Package) ([]expectation, error) {
	var out []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						return nil, fmt.Errorf("lint: bad want regexp at %s: %w", pos, err)
					}
					out = append(out, expectation{file: pos.Filename, line: pos.Line, re: re, raw: arg[1]})
				}
			}
		}
	}
	return out, nil
}
