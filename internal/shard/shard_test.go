package shard

import (
	"strings"
	"testing"
)

// TestTilesPartitionExactly verifies that for a sweep of problem shapes and
// options, the tiles cover every (i, j) of the M×N output exactly once and
// never stray out of bounds — the property that makes sharded execution
// bit-identical to sequential execution of the same tiles.
func TestTilesPartitionExactly(t *testing.T) {
	cases := []struct {
		m, k, n int
		o       Options
	}{
		{256, 256, 256, Options{Workers: 4, MinTile: 64}},
		{1024, 64, 96, Options{Workers: 8, MinTile: 32}},  // tall
		{96, 64, 1024, Options{Workers: 8, MinTile: 32}},  // wide
		{333, 177, 257, Options{Workers: 3, MinTile: 40}}, // non-power-of-two
		{4096, 4096, 4096, Options{Workers: 16, MinTile: 148}},
		{130, 10, 130, Options{Workers: 2, MinTile: 64}}, // barely shardable
		{1 << 14, 8, 1 << 14, Options{Workers: 64, MinTile: 100, Oversub: 3}},
	}
	for _, tc := range cases {
		spec, ok := Split(tc.m, tc.k, tc.n, tc.o)
		if !ok {
			t.Fatalf("Split(%d,%d,%d,%+v) refused to shard", tc.m, tc.k, tc.n, tc.o)
		}
		tiles := spec.Tiles()
		if len(tiles) != spec.NumTiles() || len(tiles) < 2 {
			t.Fatalf("%v: %d tiles, want %d ≥ 2", spec, len(tiles), spec.NumTiles())
		}
		seen := make([]bool, tc.m*tc.n)
		for _, tl := range tiles {
			if tl.Rows < tc.o.MinTile || tl.Cols < tc.o.MinTile {
				t.Fatalf("%v: tile %+v under MinTile %d", spec, tl, tc.o.MinTile)
			}
			if tl.I < 0 || tl.J < 0 || tl.I+tl.Rows > tc.m || tl.J+tl.Cols > tc.n {
				t.Fatalf("%v: tile %+v out of bounds", spec, tl)
			}
			for i := tl.I; i < tl.I+tl.Rows; i++ {
				for j := tl.J; j < tl.J+tl.Cols; j++ {
					if seen[i*tc.n+j] {
						t.Fatalf("%v: cell (%d,%d) covered twice", spec, i, j)
					}
					seen[i*tc.n+j] = true
				}
			}
		}
		for idx, s := range seen {
			if !s {
				t.Fatalf("%v: cell (%d,%d) uncovered", spec, idx/tc.n, idx%tc.n)
			}
		}
	}
}

// TestTilesBalanced: within each dimension tile sides differ by at most one,
// so no worker inherits a straggler tile much larger than the rest.
func TestTilesBalanced(t *testing.T) {
	spec, ok := Split(1000, 300, 700, Options{Workers: 5, MinTile: 50})
	if !ok {
		t.Fatal("refused to shard")
	}
	minR, maxR := 1<<30, 0
	minC, maxC := 1<<30, 0
	for _, tl := range spec.Tiles() {
		if tl.Rows < minR {
			minR = tl.Rows
		}
		if tl.Rows > maxR {
			maxR = tl.Rows
		}
		if tl.Cols < minC {
			minC = tl.Cols
		}
		if tl.Cols > maxC {
			maxC = tl.Cols
		}
	}
	if maxR-minR > 1 || maxC-minC > 1 {
		t.Fatalf("%v: unbalanced tiles rows[%d,%d] cols[%d,%d]", spec, minR, maxR, minC, maxC)
	}
}

// TestSplitRefusals: problems with no room for two above-floor tiles, or
// degenerate dimensions, must not shard.
func TestSplitRefusals(t *testing.T) {
	cases := []struct {
		m, k, n int
		o       Options
	}{
		{100, 100, 100, Options{Workers: 8, MinTile: 64}}, // < 2 tiles fit
		{64, 64, 64, Options{Workers: 4, MinTile: 64}},
		{0, 10, 10, Options{Workers: 4, MinTile: 1}},
		{10, 0, 10, Options{Workers: 4, MinTile: 1}},
	}
	for _, tc := range cases {
		if spec, ok := Split(tc.m, tc.k, tc.n, tc.o); ok {
			t.Fatalf("Split(%d,%d,%d,%+v) sharded as %v, want refusal", tc.m, tc.k, tc.n, tc.o, spec)
		}
	}
}

// TestSplitShapeAffinity: a tall problem shards along M, a wide one along N,
// and a square problem with room to spare lands on a worker-aligned grid of
// the largest possible near-square tiles (minimum modelled makespan).
func TestSplitShapeAffinity(t *testing.T) {
	tall, ok := Split(4096, 256, 200, Options{Workers: 4, MinTile: 100})
	if !ok || tall.GridN != 1 || tall.GridM != 4 {
		t.Fatalf("tall split: %v ok=%v, want 4×1 (one tile per worker, cuts along M)", tall, ok)
	}
	wide, ok := Split(200, 256, 4096, Options{Workers: 4, MinTile: 100})
	if !ok || wide.GridM != 1 || wide.GridN != 4 {
		t.Fatalf("wide split: %v ok=%v, want 1×4 (one tile per worker, cuts along N)", wide, ok)
	}
	sq, ok := Split(4096, 4096, 4096, Options{Workers: 8, MinTile: 148})
	if !ok || sq.NumTiles() != 8 || sq.NumTiles()%8 != 0 {
		t.Fatalf("square split: %v ok=%v, want exactly one tile per worker", sq, ok)
	}
	for _, tl := range sq.Tiles() {
		if tl.Rows < 1024 || tl.Cols < 1024 {
			t.Fatalf("square split %v produced a tile %+v smaller than the best achievable", sq, tl)
		}
	}
	// Determinism: the same inputs always produce the same spec.
	sq2, _ := Split(4096, 4096, 4096, Options{Workers: 8, MinTile: 148})
	if sq != sq2 {
		t.Fatalf("split not deterministic: %v vs %v", sq, sq2)
	}
}

// TestSplitKDominant: a problem whose M×N output has no room for two
// above-floor tiles but whose K is huge must shard via the K dimension when
// KSplit is on — the inner-product shape that motivated 3D decomposition —
// and must keep refusing when KSplit is off (the PR 2 behavior).
func TestSplitKDominant(t *testing.T) {
	o := Options{Workers: 4, MinTile: 150, KSplit: true}
	spec, ok := Split(256, 32768, 256, o)
	if !ok {
		t.Fatal("K-dominant problem refused to shard with KSplit on")
	}
	if spec.GridM != 1 || spec.GridN != 1 || spec.GridK < 2 {
		t.Fatalf("K-dominant split chose %v, want 1×1 output grid with ≥2 K-slabs", spec)
	}
	if spec.NumTiles() > o.Workers*DefaultOversub {
		t.Fatalf("%v exceeds the Workers×Oversub bound", spec)
	}
	for _, tl := range spec.Tiles() {
		if tl.Depth < o.MinTile {
			t.Fatalf("%v: slab %+v under MinTile depth %d", spec, tl, o.MinTile)
		}
	}
	o.KSplit = false
	if spec, ok := Split(256, 32768, 256, o); ok {
		t.Fatalf("KSplit off still sharded as %v", spec)
	}
}

// TestSplitPrefersKWholeWhenOutputAmple: with plenty of room in M×N, the
// reduction surcharge must keep K whole, preserving the bit-identical 2D
// path for output-dominant problems.
func TestSplitPrefersKWhole(t *testing.T) {
	spec, ok := Split(4096, 4096, 4096, Options{Workers: 8, MinTile: 148, KSplit: true})
	if !ok {
		t.Fatal("refused to shard")
	}
	if spec.GridK != 1 {
		t.Fatalf("ample output still split K: %v", spec)
	}
}

// TestTilesPartition3D: for K-split specs the tiles must exactly partition
// the full M×N×K iteration space — every (i, j, p) covered exactly once —
// and the GridK slabs of one output tile must be enumerated consecutively
// in ascending P (the executor's fold order).
func TestTilesPartition3D(t *testing.T) {
	cases := []struct {
		m, k, n int
		o       Options
	}{
		{64, 1024, 64, Options{Workers: 4, MinTile: 48, KSplit: true}},
		{48, 513, 48, Options{Workers: 3, MinTile: 25, KSplit: true}}, // non-dividing K
		{100, 999, 70, Options{Workers: 8, MinTile: 33, KSplit: true}},
	}
	for _, tc := range cases {
		spec, ok := Split(tc.m, tc.k, tc.n, tc.o)
		if !ok {
			t.Fatalf("Split(%d,%d,%d,%+v) refused to shard", tc.m, tc.k, tc.n, tc.o)
		}
		if spec.GridK < 2 {
			t.Fatalf("%v: expected a K-split for this K-dominant shape", spec)
		}
		assertPartition3D(t, spec, tc.o.MinTile)
		tiles := spec.Tiles()
		for g := 0; g < spec.GridM*spec.GridN; g++ {
			prevEnd := -1
			for s := 0; s < spec.GridK; s++ {
				tl := tiles[g*spec.GridK+s]
				if tl.I != tiles[g*spec.GridK].I || tl.J != tiles[g*spec.GridK].J {
					t.Fatalf("%v: slab %d of group %d has a different output tile", spec, s, g)
				}
				if s == 0 && tl.P != 0 {
					t.Fatalf("%v: first slab starts at P=%d", spec, tl.P)
				}
				if s > 0 && tl.P != prevEnd {
					t.Fatalf("%v: slabs of group %d not consecutive ascending", spec, g)
				}
				prevEnd = tl.P + tl.Depth
			}
			if prevEnd != spec.K {
				t.Fatalf("%v: group %d slabs cover K up to %d, want %d", spec, g, prevEnd, spec.K)
			}
		}
	}
}

// assertPartition3D checks that spec's tiles cover every (i, j, p) of the
// M×N×K iteration space exactly once, respect the floor on every cut
// dimension, and stay in bounds.
func assertPartition3D(t *testing.T, spec Spec, minTile int) {
	t.Helper()
	tiles := spec.Tiles()
	if len(tiles) != spec.NumTiles() || len(tiles) < 2 {
		t.Fatalf("%v: %d tiles, want %d ≥ 2", spec, len(tiles), spec.NumTiles())
	}
	m, n, k := spec.M, spec.N, spec.K
	seen := make([]bool, m*n*k)
	for _, tl := range tiles {
		if spec.GridM > 1 && tl.Rows < minTile {
			t.Fatalf("%v: tile %+v rows under MinTile %d", spec, tl, minTile)
		}
		if spec.GridN > 1 && tl.Cols < minTile {
			t.Fatalf("%v: tile %+v cols under MinTile %d", spec, tl, minTile)
		}
		if spec.gridK() > 1 && tl.Depth < minTile {
			t.Fatalf("%v: tile %+v depth under MinTile %d", spec, tl, minTile)
		}
		if tl.I < 0 || tl.J < 0 || tl.P < 0 ||
			tl.I+tl.Rows > m || tl.J+tl.Cols > n || tl.P+tl.Depth > k {
			t.Fatalf("%v: tile %+v out of bounds", spec, tl)
		}
		for i := tl.I; i < tl.I+tl.Rows; i++ {
			for j := tl.J; j < tl.J+tl.Cols; j++ {
				for p := tl.P; p < tl.P+tl.Depth; p++ {
					at := (i*n+j)*k + p
					if seen[at] {
						t.Fatalf("%v: cell (%d,%d,%d) covered twice", spec, i, j, p)
					}
					seen[at] = true
				}
			}
		}
	}
	for at, s := range seen {
		if !s {
			t.Fatalf("%v: cell (%d,%d,%d) uncovered", spec, at/(n*k), (at/k)%n, at%k)
		}
	}
}

// FuzzTilesPartition: for random shapes and options, any decomposition
// Split accepts must exactly partition the M×N×K iteration space with no
// overlap — the invariant that makes sharded execution compute the same
// real product as the unsharded path.
func FuzzTilesPartition(f *testing.F) {
	f.Add(256, 256, 256, 4, 64, false)
	f.Add(48, 512, 48, 4, 16, true)
	f.Add(33, 77, 19, 3, 8, true)
	f.Add(96, 96, 96, 8, 1, true)
	f.Add(1, 1, 1, 1, 1, false)
	f.Fuzz(func(t *testing.T, m, k, n, workers, minTile int, kSplit bool) {
		clamp := func(v, lo, hi int) int {
			if v < 0 {
				v = -v
			}
			return lo + v%(hi-lo+1)
		}
		m, k, n = clamp(m, 1, 96), clamp(k, 1, 96), clamp(n, 1, 96)
		workers, minTile = clamp(workers, 1, 8), clamp(minTile, 1, 64)
		spec, ok := Split(m, k, n, Options{Workers: workers, MinTile: minTile, KSplit: kSplit})
		if !ok {
			return
		}
		if spec.M != m || spec.K != k || spec.N != n {
			t.Fatalf("spec %v does not match problem %d×%d×%d", spec, m, k, n)
		}
		if !kSplit && spec.GridK != 1 {
			t.Fatalf("KSplit off but spec %v split K", spec)
		}
		assertPartition3D(t, spec, minTile)
	})
}

// TestSpecStringReportsCeil: the rendered tile size must be the actual
// largest cut (ceiling division); floor division under-reported it for
// non-dividing grids (e.g. 100/3 showed 33 where the largest tile is 34).
func TestSpecStringReportsCeil(t *testing.T) {
	s2d := Spec{M: 100, K: 50, N: 90, GridM: 3, GridN: 4}
	if got := s2d.String(); !strings.Contains(got, "~34×23 each") {
		t.Fatalf("2D String() = %q, want largest-cut ~34×23", got)
	}
	s3d := Spec{M: 100, K: 500, N: 90, GridM: 2, GridN: 1, GridK: 3}
	got := s3d.String()
	if !strings.Contains(got, "~50×167×90 each") || !strings.Contains(got, "3 K-slabs") {
		t.Fatalf("3D String() = %q, want ~50×167×90 and the K-slab count", got)
	}
}
