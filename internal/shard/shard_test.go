package shard

import "testing"

// TestTilesPartitionExactly verifies that for a sweep of problem shapes and
// options, the tiles cover every (i, j) of the M×N output exactly once and
// never stray out of bounds — the property that makes sharded execution
// bit-identical to sequential execution of the same tiles.
func TestTilesPartitionExactly(t *testing.T) {
	cases := []struct {
		m, k, n int
		o       Options
	}{
		{256, 256, 256, Options{Workers: 4, MinTile: 64}},
		{1024, 64, 96, Options{Workers: 8, MinTile: 32}},  // tall
		{96, 64, 1024, Options{Workers: 8, MinTile: 32}},  // wide
		{333, 177, 257, Options{Workers: 3, MinTile: 40}}, // non-power-of-two
		{4096, 4096, 4096, Options{Workers: 16, MinTile: 148}},
		{130, 10, 130, Options{Workers: 2, MinTile: 64}}, // barely shardable
		{1 << 14, 8, 1 << 14, Options{Workers: 64, MinTile: 100, Oversub: 3}},
	}
	for _, tc := range cases {
		spec, ok := Split(tc.m, tc.k, tc.n, tc.o)
		if !ok {
			t.Fatalf("Split(%d,%d,%d,%+v) refused to shard", tc.m, tc.k, tc.n, tc.o)
		}
		tiles := spec.Tiles()
		if len(tiles) != spec.NumTiles() || len(tiles) < 2 {
			t.Fatalf("%v: %d tiles, want %d ≥ 2", spec, len(tiles), spec.NumTiles())
		}
		seen := make([]bool, tc.m*tc.n)
		for _, tl := range tiles {
			if tl.Rows < tc.o.MinTile || tl.Cols < tc.o.MinTile {
				t.Fatalf("%v: tile %+v under MinTile %d", spec, tl, tc.o.MinTile)
			}
			if tl.I < 0 || tl.J < 0 || tl.I+tl.Rows > tc.m || tl.J+tl.Cols > tc.n {
				t.Fatalf("%v: tile %+v out of bounds", spec, tl)
			}
			for i := tl.I; i < tl.I+tl.Rows; i++ {
				for j := tl.J; j < tl.J+tl.Cols; j++ {
					if seen[i*tc.n+j] {
						t.Fatalf("%v: cell (%d,%d) covered twice", spec, i, j)
					}
					seen[i*tc.n+j] = true
				}
			}
		}
		for idx, s := range seen {
			if !s {
				t.Fatalf("%v: cell (%d,%d) uncovered", spec, idx/tc.n, idx%tc.n)
			}
		}
	}
}

// TestTilesBalanced: within each dimension tile sides differ by at most one,
// so no worker inherits a straggler tile much larger than the rest.
func TestTilesBalanced(t *testing.T) {
	spec, ok := Split(1000, 300, 700, Options{Workers: 5, MinTile: 50})
	if !ok {
		t.Fatal("refused to shard")
	}
	minR, maxR := 1<<30, 0
	minC, maxC := 1<<30, 0
	for _, tl := range spec.Tiles() {
		if tl.Rows < minR {
			minR = tl.Rows
		}
		if tl.Rows > maxR {
			maxR = tl.Rows
		}
		if tl.Cols < minC {
			minC = tl.Cols
		}
		if tl.Cols > maxC {
			maxC = tl.Cols
		}
	}
	if maxR-minR > 1 || maxC-minC > 1 {
		t.Fatalf("%v: unbalanced tiles rows[%d,%d] cols[%d,%d]", spec, minR, maxR, minC, maxC)
	}
}

// TestSplitRefusals: problems with no room for two above-floor tiles, or
// degenerate dimensions, must not shard.
func TestSplitRefusals(t *testing.T) {
	cases := []struct {
		m, k, n int
		o       Options
	}{
		{100, 100, 100, Options{Workers: 8, MinTile: 64}}, // < 2 tiles fit
		{64, 64, 64, Options{Workers: 4, MinTile: 64}},
		{0, 10, 10, Options{Workers: 4, MinTile: 1}},
		{10, 0, 10, Options{Workers: 4, MinTile: 1}},
	}
	for _, tc := range cases {
		if spec, ok := Split(tc.m, tc.k, tc.n, tc.o); ok {
			t.Fatalf("Split(%d,%d,%d,%+v) sharded as %v, want refusal", tc.m, tc.k, tc.n, tc.o, spec)
		}
	}
}

// TestSplitShapeAffinity: a tall problem shards along M, a wide one along N,
// and a square problem with room to spare lands on a worker-aligned grid of
// the largest possible near-square tiles (minimum modelled makespan).
func TestSplitShapeAffinity(t *testing.T) {
	tall, ok := Split(4096, 256, 200, Options{Workers: 4, MinTile: 100})
	if !ok || tall.GridN != 1 || tall.GridM != 4 {
		t.Fatalf("tall split: %v ok=%v, want 4×1 (one tile per worker, cuts along M)", tall, ok)
	}
	wide, ok := Split(200, 256, 4096, Options{Workers: 4, MinTile: 100})
	if !ok || wide.GridM != 1 || wide.GridN != 4 {
		t.Fatalf("wide split: %v ok=%v, want 1×4 (one tile per worker, cuts along N)", wide, ok)
	}
	sq, ok := Split(4096, 4096, 4096, Options{Workers: 8, MinTile: 148})
	if !ok || sq.NumTiles() != 8 || sq.NumTiles()%8 != 0 {
		t.Fatalf("square split: %v ok=%v, want exactly one tile per worker", sq, ok)
	}
	for _, tl := range sq.Tiles() {
		if tl.Rows < 1024 || tl.Cols < 1024 {
			t.Fatalf("square split %v produced a tile %+v smaller than the best achievable", sq, tl)
		}
	}
	// Determinism: the same inputs always produce the same spec.
	sq2, _ := Split(4096, 4096, 4096, Options{Workers: 8, MinTile: 148})
	if sq != sq2 {
		t.Fatalf("split not deterministic: %v vs %v", sq, sq2)
	}
}
