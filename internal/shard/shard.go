// Package shard splits one large C += A·B into independent block products
// that can be scheduled through a worker pool — the Benson–Ballard
// observation (1409.2908) that for large problems the parallel win comes
// from running independent sub-products concurrently rather than from
// parallelizing the loops of a single product.
//
// The decomposition is two-dimensional over the M×N output: C is cut into a
// GridM×GridN grid of tiles and each tile's full-K product
//
//	C[i0:i1, j0:j1] += A[i0:i1, :] · B[:, j0:j1]
//
// is one shard. Keeping K whole means the shards write disjoint regions of C
// — no reduction, no synchronization, bit-identical results regardless of
// scheduling order — and each shard keeps the largest possible inner
// dimension, which is where fast-algorithm speedups live.
//
// The grid is chosen by minimizing the modelled makespan of scheduling the
// tiles on Workers equal workers — ⌈tiles/Workers⌉ rounds of the largest
// tile's area — subject to every tile's M and N staying at or above a
// caller-given floor (the performance model's fast-algorithm break-even, so
// each shard still clears the size at which an FMM plan beats plain GEMM).
// Ties go to the grid with the largest minimum tile side, then the fewest
// tiles: bigger tiles keep per-tile plan selection in the multi-level
// regime and amortize packing, and worker-aligned tile counts avoid the
// straggler round a 9-tiles-on-4-workers schedule pays.
package shard

import "fmt"

// DefaultOversub bounds the grid search at Workers×Oversub tiles. Grids
// beyond one tile per worker only win on ragged shapes where uneven tiles
// make an extra round cheaper; a small factor is enough headroom to find
// those without searching absurd grids.
const DefaultOversub = 2

// Options controls Split.
type Options struct {
	// Workers is the scheduling width the shards will be fed to (≥1).
	Workers int
	// MinTile is the floor for every tile's rows and cols — typically the
	// model's fast-algorithm break-even size (≥1).
	MinTile int
	// Oversub bounds the search at Workers×Oversub tiles; 0 means
	// DefaultOversub.
	Oversub int
}

// Tile is one shard: the block product
// C[I:I+Rows, J:J+Cols] += A[I:I+Rows, :] · B[:, J:J+Cols].
type Tile struct {
	I, J       int
	Rows, Cols int
}

// Spec is a chosen decomposition of C(M×N) += A(M×K)·B(K×N) into a
// GridM×GridN grid of full-K tiles.
type Spec struct {
	M, K, N      int
	GridM, GridN int
}

// Split chooses a decomposition for C(m×n) += A(m×k)·B(k×n) under o. The
// second return is false when the problem should not be sharded: fewer than
// two tiles fit above the MinTile floor (or the Workers×Oversub bound
// forbids even two tiles).
//
// Every admissible grid up to Workers×Oversub tiles is scored by modelled
// makespan — the schedule length of tiles on Workers equal workers,
// ⌈gm·gn/Workers⌉ rounds of the largest tile's area (K is common to all
// grids and drops out) — and the minimum wins. Ties prefer the larger
// minimum tile side, then fewer tiles; see the package comment for why.
func Split(m, k, n int, o Options) (Spec, bool) {
	if m < 1 || k < 1 || n < 1 {
		return Spec{}, false
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.MinTile < 1 {
		o.MinTile = 1
	}
	oversub := o.Oversub
	if oversub < 1 {
		oversub = DefaultOversub
	}
	gmMax := m / o.MinTile
	if gmMax < 1 {
		gmMax = 1
	}
	gnMax := n / o.MinTile
	if gnMax < 1 {
		gnMax = 1
	}
	maxTiles := o.Workers * oversub
	var (
		found                        bool
		bestM, bestN                 int
		bestCost, bestSide, bestTile int64
	)
	for gm := 1; gm <= gmMax && gm <= maxTiles; gm++ {
		for gn := 1; gn <= gnMax; gn++ {
			tiles := gm * gn
			if tiles > maxTiles {
				break
			}
			if tiles < 2 {
				continue
			}
			// Largest tile sides under balanced cuts.
			tr := int64(ceilDiv(m, gm))
			tc := int64(ceilDiv(n, gn))
			rounds := int64(ceilDiv(tiles, o.Workers))
			cost := rounds * tr * tc
			side := tr
			if tc < side {
				side = tc
			}
			better := !found ||
				cost < bestCost ||
				(cost == bestCost && (side > bestSide ||
					(side == bestSide && int64(tiles) < bestTile)))
			if better {
				found = true
				bestM, bestN = gm, gn
				bestCost, bestSide, bestTile = cost, side, int64(tiles)
			}
		}
	}
	if !found {
		return Spec{}, false
	}
	return Spec{M: m, K: k, N: n, GridM: bestM, GridN: bestN}, true
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// NumTiles is the shard count GridM×GridN.
func (s Spec) NumTiles() int { return s.GridM * s.GridN }

// Tiles enumerates the decomposition row-major. Tile sides are balanced:
// within a dimension, sizes differ by at most one, with the larger tiles
// first. The tiles exactly partition the M×N output.
func (s Spec) Tiles() []Tile {
	rows := cuts(s.M, s.GridM)
	cols := cuts(s.N, s.GridN)
	out := make([]Tile, 0, s.GridM*s.GridN)
	i := 0
	for _, r := range rows {
		j := 0
		for _, c := range cols {
			out = append(out, Tile{I: i, J: j, Rows: r, Cols: c})
			j += c
		}
		i += r
	}
	return out
}

// cuts splits extent into g balanced parts (sizes differ by ≤1, larger
// parts first).
func cuts(extent, g int) []int {
	base, rem := extent/g, extent%g
	out := make([]int, g)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// String renders the decomposition for logs and errors.
func (s Spec) String() string {
	return fmt.Sprintf("shard %d×%d×%d into %d×%d tiles (%d shards, ~%d×%d each)",
		s.M, s.K, s.N, s.GridM, s.GridN, s.NumTiles(), s.M/s.GridM, s.N/s.GridN)
}
