// Package shard splits one large C += A·B into independent block products
// that can be scheduled through a worker pool — the Benson–Ballard
// observation (1409.2908) that for large problems the parallel win comes
// from running independent sub-products concurrently rather than from
// parallelizing the loops of a single product.
//
// The decomposition is three-dimensional: C is cut into a GridM×GridN grid
// of output tiles, and — when Options.KSplit permits — the inner dimension
// is cut into GridK slabs, so tile (i, j, p) is the block product
//
//	C[i0:i1, j0:j1] += A[i0:i1, p0:p1] · B[p0:p1, j0:j1].
//
// With GridK == 1 (K kept whole) the shards write disjoint regions of C —
// no reduction, no synchronization, bit-identical results regardless of
// scheduling order — and each shard keeps the largest possible inner
// dimension, which is where fast-algorithm speedups live. Splitting K is
// the escape hatch for K-dominant problems (small M×N output, huge inner
// dimension — the ML reduction shape) that otherwise have no room for two
// above-floor output tiles and would run on a single worker: the GridK slab
// products of one output tile accumulate into per-slab reduction buffers
// that the executor folds into C in ascending slab order, so results stay
// run-to-run deterministic even though scheduling is not.
//
// The grid is chosen by minimizing a modelled makespan of scheduling the
// tiles on Workers equal workers — by default ⌈tiles/Workers⌉ rounds of the
// largest tile's volume plus a reduction surcharge of M·N·(GridK−1) element
// folds for K-split grids, or the caller's Options.Cost hook (typically the
// performance model's ShardMakespan, which prices the same schedule in
// seconds) — subject to every cut dimension staying at or above a
// caller-given floor (the performance model's fast-algorithm break-even, so
// each shard still clears the size at which an FMM plan beats plain GEMM).
// Ties go to the grid with the largest minimum output-tile side, then the
// fewest tiles, then the fewest K slabs: bigger tiles keep per-tile plan
// selection in the multi-level regime and amortize packing, worker-aligned
// tile counts avoid the straggler round a 9-tiles-on-4-workers schedule
// pays, and K stays whole unless splitting it actually wins.
package shard

import "fmt"

// DefaultOversub bounds the grid search at Workers×Oversub tiles. Grids
// beyond one tile per worker only win on ragged shapes where uneven tiles
// make an extra round cheaper; a small factor is enough headroom to find
// those without searching absurd grids.
const DefaultOversub = 2

// defaultReduceCost weighs one reduction-fold element (read slab buffer,
// read C, write C — bandwidth bound) against one unit of tile volume (a
// fused multiply-add — compute bound) in the built-in makespan score:
// roughly 3·τb / (2·τa) on the paper's machine.
const defaultReduceCost = 6

// Options controls Split.
type Options struct {
	// Workers is the scheduling width the shards will be fed to (≥1).
	Workers int
	// MinTile is the floor for every cut dimension — tile rows and cols,
	// and slab depth when K is split — typically the model's fast-algorithm
	// break-even size (≥1). An uncut dimension may stay below the floor.
	MinTile int
	// Oversub bounds the search at Workers×Oversub tiles; 0 means
	// DefaultOversub.
	Oversub int
	// KSplit permits cutting the K dimension into GridK slabs. The executor
	// then needs per-slab reduction buffers, and results are run-to-run
	// deterministic rather than bit-identical to the 2D path, so the score
	// charges K-split grids for the extra reduction traffic and K stays
	// whole unless splitting it wins.
	KSplit bool
	// Cost, when non-nil, scores a candidate GridM×GridN×GridK grid (lower
	// is better; typically the performance model's ShardMakespan in
	// seconds). Nil selects the built-in volume-based score. The hook must
	// be deterministic — Split's choice is part of the determinism contract.
	Cost func(gm, gn, gk int) float64
}

// Tile is one shard: the block product
// C[I:I+Rows, J:J+Cols] += A[I:I+Rows, P:P+Depth] · B[P:P+Depth, J:J+Cols].
// P is the offset along the inner dimension; with an unsplit K every tile
// has P == 0 and Depth == K.
type Tile struct {
	I, J, P           int
	Rows, Cols, Depth int
}

// Spec is a chosen decomposition of C(M×N) += A(M×K)·B(K×N) into a
// GridM×GridN grid of output tiles, each cut into GridK K-slabs. Split
// always sets GridK ≥ 1; a hand-built Spec with GridK == 0 is treated as
// GridK == 1 (the pre-K-split layout).
type Spec struct {
	M, K, N             int
	GridM, GridN, GridK int
}

// Split chooses a decomposition for C(m×n) += A(m×k)·B(k×n) under o. The
// second return is false when the problem should not be sharded: fewer than
// two tiles fit above the MinTile floor (or the Workers×Oversub bound
// forbids even two tiles).
//
// Every admissible grid up to Workers×Oversub tiles is scored by o.Cost (or
// the built-in volume-based makespan — ⌈tiles/Workers⌉ rounds of the
// largest tile's volume, plus m·n·(gk−1) weighted reduction folds for
// K-split grids) and the minimum wins. Ties prefer the larger minimum
// output-tile side, then fewer tiles, then fewer K slabs; see the package
// comment for why.
func Split(m, k, n int, o Options) (Spec, bool) {
	if m < 1 || k < 1 || n < 1 {
		return Spec{}, false
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.MinTile < 1 {
		o.MinTile = 1
	}
	oversub := o.Oversub
	if oversub < 1 {
		oversub = DefaultOversub
	}
	cost := o.Cost
	if cost == nil {
		cost = func(gm, gn, gk int) float64 { return defaultCost(m, k, n, gm, gn, gk, o.Workers) }
	}
	gmMax := m / o.MinTile
	if gmMax < 1 {
		gmMax = 1
	}
	gnMax := n / o.MinTile
	if gnMax < 1 {
		gnMax = 1
	}
	gkMax := 1
	if o.KSplit {
		if gkMax = k / o.MinTile; gkMax < 1 {
			gkMax = 1
		}
	}
	maxTiles := o.Workers * oversub
	var (
		found               bool
		bestM, bestN, bestK int
		bestCost            float64
		bestSide, bestTile  int64
	)
	for gm := 1; gm <= gmMax && gm <= maxTiles; gm++ {
		for gn := 1; gn <= gnMax && gm*gn <= maxTiles; gn++ {
			for gk := 1; gk <= gkMax; gk++ {
				tiles := gm * gn * gk
				if tiles > maxTiles {
					break
				}
				if tiles < 2 {
					continue
				}
				c := cost(gm, gn, gk)
				// Smallest output-tile side under balanced cuts.
				side := int64(ceilDiv(m, gm))
				if tc := int64(ceilDiv(n, gn)); tc < side {
					side = tc
				}
				better := !found ||
					c < bestCost ||
					(c == bestCost && (side > bestSide ||
						(side == bestSide && (int64(tiles) < bestTile ||
							(int64(tiles) == bestTile && gk < bestK)))))
				if better {
					found = true
					bestM, bestN, bestK = gm, gn, gk
					bestCost, bestSide, bestTile = c, side, int64(tiles)
				}
			}
		}
	}
	if !found {
		return Spec{}, false
	}
	return Spec{M: m, K: k, N: n, GridM: bestM, GridN: bestN, GridK: bestK}, true
}

// defaultCost is the built-in makespan score: ⌈tiles/workers⌉ rounds of the
// largest tile's volume, plus — for K-split grids — the reduction surcharge
// of folding the gk−1 extra slab buffers into C, m·n·(gk−1) element folds
// at defaultReduceCost volume units each. All quantities stay well under
// 2^53, so the float comparisons in Split are exact.
func defaultCost(m, k, n, gm, gn, gk, workers int) float64 {
	vol := int64(ceilDiv(m, gm)) * int64(ceilDiv(n, gn)) * int64(ceilDiv(k, gk))
	c := float64(int64(ceilDiv(gm*gn*gk, workers)) * vol)
	if gk > 1 {
		c += defaultReduceCost * float64(m) * float64(n) * float64(gk-1)
	}
	return c
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// gridK treats a zero GridK (a Spec hand-built before K-split existed) as 1.
func (s Spec) gridK() int {
	if s.GridK < 1 {
		return 1
	}
	return s.GridK
}

// NumTiles is the shard count GridM×GridN×GridK.
func (s Spec) NumTiles() int { return s.GridM * s.GridN * s.gridK() }

// Tiles enumerates the decomposition with rows outermost, then columns,
// then K-slabs innermost — so the GridK slabs of one output tile are
// consecutive, in ascending P, which is the order the executor folds their
// reduction buffers into C. Within a dimension, cut sizes are balanced
// (they differ by at most one, larger first). The tiles exactly partition
// the M×N×K iteration space.
func (s Spec) Tiles() []Tile {
	rows := cuts(s.M, s.GridM)
	cols := cuts(s.N, s.GridN)
	deps := cuts(s.K, s.gridK())
	out := make([]Tile, 0, s.NumTiles())
	i := 0
	for _, r := range rows {
		j := 0
		for _, c := range cols {
			p := 0
			for _, d := range deps {
				out = append(out, Tile{I: i, J: j, P: p, Rows: r, Cols: c, Depth: d})
				p += d
			}
			j += c
		}
		i += r
	}
	return out
}

// cuts splits extent into g balanced parts (sizes differ by ≤1, larger
// parts first).
func cuts(extent, g int) []int {
	base, rem := extent/g, extent%g
	out := make([]int, g)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// String renders the decomposition for logs and errors. The reported tile
// size is the actual largest cut (ceiling division), which for non-dividing
// grids is one more than the floor-division size an earlier version showed.
func (s Spec) String() string {
	if s.gridK() == 1 {
		return fmt.Sprintf("shard %d×%d×%d into %d×%d tiles (%d shards, ~%d×%d each)",
			s.M, s.K, s.N, s.GridM, s.GridN, s.NumTiles(),
			ceilDiv(s.M, s.GridM), ceilDiv(s.N, s.GridN))
	}
	return fmt.Sprintf("shard %d×%d×%d into %d×%d tiles × %d K-slabs (%d shards, ~%d×%d×%d each)",
		s.M, s.K, s.N, s.GridM, s.GridN, s.GridK, s.NumTiles(),
		ceilDiv(s.M, s.GridM), ceilDiv(s.K, s.GridK), ceilDiv(s.N, s.GridN))
}
