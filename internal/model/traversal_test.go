package model

import (
	"testing"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
)

// TestTraversalPlanDegenerateCases: single worker, empty plans, and problems
// smaller than the composite partition never fan out.
func TestTraversalPlanDegenerateCases(t *testing.T) {
	arch := PaperIvyBridge()
	levels := []core.Algorithm{core.Strassen()}
	if got := TraversalPlan(arch, fmmexec.ABC, 1024, 1024, 1024, levels, 1); got != nil {
		t.Fatalf("workers=1: %v, want nil", got)
	}
	if got := TraversalPlan(arch, fmmexec.ABC, 1024, 1024, 1024, nil, 8); got != nil {
		t.Fatalf("no levels: %v, want nil", got)
	}
	if got := TraversalPlan(arch, fmmexec.ABC, 1, 1, 1, levels, 8); got != nil {
		t.Fatalf("sub-partition problem: %v, want nil", got)
	}
}

// TestTraversalPlanFansOutMediumProblems: the ISSUE's target scenario — a
// medium problem (1024³, sub-blocks of 256–512) on 8 workers — must choose
// BFS somewhere: one 256–512 sub-block GEMM offers only a handful of MC-row
// panels, so DFS would idle most of an 8-worker budget.
func TestTraversalPlanFansOutMediumProblems(t *testing.T) {
	arch := PaperIvyBridge()
	for _, v := range fmmexec.Variants {
		levels := []core.Algorithm{core.Strassen(), core.Strassen()}
		steps := TraversalPlan(arch, v, 1024, 1024, 1024, levels, 8)
		if len(steps) == 0 {
			t.Fatalf("%v at 1024³/8 workers: pure DFS, want a BFS prefix", v)
		}
		if steps[0] != fmmexec.BFS {
			t.Fatalf("%v: steps %v do not start with BFS", v, steps)
		}
	}
}

// TestTraversalPlanIsBFSPrefix: any non-nil result must be a BFS prefix
// followed by DFS — the only shape the executor accepts — and have one step
// per level.
func TestTraversalPlanIsBFSPrefix(t *testing.T) {
	arch := PaperIvyBridge()
	shapes := [][3]int{{512, 512, 512}, {1024, 1024, 1024}, {2048, 1024, 512}, {4096, 4096, 4096}, {256, 2048, 256}}
	levelSets := [][]core.Algorithm{
		{core.Strassen()},
		{core.Strassen(), core.Strassen()},
		{core.Strassen(), core.Generate(2, 3, 2)},
		{core.Strassen(), core.Strassen(), core.Strassen()},
	}
	for _, workers := range []int{2, 4, 8, 16} {
		for _, s := range shapes {
			for _, levels := range levelSets {
				for _, v := range fmmexec.Variants {
					steps := TraversalPlan(arch, v, s[0], s[1], s[2], levels, workers)
					if steps == nil {
						continue
					}
					if len(steps) != len(levels) {
						t.Fatalf("%v %v w=%d: %d steps for %d levels", v, s, workers, len(steps), len(levels))
					}
					seenDFS := false
					for i, st := range steps {
						switch st {
						case fmmexec.BFS:
							if seenDFS {
								t.Fatalf("%v %v w=%d: BFS after DFS in %v", v, s, workers, steps)
							}
						case fmmexec.DFS:
							seenDFS = true
						default:
							t.Fatalf("%v %v w=%d: unknown step %v at %d", v, s, workers, st, i)
						}
					}
					if steps[0] != fmmexec.BFS {
						t.Fatalf("%v %v w=%d: non-nil plan %v without BFS prefix", v, s, workers, steps)
					}
				}
			}
		}
	}
}

// TestTraversalPlanKeepsDFSForHugeSubBlocks: when each sub-block GEMM alone
// offers far more MC-row panels than workers, intra-GEMM threading already
// saturates the budget and fan-out buys nothing — one Strassen level at a
// huge size stays DFS on few workers.
func TestTraversalPlanKeepsDFSForHugeSubBlocks(t *testing.T) {
	arch := PaperIvyBridge() // MC = 96
	levels := []core.Algorithm{core.Strassen()}
	// Sub-blocks 8192² → nb = ⌈8192/96⌉ = 86 panels ≫ 2 workers: DFS already
	// achieves the full 2× and BFS adds fold traffic.
	if steps := TraversalPlan(arch, fmmexec.ABC, 16384, 16384, 16384, levels, 2); steps != nil {
		t.Fatalf("16384³ ABC on 2 workers chose %v, want DFS (nil)", steps)
	}
}
