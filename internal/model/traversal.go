package model

import (
	"math"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
)

// TraversalPlan chooses a per-level BFS/DFS traversal for executing an
// L-level plan on C(m×n) += A(m×k)·B(k×n) with the given worker budget — the
// Benson–Ballard hybrid question ("A Framework for Practical Parallel Fast
// Matrix Multiplication"): fan a level's independent sub-products across
// workers (BFS — costs memory for temporaries and reduction traffic) or run
// them in sequence with intra-GEMM threading (DFS — idles cores once the
// sub-blocks are too small to split MC-wide)?
//
// The model extends the makespan reasoning of ShardMakespan to term fan-out.
// With composite stats (M̃,K̃,Ñ,R) the sub-block product is sm×sk×sn
// (sm = m/M̃, …) and every traversal executes the same R such products:
//
//   - DFS runs them back-to-back, each parallelized internally; the intra-GEMM
//     speedup is capped by how many MC-row panels the sub-block offers
//     (nb = ⌈sm/MC⌉ — below workers panels, cores idle), so
//     T_dfs = R·t_gemm · ⌈nb/w⌉/nb.
//   - BFS at prefix depth d fans F = ΠRl (l ≤ d) chunks of R/F serial
//     single-threaded terms across w workers in ⌈F/w⌉ rounds, then pays the
//     reduction fold: per-term product buffers for Naive/AB (τb·R·sm·sn extra
//     buffer traffic over the DFS scatter), per-chunk C shadows for ABC
//     (4·τb·F·m₁·n₁ — zero, read shadow, read C, write C over the full core).
//
// The cheapest depth wins; depth 0 (pure DFS) returns nil, so callers can
// hand the result straight to fmmexec.NewPlanTraversal (nil = historical
// serial loop). Ties keep the shallower depth — less memory for the same
// predicted time. workers < 2, an empty plan, or a problem smaller than the
// composite partition always returns nil.
func TraversalPlan(arch Arch, v fmmexec.Variant, m, k, n int, levels []core.Algorithm, workers int) []fmmexec.Step {
	L := len(levels)
	if workers < 2 || L == 0 {
		return nil
	}
	s := StatsOf(levels...)
	sm, sk, sn := m/s.MT, k/s.KT, n/s.NT
	if sm < 1 || sk < 1 || sn < 1 {
		return nil // partition larger than the problem: plain GEMM anyway
	}
	perTerm := PredictGEMM(arch, sm, sk, sn).Total()
	w := float64(workers)

	// DFS baseline: the sub-block offers nb = ⌈sm/MC⌉ independent row panels
	// to the intra-GEMM ic-loop split, so its realized speedup saturates at
	// min(nb, w).
	nb := (sm + arch.MC - 1) / arch.MC
	best := float64(s.R) * perTerm * math.Ceil(float64(nb)/w) / float64(nb)
	bestDepth := 0

	m1 := float64(sm * s.MT)
	n1 := float64(sn * s.NT)
	F := 1
	for d := 1; d <= L; d++ {
		F *= levels[d-1].R
		chunk := float64(s.R / F)
		cost := math.Ceil(float64(F)/w) * chunk * perTerm
		switch v {
		case fmmexec.ABC:
			cost += 4 * arch.TauB * float64(F) * m1 * n1
		default: // Naive, AB: per-term product buffers
			cost += arch.TauB * float64(s.R) * float64(sm) * float64(sn)
		}
		if cost < best {
			best = cost
			bestDepth = d
		}
	}
	if bestDepth == 0 {
		return nil
	}
	steps := make([]fmmexec.Step, L)
	for i := 0; i < bestDepth; i++ {
		steps[i] = fmmexec.BFS
	}
	return steps
}
