package model

import (
	"math"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
)

// TraversalPlan chooses a per-level BFS/DFS traversal for executing an
// L-level plan on C(m×n) += A(m×k)·B(k×n) with the given worker budget — the
// Benson–Ballard hybrid question ("A Framework for Practical Parallel Fast
// Matrix Multiplication"): fan a level's independent sub-products across
// workers (BFS — costs memory for temporaries and reduction traffic) or run
// them in sequence with intra-GEMM threading (DFS — idles cores once the
// sub-blocks are too small to split MC-wide)?
//
// The model extends the makespan reasoning of ShardMakespan to term fan-out.
// With composite stats (M̃,K̃,Ñ,R) the sub-block product is sm×sk×sn
// (sm = m/M̃, …) and every traversal executes the same R such products:
//
//   - DFS runs them back-to-back, each parallelized internally; the intra-GEMM
//     speedup is capped by how many MC-row panels the sub-block offers
//     (nb = ⌈sm/MC⌉ — below workers panels, cores idle), so
//     T_dfs = R·t_gemm · ⌈nb/w⌉/nb.
//   - BFS at prefix depth d fans F = ΠRl (l ≤ d) chunks of R/F serial
//     single-threaded terms across w workers in ⌈F/w⌉ rounds, then pays the
//     reduction fold: per-term product buffers for Naive/AB (τb·R·sm·sn extra
//     buffer traffic over the DFS scatter), per-chunk C shadows for ABC
//     (4·τb·F·m₁·n₁ — zero, read shadow, read C, write C over the full core).
//
// The cheapest depth wins; depth 0 (pure DFS) returns nil, so callers can
// hand the result straight to fmmexec.NewPlanTraversal (nil = historical
// serial loop). Ties keep the shallower depth — less memory for the same
// predicted time. workers < 2, an empty plan, or a problem smaller than the
// composite partition always returns nil.
//
// TraversalPlan evaluates the analytic fold cost as-is; TraversalPlanScaled
// lets the online autotuner feed a measured correction back in.
func TraversalPlan(arch Arch, v fmmexec.Variant, m, k, n int, levels []core.Algorithm, workers int) []fmmexec.Step {
	return TraversalPlanScaled(arch, v, m, k, n, levels, workers, 1)
}

// TraversalPlanScaled is TraversalPlan with the BFS reduction-fold τb terms
// multiplied by foldScale: 1 reproduces the analytic model, while the
// autotuner derives a scale from measured BFS-vs-DFS promotions
// (FitFoldScale) so the fold-cost constants track what this machine's
// memory system actually charges rather than the analytic τb estimate —
// the "calibrate TraversalPlan fold-cost from measured runs" loop.
// foldScale ≤ 0 is treated as 1.
func TraversalPlanScaled(arch Arch, v fmmexec.Variant, m, k, n int, levels []core.Algorithm, workers int, foldScale float64) []fmmexec.Step {
	L := len(levels)
	if workers < 2 || L == 0 {
		return nil
	}
	if foldScale <= 0 {
		foldScale = 1
	}
	s := StatsOf(levels...)
	sm, sk, sn := m/s.MT, k/s.KT, n/s.NT
	if sm < 1 || sk < 1 || sn < 1 {
		return nil // partition larger than the problem: plain GEMM anyway
	}

	// DFS baseline: the sub-block offers nb = ⌈sm/MC⌉ independent row panels
	// to the intra-GEMM ic-loop split, so its realized speedup saturates at
	// min(nb, w).
	best := dfsCost(arch, s, sm, sk, sn, workers)
	bestDepth := 0
	for d := 1; d <= L; d++ {
		compute, fold := bfsCost(arch, v, s, sm, sk, sn, levels, d, workers)
		if cost := compute + foldScale*fold; cost < best {
			best = cost
			bestDepth = d
		}
	}
	if bestDepth == 0 {
		return nil
	}
	steps := make([]fmmexec.Step, L)
	for i := 0; i < bestDepth; i++ {
		steps[i] = fmmexec.BFS
	}
	return steps
}

// dfsCost is the DFS baseline: R sub-products back-to-back, each
// parallelized internally with speedup capped at min(⌈sm/MC⌉, workers).
func dfsCost(arch Arch, s Stats, sm, sk, sn, workers int) float64 {
	perTerm := PredictGEMM(arch, sm, sk, sn).Total()
	nb := (sm + arch.MC - 1) / arch.MC
	return float64(s.R) * perTerm * math.Ceil(float64(nb)/float64(workers)) / float64(nb)
}

// bfsCost splits the BFS cost at prefix depth d into its compute part
// (⌈F/w⌉ rounds of R/F serial terms) and its reduction-fold part (the τb
// buffer traffic), so callers can scale the fold term independently — the
// seam both TraversalPlanScaled and FitFoldScale stand on.
func bfsCost(arch Arch, v fmmexec.Variant, s Stats, sm, sk, sn int, levels []core.Algorithm, depth, workers int) (compute, fold float64) {
	perTerm := PredictGEMM(arch, sm, sk, sn).Total()
	w := float64(workers)
	F := 1
	for i := 0; i < depth; i++ {
		F *= levels[i].R
	}
	chunk := float64(s.R / F)
	compute = math.Ceil(float64(F)/w) * chunk * perTerm
	m1 := float64(sm * s.MT)
	n1 := float64(sn * s.NT)
	switch v {
	case fmmexec.ABC:
		fold = 4 * arch.TauB * float64(F) * m1 * n1
	default: // Naive, AB: per-term product buffers
		fold = arch.TauB * float64(s.R) * float64(sm) * float64(sn)
	}
	return compute, fold
}

// Admissible range for a fitted fold scale: outside it the measurement is
// more likely polluted (a paused goroutine, a thermal event) than the
// model wrong by that much, so the fit clamps rather than swinging
// selection to an extreme.
const (
	foldScaleMin = 0.25
	foldScaleMax = 8.0
)

// FitFoldScale solves for the fold-cost scale that makes the model's BFS
// prediction at the given prefix depth match a measured wall time:
// measured = compute + scale·fold, so scale = (measured − compute)/fold,
// clamped to [0.25, 8] (a measurement faster than the compute part alone
// clamps to the floor — evidence that folds are far cheaper than modeled,
// bounded so one polluted sample can't zero the term). Degenerate inputs —
// a depth the plan doesn't have, a zero fold term, a non-positive
// measurement — return 1, the analytic scale. The autotuner calls
// this when a promotion crosses traversal modes (measured evidence that
// the analytic fold cost mispriced BFS) and feeds the result back into
// TraversalPlanScaled for subsequent plan construction.
func FitFoldScale(arch Arch, v fmmexec.Variant, m, k, n int, levels []core.Algorithm, workers, depth int, measured float64) float64 {
	if depth < 1 || depth > len(levels) || workers < 1 || measured <= 0 {
		return 1
	}
	s := StatsOf(levels...)
	sm, sk, sn := m/s.MT, k/s.KT, n/s.NT
	if sm < 1 || sk < 1 || sn < 1 {
		return 1
	}
	compute, fold := bfsCost(arch, v, s, sm, sk, sn, levels, depth, workers)
	if fold <= 0 {
		return 1
	}
	scale := (measured - compute) / fold
	if scale < foldScaleMin {
		return foldScaleMin
	}
	if scale > foldScaleMax {
		return foldScaleMax
	}
	return scale
}
