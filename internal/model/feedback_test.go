package model

import (
	"sync"
	"testing"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
)

func TestFeedbackRecordLookup(t *testing.T) {
	fb := NewFeedback()
	if _, ok := fb.Lookup("256/256/256", "x"); ok {
		t.Fatal("empty store returned a measurement")
	}
	fb.Record("256/256/256", "x", 1.5)
	fb.Record("256/256/256", "x", 1.2) // latest wins
	fb.Record("256/256/256", "y", 0)   // non-positive dropped
	if v, ok := fb.Lookup("256/256/256", "x"); !ok || v != 1.2 {
		t.Fatalf("Lookup = %v/%v, want 1.2/true", v, ok)
	}
	if _, ok := fb.Lookup("256/256/256", "y"); ok {
		t.Fatal("non-positive measurement stored")
	}
	if fb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", fb.Len())
	}
	// Nil store is inert on every method — callers pass nil when autotuning
	// is off.
	var nilFB *Feedback
	nilFB.Record("s", "p", 1)
	if _, ok := nilFB.Lookup("s", "p"); ok || nilFB.Len() != 0 {
		t.Fatal("nil Feedback not inert")
	}
}

func TestFeedbackConcurrent(t *testing.T) {
	fb := NewFeedback()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fb.Record("shape", "plan", float64(g+1))
				fb.Lookup("shape", "plan")
				fb.Len()
			}
		}(g)
	}
	wg.Wait()
	if v, ok := fb.Lookup("shape", "plan"); !ok || v < 1 || v > 8 {
		t.Fatalf("racing writes left %v/%v", v, ok)
	}
}

// TestRankMeasuredOverride: a measured median reorders the ranking — a
// candidate the model ranks behind wins once traffic proves it faster —
// and TopK reflects the override.
func TestRankMeasuredOverride(t *testing.T) {
	arch := PaperIvyBridge()
	cands := DefaultCandidates()
	m, k, n := 2048, 2048, 2048
	base := Rank(arch, cands, m, k, n)
	if len(base) < 3 {
		t.Fatal("need at least 3 candidates")
	}
	shape := "2048/2048/2048"
	// No feedback: identical to Rank (same order, same predictions).
	same := RankMeasured(arch, cands, m, k, n, nil, shape)
	for i := range base {
		if same[i].Candidate.Name() != base[i].Candidate.Name() || same[i].Predicted != base[i].Predicted {
			t.Fatalf("nil feedback changed rank at %d: %v vs %v", i, same[i], base[i])
		}
	}
	// Measure the 3rd candidate as faster than the analytic best.
	third := base[2].Candidate
	fb := NewFeedback()
	fb.Record(shape, third.Name(), base[0].Predicted/2)
	ranked := RankMeasured(arch, cands, m, k, n, fb, shape)
	if ranked[0].Candidate.Name() != third.Name() {
		t.Fatalf("measured winner ranked %q first instead of %q", ranked[0].Candidate.Name(), third.Name())
	}
	if ranked[0].Predicted != base[0].Predicted/2 {
		t.Fatalf("measured prediction not substituted: %g", ranked[0].Predicted)
	}
	// A measurement for a different shape class must not leak.
	other := RankMeasured(arch, cands, m, k, n, fb, "512/512/512")
	if other[0].Candidate.Name() != base[0].Candidate.Name() {
		t.Fatal("feedback leaked across shape classes")
	}

	top := TopK(arch, cands, m, k, n, 3, fb, shape)
	if len(top) != 3 || top[0].Name() != third.Name() {
		t.Fatalf("TopK = %v", top)
	}
	all := TopK(arch, cands, m, k, n, len(cands)+100, nil, shape)
	if len(all) != len(cands) {
		t.Fatalf("TopK overflow returned %d of %d", len(all), len(cands))
	}
}

// TestTraversalPlanScaledMatchesUnscaled: scale 1 (and degenerate scales)
// reproduce TraversalPlan exactly across a sweep of shapes and variants.
func TestTraversalPlanScaledMatchesUnscaled(t *testing.T) {
	arch := PaperIvyBridge()
	strassen := core.Strassen()
	cases := [][]int{{256, 256, 256}, {1024, 1024, 1024}, {4096, 512, 4096}}
	for _, v := range fmmexec.Variants {
		for _, s := range cases {
			for _, lvls := range [][]core.Algorithm{{strassen}, {strassen, strassen}} {
				want := TraversalPlan(arch, v, s[0], s[1], s[2], lvls, 8)
				for _, scale := range []float64{1, 0, -3} {
					got := TraversalPlanScaled(arch, v, s[0], s[1], s[2], lvls, 8, scale)
					if len(got) != len(want) {
						t.Fatalf("%v %v scale %g: steps %v vs %v", v, s, scale, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%v %v scale %g: steps %v vs %v", v, s, scale, got, want)
						}
					}
				}
			}
		}
	}
}

// TestTraversalPlanScaleShiftsChoice: a large enough fold-cost scale must
// eventually push the model off BFS — the knob actually steers selection.
func TestTraversalPlanScaleShiftsChoice(t *testing.T) {
	arch := PaperIvyBridge()
	strassen := core.Strassen()
	levels := []core.Algorithm{strassen, strassen}
	found := false
	for _, s := range [][3]int{{256, 256, 256}, {512, 512, 512}, {1024, 1024, 1024}} {
		for _, v := range fmmexec.Variants {
			base := TraversalPlanScaled(arch, v, s[0], s[1], s[2], levels, 16, 1)
			if len(base) == 0 {
				continue
			}
			heavy := TraversalPlanScaled(arch, v, s[0], s[1], s[2], levels, 16, 1e9)
			if len(heavy) != 0 {
				t.Fatalf("%v %v: astronomic fold cost still picks BFS %v", v, s, heavy)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no BFS-choosing shape in the sweep on this model; nothing to shift")
	}
}

// TestFitFoldScale: the fit inverts the model (round-trip), clamps
// extremes, and returns the analytic scale on degenerate input.
func TestFitFoldScale(t *testing.T) {
	arch := PaperIvyBridge()
	strassen := core.Strassen()
	levels := []core.Algorithm{strassen, strassen}
	m, k, n, workers, depth := 1024, 1024, 1024, 8, 1
	v := fmmexec.ABC

	// Round-trip: predict with a known scale, fit it back.
	s := StatsOf(levels...)
	sm, sk, sn := m/s.MT, k/s.KT, n/s.NT
	compute, fold := bfsCost(arch, v, s, sm, sk, sn, levels, depth, workers)
	if fold <= 0 {
		t.Fatal("test setup: zero fold term")
	}
	for _, want := range []float64{0.5, 1, 2, 5} {
		measured := compute + want*fold
		if got := FitFoldScale(arch, v, m, k, n, levels, workers, depth, measured); !approx(got, want, 1e-9) {
			t.Fatalf("round-trip scale %g fitted as %g", want, got)
		}
	}
	// Clamps.
	if got := FitFoldScale(arch, v, m, k, n, levels, workers, depth, compute/2); got != 0.25 {
		t.Fatalf("faster-than-compute measurement fitted %g, want floor 0.25", got)
	}
	if got := FitFoldScale(arch, v, m, k, n, levels, workers, depth, compute+1e6*fold); got != 8 {
		t.Fatalf("absurd measurement fitted %g, want ceiling 8", got)
	}
	// Degenerate inputs return the analytic scale.
	for _, bad := range []struct {
		depth    int
		measured float64
	}{{0, 1}, {3, 1}, {1, 0}, {1, -1}} {
		if got := FitFoldScale(arch, v, m, k, n, levels, workers, bad.depth, bad.measured); got != 1 {
			t.Fatalf("degenerate (%+v) fitted %g, want 1", bad, got)
		}
	}
	if got := FitFoldScale(arch, v, 1, 1, 1, levels, workers, depth, 1); got != 1 {
		t.Fatalf("sub-partition problem fitted %g, want 1", got)
	}
}

func approx(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps*(1+b)
}
