package model

import (
	"math"
	"testing"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/gemm"
	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
)

func TestStatsOfStrassen(t *testing.T) {
	s := StatsOf(core.Strassen())
	if s.MT != 2 || s.KT != 2 || s.NT != 2 || s.R != 7 || s.NnzU != 12 || s.NnzV != 12 || s.NnzW != 12 {
		t.Fatalf("got %+v", s)
	}
}

func TestStatsOfTwoLevel(t *testing.T) {
	s := StatsOf(core.Strassen(), core.Strassen())
	if s.MT != 4 || s.R != 49 || s.NnzU != 144 {
		t.Fatalf("got %+v", s)
	}
}

func TestStatsOfHybridMatchesFlatKron(t *testing.T) {
	l1, l2 := core.Strassen(), core.Generate(2, 3, 2)
	s := StatsOf(l1, l2)
	flat := core.Kron(l1, l2)
	u, v, w := flat.NNZ()
	if s.NnzU != u || s.NnzV != v || s.NnzW != w || s.R != flat.R {
		t.Fatalf("stats %+v vs flat nnz (%d,%d,%d) R=%d", s, u, v, w, flat.R)
	}
}

// Hand-computed check of the gemm column with tiny artificial parameters.
func TestPredictGEMMHandComputed(t *testing.T) {
	arch := Arch{TauA: 1, TauB: 10, Lambda: 0.5, MC: 4, KC: 2, NC: 3}
	// m=k=n=6: Ta = 2*216 = 432.
	// Tm = 10*(6*6*ceil(6/3) + 6*6 + 2*0.5*6*6*ceil(6/2)) = 10*(72+36+108) = 2160.
	b := PredictGEMM(arch, 6, 6, 6)
	if b.Ta != 432 || b.Tm != 2160 {
		t.Fatalf("Ta=%v Tm=%v", b.Ta, b.Tm)
	}
}

// Hand-computed check of the ABC column for one-level Strassen.
func TestPredictABCStrassenHandComputed(t *testing.T) {
	arch := Arch{TauA: 1, TauB: 1, Lambda: 1, MC: 4, KC: 100, NC: 100}
	s := StatsOf(core.Strassen())
	m, k, n := 8, 8, 8 // sm=sk=sn=4
	// Ta = 7*2*64 + (12-7)*2*16 *2sides + 12*2*16
	//    = 896 + 5*32 + 5*32 + 12*32 = 896+160+160+384 = 1600.
	// Tm(ABC) = 12*(4*4*1) + 12*(4*4) + 12*(2*1*4*4*1) = 192+192+384 = 768.
	b := Predict(arch, s, fmmexec.ABC, m, k, n)
	if b.Ta != 1600 || b.Tm != 768 {
		t.Fatalf("Ta=%v Tm=%v", b.Ta, b.Tm)
	}
}

func TestPredictABvsNaiveCoefficients(t *testing.T) {
	arch := Arch{TauA: 0, TauB: 1, Lambda: 1, MC: 4, KC: 100, NC: 100}
	s := StatsOf(core.Strassen())
	m, k, n := 8, 8, 8
	ab := Predict(arch, s, fmmexec.AB, m, k, n)
	// AB: 12*16 + 12*16 + 7*(2*16) + 3*12*16 = 192+192+224+576 = 1184.
	if ab.Tm != 1184 {
		t.Fatalf("AB Tm=%v", ab.Tm)
	}
	nv := Predict(arch, s, fmmexec.Naive, m, k, n)
	// Naive: 7*16 + 7*16 + 7*32 + (12+7)*16 + (12+7)*16 + 3*12*16
	//      = 112+112+224+304+304+576 = 1632.
	if nv.Tm != 1632 {
		t.Fatalf("Naive Tm=%v", nv.Tm)
	}
}

func TestPredictUnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Predict(PaperIvyBridge(), StatsOf(core.Strassen()), fmmexec.Variant(9), 8, 8, 8)
}

// Qualitative reproductions of §4.3's observations on the paper machine.
func TestModelQualitativeFigure6(t *testing.T) {
	arch := PaperIvyBridge()
	str := StatsOf(core.Strassen())
	m, n := 14400, 14400

	// (a) For rank-k updates (small k), one-level <2,2,2> ABC beats GEMM.
	abc := Predict(arch, str, fmmexec.ABC, m, 1024, n).Total()
	gm := PredictGEMM(arch, m, 1024, n).Total()
	if abc >= gm {
		t.Fatalf("ABC %v !< GEMM %v at k=1024", abc, gm)
	}

	// (b) For small k, ABC beats AB and Naive; for large k, AB beats ABC.
	abSmall := Predict(arch, str, fmmexec.AB, m, 1024, n).Total()
	if abc >= abSmall {
		t.Fatalf("ABC %v !< AB %v at k=1024", abc, abSmall)
	}
	abcBig := Predict(arch, str, fmmexec.ABC, m, 12000, n).Total()
	abBig := Predict(arch, str, fmmexec.AB, m, 12000, n).Total()
	if abBig >= abcBig {
		t.Fatalf("AB %v !< ABC %v at k=12000", abBig, abcBig)
	}

	// (c) For <3,6,3> the repeated packing of ABC eventually loses to Naive
	// at large sizes — the paper's first bullet in §4.3. Our generated
	// <3,6,3> has far fewer non-zeros than Smirnov's (66 vs several hundred),
	// which pushes the crossover out; it still occurs by m=n=k=30000.
	hairy := StatsOf(core.Generate(3, 6, 3))
	nvT := Predict(arch, hairy, fmmexec.Naive, 30000, 30000, 30000).Total()
	abT := Predict(arch, hairy, fmmexec.AB, 30000, 30000, 30000).Total()
	abcT := Predict(arch, hairy, fmmexec.ABC, 30000, 30000, 30000).Total()
	if nvT >= abcT || abT >= abcT {
		t.Fatalf("Naive %v / AB %v !< ABC %v for <3,6,3> at very large size", nvT, abT, abcT)
	}
}

func TestModelTwoLevelWinsForLargeSquare(t *testing.T) {
	arch := PaperIvyBridge()
	one := Predict(arch, StatsOf(core.Strassen()), fmmexec.ABC, 12000, 12000, 12000).Total()
	two := Predict(arch, StatsOf(core.Strassen(), core.Strassen()), fmmexec.ABC, 12000, 12000, 12000).Total()
	gm := PredictGEMM(arch, 12000, 12000, 12000).Total()
	if !(two < one && one < gm) {
		t.Fatalf("want two(%v) < one(%v) < gemm(%v)", two, one, gm)
	}
}

func TestEffectiveGFLOPS(t *testing.T) {
	g := EffectiveGFLOPS(1000, 1000, 1000, 1.0)
	if math.Abs(g-2.0) > 1e-12 {
		t.Fatalf("got %v", g)
	}
}

func TestCandidateName(t *testing.T) {
	c := Candidate{Levels: []core.Algorithm{core.Strassen(), core.Generate(3, 3, 3)}, Variant: fmmexec.ABC}
	if c.Name() != "<2,2,2>+<3,3,3> ABC" {
		t.Fatalf("got %q", c.Name())
	}
}

func TestRankSortsByPrediction(t *testing.T) {
	arch := PaperIvyBridge()
	cands := []Candidate{
		{Levels: []core.Algorithm{core.Generate(3, 6, 3)}, Variant: fmmexec.Naive},
		{Levels: []core.Algorithm{core.Strassen()}, Variant: fmmexec.ABC},
	}
	r := Rank(arch, cands, 14400, 1024, 14400)
	if len(r) != 2 || r[0].Predicted > r[1].Predicted {
		t.Fatal("not sorted")
	}
	if r[0].Candidate.Name() != "<2,2,2> ABC" {
		t.Fatalf("rank-k winner should be <2,2,2> ABC, got %s", r[0].Candidate.Name())
	}
}

func TestSelectTopTwoMeasured(t *testing.T) {
	arch := PaperIvyBridge()
	cands := []Candidate{
		{Levels: []core.Algorithm{core.Strassen()}, Variant: fmmexec.ABC},
		{Levels: []core.Algorithm{core.Strassen()}, Variant: fmmexec.AB},
		{Levels: []core.Algorithm{core.Generate(3, 6, 3)}, Variant: fmmexec.Naive},
	}
	// Measurement contradicts the model: make AB "measure" faster.
	sel, err := Select(arch, cands, 14400, 1024, 14400, func(c Candidate) float64 {
		if c.Variant == fmmexec.AB {
			return 1
		}
		return 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Variant != fmmexec.AB {
		t.Fatalf("measurement should override model; got %s", sel.Name())
	}
}

func TestSelectNoCandidates(t *testing.T) {
	if _, err := Select(PaperIvyBridge(), nil, 10, 10, 10, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestSelectNilMeasureUsesModel(t *testing.T) {
	cands := []Candidate{
		{Levels: []core.Algorithm{core.Strassen()}, Variant: fmmexec.ABC},
		{Levels: []core.Algorithm{core.Generate(3, 6, 3)}, Variant: fmmexec.Naive},
	}
	sel, err := Select(PaperIvyBridge(), cands, 14400, 480, 14400, nil)
	if err != nil || sel.Name() != "<2,2,2> ABC" {
		t.Fatalf("got %v, %v", sel.Name(), err)
	}
}

func TestDefaultCandidatesShape(t *testing.T) {
	cs := DefaultCandidates()
	// 23 shapes × 2 level-counts × 3 variants + 2 hybrids × 3 variants.
	if len(cs) != 23*6+6 {
		t.Fatalf("got %d candidates", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c.Name()] {
			t.Fatalf("duplicate candidate %s", c.Name())
		}
		seen[c.Name()] = true
	}
	if !seen["<2,2,2>+<3,3,3> ABC"] {
		t.Fatal("missing Figure-9 hybrid")
	}
}

func TestCalibrateProducesSaneArch(t *testing.T) {
	arch, err := Calibrate[float64](gemm.Config{MC: 32, KC: 64, NC: 128, Threads: 1}, 96)
	if err != nil {
		t.Fatal(err)
	}
	if arch.TauA <= 0 || arch.TauA > 1e-6 {
		t.Fatalf("tauA %v implausible", arch.TauA)
	}
	if arch.TauB <= 0 || arch.TauB > 1e-5 {
		t.Fatalf("tauB %v implausible", arch.TauB)
	}
}

func TestCalibrateRejectsTinyProbe(t *testing.T) {
	if _, err := Calibrate[float64](gemm.DefaultConfig(), 8); err == nil {
		t.Fatal("expected error")
	}
}

func TestFitLambdaRecoversExactly(t *testing.T) {
	arch := PaperIvyBridge()
	arch.Lambda = 0.83
	want := PredictGEMM(arch, 4800, 960, 4800).Total()
	fitted := FitLambda(PaperIvyBridge(), 4800, 960, 4800, want)
	if math.Abs(fitted.Lambda-0.83) > 1e-9 {
		t.Fatalf("recovered λ=%v, want 0.83", fitted.Lambda)
	}
}

func TestFitLambdaClamps(t *testing.T) {
	arch := PaperIvyBridge()
	if l := FitLambda(arch, 1000, 1000, 1000, 0).Lambda; l != 0.5 {
		t.Fatalf("underflow not clamped: %v", l)
	}
	if l := FitLambda(arch, 1000, 1000, 1000, 1e9).Lambda; l != 1 {
		t.Fatalf("overflow not clamped: %v", l)
	}
}

// The paper's §4.3 last bullet: for k equal to the appropriate multiple of
// kC (k = K̃L·kC), ABC achieves locally best performance — the model's
// ceil(sk/kC) term steps exactly at those k.
func TestModelKSweetSpotAtKtimesKC(t *testing.T) {
	arch := PaperIvyBridge()
	s := StatsOf(core.Strassen())
	kSweet := s.KT * arch.KC // 2·256 = 512
	atSweet := modelEff(arch, s, kSweet)
	justOver := modelEff(arch, s, kSweet+32)
	if atSweet <= justOver {
		t.Fatalf("no sweet spot at k=K̃·kC: %v at %d vs %v just over", atSweet, kSweet, justOver)
	}
}

func modelEff(arch Arch, s Stats, k int) float64 {
	return EffectiveGFLOPS(14400, k, 14400, Predict(arch, s, fmmexec.ABC, 14400, k, 14400).Total())
}

// TestShardMakespanKDominant: for the K-dominant acceptance shape, a pure
// K-split (one slab per worker) must beat both the unsharded schedule and
// the best 2D cut — the slab products read far fewer packed operand
// elements than full-K output tiles, which is what pays for the reduction.
func TestShardMakespanKDominant(t *testing.T) {
	arch := PaperIvyBridge()
	m, k, n, w := 256, 32768, 256, 4
	ksplit := ShardMakespan(arch, m, k, n, 1, 1, w, w)
	whole := ShardMakespan(arch, m, k, n, 1, 1, 1, w)
	grid2d := ShardMakespan(arch, m, k, n, 2, 2, 1, w)
	if ksplit >= whole {
		t.Fatalf("K-split %v !< unsharded %v", ksplit, whole)
	}
	if ksplit >= grid2d {
		t.Fatalf("K-split %v !< 2×2 output cut %v", ksplit, grid2d)
	}
}

// TestShardMakespanChargesReduction: the reduction term must grow with gk —
// so the grid search cannot over-split K for free — and vanish at gk=1.
func TestShardMakespanChargesReduction(t *testing.T) {
	arch := PaperIvyBridge()
	m, k, n := 128, 1<<20, 128
	// With enough workers that rounds stays 1, the per-round tile time
	// shrinks with gk but the reduction term grows linearly; past some gk
	// the makespan must turn back up.
	prev := ShardMakespan(arch, m, k, n, 1, 1, 1, 1<<20)
	turned := false
	for gk := 2; gk <= 1<<12; gk *= 2 {
		cur := ShardMakespan(arch, m, k, n, 1, 1, gk, 1<<20)
		if cur > prev {
			turned = true
			break
		}
		prev = cur
	}
	if !turned {
		t.Fatal("makespan never turned up with gk: reduction cost not charged")
	}
	// The gk=1 column must be exactly the rounds × tile-time schedule with
	// no reduction surcharge.
	w := 4
	want := 2 * PredictGEMM(arch, 16, 1<<20, 128).Total() // 8 tiles on 4 workers
	if got := ShardMakespan(arch, 128, 1<<20, 128, 8, 1, 1, w); got != want {
		t.Fatalf("gk=1 makespan %v, want pure schedule %v", got, want)
	}
}

func TestBreakEvenSquare(t *testing.T) {
	arch := PaperIvyBridge()
	cands := DefaultCandidates()
	be := BreakEvenSquare(arch, cands)
	t.Logf("break-even square size: %d", be)
	if be < 64 || be > 1<<15 {
		t.Fatalf("break-even %d outside probe range", be)
	}
	best := Rank(arch, cands, be, be, be)[0].Predicted
	if gemm := PredictGEMM(arch, be, be, be).Total(); be < 1<<15 && best >= gemm {
		t.Fatalf("at break-even %d fast (%g) does not beat gemm (%g)", be, best, gemm)
	}
	if BreakEvenSquare(arch, nil) != 1<<15 {
		t.Fatal("no candidates must return the ceiling")
	}
}

// TestArchForKernel: rescaling prices the backend in use, round-trips, and
// leaves already-matching or unknown-kernel arches untouched.
func TestArchForKernel(t *testing.T) {
	base := PaperIvyBridge()
	if base.Kernel != "" {
		t.Fatalf("paper arch claims kernel %q", base.Kernel)
	}

	def := ArchForKernel(base, "")
	if def.Kernel != kernel.DefaultBackend {
		t.Fatalf("empty kernel resolved to %q", def.Kernel)
	}
	// The default backend defines efficiency 1.0: τa must be unchanged.
	if def.TauA != base.TauA {
		t.Fatalf("default-backend rescale changed τa: %g → %g", base.TauA, def.TauA)
	}
	// τb, λ, blocking are machine properties — never rescaled.
	if def.TauB != base.TauB || def.Lambda != base.Lambda || def.MC != base.MC {
		t.Fatal("ArchForKernel touched machine-side parameters")
	}

	// A backend registered at 2× efficiency halves τa; converting back
	// restores the original constant.
	if err := RegisterKernelEfficiency("stub-model-test", 2.0); err != nil {
		t.Fatal(err)
	}
	// RegisterKernelEfficiency alone is not enough — the backend must exist.
	if got := ArchForKernel(base, "stub-model-test"); got != base {
		t.Fatal("unregistered backend must leave arch unchanged")
	}

	// Idempotence: an arch already describing the target passes through.
	again := ArchForKernel(def, kernel.DefaultBackend)
	if again != def {
		t.Fatal("matching-kernel rescale must be the identity")
	}

	// go8x4 round-trip: whatever its registered efficiency, converting
	// there and back must restore τa (up to float rounding).
	there := ArchForKernel(def, "go8x4")
	if there.Kernel != "go8x4" {
		t.Fatalf("kernel not recorded: %q", there.Kernel)
	}
	back := ArchForKernel(there, "go4x4")
	if d := math.Abs(back.TauA-def.TauA) / def.TauA; d > 1e-12 {
		t.Fatalf("τa round-trip drifted by %g", d)
	}
}

func TestRegisterKernelEfficiencyRejectsBadInput(t *testing.T) {
	if err := RegisterKernelEfficiency("", 1.0); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := RegisterKernelEfficiency("x", 0); err == nil {
		t.Fatal("zero efficiency accepted")
	}
	if err := RegisterKernelEfficiency("x", -1); err == nil {
		t.Fatal("negative efficiency accepted")
	}
}

// TestCalibrateRecordsKernel: the measured arch names the backend it drove,
// so ArchForKernel treats it as authoritative for that backend.
func TestCalibrateRecordsKernel(t *testing.T) {
	arch, err := Calibrate[float64](gemm.Config{MC: 32, KC: 64, NC: 128, Threads: 1, Kernel: "go8x4"}, 96)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Kernel != "go8x4" {
		t.Fatalf("calibrated arch records kernel %q, want go8x4", arch.Kernel)
	}
	// A calibrated arch for the backend in use passes through unchanged.
	if got := ArchForKernel(arch, "go8x4"); got != arch {
		t.Fatal("calibrated arch must be authoritative for its own backend")
	}
}

// TestArchForDtype: re-pricing for float32 halves τb (per-element bandwidth
// cost at half the bytes), leaves the scalar pure-Go kernels' τa unchanged,
// records the dtype, round-trips, and is the identity on a matching arch.
func TestArchForDtype(t *testing.T) {
	base := ArchForKernel(PaperIvyBridge(), "")
	if base.Dtype != matrix.Float64 {
		t.Fatalf("paper arch should describe float64, got %s", base.Dtype)
	}

	f32 := ArchForDtype(base, matrix.Float32)
	if f32.Dtype != matrix.Float32 {
		t.Fatalf("dtype not recorded: %s", f32.Dtype)
	}
	if f32.TauB != base.TauB/2 {
		t.Fatalf("float32 τb = %g, want half of %g", f32.TauB, base.TauB)
	}
	if f32.TauA != base.TauA {
		t.Fatalf("scalar-kernel float32 τa changed: %g → %g", base.TauA, f32.TauA)
	}
	if f32.Lambda != base.Lambda || f32.MC != base.MC || f32.Kernel != base.Kernel {
		t.Fatal("ArchForDtype touched unrelated parameters")
	}

	if again := ArchForDtype(f32, matrix.Float32); again != f32 {
		t.Fatal("matching-dtype conversion must be the identity")
	}
	back := ArchForDtype(f32, matrix.Float64)
	if math.Abs(back.TauB-base.TauB)/base.TauB > 1e-15 || back.Dtype != matrix.Float64 {
		t.Fatalf("τb round-trip drifted: %+v vs %+v", back, base)
	}

	// A dtype-specific efficiency entry rescales τa: a kernel whose float32
	// path retires 2× the flops gets half the τa at float32.
	if err := RegisterKernelDtypeEfficiency("go4x4-dtype-stub", matrix.Float64, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := RegisterKernelDtypeEfficiency("go4x4-dtype-stub", matrix.Float32, 2.0); err != nil {
		t.Fatal(err)
	}
	simd := base
	simd.Kernel = "go4x4-dtype-stub"
	simd32 := ArchForDtype(simd, matrix.Float32)
	if math.Abs(simd32.TauA-simd.TauA/2)/simd.TauA > 1e-15 {
		t.Fatalf("2× float32 efficiency should halve τa: %g → %g", simd.TauA, simd32.TauA)
	}

	// A float32 calibration result feeds straight through the float32
	// multiplier path: ArchForDtype must not touch it.
	cal, err := Calibrate[float32](gemm.DefaultConfig(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Dtype != matrix.Float32 || cal.Kernel != kernel.DefaultBackend {
		t.Fatalf("Calibrate[float32] recorded (%q, %s)", cal.Kernel, cal.Dtype)
	}
	if ArchForDtype(cal, matrix.Float32) != cal {
		t.Fatal("measured float32 arch must pass through unchanged")
	}
}
