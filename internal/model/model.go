// Package model implements the paper's performance model (Figures 4 and 5):
// an analytic prediction of the execution time T = Ta + Tm of plain GEMM and
// of every generated FMM implementation (Naive/AB/ABC, any level count, any
// per-level ⟦U,V,W⟧), used to select implementations without exhaustive
// search (§4.2–§4.4). Times are decomposed exactly as in Figure 5:
//
//	Ta = N×a·T×a + N^{A+}a·T^{A+}a + N^{B+}a·T^{B+}a + N^{C+}a·T^{C+}a
//	Tm = N^{A×}m·T^{A×}m + N^{B×}m·T^{B×}m + N^{C×}m·T^{C×}m
//	   + N^{A+}m·T^{A+}m + N^{B+}m·T^{B+}m + N^{C+}m·T^{C+}m
//
// with the per-variant coefficient tables from the bottom of Figure 5.
package model

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/gemm"
	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
)

// Arch holds the architecture parameters of the model (Figure 4): τa is the
// reciprocal of peak flops/s, τb the amortized seconds per element moved
// from DRAM, λ ∈ [0.5,1] the prefetch efficiency of the C micro-tile
// traffic, and {MC,KC,NC} the cache blocking of Figure 1.
//
// τa is a property of the micro-kernel as much as of the machine — the paper
// bakes its assembly kernel's efficiency into the constant, and we bake in
// the pure-Go backend's — and both τ constants are per element type: τb is
// seconds per element moved, so float32 roughly halves it (half the bytes
// per element at the same bandwidth), and τa may change wherever the kernel
// retires one dtype faster than the other (an AVX2 float32 kernel doubles
// its lanes; the scalar pure-Go kernels are dtype-neutral). Kernel and Dtype
// record which registered backend and element type the τ constants describe
// ("" = unspecified, treated as the default backend; the zero Dtype is
// float64, so every pre-dtype Arch literal keeps its historical meaning).
// ArchForKernel rescales τa when a different backend is put in use and
// ArchForDtype re-prices both constants for the other element type, so
// BreakEvenSquare, ShardMakespan, and candidate ranking score the (kernel,
// dtype) pair actually executing rather than a generic machine.
type Arch struct {
	TauA   float64
	TauB   float64
	Lambda float64
	MC     int
	KC     int
	NC     int
	Kernel string
	Dtype  matrix.Dtype
}

// PaperIvyBridge returns the machine of §5.1: one core of a Xeon E5-2680 v2
// at 3.54 GHz (28.32 GFLOPS peak) with 59.7 GB/s peak bandwidth and the BLIS
// blocking kC=256, nC=4096 (mC=96). λ defaults to 0.7, mid-range of the
// paper's [0.5, 1].
func PaperIvyBridge() Arch {
	return Arch{
		TauA:   1 / 28.32e9,
		TauB:   8 / 59.7e9,
		Lambda: 0.7,
		MC:     96,
		KC:     256,
		NC:     4096,
	}
}

// effKey identifies one (backend, dtype) efficiency entry.
type effKey struct {
	name  string
	dtype matrix.Dtype
}

// kernelEff maps registered (backend, dtype) pairs to their relative
// sustained flop rate versus the default backend at float64 (= 1.0): eff > 1
// means the pair retires flops faster, so its τa is smaller. Entries for the
// built-in pure-Go backends were measured once with BenchmarkAblationKernel
// on the dev container (best of repeated runs, kc=256); they are scalar
// kernels, so their float32 rate matches float64 and the lookup falls back
// to the float64 entry when a dtype-specific one is absent (an AVX2 backend
// would register its doubled float32 rate explicitly). Calibrate supersedes
// the table with a live measurement whenever it runs, so the constants only
// steer selection until calibration happens. Guarded for the Register
// functions.
var kernelEff = struct {
	sync.RWMutex
	m map[effKey]float64
}{m: map[effKey]float64{
	{"go4x4", matrix.Float64}: 1.0,
	{"go8x4", matrix.Float64}: 0.97, // wider tile halves B traffic but the 32 accumulators spill registers
	// The avx2 entries only take effect on hosts where the backend
	// registered (ArchForKernel checks the registry before pricing); the
	// ratios are measured micro-kernel rates from BenchmarkAblationKernel
	// (kc=256, best of repeated runs on the AVX2 dev container): the 8×6
	// float64 FMA kernel retires ~12× the default backend's scalar rate, and
	// the 16×6 float32 kernel doubles that again — twice the lanes per
	// 256-bit register.
	{kernel.AVX2Backend, matrix.Float64}: 12.0,
	{kernel.AVX2Backend, matrix.Float32}: 24.0,
}}

// RegisterKernelEfficiency records the relative flop rate of a registered
// backend (1.0 = same sustained rate as the default backend at float64) for
// the float64 element type; dtypes without their own entry inherit it.
// Backends added by future PRs (AVX, cgo) register their measured ratio
// alongside kernel.Register so model-driven selection prices them correctly
// before any runtime calibration.
func RegisterKernelEfficiency(name string, eff float64) error {
	return RegisterKernelDtypeEfficiency(name, matrix.Float64, eff)
}

// RegisterKernelDtypeEfficiency records the relative flop rate of one
// (backend, dtype) pair — the hook for kernels whose dtypes retire flops at
// different rates (an AVX2 float32 kernel runs twice the lanes of its
// float64 twin).
func RegisterKernelDtypeEfficiency(name string, d matrix.Dtype, eff float64) error {
	if name == "" || eff <= 0 {
		return fmt.Errorf("model: bad kernel efficiency %q/%s=%g", name, d, eff)
	}
	kernelEff.Lock()
	kernelEff.m[effKey{name, d}] = eff
	kernelEff.Unlock()
	return nil
}

// kernelEfficiency returns the registered relative flop rate of a (backend,
// dtype) pair; a missing dtype entry falls back to the backend's float64
// entry (scalar kernels are dtype-neutral), and unknown or empty names price
// like the default backend.
func kernelEfficiency(name string, d matrix.Dtype) float64 {
	if name == "" {
		name = kernel.DefaultBackend
	}
	kernelEff.RLock()
	defer kernelEff.RUnlock()
	if e, ok := kernelEff.m[effKey{name, d}]; ok {
		return e
	}
	if e, ok := kernelEff.m[effKey{name, matrix.Float64}]; ok {
		return e
	}
	return 1.0
}

// ArchForKernel returns arch with τa rescaled to describe the named backend
// (empty = default) at arch's element type: τa′ = τa ·
// eff(arch.Kernel)/eff(name). τb, λ, and the blocking are machine properties
// and carry over unchanged. If arch already describes the named backend —
// e.g. it came from Calibrate with the same cfg.Kernel — it is returned
// as-is, preserving the measured constant. The Multiplier applies this at
// construction so every model consumer (BreakEvenSquare's tile floor,
// ShardMakespan's grid score, candidate ranking) prices the backend in use.
func ArchForKernel(arch Arch, name string) Arch {
	resolved, ok := kernel.ResolveNameFor(name, arch.Dtype)
	if !ok {
		return arch // unknown backend: leave pricing generic, selection still works
	}
	if arch.Kernel == resolved {
		return arch
	}
	arch.TauA *= kernelEfficiency(arch.Kernel, arch.Dtype) / kernelEfficiency(resolved, arch.Dtype)
	arch.Kernel = resolved
	return arch
}

// ArchForDtype returns arch re-priced for element type d: τb scales by the
// element-size ratio (seconds per element at fixed byte bandwidth — float32
// halves it), and τa by the ratio of the kernel's per-dtype flop rates
// (unchanged for the scalar pure-Go backends, halved for a SIMD backend
// whose float32 path doubles its lanes). λ and the blocking carry over. An
// arch already describing d — e.g. from Calibrate[float32] — is returned
// as-is, preserving measured constants. The Multiplier applies this at
// construction, so the float32 serving surface selects plans, tile floors,
// and shard grids with float32 economics rather than float64's.
func ArchForDtype(arch Arch, d matrix.Dtype) Arch {
	if arch.Dtype == d {
		return arch
	}
	arch.TauB *= float64(d.Size()) / float64(arch.Dtype.Size())
	arch.TauA *= kernelEfficiency(arch.Kernel, arch.Dtype) / kernelEfficiency(arch.Kernel, d)
	arch.Dtype = d
	return arch
}

// Stats are the composite quantities of an L-level algorithm that the model
// consumes: M̃L = Πm̃l, K̃L, ÑL, RL = ΠRl, and nnz(⊗U), nnz(⊗V), nnz(⊗W).
type Stats struct {
	MT, KT, NT       int
	R                int
	NnzU, NnzV, NnzW int
}

// StatsOf computes composite stats for a multi-level plan (nnz of a Kronecker
// product is the product of the factors' nnz).
func StatsOf(levels ...core.Algorithm) Stats {
	s := Stats{MT: 1, KT: 1, NT: 1, R: 1, NnzU: 1, NnzV: 1, NnzW: 1}
	for _, l := range levels {
		u, v, w := l.NNZ()
		s.MT *= l.M
		s.KT *= l.K
		s.NT *= l.N
		s.R *= l.R
		s.NnzU *= u
		s.NnzV *= v
		s.NnzW *= w
	}
	return s
}

// Breakdown is a predicted execution time split into arithmetic and memory
// components.
type Breakdown struct {
	Ta, Tm float64
}

// Total is T = Ta + Tm in seconds.
func (b Breakdown) Total() float64 { return b.Ta + b.Tm }

// EffectiveGFLOPS is the paper's metric 2·m·n·k / T · 1e-9: classical flops
// divided by wall time, so FMM implementations can exceed "peak".
func EffectiveGFLOPS(m, k, n int, seconds float64) float64 {
	return 2 * float64(m) * float64(n) * float64(k) / seconds * 1e-9
}

// PredictGEMM evaluates the model's gemm column for C(m×n) += A(m×k)·B(k×n).
func PredictGEMM(arch Arch, m, k, n int) Breakdown {
	fm, fk, fn := float64(m), float64(k), float64(n)
	var b Breakdown
	b.Ta = 2 * fm * fn * fk * arch.TauA
	b.Tm = arch.TauB * (fm*fk*math.Ceil(fn/float64(arch.NC)) + // A packing reads
		fn*fk + // B packing reads
		2*arch.Lambda*fm*fn*math.Ceil(fk/float64(arch.KC))) // C micro-tile r/w
	return b
}

// Predict evaluates the model for an L-level FMM implementation with
// composite stats s and the given variant.
func Predict(arch Arch, s Stats, v fmmexec.Variant, m, k, n int) Breakdown {
	sm := float64(m) / float64(s.MT)
	sk := float64(k) / float64(s.KT)
	sn := float64(n) / float64(s.NT)
	r := float64(s.R)
	nnzU, nnzV, nnzW := float64(s.NnzU), float64(s.NnzV), float64(s.NnzW)

	// Unit times (Figure 5, middle table, L-level column).
	tXa := 2 * sm * sn * sk * arch.TauA
	tAaddA := 2 * sm * sk * arch.TauA
	tBaddA := 2 * sk * sn * arch.TauA
	tCaddA := 2 * sm * sn * arch.TauA
	tAXm := arch.TauB * sm * sk * math.Ceil(sn/float64(arch.NC))
	tBXm := arch.TauB * sn * sk
	tCXm := 2 * arch.Lambda * arch.TauB * sm * sn * math.Ceil(sk/float64(arch.KC))
	tAaddM := arch.TauB * sm * sk
	tBaddM := arch.TauB * sk * sn
	tCaddM := arch.TauB * sm * sn

	var b Breakdown
	// Arithmetic counts are identical for all three variants.
	b.Ta = r*tXa + (nnzU-r)*tAaddA + (nnzV-r)*tBaddA + nnzW*tCaddA

	// Memory counts (Figure 5, bottom table).
	switch v {
	case fmmexec.ABC:
		b.Tm = nnzU*tAXm + nnzV*tBXm + nnzW*tCXm
	case fmmexec.AB:
		b.Tm = nnzU*tAXm + nnzV*tBXm + r*tCXm + 3*nnzW*tCaddM
	case fmmexec.Naive:
		b.Tm = r*tAXm + r*tBXm + r*tCXm +
			(nnzU+r)*tAaddM + (nnzV+r)*tBaddM + 3*nnzW*tCaddM
	default:
		panic(fmt.Sprintf("model: unknown variant %v", v))
	}
	return b
}

// Candidate is one generated implementation considered by the selector.
type Candidate struct {
	Levels  []core.Algorithm
	Variant fmmexec.Variant
}

// Name renders the candidate like the paper's legends, e.g. "<2,2,2>+<3,3,3> ABC".
func (c Candidate) Name() string {
	s := ""
	for i, l := range c.Levels {
		if i > 0 {
			s += "+"
		}
		s += l.ShapeString()
	}
	return s + " " + c.Variant.String()
}

// Stats returns the candidate's composite model stats.
func (c Candidate) Stats() Stats { return StatsOf(c.Levels...) }

// Ranked pairs a candidate with its predicted time.
type Ranked struct {
	Candidate Candidate
	Predicted float64 // seconds
}

// Rank predicts every candidate for problem size (m,k,n) and returns them
// sorted by predicted time, fastest first.
func Rank(arch Arch, cands []Candidate, m, k, n int) []Ranked {
	out := make([]Ranked, len(cands))
	for i, c := range cands {
		out[i] = Ranked{Candidate: c, Predicted: Predict(arch, c.Stats(), c.Variant, m, k, n).Total()}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Predicted < out[j].Predicted })
	return out
}

// Select implements §4.4: take the top two candidates by predicted time,
// measure both with the supplied measurement function (seconds), and return
// the faster. With fewer than two candidates the best prediction wins
// unmeasured.
func Select(arch Arch, cands []Candidate, m, k, n int, measure func(Candidate) float64) (Candidate, error) {
	if len(cands) == 0 {
		return Candidate{}, fmt.Errorf("model: no candidates")
	}
	ranked := Rank(arch, cands, m, k, n)
	if len(ranked) == 1 || measure == nil {
		return ranked[0].Candidate, nil
	}
	a, b := ranked[0].Candidate, ranked[1].Candidate
	if measure(a) <= measure(b) {
		return a, nil
	}
	return b, nil
}

// DefaultCandidates enumerates the implementation family the paper's
// experiments sweep: every Figure-2 catalog shape at one and two
// (homogeneous) levels in all three variants, plus the Figure-9 hybrids.
func DefaultCandidates() []Candidate {
	var out []Candidate
	cat := core.Catalog()
	for _, e := range cat {
		for _, v := range fmmexec.Variants {
			out = append(out, Candidate{Levels: []core.Algorithm{e.Algorithm}, Variant: v})
			out = append(out, Candidate{Levels: []core.Algorithm{e.Algorithm, e.Algorithm}, Variant: v})
		}
	}
	s := core.Generate(2, 2, 2)
	for _, second := range [][3]int{{2, 3, 2}, {3, 3, 3}} {
		h := core.Generate(second[0], second[1], second[2])
		for _, v := range fmmexec.Variants {
			out = append(out, Candidate{Levels: []core.Algorithm{s, h}, Variant: v})
		}
	}
	return out
}

// Break-even probe bounds: the smallest problem worth asking about and a
// ceiling past which the answer stops mattering (callers treat the ceiling
// as "never breaks even in practice").
const (
	breakEvenLo = 64
	breakEvenHi = 1 << 15
)

// BreakEvenSquare returns the smallest square problem size s in
// [64, 32768] at which the predicted-fastest of cands beats the plain-GEMM
// prediction on arch — the size below which a fast plan is not worth
// dispatching. The sharding layer uses it as the tile floor so every shard
// still clears the fast-algorithm pay-off. If no probed size wins, the
// ceiling 32768 is returned.
//
// The probe doubles s until the fast family first wins, then bisects the
// bracketing octave; the model is smooth enough in s that this resolves the
// crossover exactly.
func BreakEvenSquare(arch Arch, cands []Candidate) int {
	if len(cands) == 0 {
		return breakEvenHi
	}
	fastWins := func(s int) bool {
		best := Rank(arch, cands, s, s, s)[0].Predicted
		return best < PredictGEMM(arch, s, s, s).Total()
	}
	lo := breakEvenLo
	if fastWins(lo) {
		return lo
	}
	hi := lo
	for {
		hi *= 2
		if hi > breakEvenHi {
			return breakEvenHi
		}
		if fastWins(hi) {
			break
		}
		lo = hi
	}
	// Invariant: fast loses at lo, wins at hi.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if fastWins(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// ShardMakespan predicts the wall time (seconds) of executing a gm×gn×gk
// shard decomposition of C(m×n) += A(m×k)·B(k×n) on workers equal workers:
// ⌈tiles/workers⌉ scheduling rounds of the largest tile's predicted GEMM
// time, plus — when the K dimension is split — the reduction term for
// folding the gk−1 extra per-tile slab buffers into C: m·n·(gk−1) element
// folds, each moving three elements (read slab buffer, read C, write C) at
// the bandwidth cost τb. The reduction is charged against the whole
// schedule rather than divided across workers, deliberately biasing the
// search away from over-splitting K. The sharding layer passes this as its
// grid-search score, so K is split only when the model says the slab
// products' smaller operand-packing traffic pays for the extra reduction
// traffic (the Benson–Ballard trade for K-dominant shapes).
//
// Tiles are priced with the plain-GEMM column: per-tile plan selection
// happens later and shifts all candidate grids about equally, while the
// GEMM column already captures what the grid search needs — the balance of
// compute volume against per-tile operand traffic.
func ShardMakespan(arch Arch, m, k, n, gm, gn, gk, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	ceil := func(a, b int) int { return (a + b - 1) / b }
	tr, tc, td := ceil(m, gm), ceil(n, gn), ceil(k, gk)
	rounds := ceil(gm*gn*gk, workers)
	t := float64(rounds) * PredictGEMM(arch, tr, td, tc).Total()
	if gk > 1 {
		t += 3 * arch.TauB * float64(m) * float64(n) * float64(gk-1)
	}
	return t
}

// FitLambda solves for the prefetch-efficiency parameter λ so that the
// model's GEMM prediction matches a measured execution time at (m,k,n) —
// the paper's "λ is adapted to match gemm performance". The result is
// clamped to the model's admissible range [0.5, 1].
func FitLambda(arch Arch, m, k, n int, measuredSeconds float64) Arch {
	fm, fk, fn := float64(m), float64(k), float64(n)
	ta := 2 * fm * fn * fk * arch.TauA
	fixed := arch.TauB * (fm*fk*math.Ceil(fn/float64(arch.NC)) + fn*fk)
	cTerm := 2 * arch.TauB * fm * fn * math.Ceil(fk/float64(arch.KC))
	lambda := (measuredSeconds - ta - fixed) / cTerm
	if lambda < 0.5 {
		lambda = 0.5
	} else if lambda > 1 {
		lambda = 1
	}
	arch.Lambda = lambda
	return arch
}

// calibrateReps is how many timed repetitions each Calibrate probe takes;
// the minimum is the estimate (least interference from scheduling noise).
const calibrateReps = 3

// Calibrate measures this machine's τa and τb for the given gemm
// configuration at element type E: τa from the effective flop rate of a
// square GEMM of size probe — run through cfg.Kernel's backend, so the
// measured constant is per-(backend, dtype) exactly as the paper bakes its
// assembly kernel's efficiency into the model (the returned Arch.Kernel and
// Arch.Dtype record which) — and τb from a large strided read-modify-write
// sweep over a buffer of E, so the per-element bandwidth cost reflects the
// element size (float32 moves half the bytes per element). Each probe runs
// one untimed warm-up pass — the GEMM to populate workspace pools and
// caches, the sweep to fault in every page of the fresh buffer, which would
// otherwise inflate τb well above steady-state bandwidth — and then reports
// the best of three timed repetitions. λ is left at 0.7.
func Calibrate[E matrix.Element](cfg gemm.Config, probe int) (Arch, error) {
	if probe < 64 {
		return Arch{}, fmt.Errorf("model: probe %d too small", probe)
	}
	ctx, err := gemm.NewContext[E](cfg)
	if err != nil {
		return Arch{}, err
	}
	a, b, c := matrix.New[E](probe, probe), matrix.New[E](probe, probe), matrix.New[E](probe, probe)
	a.Fill(1.0 / 3)
	b.Fill(2.0 / 3)
	ctx.MulAdd(c, a, b) // warm up
	best := math.Inf(1)
	for rep := 0; rep < calibrateReps; rep++ {
		c.Zero()
		start := time.Now()
		ctx.MulAdd(c, a, b)
		if el := time.Since(start).Seconds(); el < best {
			best = el
		}
	}
	flops := 2 * float64(probe) * float64(probe) * float64(probe)
	tauA := best / flops

	// Bandwidth probe: stream-add over a buffer far larger than cache (the
	// same element count as the historical float64 probe, so the float32
	// sweep moves half the bytes — which is exactly the per-element economics
	// τb should price). The untimed sweep touches every page first so the
	// timed sweeps measure steady-state bandwidth, not first-touch page
	// faults.
	buf := make([]E, 1<<24) // 128 MiB of float64s, 64 MiB of float32s
	for i := range buf {
		buf[i] += 1
	}
	best = math.Inf(1)
	for rep := 0; rep < calibrateReps; rep++ {
		start := time.Now()
		for i := range buf {
			buf[i] += 1
		}
		if el := time.Since(start).Seconds(); el < best {
			best = el
		}
	}
	tauB := best / float64(len(buf)) // read+write amortized per element
	if buf[0] != calibrateReps+1 {
		return Arch{}, fmt.Errorf("model: unreachable")
	}
	return Arch{
		TauA: tauA, TauB: tauB, Lambda: 0.7,
		MC: cfg.MC, KC: cfg.KC, NC: cfg.NC,
		Kernel: ctx.Backend().Name(),
		Dtype:  matrix.DtypeOf[E](),
	}, nil
}
