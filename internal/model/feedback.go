package model

import (
	"sync"
)

// Feedback is a concurrency-safe store of measured plan wall times: the
// online autotuner records the winning (and losing) arms' window medians
// on every promotion, keyed by shape class and plan identity, and
// selection consults the store so a measured number overrides the analytic
// prediction. This is the calibration loop the paper's §4.4 gestures at
// ("measure the top two candidates") made continuous: instead of a
// one-shot probe at construction, the serving traffic itself keeps the
// model honest — the model remains the prior, measurements become the
// posterior.
type Feedback struct {
	mu sync.RWMutex
	m  map[FeedbackKey]float64
}

// FeedbackKey identifies one measured entry: the multiplier's shape-class
// key and the candidate's name (Candidate.Name() — variant + levels; the
// traversal/backend decorations of a full plan key are deliberately
// excluded so the measurement feeds candidate ranking, which is what
// selection re-runs).
type FeedbackKey struct {
	Shape string
	Plan  string
}

// NewFeedback returns an empty store.
func NewFeedback() *Feedback {
	return &Feedback{m: make(map[FeedbackKey]float64)}
}

// Record stores a measured median execution time (seconds) for a plan at a
// shape class, overwriting any previous measurement — the latest window
// median is the freshest truth.
func (f *Feedback) Record(shape, plan string, seconds float64) {
	if f == nil || seconds <= 0 {
		return
	}
	f.mu.Lock()
	f.m[FeedbackKey{Shape: shape, Plan: plan}] = seconds
	f.mu.Unlock()
}

// Lookup returns the measured seconds for a plan at a shape class.
func (f *Feedback) Lookup(shape, plan string) (float64, bool) {
	if f == nil {
		return 0, false
	}
	f.mu.RLock()
	v, ok := f.m[FeedbackKey{Shape: shape, Plan: plan}]
	f.mu.RUnlock()
	return v, ok
}

// Len reports how many measurements the store holds.
func (f *Feedback) Len() int {
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.m)
}

// RankMeasured ranks candidates like Rank but substitutes a measured
// median from fb (keyed by shape and Candidate.Name()) for the analytic
// prediction wherever one exists, so promoted arms keep winning selection
// even after a plan-cache eviction rebuilds the shape's entry from
// scratch. A nil fb (or no measurements) reduces exactly to Rank.
func RankMeasured(arch Arch, cands []Candidate, m, k, n int, fb *Feedback, shape string) []Ranked {
	out := Rank(arch, cands, m, k, n)
	if fb.Len() == 0 {
		return out
	}
	for i := range out {
		if sec, ok := fb.Lookup(shape, out[i].Candidate.Name()); ok {
			out[i].Predicted = sec
		}
	}
	// Re-sort with the measured substitutions; stable so purely-analytic
	// ties keep the original model order.
	insertionSortRanked(out)
	return out
}

// insertionSortRanked restores ascending Predicted order; the input is
// already nearly sorted (only measured entries moved), where insertion
// sort is both simple and fast, and it is stable.
func insertionSortRanked(r []Ranked) {
	for i := 1; i < len(r); i++ {
		for j := i; j > 0 && r[j].Predicted < r[j-1].Predicted; j-- {
			r[j], r[j-1] = r[j-1], r[j]
		}
	}
}

// TopK returns the k predicted-fastest candidates for problem size (m,k,n)
// — the autotuner's challenger pool: the incumbent serves, and the next
// few model picks take turns shadowing. Fewer than k candidates returns
// them all. The measured-feedback overrides of RankMeasured apply when fb
// is non-nil.
func TopK(arch Arch, cands []Candidate, m, k, n, top int, fb *Feedback, shape string) []Candidate {
	ranked := RankMeasured(arch, cands, m, k, n, fb, shape)
	if top > len(ranked) {
		top = len(ranked)
	}
	out := make([]Candidate, 0, top)
	for _, r := range ranked[:top] {
		out = append(out, r.Candidate)
	}
	return out
}
