// Package autotune closes the loop between the performance model's static
// predictions and what a long-running server actually measures: an
// epsilon-greedy shadow/promote bandit over executable plans.
//
// The serving layer keys one Tuner per shape class. Each Tuner holds a set
// of arms — candidate plans identified by an opaque key (variant, levels,
// kernel backend, traversal, shard grid) — one of which is the incumbent
// that serves most traffic, while a single challenger shadows it on a small
// configured fraction of calls. Every executed call records its monotonic
// wall time into the served arm's fixed-capacity ring buffer (a sliding
// window, so a machine whose behavior drifts re-converges instead of being
// anchored to stale samples). Once both incumbent and challenger windows
// hold enough samples, the Tuner compares their medians with the same
// median ± 95%-CI machinery the CI bench gate uses (internal/stats):
//
//   - the challenger is promoted to incumbent only when its median is
//     faster AND the confidence interval of the difference excludes zero
//     at two consecutive verdict checkpoints — a plausible-but-noisy
//     winner keeps shadowing instead of flapping;
//   - a challenger whose median is confirmed *slower* (the CI excludes
//     zero in the other direction) is demoted to the back of the pending
//     queue and the next pending arm becomes the challenger, so the
//     exploration budget rotates through all alternatives;
//   - anything in between keeps sampling.
//
// Verdicts run only at checkpoints — every MinSamples-th challenger sample
// — not on every record: testing a 95% interval after each sample would
// compound its 2.5% one-sided false-positive rate across hundreds of
// overlapping tests until noise alone promoted something. One checkpoint
// per fresh batch of challenger samples plus the two-consecutive-wins rule
// keeps the noise-promotion probability negligible while a genuinely
// faster arm sails through both checkpoints.
//
// Determinism contract: the bandit only ever chooses WHICH deterministic
// plan runs — promotion swaps plans between calls, never alters a plan's
// internal execution — so every call retains the per-plan determinism
// guarantees of the plan that served it. Routing itself is deterministic
// (a counter, not a RNG): with fraction 1/p, every p-th call of a shape
// class shadows the challenger.
package autotune

import (
	"sort"
	"sync"

	"fmmfam/internal/stats"
)

// Defaults for Config's zero values.
const (
	// DefaultFraction is the share of a shape class's traffic routed to the
	// challenger arm: 1 call in 20.
	DefaultFraction = 0.05
	// DefaultRingCap is the per-arm sample window. Big enough for a stable
	// median, small enough that a drifting machine re-converges within ~2
	// windows of traffic.
	DefaultRingCap = 64
	// DefaultMinSamples is how many samples each of incumbent and challenger
	// must hold before a promote/demote verdict is considered.
	DefaultMinSamples = 8
)

// Config tunes a Tuner. Zero values select the defaults above.
type Config struct {
	// Fraction is the challenger's traffic share, clamped to (0, 0.5].
	Fraction float64
	// RingCap is the per-arm sample window capacity (≥ 2).
	RingCap int
	// MinSamples is the per-arm sample floor for verdicts (≥ 2, ≤ RingCap).
	MinSamples int
}

func (c Config) withDefaults() Config {
	if c.Fraction <= 0 || c.Fraction > 0.5 {
		c.Fraction = DefaultFraction
	}
	if c.RingCap < 2 {
		c.RingCap = DefaultRingCap
	}
	if c.MinSamples < 2 {
		c.MinSamples = DefaultMinSamples
	}
	if c.MinSamples > c.RingCap {
		c.MinSamples = c.RingCap
	}
	return c
}

// ring is a fixed-capacity sliding window of wall-time samples. It is
// manipulated only under the owning Tuner's mutex; the struct exists to
// keep the window arithmetic in one place.
type ring struct {
	buf []float64
	n   uint64 // total samples ever recorded; buf holds the last len(buf)
}

func (r *ring) record(v float64) {
	r.buf[r.n%uint64(len(r.buf))] = v
	r.n++
}

// window returns the live samples in an unspecified order (fine for
// medians). The returned slice aliases the ring; callers copy if they
// retain it past the lock.
func (r *ring) window() []float64 {
	if r.n < uint64(len(r.buf)) {
		return r.buf[:r.n]
	}
	return r.buf
}

// arm is one candidate plan under measurement.
type arm struct {
	key  string
	ring ring
}

// Role labels an arm's current position in the bandit.
type Role string

const (
	RoleIncumbent  Role = "incumbent"
	RoleChallenger Role = "challenger"
	RolePending    Role = "pending"
)

// Promotion records one incumbent swap: the arm keys and the window
// medians (seconds) that justified it, plus the total sample count at
// which it happened — enough for an operator to reconstruct the decision.
type Promotion struct {
	From, To             string
	FromMedian, ToMedian float64
	AtSample             uint64
}

// ArmStats is the observable state of one arm.
type ArmStats struct {
	Plan    string  // the arm's plan key
	Role    Role    // incumbent / challenger / pending
	Samples uint64  // total samples ever recorded (window keeps the last RingCap)
	Median  float64 // median of the live window, seconds; 0 when empty
}

// Snapshot is the observable state of one Tuner: every arm, the traffic
// split so far, and the full promotion history.
type Snapshot struct {
	Arms       []ArmStats // incumbent first, then challenger, then pending in queue order
	Served     uint64     // calls routed to the incumbent
	Shadowed   uint64     // calls routed to the challenger
	Promotions []Promotion
}

// Tuner is the per-shape-class bandit. All methods are safe for concurrent
// use; the critical sections are O(window) at worst (one median over ≤
// RingCap samples on the records that can trigger a verdict).
type Tuner struct {
	cfg    Config
	period uint64 // every period-th call shadows the challenger

	mu         sync.Mutex
	incumbent  *arm
	challenger *arm   // nil when no alternatives exist
	pending    []*arm // rotation queue of future challengers
	winStreak  int    // consecutive checkpoint wins by the current challenger
	served     uint64
	shadowed   uint64
	promotions []Promotion
}

// promoteStreak is how many consecutive checkpoint wins a challenger needs:
// two independent-window confirmations drop the noise false-positive rate
// from ~2.5% per checkpoint to well under 0.1%.
const promoteStreak = 2

// New builds a Tuner serving the incumbent plan key with the given
// challenger queue (first entry becomes the live challenger; duplicates of
// the incumbent or of earlier entries are dropped). With no challengers the
// Tuner still records incumbent samples — the observability half works even
// when there is nothing to explore.
func New(cfg Config, incumbent string, challengers []string) *Tuner {
	cfg = cfg.withDefaults()
	period := uint64(1.0/cfg.Fraction + 0.5)
	if period < 2 {
		period = 2
	}
	t := &Tuner{
		cfg:       cfg,
		period:    period,
		incumbent: &arm{key: incumbent, ring: ring{buf: make([]float64, cfg.RingCap)}},
	}
	seen := map[string]bool{incumbent: true}
	for _, key := range challengers {
		if seen[key] {
			continue
		}
		seen[key] = true
		a := &arm{key: key, ring: ring{buf: make([]float64, cfg.RingCap)}}
		if t.challenger == nil {
			t.challenger = a
		} else {
			t.pending = append(t.pending, a)
		}
	}
	return t
}

// Route returns the plan key to serve the next call: the challenger on
// every period-th call (period ≈ 1/Fraction), the incumbent otherwise.
// Deterministic — the schedule is a counter, not a coin flip.
func (t *Tuner) Route() (key string, challenger bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.challenger != nil && (t.served+t.shadowed+1)%t.period == 0 {
		t.shadowed++
		return t.challenger.key, true
	}
	t.served++
	return t.incumbent.key, false
}

// Record stores one measured wall time (seconds, from a monotonic clock)
// for the arm that served a call, then runs the promote/demote check. The
// returned Promotion is meaningful only when promoted is true. Samples for
// keys that are no longer the incumbent or challenger (a call that was
// in flight across a promotion) still land in that arm's ring if the arm
// is still known, and are otherwise dropped.
func (t *Tuner) Record(key string, seconds float64) (p Promotion, promoted bool) {
	if seconds <= 0 {
		// A non-positive wall time is clock noise; recording it would let a
		// zero "measurement" fabricate a win.
		return Promotion{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.armFor(key)
	if a == nil {
		return Promotion{}, false
	}
	a.ring.record(seconds)
	// Verdicts only at challenger checkpoints: the recorded arm must be the
	// challenger, landing exactly on a MinSamples boundary of its window —
	// see the package comment for why per-sample testing is unsound.
	if t.challenger == nil || a != t.challenger {
		return Promotion{}, false
	}
	inc := &t.incumbent.ring
	chal := &t.challenger.ring
	min := uint64(t.cfg.MinSamples)
	if inc.n < min || chal.n < min || chal.n%min != 0 {
		return Promotion{}, false
	}
	// Oriented so Diff > 0 means the challenger's median is faster.
	d := stats.MedianDiff(inc.window(), chal.window())
	switch {
	case d.ExcludesZero():
		t.winStreak++
		if t.winStreak < promoteStreak {
			return Promotion{}, false
		}
		// Challenger confirmed faster at consecutive checkpoints: promote.
		// The former incumbent joins the back of the pending queue (it may
		// win again if the machine drifts back), and the next pending arm
		// starts shadowing.
		p = Promotion{
			From:       t.incumbent.key,
			To:         t.challenger.key,
			FromMedian: stats.Median(inc.window()),
			ToMedian:   stats.Median(chal.window()),
			AtSample:   inc.n + chal.n,
		}
		t.promotions = append(t.promotions, p)
		old := t.incumbent
		t.incumbent = t.challenger
		t.pending = append(t.pending, old)
		t.challenger, t.pending = t.pending[0], t.pending[1:]
		t.winStreak = 0
		return p, true
	case (stats.Diff{Diff: -d.Diff, SE: d.SE}).ExcludesZero():
		// Challenger confirmed slower: rotate it to the back of the queue
		// so the shadow-traffic budget moves on to the next alternative.
		t.winStreak = 0
		if len(t.pending) > 0 {
			loser := t.challenger
			t.challenger, t.pending = t.pending[0], t.pending[1:]
			t.pending = append(t.pending, loser)
		}
		return Promotion{}, false
	}
	t.winStreak = 0
	return Promotion{}, false
}

// armFor finds a known arm by key; nil when the key was never an arm.
// Caller holds t.mu.
func (t *Tuner) armFor(key string) *arm {
	if t.incumbent.key == key {
		return t.incumbent
	}
	if t.challenger != nil && t.challenger.key == key {
		return t.challenger
	}
	for _, a := range t.pending {
		if a.key == key {
			return a
		}
	}
	return nil
}

// Incumbent returns the currently served plan key.
func (t *Tuner) Incumbent() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.incumbent.key
}

// Snapshot returns a copy of the Tuner's observable state.
func (t *Tuner) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	armStats := func(a *arm, role Role) ArmStats {
		s := ArmStats{Plan: a.key, Role: role, Samples: a.ring.n}
		if w := a.ring.window(); len(w) > 0 {
			s.Median = stats.Median(w)
		}
		return s
	}
	snap := Snapshot{
		Served:     t.served,
		Shadowed:   t.shadowed,
		Promotions: append([]Promotion(nil), t.promotions...),
	}
	snap.Arms = append(snap.Arms, armStats(t.incumbent, RoleIncumbent))
	if t.challenger != nil {
		snap.Arms = append(snap.Arms, armStats(t.challenger, RoleChallenger))
	}
	for _, a := range t.pending {
		snap.Arms = append(snap.Arms, armStats(a, RolePending))
	}
	return snap
}

// SortArmStats orders arm stats incumbent-first, then by plan key — a
// stable presentation order for operator surfaces that aggregate snapshots.
func SortArmStats(arms []ArmStats) {
	sort.SliceStable(arms, func(i, j int) bool {
		if (arms[i].Role == RoleIncumbent) != (arms[j].Role == RoleIncumbent) {
			return arms[i].Role == RoleIncumbent
		}
		return arms[i].Plan < arms[j].Plan
	})
}
