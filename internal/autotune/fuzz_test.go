package autotune

import (
	"math/rand"
	"testing"
)

// FuzzAutotunePromotion: whatever the sample stream looks like, a
// challenger that is strictly slower than the incumbent — every challenger
// sample exceeds every incumbent sample — must never be promoted. This is
// the bandit's safety property: random noise, adversarial interleavings,
// ring-window boundaries, and odd config values can delay a promotion but
// never fabricate one for a dominated arm.
func FuzzAutotunePromotion(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(16), uint8(4), uint16(200))
	f.Add(int64(42), uint8(2), uint8(2), uint8(2), uint16(50))
	f.Add(int64(7), uint8(20), uint8(64), uint8(8), uint16(1000))
	f.Fuzz(func(t *testing.T, seed int64, invFrac, ringCap, minSamples uint8, calls uint16) {
		cfg := Config{
			Fraction:   1.0 / (1.0 + float64(invFrac%32)),
			RingCap:    int(ringCap),
			MinSamples: int(minSamples),
		}
		tu := New(cfg, "inc", []string{"dominated"})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(calls); i++ {
			key, _ := tu.Route()
			// Incumbent samples live in [1, 2); the dominated arm's in
			// [3, 4) — strictly slower on every draw.
			sec := 1.0 + rng.Float64()
			if key == "dominated" {
				sec += 2.0
			}
			if _, promoted := tu.Record(key, sec); promoted {
				t.Fatalf("dominated arm promoted at call %d (cfg %+v)", i, cfg)
			}
		}
		if tu.Incumbent() != "inc" {
			t.Fatalf("incumbent changed to %q without a promotion", tu.Incumbent())
		}
		// Snapshot must stay coherent whatever the stream did.
		snap := tu.Snapshot()
		if len(snap.Promotions) != 0 {
			t.Fatalf("promotion recorded without Record reporting one: %+v", snap.Promotions)
		}
		var total uint64
		for _, a := range snap.Arms {
			total += a.Samples
		}
		if total > uint64(calls) {
			t.Fatalf("recorded %d samples from %d calls", total, calls)
		}
	})
}
