package autotune

import (
	"math/rand"
	"sync"
	"testing"
)

// cfg4 is a tight test config: challenger every 4th call, small windows.
func cfg4() Config {
	return Config{Fraction: 0.25, RingCap: 16, MinSamples: 4}
}

// TestRouteFraction: routing is a deterministic counter — with fraction
// 1/4, exactly every 4th call shadows the challenger.
func TestRouteFraction(t *testing.T) {
	tu := New(cfg4(), "inc", []string{"chal"})
	var shadowed int
	for i := 1; i <= 40; i++ {
		key, isChal := tu.Route()
		if isChal {
			shadowed++
			if key != "chal" {
				t.Fatalf("call %d: challenger route returned %q", i, key)
			}
			if i%4 != 0 {
				t.Fatalf("challenger served on call %d, want multiples of 4 only", i)
			}
		} else if key != "inc" {
			t.Fatalf("call %d: incumbent route returned %q", i, key)
		}
	}
	if shadowed != 10 {
		t.Fatalf("shadowed %d of 40 calls, want 10", shadowed)
	}
	snap := tu.Snapshot()
	if snap.Served != 30 || snap.Shadowed != 10 {
		t.Fatalf("snapshot served/shadowed = %d/%d, want 30/10", snap.Served, snap.Shadowed)
	}
}

// TestNoChallengerServesIncumbent: a tuner with no alternatives still
// works — all traffic to the incumbent, samples recorded, no promotions.
func TestNoChallengerServesIncumbent(t *testing.T) {
	tu := New(cfg4(), "only", nil)
	for i := 0; i < 20; i++ {
		key, isChal := tu.Route()
		if key != "only" || isChal {
			t.Fatalf("route = %q/%v, want incumbent only", key, isChal)
		}
		tu.Record(key, 1.0)
	}
	snap := tu.Snapshot()
	if len(snap.Arms) != 1 || snap.Arms[0].Samples != 20 || len(snap.Promotions) != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestPromotionOnConfirmedWin: a challenger whose median clearly beats the
// incumbent (tight distributions, CI excludes zero) is promoted exactly
// once the sample floor is met, and the tuner then serves it.
func TestPromotionOnConfirmedWin(t *testing.T) {
	tu := New(cfg4(), "slow", []string{"fast"})
	var promotions int
	for i := 0; i < 48; i++ {
		key, _ := tu.Route()
		sec := 1.0
		if key == "fast" {
			sec = 0.5
		}
		// Tiny deterministic jitter so the windows carry variance.
		sec += float64(i%3) * 1e-3
		if _, ok := tu.Record(key, sec); ok {
			promotions++
		}
	}
	if promotions != 1 {
		t.Fatalf("promotions = %d, want exactly 1", promotions)
	}
	if got := tu.Incumbent(); got != "fast" {
		t.Fatalf("incumbent after promotion = %q, want fast", got)
	}
	snap := tu.Snapshot()
	if len(snap.Promotions) != 1 {
		t.Fatalf("snapshot promotions = %+v", snap.Promotions)
	}
	p := snap.Promotions[0]
	if p.From != "slow" || p.To != "fast" || p.ToMedian >= p.FromMedian {
		t.Fatalf("promotion record = %+v", p)
	}
	// The former incumbent is now the challenger (only two arms).
	var roles = map[string]Role{}
	for _, a := range snap.Arms {
		roles[a.Plan] = a.Role
	}
	if roles["fast"] != RoleIncumbent || roles["slow"] != RoleChallenger {
		t.Fatalf("roles after promotion = %v", roles)
	}
	// And routing now serves "fast" on non-shadow slots.
	for i := 0; i < 3; i++ {
		if key, isChal := tu.Route(); !isChal && key != "fast" {
			t.Fatalf("post-promotion route = %q", key)
		}
	}
}

// TestNoiseNeverPromotes: identical sample distributions on both arms must
// never promote — the CI includes zero by construction.
func TestNoiseNeverPromotes(t *testing.T) {
	tu := New(cfg4(), "a", []string{"b"})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		key, _ := tu.Route()
		// Same distribution regardless of arm: U[1.0, 1.5).
		if _, ok := tu.Record(key, 1.0+0.5*rng.Float64()); ok {
			t.Fatalf("promoted on noise-only samples at call %d", i)
		}
	}
	if got := tu.Incumbent(); got != "a" {
		t.Fatalf("incumbent churned to %q on noise", got)
	}
}

// TestSlowerChallengerRotates: a confirmed-slower challenger is demoted and
// the next pending arm takes its place.
func TestSlowerChallengerRotates(t *testing.T) {
	tu := New(cfg4(), "inc", []string{"worse", "next"})
	for i := 0; i < 64; i++ {
		key, _ := tu.Route()
		sec := 1.0
		if key == "worse" {
			sec = 2.0
		}
		sec += float64(i%3) * 1e-3
		if _, ok := tu.Record(key, sec); ok {
			t.Fatalf("slower arm promoted at call %d", i)
		}
		snap := tu.Snapshot()
		for _, a := range snap.Arms {
			if a.Plan == "next" && a.Role == RoleChallenger {
				// Rotation happened; "worse" must now be pending.
				for _, b := range snap.Arms {
					if b.Plan == "worse" && b.Role != RolePending {
						t.Fatalf("demoted arm role = %v", b.Role)
					}
				}
				return
			}
		}
	}
	t.Fatal("confirmed-slower challenger never rotated out")
}

// TestNonPositiveSamplesIgnored: zero or negative wall times (clock
// weirdness) must not enter the window or fabricate a win.
func TestNonPositiveSamplesIgnored(t *testing.T) {
	tu := New(cfg4(), "inc", []string{"chal"})
	for i := 0; i < 50; i++ {
		tu.Record("inc", 1.0+float64(i%2)*1e-3)
		if _, ok := tu.Record("chal", 0); ok {
			t.Fatal("promoted on zero-time samples")
		}
		tu.Record("chal", -1)
	}
	snap := tu.Snapshot()
	for _, a := range snap.Arms {
		if a.Plan == "chal" && a.Samples != 0 {
			t.Fatalf("challenger recorded %d non-positive samples", a.Samples)
		}
	}
}

// TestUnknownKeyDropped: recording under a key that was never an arm is a
// no-op rather than a panic (covers in-flight calls racing arm changes in
// future refactors).
func TestUnknownKeyDropped(t *testing.T) {
	tu := New(cfg4(), "inc", []string{"chal"})
	if _, ok := tu.Record("stranger", 1.0); ok {
		t.Fatal("unknown key promoted")
	}
	snap := tu.Snapshot()
	for _, a := range snap.Arms {
		if a.Samples != 0 {
			t.Fatalf("unknown key landed in arm %+v", a)
		}
	}
}

// TestWindowSlides: the ring keeps only the last RingCap samples, so an
// arm's median tracks its recent behavior instead of being anchored to
// history — the property that lets a drifting machine re-converge.
func TestWindowSlides(t *testing.T) {
	tu := New(Config{Fraction: 0.25, RingCap: 8, MinSamples: 4}, "inc", nil)
	for i := 0; i < 8; i++ {
		tu.Record("inc", 10.0)
	}
	snap := tu.Snapshot()
	if snap.Arms[0].Median != 10.0 {
		t.Fatalf("pre-slide median = %g, want 10", snap.Arms[0].Median)
	}
	for i := 0; i < 8; i++ {
		tu.Record("inc", 1.0)
	}
	snap = tu.Snapshot()
	if snap.Arms[0].Median != 1.0 {
		t.Fatalf("post-slide median = %g, want 1 (window should hold only recent samples)", snap.Arms[0].Median)
	}
	if snap.Arms[0].Samples != 16 {
		t.Fatalf("total samples = %d, want 16", snap.Arms[0].Samples)
	}
}

// TestDuplicateChallengersDropped: challenger lists may repeat the
// incumbent or each other; duplicates collapse.
func TestDuplicateChallengersDropped(t *testing.T) {
	tu := New(cfg4(), "inc", []string{"inc", "a", "a", "b"})
	snap := tu.Snapshot()
	if len(snap.Arms) != 3 {
		t.Fatalf("arms = %+v, want inc + a + b", snap.Arms)
	}
}

// TestConcurrentUse: Route/Record/Snapshot race-free under parallel load
// (meaningful under -race).
func TestConcurrentUse(t *testing.T) {
	tu := New(Config{Fraction: 0.25, RingCap: 32, MinSamples: 8}, "inc", []string{"c1", "c2"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				key, _ := tu.Route()
				tu.Record(key, 1.0+rng.Float64())
				if i%50 == 0 {
					tu.Snapshot()
					tu.Incumbent()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	snap := tu.Snapshot()
	if snap.Served+snap.Shadowed != 8*500 {
		t.Fatalf("routed %d calls, want %d", snap.Served+snap.Shadowed, 8*500)
	}
}

// TestSortArmStats pins the operator presentation order.
func TestSortArmStats(t *testing.T) {
	arms := []ArmStats{
		{Plan: "z", Role: RolePending},
		{Plan: "m", Role: RoleIncumbent},
		{Plan: "a", Role: RoleChallenger},
	}
	SortArmStats(arms)
	if arms[0].Plan != "m" || arms[1].Plan != "a" || arms[2].Plan != "z" {
		t.Fatalf("sorted order = %v, %v, %v", arms[0].Plan, arms[1].Plan, arms[2].Plan)
	}
}
