package fmmexec

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"fmmfam/internal/core"
	"fmmfam/internal/gemm"
	"fmmfam/internal/matrix"
)

func smallCfg() gemm.Config { return gemm.Config{MC: 8, KC: 8, NC: 16, Threads: 1} }

func check(t *testing.T, p *Plan[float64], m, k, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, b := matrix.New[float64](m, k), matrix.New[float64](k, n)
	a.FillRand(rng)
	b.FillRand(rng)
	c := matrix.New[float64](m, n)
	c.FillRand(rng)
	want := c.Clone()
	matrix.MulAdd(want, a, b)
	p.MulAdd(c, a, b)
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("%s on %d×%d×%d: diff %g", p, m, k, n, d)
	}
}

func TestOneLevelStrassenAllVariants(t *testing.T) {
	for _, v := range Variants {
		p := MustNewPlan[float64](smallCfg(), v, core.Strassen())
		check(t, p, 16, 16, 16, 1)
		check(t, p, 32, 16, 24, 2)
	}
}

func TestDynamicPeelingAllResidues(t *testing.T) {
	// Every residue combination modulo the <2,2,2> partition.
	p := MustNewPlan[float64](smallCfg(), ABC, core.Strassen())
	seed := int64(10)
	for dm := 0; dm < 2; dm++ {
		for dk := 0; dk < 2; dk++ {
			for dn := 0; dn < 2; dn++ {
				check(t, p, 14+dm, 12+dk, 10+dn, seed)
				seed++
			}
		}
	}
}

func TestOddPartitionPeeling(t *testing.T) {
	p := MustNewPlan[float64](smallCfg(), ABC, core.Generate(2, 3, 2))
	for _, s := range [][3]int{{13, 17, 11}, {6, 9, 4}, {7, 8, 9}} {
		check(t, p, s[0], s[1], s[2], 77)
	}
}

func TestProblemSmallerThanPartition(t *testing.T) {
	p := MustNewPlan[float64](smallCfg(), ABC, core.Strassen(), core.Strassen(), core.Strassen())
	check(t, p, 5, 5, 5, 3) // 8×8×8 partition > problem → plain GEMM path
}

func TestTwoLevelStrassenAllVariants(t *testing.T) {
	for _, v := range Variants {
		p := MustNewPlan[float64](smallCfg(), v, core.Strassen(), core.Strassen())
		if p.Flat.R != 49 {
			t.Fatalf("two-level rank %d", p.Flat.R)
		}
		check(t, p, 20, 24, 28, 4)
	}
}

func TestHybridPartitions(t *testing.T) {
	// The paper's Figure-9 hybrids: <2,2,2>+<2,3,2> and <2,2,2>+<3,3,3>.
	h1 := MustNewPlan[float64](smallCfg(), ABC, core.Strassen(), core.Generate(2, 3, 2))
	if h1.Flat.M != 4 || h1.Flat.K != 6 || h1.Flat.N != 4 {
		t.Fatalf("hybrid shape %s", h1.Flat.ShapeString())
	}
	check(t, h1, 12, 18, 12, 5)
	check(t, h1, 25, 31, 17, 6)

	h2 := MustNewPlan[float64](smallCfg(), AB, core.Strassen(), core.Generate(3, 3, 3))
	check(t, h2, 24, 36, 18, 7)
}

func TestAllCatalogShapesOneLevelABC(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog sweep in -short mode")
	}
	for _, e := range core.Catalog() {
		p := MustNewPlan[float64](smallCfg(), ABC, e.Algorithm)
		check(t, p, e.M*5+1, e.K*5+2, e.N*5+1, int64(e.M*100+e.K*10+e.N))
	}
}

func TestParallelPlanMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := matrix.New[float64](52, 38), matrix.New[float64](38, 44)
	a.FillRand(rng)
	b.FillRand(rng)
	c1, c2 := matrix.New[float64](52, 44), matrix.New[float64](52, 44)
	ps := MustNewPlan[float64](gemm.Config{MC: 8, KC: 8, NC: 16, Threads: 1}, ABC, core.Strassen())
	pp := MustNewPlan[float64](gemm.Config{MC: 8, KC: 8, NC: 16, Threads: 4}, ABC, core.Strassen())
	ps.MulAdd(c1, a, b)
	pp.MulAdd(c2, a, b)
	if d := c1.MaxAbsDiff(c2); d != 0 {
		t.Fatalf("parallel differs by %g", d)
	}
}

func TestVariantsAgreeExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := matrix.New[float64](24, 18), matrix.New[float64](18, 12)
	a.FillRand(rng)
	b.FillRand(rng)
	var results []matrix.Mat[float64]
	for _, v := range Variants {
		c := matrix.New[float64](24, 12)
		MustNewPlan[float64](smallCfg(), v, core.Generate(2, 3, 2)).MulAdd(c, a, b)
		results = append(results, c)
	}
	// All variants compute the same bilinear formula; tiny differences can
	// only come from operation order inside the same kernels.
	if results[0].MaxAbsDiff(results[1]) > 1e-12 || results[0].MaxAbsDiff(results[2]) > 1e-12 {
		t.Fatal("variants disagree")
	}
}

func TestAccumulatesIntoC(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, b := matrix.New[float64](8, 8), matrix.New[float64](8, 8)
	a.FillRand(rng)
	b.FillRand(rng)
	c := matrix.New[float64](8, 8)
	c.Fill(1)
	p := MustNewPlan[float64](smallCfg(), ABC, core.Strassen())
	p.MulAdd(c, a, b)
	want := matrix.New[float64](8, 8)
	want.Fill(1)
	matrix.MulAdd(want, a, b)
	if d := c.MaxAbsDiff(want); d > 1e-10 {
		t.Fatalf("C := C + AB semantics violated: %g", d)
	}
}

// TestPlanConcurrentMulAdd drives one Plan per variant from many goroutines
// on mixed (including fringed) sizes. Under -race this checks the pooled
// exec-state contract: the Naive/AB temporaries must not be shared between
// concurrent calls.
func TestPlanConcurrentMulAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	type job struct{ a, b, want matrix.Mat[float64] }
	sizes := [][3]int{{16, 16, 16}, {24, 20, 28}, {15, 17, 13}, {32, 8, 32}}
	jobs := make([]job, len(sizes))
	for i, s := range sizes {
		a, b := matrix.New[float64](s[0], s[1]), matrix.New[float64](s[1], s[2])
		a.FillRand(rng)
		b.FillRand(rng)
		want := matrix.New[float64](s[0], s[2])
		matrix.MulAdd(want, a, b)
		jobs[i] = job{a, b, want}
	}
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			p := MustNewPlan[float64](gemm.Config{MC: 8, KC: 8, NC: 16, Threads: 2}, v, core.Strassen())
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for it := 0; it < 4; it++ {
						j := jobs[(g+it)%len(jobs)]
						c := matrix.New[float64](j.want.Rows, j.want.Cols)
						p.MulAdd(c, j.a, j.b)
						if d := c.MaxAbsDiff(j.want); d > 1e-9 {
							t.Errorf("goroutine %d: diff %g", g, d)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestWorkspaceReuseAcrossCalls(t *testing.T) {
	p := MustNewPlan[float64](smallCfg(), Naive, core.Strassen())
	check(t, p, 16, 16, 16, 11)
	check(t, p, 32, 32, 32, 12) // grow
	check(t, p, 8, 8, 8, 13)    // shrink (reuse)
	check(t, p, 32, 32, 32, 14) // reuse at full size
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan[float64](smallCfg(), ABC); err == nil {
		t.Fatal("empty levels accepted")
	}
	if _, err := NewPlan[float64](smallCfg(), Variant(9), core.Strassen()); err == nil {
		t.Fatal("bad variant accepted")
	}
	bad := core.Strassen()
	bad.U = bad.U.Clone()
	bad.U.Set(0, 0, 3)
	if _, err := NewPlan[float64](smallCfg(), ABC, bad); err == nil {
		t.Fatal("invalid level accepted")
	}
	if _, err := NewPlan[float64](gemm.Config{MC: 1, KC: 1, NC: 1, Threads: 1}, ABC, core.Strassen()); err == nil {
		t.Fatal("bad gemm config accepted")
	}
}

func TestMulAddDimMismatchPanics(t *testing.T) {
	p := MustNewPlan[float64](smallCfg(), ABC, core.Strassen())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.MulAdd(matrix.New[float64](4, 4), matrix.New[float64](4, 5), matrix.New[float64](4, 4))
}

func TestZeroSizeNoop(t *testing.T) {
	p := MustNewPlan[float64](smallCfg(), ABC, core.Strassen())
	c := matrix.New[float64](4, 4)
	c.Fill(2)
	p.MulAdd(c, matrix.New[float64](4, 0), matrix.New[float64](0, 4))
	if c.At(0, 0) != 2 {
		t.Fatal("k=0 must not touch C")
	}
}

func TestVariantString(t *testing.T) {
	if Naive.String() != "Naive" || AB.String() != "AB" || ABC.String() != "ABC" {
		t.Fatal("variant names")
	}
	if Variant(7).String() == "" {
		t.Fatal("unknown variant should still print")
	}
}

func TestPlanString(t *testing.T) {
	p := MustNewPlan[float64](smallCfg(), ABC, core.Strassen(), core.Generate(2, 3, 2))
	if got := p.String(); got != "<2,2,2>+<2,3,2> ABC" {
		t.Fatalf("got %q", got)
	}
}

// Property: for random plans (level count, variant, shapes) and random
// not-necessarily-divisible sizes, the executor equals the reference.
func TestExecutorEqualsReferenceProperty(t *testing.T) {
	pool := []core.Algorithm{
		core.Strassen(),
		core.Generate(2, 3, 2),
		core.Generate(3, 2, 2),
		core.Generate(2, 2, 3),
		core.Classical(1, 2, 2),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := 1 + rng.Intn(2)
		levels := make([]core.Algorithm, nl)
		for i := range levels {
			levels[i] = pool[rng.Intn(len(pool))]
		}
		v := Variants[rng.Intn(3)]
		p := MustNewPlan[float64](gemm.Config{MC: 4 + 4*rng.Intn(3), KC: 4 + rng.Intn(12), NC: 8 + 4*rng.Intn(4), Threads: 1 + rng.Intn(2)}, v, levels...)
		m, k, n := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(40)
		a, b := matrix.New[float64](m, k), matrix.New[float64](k, n)
		a.FillRand(rng)
		b.FillRand(rng)
		c := matrix.New[float64](m, n)
		c.FillRand(rng)
		want := c.Clone()
		matrix.MulAdd(want, a, b)
		p.MulAdd(c, a, b)
		return c.MaxAbsDiff(want) < 1e-9
	}
	n := 40
	if testing.Short() {
		n = 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelAddScaledPathMatchesSerial(t *testing.T) {
	// Sizes large enough to cross addScaledParThreshold with several workers.
	rng := rand.New(rand.NewSource(20))
	a, b := matrix.New[float64](260, 260), matrix.New[float64](260, 260)
	a.FillRand(rng)
	b.FillRand(rng)
	for _, v := range []Variant{AB, Naive} {
		c1, c2 := matrix.New[float64](260, 260), matrix.New[float64](260, 260)
		MustNewPlan[float64](gemm.Config{MC: 32, KC: 32, NC: 64, Threads: 1}, v, core.Strassen()).MulAdd(c1, a, b)
		MustNewPlan[float64](gemm.Config{MC: 32, KC: 32, NC: 64, Threads: 6}, v, core.Strassen()).MulAdd(c2, a, b)
		if d := c1.MaxAbsDiff(c2); d != 0 {
			t.Fatalf("%s: parallel scatter differs by %g", v, d)
		}
	}
}
