// Package fmmexec executes fast matrix multiplication plans: a multi-level
// ⟦U,V,W⟧ algorithm (composed with Kronecker products per §3.4–3.5 of the
// paper) evaluated iteratively in one of the paper's three implementation
// variants (§4.1):
//
//	Naive — explicit temporaries for ΣuᵢAᵢ, ΣvⱼBⱼ and the product Mr around
//	        a black-box GEMM (this is also how the reference implementations
//	        of Benson–Ballard [1] are structured);
//	AB    — the operand sums are fused into the packing of Ã and B̃, but Mr
//	        is still formed explicitly and then scattered into C;
//	ABC   — AB plus the fused micro-kernel that adds each register tile of
//	        Mr directly into every target submatrix of C (no temporaries).
//
// Plans are generic over the element type: Plan[float64] is the historical
// bit-stable executor, Plan[float32] evaluates the same ⟦U,V,W⟧ (whose
// coefficients are small exact rationals, so the float64→float32 coefficient
// conversion is exact for every generated algorithm) over float32 operands.
//
// Matrix sizes that are not multiples of the composite partition are handled
// by dynamic peeling [16]: the divisible core runs the FMM, the fringes run
// plain GEMM through the same driver, requiring no extra workspace.
//
// # Traversal
//
// A plan's R multiplication terms are independent, and a plan may execute
// them in two ways per recursion level (the BFS/DFS hybrid of Benson &
// Ballard, "A Framework for Practical Parallel Fast Matrix Multiplication"):
//
//	DFS — terms run in sequence on the calling goroutine, each term's GEMM
//	      parallelized internally across the configured workers (the
//	      historical behavior, and the bit-stable reference path);
//	BFS — the level's independent sub-products fan out across the worker
//	      pool, each term job running single-threaded with its own rented
//	      workspace, and the results fold into C in fixed ascending term
//	      order through reduction buffers.
//
// NewPlanTraversal takes one Step per level (BFS levels must form a prefix —
// the iterative executor fans contiguous flat-term chunks); NewPlan keeps
// the all-DFS default. For the Naive and AB variants the BFS fold replays
// the serial path's per-element addition order exactly, so BFS results are
// bit-identical to DFS; the ABC variant accumulates per-chunk C shadows and
// is run-to-run deterministic (fixed chunking and fold order) but not
// bit-identical to its DFS ordering.
package fmmexec

import (
	"fmt"
	"sync"

	"fmmfam/internal/core"
	"fmmfam/internal/gemm"
	"fmmfam/internal/matrix"
	"fmmfam/internal/sched"
)

// Variant selects the implementation style of §4.1.
type Variant int

// The three generated-implementation variants of the paper.
const (
	Naive Variant = iota
	AB
	ABC
)

func (v Variant) String() string {
	switch v {
	case Naive:
		return "Naive"
	case AB:
		return "AB"
	case ABC:
		return "ABC"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists all three for sweeps.
var Variants = []Variant{Naive, AB, ABC}

// Step is one recursion level's traversal choice: DFS runs the level's terms
// in sequence with intra-GEMM threading, BFS fans them across the worker
// pool. The zero value is DFS, so a nil or zero-filled traversal reproduces
// the historical serial term loop.
type Step int

// The two traversal steps.
const (
	DFS Step = iota
	BFS
)

func (s Step) String() string {
	switch s {
	case DFS:
		return "dfs"
	case BFS:
		return "bfs"
	}
	return fmt.Sprintf("Step(%d)", int(s))
}

type coefIdx struct {
	idx  int
	coef float64
}

// Plan is a ready-to-run FMM implementation for one element type: per-level
// algorithms composed into a flat algorithm, a variant, a per-level
// traversal, and the precomputed non-zero column lists of ⟦U,V,W⟧. Create
// with NewPlan (all-DFS) or NewPlanTraversal.
//
// Concurrency contract: a Plan is immutable after construction and safe for
// unlimited concurrent callers. The mutable scratch of the Naive and AB
// variants (operand sums and the explicit product Mr) is rented per call
// from a pool keyed by problem shape, the underlying gemm.Context rents
// its packing workspaces the same way, and BFS term jobs rent per-term
// reduction buffers from a bounded pool, so concurrent MulAdd calls never
// share state. Each call additionally parallelizes internally — across the
// configured worker count inside one term's GEMM (DFS levels) and across
// terms (BFS levels) — with all in-call parallelism drawing helpers from
// one shared sched.Pool budget of Threads goroutines.
type Plan[E matrix.Element] struct {
	Levels  []core.Algorithm
	Flat    core.Algorithm
	Variant Variant

	ctx *gemm.Context[E]

	// traversal holds one Step per level (outermost first); fanout is the
	// product of the BFS-prefix levels' ranks — the number of independent
	// term chunks a mulCore fans across the pool (1 = pure DFS).
	traversal []Step
	fanout    int

	// serialCtx is the Threads=1 twin context BFS term jobs execute in:
	// cross-term parallelism comes from the pool, so each term runs
	// single-threaded with its own rented workspace (the pool's span is
	// provisioned for the fan-out). nil when fanout == 1.
	serialCtx *gemm.Context[E]

	// pool is the shared worker budget for all in-call parallelism: BFS term
	// jobs and the row-split submatrix additions of addScaled draw helpers
	// from it, so term-level and row-level work compose under one Threads
	// budget instead of oversubscribing (nested submissions degrade to
	// serial, never deadlock).
	pool *sched.Pool

	uCols, vCols, wCols [][]coefIdx

	// states maps stateKey → *sync.Pool of *execState[E]: per-call scratch
	// for the Naive and AB variants, keyed by block shape so a pooled state's
	// backing arrays always fit exactly and mixed-shape callers do not
	// thrash one another's buffers.
	states sync.Map

	// termBufs is the bounded free list of BFS reduction buffers (per-term
	// Mr products for Naive/AB, per-chunk C shadows for ABC), rented like
	// gemm workspaces: get falls back to allocating, put drops when the pool
	// is full or the buffer exceeds maxRetainedTermBufFloats, so steady-state
	// BFS calls allocate nothing while idle retained memory stays capped.
	// nil when fanout == 1.
	termBufs chan []E
}

// execState is the mutable per-call scratch of one plan execution: the
// explicit operand sums ΣuᵢAᵢ, ΣvⱼBⱼ and the product temporary Mr of the
// Naive and AB variants, plus the per-term gemm.Term lists all variants
// assemble on the hot path (hoisted here so steady-state calls build them
// with zero allocations).
type execState[E matrix.Element] struct {
	asum, bsum, mtmp       matrix.Mat[E]
	aTerms, bTerms, cTerms []gemm.Term[E]
}

// clearTerms zeroes and truncates the term lists before the state returns to
// its pool: the entries hold views of the caller's matrices, which a pooled
// state must not pin past the call.
func (st *execState[E]) clearTerms() {
	for i := range st.aTerms {
		st.aTerms[i] = gemm.Term[E]{}
	}
	for i := range st.bTerms {
		st.bTerms[i] = gemm.Term[E]{}
	}
	for i := range st.cTerms {
		st.cTerms[i] = gemm.Term[E]{}
	}
	st.aTerms, st.bTerms, st.cTerms = st.aTerms[:0], st.bTerms[:0], st.cTerms[:0]
}

// stateKey identifies the submatrix-block shape (sm×sk)·(sk×sn) an execState
// was sized for.
type stateKey struct{ sm, sk, sn int }

// stateFor rents an execState for block shape (sm, sk, sn); release clears
// the term lists and returns it to the shape's pool.
func (p *Plan[E]) stateFor(sm, sk, sn int) (st *execState[E], release func()) {
	key := stateKey{sm, sk, sn}
	v, ok := p.states.Load(key)
	if !ok {
		v, _ = p.states.LoadOrStore(key, &sync.Pool{New: func() any { return new(execState[E]) }})
	}
	pool := v.(*sync.Pool)
	st = pool.Get().(*execState[E])
	return st, func() {
		st.clearTerms()
		pool.Put(st)
	}
}

// NewPlan composes the given per-level algorithms (outermost first) into an
// executable plan with the all-DFS traversal (the historical serial term
// loop). Every level must verify; at least one level is required.
func NewPlan[E matrix.Element](cfg gemm.Config, variant Variant, levels ...core.Algorithm) (*Plan[E], error) {
	return NewPlanTraversal[E](cfg, variant, nil, levels...)
}

// NewPlanTraversal is NewPlan with an explicit per-level traversal: one Step
// per level, outermost first (nil means all-DFS). BFS levels must form a
// prefix — the iterative executor fans the flat term list in contiguous
// chunks, which corresponds to fanning the outermost levels. The fan-out
// (product of BFS levels' ranks) determines how many term jobs one MulAdd
// submits to its worker pool; model.TraversalPlan chooses a traversal from
// the performance model.
func NewPlanTraversal[E matrix.Element](cfg gemm.Config, variant Variant, traversal []Step, levels ...core.Algorithm) (*Plan[E], error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("fmmexec: no levels")
	}
	if variant != Naive && variant != AB && variant != ABC {
		return nil, fmt.Errorf("fmmexec: unknown variant %d", int(variant))
	}
	for i, l := range levels {
		if err := l.Verify(); err != nil {
			return nil, fmt.Errorf("fmmexec: level %d: %w", i, err)
		}
	}
	fanout := 1
	if traversal != nil {
		if len(traversal) != len(levels) {
			return nil, fmt.Errorf("fmmexec: traversal has %d steps for %d levels", len(traversal), len(levels))
		}
		for i, s := range traversal {
			switch s {
			case DFS:
			case BFS:
				if i > 0 && traversal[i-1] == DFS {
					return nil, fmt.Errorf("fmmexec: BFS step at level %d after a DFS level (BFS levels must form a prefix)", i)
				}
				fanout *= levels[i].R
			default:
				return nil, fmt.Errorf("fmmexec: unknown traversal step %d at level %d", int(s), i)
			}
		}
	}
	ctx, err := gemm.NewContext[E](cfg)
	if err != nil {
		return nil, err
	}
	p := &Plan[E]{
		Levels:    append([]core.Algorithm(nil), levels...),
		Flat:      core.KronAll(levels...),
		Variant:   variant,
		ctx:       ctx,
		traversal: append([]Step(nil), traversal...),
		fanout:    fanout,
		pool:      sched.NewPool(cfg.Threads),
	}
	if fanout > 1 {
		scfg := cfg
		scfg.Threads = 1
		scfg.WorkspacePoolSpan = fanout
		p.serialCtx, err = gemm.NewContext[E](scfg)
		if err != nil {
			return nil, err
		}
		p.termBufs = make(chan []E, p.Flat.R)
	}
	p.uCols = columns(p.Flat.U)
	p.vCols = columns(p.Flat.V)
	p.wCols = columns(p.Flat.W)
	return p, nil
}

// MustNewPlan is NewPlan for known-good inputs.
func MustNewPlan[E matrix.Element](cfg gemm.Config, variant Variant, levels ...core.Algorithm) *Plan[E] {
	p, err := NewPlan[E](cfg, variant, levels...)
	if err != nil {
		panic(err)
	}
	return p
}

// columns extracts the non-zero (row, coef) list of every column.
func columns(m matrix.Mat[float64]) [][]coefIdx {
	out := make([][]coefIdx, m.Cols)
	for r := 0; r < m.Cols; r++ {
		for i := 0; i < m.Rows; i++ {
			if c := m.At(i, r); c != 0 {
				out[r] = append(out[r], coefIdx{idx: i, coef: c})
			}
		}
	}
	return out
}

// String describes the plan, e.g. "<2,2,2>+<3,3,3> ABC".
func (p *Plan[E]) String() string {
	s := ""
	for i, l := range p.Levels {
		if i > 0 {
			s += "+"
		}
		s += l.ShapeString()
	}
	return s + " " + p.Variant.String()
}

// Context exposes the plan's gemm context (e.g. for running the baseline
// with identical blocking).
func (p *Plan[E]) Context() *gemm.Context[E] { return p.ctx }

// Traversal returns a copy of the plan's per-level traversal (nil for the
// all-DFS default).
func (p *Plan[E]) Traversal() []Step { return append([]Step(nil), p.traversal...) }

// Fanout reports how many independent term chunks the plan fans across its
// worker pool per core multiplication (1 = pure DFS).
func (p *Plan[E]) Fanout() int { return p.fanout }

// MulAdd computes c += a·b. Arbitrary sizes are supported via dynamic
// peeling; inputs may be views. c must not alias a or b.
func (p *Plan[E]) MulAdd(c, a, b matrix.Mat[E]) {
	m, k, n := a.Rows, a.Cols, b.Cols
	if b.Rows != k || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("fmmexec: dims C(%d×%d) += A(%d×%d)·B(%d×%d)", c.Rows, c.Cols, m, k, b.Rows, n))
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	// One packing workspace serves the whole call: the per-term loop and the
	// peeling fringes run sequentially, so renting once avoids hitting the
	// pool (or allocating, under heavy concurrency) once per recursion term.
	// (BFS term jobs rent their own workspaces from the serial twin context.)
	ws := p.ctx.GetWorkspace()
	defer p.ctx.PutWorkspace(ws)
	mt, kt, nt := p.Flat.M, p.Flat.K, p.Flat.N
	sm, sk, sn := m/mt, k/kt, n/nt
	if sm == 0 || sk == 0 || sn == 0 {
		p.ctx.MulAddWS(ws, c, a, b) // partition larger than the problem
		return
	}
	m1, k1, n1 := sm*mt, sk*kt, sn*nt
	p.mulCore(ws, c.View(0, 0, m1, n1), a.View(0, 0, m1, k1), b.View(0, 0, k1, n1))
	// Dynamic peeling fringes (plain GEMM, no extra workspace).
	if k1 < k {
		p.ctx.FusedMulAddWS(ws,
			gemm.SingleTerm(c.View(0, 0, m1, n1)),
			gemm.SingleTerm(a.View(0, k1, m1, k-k1)),
			gemm.SingleTerm(b.View(k1, 0, k-k1, n1)))
	}
	if n1 < n {
		p.ctx.MulAddWS(ws, c.View(0, n1, m1, n-n1), a.View(0, 0, m1, k), b.View(0, n1, k, n-n1))
	}
	if m1 < m {
		p.ctx.MulAddWS(ws, c.View(m1, 0, m-m1, n), a.View(m1, 0, m-m1, k), b)
	}
}

// mulCore runs the iterative FMM of (5) on a region whose dimensions divide
// evenly by the composite partition, dispatching to the BFS fan-out when the
// traversal has one and to the serial term loop otherwise.
func (p *Plan[E]) mulCore(ws *gemm.Workspace[E], c, a, b matrix.Mat[E]) {
	if p.fanout > 1 && p.Flat.R > 1 {
		p.mulCoreBFS(c, a, b)
		return
	}
	p.mulCoreDFS(ws, c, a, b)
}

// aTermsFor/bTermsFor/cTermsFor append term r's non-zero weighted blocks of
// the given operand to dst. The ⟦U,V,W⟧ coefficients are small exact
// rationals (±1, ±1/2, ±1/4, …), so the E(coef) conversions are exact for
// float32 as well as float64. The appends amortize into the pooled
// execState term slices, which converge to the plan's max term width.
//
//fmm:hotpath
func (p *Plan[E]) aTermsFor(dst []gemm.Term[E], a matrix.Mat[E], r int) []gemm.Term[E] {
	mt, kt := p.Flat.M, p.Flat.K
	for _, ci := range p.uCols[r] {
		dst = append(dst, gemm.Term[E]{Coef: E(ci.coef), M: a.Block(ci.idx/kt, ci.idx%kt, mt, kt)}) //fmm:alloc-ok amortized into pooled execState
	}
	return dst
}

//fmm:hotpath
func (p *Plan[E]) bTermsFor(dst []gemm.Term[E], b matrix.Mat[E], r int) []gemm.Term[E] {
	kt, nt := p.Flat.K, p.Flat.N
	for _, ci := range p.vCols[r] {
		dst = append(dst, gemm.Term[E]{Coef: E(ci.coef), M: b.Block(ci.idx/nt, ci.idx%nt, kt, nt)}) //fmm:alloc-ok amortized into pooled execState
	}
	return dst
}

//fmm:hotpath
func (p *Plan[E]) cTermsFor(dst []gemm.Term[E], c matrix.Mat[E], r int) []gemm.Term[E] {
	mt, nt := p.Flat.M, p.Flat.N
	for _, ci := range p.wCols[r] {
		dst = append(dst, gemm.Term[E]{Coef: E(ci.coef), M: c.Block(ci.idx/nt, ci.idx%nt, mt, nt)}) //fmm:alloc-ok amortized into pooled execState
	}
	return dst
}

// mulCoreDFS is the serial term loop: terms run in ascending order on the
// calling goroutine, each term's GEMM parallelized internally.
//
//fmm:hotpath
func (p *Plan[E]) mulCoreDFS(ws *gemm.Workspace[E], c, a, b matrix.Mat[E]) {
	mt, kt, nt := p.Flat.M, p.Flat.K, p.Flat.N
	sm, sk, sn := a.Rows/mt, a.Cols/kt, b.Cols/nt
	st, release := p.stateFor(sm, sk, sn)
	defer release()
	switch p.Variant {
	case ABC:
		for r := 0; r < p.Flat.R; r++ {
			st.aTerms = p.aTermsFor(st.aTerms[:0], a, r)
			st.bTerms = p.bTermsFor(st.bTerms[:0], b, r)
			st.cTerms = p.cTermsFor(st.cTerms[:0], c, r)
			p.ctx.FusedMulAddWS(ws, st.cTerms, st.aTerms, st.bTerms)
		}
	case AB:
		st.mtmp = grow(st.mtmp, sm, sn)
		for r := 0; r < p.Flat.R; r++ {
			st.aTerms = p.aTermsFor(st.aTerms[:0], a, r)
			st.bTerms = p.bTermsFor(st.bTerms[:0], b, r)
			st.mtmp.Zero()
			p.ctx.FusedMulAddWS(ws, gemm.SingleTerm(st.mtmp), st.aTerms, st.bTerms)
			for _, ci := range p.wCols[r] {
				p.addScaled(c.Block(ci.idx/nt, ci.idx%nt, mt, nt), E(ci.coef), st.mtmp)
			}
		}
	case Naive:
		st.asum = grow(st.asum, sm, sk)
		st.bsum = grow(st.bsum, sk, sn)
		st.mtmp = grow(st.mtmp, sm, sn)
		for r := 0; r < p.Flat.R; r++ {
			st.asum.Zero()
			for _, ci := range p.uCols[r] {
				p.addScaled(st.asum, E(ci.coef), a.Block(ci.idx/kt, ci.idx%kt, mt, kt))
			}
			st.bsum.Zero()
			for _, ci := range p.vCols[r] {
				p.addScaled(st.bsum, E(ci.coef), b.Block(ci.idx/nt, ci.idx%nt, kt, nt))
			}
			st.mtmp.Zero()
			p.ctx.MulAddWS(ws, st.mtmp, st.asum, st.bsum)
			for _, ci := range p.wCols[r] {
				p.addScaled(c.Block(ci.idx/nt, ci.idx%nt, mt, nt), E(ci.coef), st.mtmp)
			}
		}
	}
}

// mulCoreBFS fans the flat term list across the worker pool in fanout
// contiguous chunks (one per BFS-prefix multi-index) and folds the results
// into C in fixed ascending term order:
//
//   - Naive/AB: every term's product Mr lands in its own rented sm×sn buffer
//     during the parallel phase; after the barrier the caller replays the
//     serial fold — for each term in ascending order, C_block += w·Mr. Each
//     C element therefore receives exactly the additions of the serial loop
//     in the same order, so the result is bit-identical to the DFS path.
//   - ABC: each chunk's terms scatter into a zeroed per-chunk shadow of the
//     core C (the fused micro-kernel path needs a C-shaped target), and the
//     shadows fold into C in ascending chunk order. The additive grouping
//     differs from the serial interleaving, so ABC BFS results are
//     run-to-run deterministic (fixed chunking, fixed fold order, schedule-
//     independent) but not bit-identical to DFS.
//
// Term jobs execute in the Threads=1 twin context — cross-term parallelism
// comes from the pool, and gemm results are bit-identical across its worker
// counts — with every job renting its own workspace and exec state.
func (p *Plan[E]) mulCoreBFS(c, a, b matrix.Mat[E]) {
	mt, kt, nt := p.Flat.M, p.Flat.K, p.Flat.N
	sm, sk, sn := a.Rows/mt, a.Cols/kt, b.Cols/nt
	R := p.Flat.R
	F := p.fanout
	chunk := R / F
	jobCost := 2 * int64(chunk) * int64(sm) * int64(sk) * int64(sn)
	switch p.Variant {
	case Naive, AB:
		prods := make([]matrix.Mat[E], R)
		for r := range prods {
			prods[r] = p.rentTermBuf(sm, sn)
		}
		jobs := make([]sched.Job, F)
		for j := 0; j < F; j++ {
			j := j
			jobs[j] = sched.Job{Cost: jobCost, Run: func() {
				ws := p.serialCtx.GetWorkspace()
				defer p.serialCtx.PutWorkspace(ws)
				st, release := p.stateFor(sm, sk, sn)
				defer release()
				for r := j * chunk; r < (j+1)*chunk; r++ {
					p.termProduct(ws, st, prods[r], a, b, r)
				}
			}}
		}
		p.pool.Run(jobs)
		// Ordered fold: ascending term order replays the serial path's
		// per-element addition sequence exactly.
		for r := 0; r < R; r++ {
			for _, ci := range p.wCols[r] {
				p.addScaled(c.Block(ci.idx/nt, ci.idx%nt, mt, nt), E(ci.coef), prods[r])
			}
		}
		for _, buf := range prods {
			p.returnTermBuf(buf)
		}
	case ABC:
		shadows := make([]matrix.Mat[E], F)
		for j := range shadows {
			shadows[j] = p.rentTermBuf(c.Rows, c.Cols)
		}
		jobs := make([]sched.Job, F)
		for j := 0; j < F; j++ {
			j := j
			jobs[j] = sched.Job{Cost: jobCost, Run: func() {
				ws := p.serialCtx.GetWorkspace()
				defer p.serialCtx.PutWorkspace(ws)
				st, release := p.stateFor(sm, sk, sn)
				defer release()
				sh := shadows[j]
				sh.Zero()
				for r := j * chunk; r < (j+1)*chunk; r++ {
					st.aTerms = p.aTermsFor(st.aTerms[:0], a, r)
					st.bTerms = p.bTermsFor(st.bTerms[:0], b, r)
					st.cTerms = p.cTermsFor(st.cTerms[:0], sh, r)
					p.serialCtx.FusedMulAddWS(ws, st.cTerms, st.aTerms, st.bTerms)
				}
			}}
		}
		p.pool.Run(jobs)
		// Fixed ascending chunk order keeps repeated runs bit-identical.
		for j := 0; j < F; j++ {
			p.addScaled(c, 1, shadows[j])
		}
		for _, buf := range shadows {
			p.returnTermBuf(buf)
		}
	}
}

// termProduct computes term r's explicit product Mr into prod (zeroing it
// first) for the Naive and AB variants, single-threaded in the serial twin
// context — the BFS parallel-phase body.
//
//fmm:hotpath
func (p *Plan[E]) termProduct(ws *gemm.Workspace[E], st *execState[E], prod matrix.Mat[E], a, b matrix.Mat[E], r int) {
	mt, kt, nt := p.Flat.M, p.Flat.K, p.Flat.N
	prod.Zero()
	if p.Variant == AB {
		st.aTerms = p.aTermsFor(st.aTerms[:0], a, r)
		st.bTerms = p.bTermsFor(st.bTerms[:0], b, r)
		p.serialCtx.FusedMulAddWS(ws, gemm.SingleTerm(prod), st.aTerms, st.bTerms)
		return
	}
	sm, sk, sn := a.Rows/mt, a.Cols/kt, b.Cols/nt
	st.asum = grow(st.asum, sm, sk)
	st.bsum = grow(st.bsum, sk, sn)
	st.asum.Zero()
	for _, ci := range p.uCols[r] {
		st.asum.AddScaled(E(ci.coef), a.Block(ci.idx/kt, ci.idx%kt, mt, kt))
	}
	st.bsum.Zero()
	for _, ci := range p.vCols[r] {
		st.bsum.AddScaled(E(ci.coef), b.Block(ci.idx/nt, ci.idx%nt, kt, nt))
	}
	p.serialCtx.MulAddWS(ws, prod, st.asum, st.bsum)
}

// maxRetainedTermBufFloats caps the size of a single pooled BFS reduction
// buffer in elements (32 MiB of float64s, 16 MiB of float32s): per-term
// product buffers are sm×sn (a fraction 1/(M̃·Ñ) of the core output) and
// ABC chunk shadows are the full core m×n, so typical buffers sit far below
// this; anything larger goes back to the GC instead of pinning idle memory.
const maxRetainedTermBufFloats = 1 << 22

// rentTermBuf returns a rows×cols matrix backed by the plan's bounded
// reduction-buffer pool, allocating fresh when the pool is empty or its
// buffer is too small. The contents are unspecified — BFS users zero their
// buffers as part of the compute phase.
func (p *Plan[E]) rentTermBuf(rows, cols int) matrix.Mat[E] {
	need := rows * cols
	var buf []E
	select {
	case buf = <-p.termBufs:
	default:
	}
	if cap(buf) < need {
		buf = make([]E, need)
	}
	return matrix.Mat[E]{Rows: rows, Cols: cols, Stride: cols, Data: buf[:need]}
}

// returnTermBuf offers a reduction buffer back to the pool; oversized
// buffers and returns beyond the pool bound are dropped for the GC.
func (p *Plan[E]) returnTermBuf(m matrix.Mat[E]) {
	if cap(m.Data) > maxRetainedTermBufFloats {
		return
	}
	select {
	case p.termBufs <- m.Data[:cap(m.Data)]:
	default:
	}
}

// addScaledParThreshold is the element count below which the parallel
// split's goroutine overhead exceeds the memory-bound work.
const addScaledParThreshold = 1 << 15

// addScaled computes dst += coef·src, splitting rows across the plan's
// worker pool for large operands — the explicit submatrix additions of the
// Naive and AB variants are memory-bound streams that parallelize like the
// packing. Row chunks go through the shared sched.Pool, so the split
// composes with BFS term jobs under one worker budget: called from inside a
// term job with the budget exhausted, it degrades to the plain serial add
// (each element is written exactly once either way, so the split never
// changes the result bits).
func (p *Plan[E]) addScaled(dst matrix.Mat[E], coef E, src matrix.Mat[E]) {
	threads := p.ctx.Config().Threads
	if threads <= 1 || dst.Rows*dst.Cols < addScaledParThreshold || dst.Rows < threads {
		dst.AddScaled(coef, src)
		return
	}
	chunk := (dst.Rows + threads - 1) / threads
	jobs := make([]sched.Job, 0, threads)
	for r0 := 0; r0 < dst.Rows; r0 += chunk {
		rows := chunk
		if r0+rows > dst.Rows {
			rows = dst.Rows - r0
		}
		r0, rows := r0, rows
		jobs = append(jobs, sched.Job{Cost: int64(rows), Run: func() {
			dst.View(r0, 0, rows, dst.Cols).AddScaled(coef, src.View(r0, 0, rows, src.Cols))
		}})
	}
	p.pool.Run(jobs)
}

// grow returns a matrix of exactly r×c, reusing ws's backing array when it is
// large enough.
func grow[E matrix.Element](ws matrix.Mat[E], r, c int) matrix.Mat[E] {
	if cap(ws.Data) >= r*c {
		return matrix.Mat[E]{Rows: r, Cols: c, Stride: c, Data: ws.Data[:r*c]}
	}
	return matrix.New[E](r, c)
}
