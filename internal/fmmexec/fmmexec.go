// Package fmmexec executes fast matrix multiplication plans: a multi-level
// ⟦U,V,W⟧ algorithm (composed with Kronecker products per §3.4–3.5 of the
// paper) evaluated iteratively in one of the paper's three implementation
// variants (§4.1):
//
//	Naive — explicit temporaries for ΣuᵢAᵢ, ΣvⱼBⱼ and the product Mr around
//	        a black-box GEMM (this is also how the reference implementations
//	        of Benson–Ballard [1] are structured);
//	AB    — the operand sums are fused into the packing of Ã and B̃, but Mr
//	        is still formed explicitly and then scattered into C;
//	ABC   — AB plus the fused micro-kernel that adds each register tile of
//	        Mr directly into every target submatrix of C (no temporaries).
//
// Plans are generic over the element type: Plan[float64] is the historical
// bit-stable executor, Plan[float32] evaluates the same ⟦U,V,W⟧ (whose
// coefficients are small exact rationals, so the float64→float32 coefficient
// conversion is exact for every generated algorithm) over float32 operands.
//
// Matrix sizes that are not multiples of the composite partition are handled
// by dynamic peeling [16]: the divisible core runs the FMM, the fringes run
// plain GEMM through the same driver, requiring no extra workspace.
package fmmexec

import (
	"fmt"
	"sync"

	"fmmfam/internal/core"
	"fmmfam/internal/gemm"
	"fmmfam/internal/matrix"
)

// Variant selects the implementation style of §4.1.
type Variant int

// The three generated-implementation variants of the paper.
const (
	Naive Variant = iota
	AB
	ABC
)

func (v Variant) String() string {
	switch v {
	case Naive:
		return "Naive"
	case AB:
		return "AB"
	case ABC:
		return "ABC"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists all three for sweeps.
var Variants = []Variant{Naive, AB, ABC}

type coefIdx struct {
	idx  int
	coef float64
}

// Plan is a ready-to-run FMM implementation for one element type: per-level
// algorithms composed into a flat algorithm, a variant, and the precomputed
// non-zero column lists of ⟦U,V,W⟧. Create with NewPlan.
//
// Concurrency contract: a Plan is immutable after construction and safe for
// unlimited concurrent callers. The mutable scratch of the Naive and AB
// variants (operand sums and the explicit product Mr) is rented per call
// from a pool keyed by problem shape, and the underlying gemm.Context rents
// its packing workspaces the same way, so concurrent MulAdd calls never
// share state. Each call additionally parallelizes internally across the
// configured worker count.
type Plan[E matrix.Element] struct {
	Levels  []core.Algorithm
	Flat    core.Algorithm
	Variant Variant

	ctx *gemm.Context[E]

	uCols, vCols, wCols [][]coefIdx

	// states maps stateKey → *sync.Pool of *execState[E]: per-call scratch
	// for the Naive and AB variants, keyed by block shape so a pooled state's
	// backing arrays always fit exactly and mixed-shape callers do not
	// thrash one another's buffers.
	states sync.Map
}

// execState is the mutable per-call scratch of the Naive and AB variants:
// the explicit operand sums ΣuᵢAᵢ, ΣvⱼBⱼ and the product temporary Mr. The
// ABC variant fuses all three away and needs no state.
type execState[E matrix.Element] struct {
	asum, bsum, mtmp matrix.Mat[E]
}

// stateKey identifies the submatrix-block shape (sm×sk)·(sk×sn) an execState
// was sized for.
type stateKey struct{ sm, sk, sn int }

// stateFor rents an execState for block shape (sm, sk, sn); release returns
// it to the shape's pool.
func (p *Plan[E]) stateFor(sm, sk, sn int) (st *execState[E], release func()) {
	key := stateKey{sm, sk, sn}
	v, ok := p.states.Load(key)
	if !ok {
		v, _ = p.states.LoadOrStore(key, &sync.Pool{New: func() any { return new(execState[E]) }})
	}
	pool := v.(*sync.Pool)
	st = pool.Get().(*execState[E])
	return st, func() { pool.Put(st) }
}

// NewPlan composes the given per-level algorithms (outermost first) into an
// executable plan. Every level must verify; at least one level is required.
func NewPlan[E matrix.Element](cfg gemm.Config, variant Variant, levels ...core.Algorithm) (*Plan[E], error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("fmmexec: no levels")
	}
	if variant != Naive && variant != AB && variant != ABC {
		return nil, fmt.Errorf("fmmexec: unknown variant %d", int(variant))
	}
	for i, l := range levels {
		if err := l.Verify(); err != nil {
			return nil, fmt.Errorf("fmmexec: level %d: %w", i, err)
		}
	}
	ctx, err := gemm.NewContext[E](cfg)
	if err != nil {
		return nil, err
	}
	p := &Plan[E]{
		Levels:  append([]core.Algorithm(nil), levels...),
		Flat:    core.KronAll(levels...),
		Variant: variant,
		ctx:     ctx,
	}
	p.uCols = columns(p.Flat.U)
	p.vCols = columns(p.Flat.V)
	p.wCols = columns(p.Flat.W)
	return p, nil
}

// MustNewPlan is NewPlan for known-good inputs.
func MustNewPlan[E matrix.Element](cfg gemm.Config, variant Variant, levels ...core.Algorithm) *Plan[E] {
	p, err := NewPlan[E](cfg, variant, levels...)
	if err != nil {
		panic(err)
	}
	return p
}

// columns extracts the non-zero (row, coef) list of every column.
func columns(m matrix.Mat[float64]) [][]coefIdx {
	out := make([][]coefIdx, m.Cols)
	for r := 0; r < m.Cols; r++ {
		for i := 0; i < m.Rows; i++ {
			if c := m.At(i, r); c != 0 {
				out[r] = append(out[r], coefIdx{idx: i, coef: c})
			}
		}
	}
	return out
}

// String describes the plan, e.g. "<2,2,2>+<3,3,3> ABC".
func (p *Plan[E]) String() string {
	s := ""
	for i, l := range p.Levels {
		if i > 0 {
			s += "+"
		}
		s += l.ShapeString()
	}
	return s + " " + p.Variant.String()
}

// Context exposes the plan's gemm context (e.g. for running the baseline
// with identical blocking).
func (p *Plan[E]) Context() *gemm.Context[E] { return p.ctx }

// MulAdd computes c += a·b. Arbitrary sizes are supported via dynamic
// peeling; inputs may be views. c must not alias a or b.
func (p *Plan[E]) MulAdd(c, a, b matrix.Mat[E]) {
	m, k, n := a.Rows, a.Cols, b.Cols
	if b.Rows != k || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("fmmexec: dims C(%d×%d) += A(%d×%d)·B(%d×%d)", c.Rows, c.Cols, m, k, b.Rows, n))
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	// One packing workspace serves the whole call: the per-term loop and the
	// peeling fringes run sequentially, so renting once avoids hitting the
	// pool (or allocating, under heavy concurrency) once per recursion term.
	ws := p.ctx.GetWorkspace()
	defer p.ctx.PutWorkspace(ws)
	mt, kt, nt := p.Flat.M, p.Flat.K, p.Flat.N
	sm, sk, sn := m/mt, k/kt, n/nt
	if sm == 0 || sk == 0 || sn == 0 {
		p.ctx.MulAddWS(ws, c, a, b) // partition larger than the problem
		return
	}
	m1, k1, n1 := sm*mt, sk*kt, sn*nt
	p.mulCore(ws, c.View(0, 0, m1, n1), a.View(0, 0, m1, k1), b.View(0, 0, k1, n1))
	// Dynamic peeling fringes (plain GEMM, no extra workspace).
	if k1 < k {
		p.ctx.FusedMulAddWS(ws,
			gemm.SingleTerm(c.View(0, 0, m1, n1)),
			gemm.SingleTerm(a.View(0, k1, m1, k-k1)),
			gemm.SingleTerm(b.View(k1, 0, k-k1, n1)))
	}
	if n1 < n {
		p.ctx.MulAddWS(ws, c.View(0, n1, m1, n-n1), a.View(0, 0, m1, k), b.View(0, n1, k, n-n1))
	}
	if m1 < m {
		p.ctx.MulAddWS(ws, c.View(m1, 0, m-m1, n), a.View(m1, 0, m-m1, k), b)
	}
}

// mulCore runs the iterative FMM of (5) on a region whose dimensions divide
// evenly by the composite partition. The ⟦U,V,W⟧ coefficients are small
// exact rationals (±1, ±1/2, ±1/4, …), so the E(coef) conversions below are
// exact for float32 as well as float64.
func (p *Plan[E]) mulCore(ws *gemm.Workspace[E], c, a, b matrix.Mat[E]) {
	mt, kt, nt := p.Flat.M, p.Flat.K, p.Flat.N
	sm, sk, sn := a.Rows/mt, a.Cols/kt, b.Cols/nt
	switch p.Variant {
	case ABC:
		aTerms := make([]gemm.Term[E], 0, 8)
		bTerms := make([]gemm.Term[E], 0, 8)
		cTerms := make([]gemm.Term[E], 0, 8)
		for r := 0; r < p.Flat.R; r++ {
			aTerms = aTerms[:0]
			for _, ci := range p.uCols[r] {
				aTerms = append(aTerms, gemm.Term[E]{Coef: E(ci.coef), M: a.Block(ci.idx/kt, ci.idx%kt, mt, kt)})
			}
			bTerms = bTerms[:0]
			for _, ci := range p.vCols[r] {
				bTerms = append(bTerms, gemm.Term[E]{Coef: E(ci.coef), M: b.Block(ci.idx/nt, ci.idx%nt, kt, nt)})
			}
			cTerms = cTerms[:0]
			for _, ci := range p.wCols[r] {
				cTerms = append(cTerms, gemm.Term[E]{Coef: E(ci.coef), M: c.Block(ci.idx/nt, ci.idx%nt, mt, nt)})
			}
			p.ctx.FusedMulAddWS(ws, cTerms, aTerms, bTerms)
		}
	case AB:
		st, release := p.stateFor(sm, sk, sn)
		defer release()
		st.mtmp = grow(st.mtmp, sm, sn)
		aTerms := make([]gemm.Term[E], 0, 8)
		bTerms := make([]gemm.Term[E], 0, 8)
		for r := 0; r < p.Flat.R; r++ {
			aTerms = aTerms[:0]
			for _, ci := range p.uCols[r] {
				aTerms = append(aTerms, gemm.Term[E]{Coef: E(ci.coef), M: a.Block(ci.idx/kt, ci.idx%kt, mt, kt)})
			}
			bTerms = bTerms[:0]
			for _, ci := range p.vCols[r] {
				bTerms = append(bTerms, gemm.Term[E]{Coef: E(ci.coef), M: b.Block(ci.idx/nt, ci.idx%nt, kt, nt)})
			}
			st.mtmp.Zero()
			p.ctx.FusedMulAddWS(ws, gemm.SingleTerm(st.mtmp), aTerms, bTerms)
			for _, ci := range p.wCols[r] {
				p.addScaled(c.Block(ci.idx/nt, ci.idx%nt, mt, nt), E(ci.coef), st.mtmp)
			}
		}
	case Naive:
		st, release := p.stateFor(sm, sk, sn)
		defer release()
		st.asum = grow(st.asum, sm, sk)
		st.bsum = grow(st.bsum, sk, sn)
		st.mtmp = grow(st.mtmp, sm, sn)
		for r := 0; r < p.Flat.R; r++ {
			st.asum.Zero()
			for _, ci := range p.uCols[r] {
				p.addScaled(st.asum, E(ci.coef), a.Block(ci.idx/kt, ci.idx%kt, mt, kt))
			}
			st.bsum.Zero()
			for _, ci := range p.vCols[r] {
				p.addScaled(st.bsum, E(ci.coef), b.Block(ci.idx/nt, ci.idx%nt, kt, nt))
			}
			st.mtmp.Zero()
			p.ctx.MulAddWS(ws, st.mtmp, st.asum, st.bsum)
			for _, ci := range p.wCols[r] {
				p.addScaled(c.Block(ci.idx/nt, ci.idx%nt, mt, nt), E(ci.coef), st.mtmp)
			}
		}
	}
}

// addScaledParThreshold is the element count below which the parallel
// split's goroutine overhead exceeds the memory-bound work.
const addScaledParThreshold = 1 << 15

// addScaled computes dst += coef·src, splitting rows across the plan's
// workers for large operands — the explicit submatrix additions of the Naive
// and AB variants are memory-bound streams that parallelize like the packing.
func (p *Plan[E]) addScaled(dst matrix.Mat[E], coef E, src matrix.Mat[E]) {
	threads := p.ctx.Config().Threads
	if threads <= 1 || dst.Rows*dst.Cols < addScaledParThreshold || dst.Rows < threads {
		dst.AddScaled(coef, src)
		return
	}
	var wg sync.WaitGroup
	chunk := (dst.Rows + threads - 1) / threads
	for r0 := 0; r0 < dst.Rows; r0 += chunk {
		rows := chunk
		if r0+rows > dst.Rows {
			rows = dst.Rows - r0
		}
		wg.Add(1)
		go func(r0, rows int) {
			defer wg.Done()
			dst.View(r0, 0, rows, dst.Cols).AddScaled(coef, src.View(r0, 0, rows, src.Cols))
		}(r0, rows)
	}
	wg.Wait()
}

// grow returns a matrix of exactly r×c, reusing ws's backing array when it is
// large enough.
func grow[E matrix.Element](ws matrix.Mat[E], r, c int) matrix.Mat[E] {
	if cap(ws.Data) >= r*c {
		return matrix.Mat[E]{Rows: r, Cols: c, Stride: c, Data: ws.Data[:r*c]}
	}
	return matrix.New[E](r, c)
}
