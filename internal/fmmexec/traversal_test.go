package fmmexec

import (
	"math/rand"
	"sync"
	"testing"

	"fmmfam/internal/core"
	"fmmfam/internal/gemm"
	"fmmfam/internal/matrix"
)

// allBFS builds an n-level all-BFS traversal.
func allBFS(n int) []Step {
	steps := make([]Step, n)
	for i := range steps {
		steps[i] = BFS
	}
	return steps
}

// checkTraversal runs a BFS plan against the reference on one size.
func checkTraversal[E matrix.Element](t *testing.T, p *Plan[E], m, k, n int, seed int64, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, b := matrix.New[E](m, k), matrix.New[E](k, n)
	a.FillRand(rng)
	b.FillRand(rng)
	c := matrix.New[E](m, n)
	c.FillRand(rng)
	want := c.Clone()
	matrix.MulAdd(want, a, b)
	p.MulAdd(c, a, b)
	if d := c.MaxAbsDiff(want); d > tol {
		t.Fatalf("%s (fanout %d) on %d×%d×%d: diff %g", p, p.Fanout(), m, k, n, d)
	}
}

// TestBFSTraversalMatchesReference covers every variant at both dtypes under
// forced all-BFS, including fringed (peeled) and smaller-than-partition
// sizes, at one and two levels.
func TestBFSTraversalMatchesReference(t *testing.T) {
	cfg := gemm.Config{MC: 8, KC: 8, NC: 16, Threads: 4}
	sizes := [][3]int{{16, 16, 16}, {32, 16, 24}, {15, 17, 13}, {3, 3, 3}}
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			p1, err := NewPlanTraversal[float64](cfg, v, allBFS(1), core.Strassen())
			if err != nil {
				t.Fatal(err)
			}
			if p1.Fanout() != 7 {
				t.Fatalf("one-level Strassen BFS fanout %d, want 7", p1.Fanout())
			}
			p2, err := NewPlanTraversal[float64](cfg, v, allBFS(2), core.Strassen(), core.Generate(2, 3, 2))
			if err != nil {
				t.Fatal(err)
			}
			if p2.Fanout() != 7*11 {
				t.Fatalf("two-level hybrid BFS fanout %d, want 77", p2.Fanout())
			}
			seed := int64(400)
			for _, s := range sizes {
				checkTraversal(t, p1, s[0], s[1], s[2], seed, 1e-9)
				checkTraversal(t, p2, s[0]+4, s[1]+7, s[2]+2, seed+1, 1e-9)
				seed += 2
			}
			p32, err := NewPlanTraversal[float32](cfg, v, allBFS(1), core.Strassen())
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range sizes {
				checkTraversal(t, p32, s[0], s[1], s[2], seed, 1e-3)
				seed++
			}
		})
	}
}

// TestBFSPrefixTraversalMatchesReference exercises a mixed traversal —
// BFS at the outer level, DFS inside — the shape model.TraversalPlan
// typically returns.
func TestBFSPrefixTraversalMatchesReference(t *testing.T) {
	cfg := gemm.Config{MC: 8, KC: 8, NC: 16, Threads: 4}
	for _, v := range Variants {
		p, err := NewPlanTraversal[float64](cfg, v, []Step{BFS, DFS}, core.Strassen(), core.Strassen())
		if err != nil {
			t.Fatal(err)
		}
		if p.Fanout() != 7 {
			t.Fatalf("%s: prefix fanout %d, want 7", v, p.Fanout())
		}
		checkTraversal(t, p, 28, 24, 20, 500+int64(v), 1e-9)
	}
}

// fingerprintMulAdd runs c += a·b through p on fixed inputs and returns C's
// bit fingerprint.
func fingerprintMulAdd[E matrix.Element](p *Plan[E], m, k, n int, seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	a, b := matrix.New[E](m, k), matrix.New[E](k, n)
	a.FillRand(rng)
	b.FillRand(rng)
	c := matrix.New[E](m, n)
	p.MulAdd(c, a, b)
	return c.Fingerprint()
}

// TestBFSBitIdenticalToSerialNaiveAB pins the strongest determinism claim:
// for the Naive and AB variants the BFS fold replays the serial path's
// per-element addition order exactly, so the parallel traversal is
// bit-identical to the Threads=1 DFS plan — per variant and dtype, repeated
// to give the scheduler room to interleave differently (the -count=20 pin,
// folded into one run).
func TestBFSBitIdenticalToSerialNaiveAB(t *testing.T) {
	reps := 20
	if testing.Short() {
		reps = 5
	}
	serialCfg := gemm.Config{MC: 8, KC: 8, NC: 16, Threads: 1}
	parCfg := gemm.Config{MC: 8, KC: 8, NC: 16, Threads: 4}
	for _, v := range []Variant{Naive, AB} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			ps, err := NewPlanTraversal[float64](serialCfg, v, nil, core.Strassen(), core.Strassen())
			if err != nil {
				t.Fatal(err)
			}
			pp, err := NewPlanTraversal[float64](parCfg, v, allBFS(2), core.Strassen(), core.Strassen())
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprintMulAdd(ps, 36, 36, 36, 600)
			for i := 0; i < reps; i++ {
				if got := fingerprintMulAdd(pp, 36, 36, 36, 600); got != want {
					t.Fatalf("%s rep %d: BFS fingerprint %#x != serial %#x", v, i, got, want)
				}
			}
			ps32, err := NewPlanTraversal[float32](serialCfg, v, nil, core.Strassen())
			if err != nil {
				t.Fatal(err)
			}
			pp32, err := NewPlanTraversal[float32](parCfg, v, allBFS(1), core.Strassen())
			if err != nil {
				t.Fatal(err)
			}
			want32 := fingerprintMulAdd(ps32, 30, 26, 34, 601)
			for i := 0; i < reps; i++ {
				if got := fingerprintMulAdd(pp32, 30, 26, 34, 601); got != want32 {
					t.Fatalf("%s rep %d: float32 BFS fingerprint %#x != serial %#x", v, i, got, want32)
				}
			}
		})
	}
}

// TestBFSRunToRunDeterministicABC pins the ABC BFS contract: per-chunk
// shadow accumulation cannot replay the serial interleaving, but fixed
// chunking and a fixed fold order make repeated runs bit-identical
// regardless of how the pool schedules the chunks.
func TestBFSRunToRunDeterministicABC(t *testing.T) {
	reps := 20
	if testing.Short() {
		reps = 5
	}
	cfg := gemm.Config{MC: 8, KC: 8, NC: 16, Threads: 4}
	p, err := NewPlanTraversal[float64](cfg, ABC, allBFS(2), core.Strassen(), core.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintMulAdd(p, 36, 36, 36, 700)
	for i := 0; i < reps; i++ {
		if got := fingerprintMulAdd(p, 36, 36, 36, 700); got != want {
			t.Fatalf("rep %d: ABC BFS fingerprint %#x != first run %#x", i, got, want)
		}
	}
	p32, err := NewPlanTraversal[float32](cfg, ABC, allBFS(1), core.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	want32 := fingerprintMulAdd(p32, 24, 24, 24, 701)
	for i := 0; i < reps; i++ {
		if got := fingerprintMulAdd(p32, 24, 24, 24, 701); got != want32 {
			t.Fatalf("rep %d: float32 ABC BFS fingerprint %#x != first run %#x", i, got, want32)
		}
	}
}

// TestConcurrentBFSMulAdd hammers one BFS plan per variant from many
// goroutines — under -race this checks that term jobs' rented workspaces,
// exec states, and reduction buffers are never shared across concurrent
// calls, and that concurrent Pool.Run invocations compose.
func TestConcurrentBFSMulAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(800))
	type job struct{ a, b, want matrix.Mat[float64] }
	sizes := [][3]int{{16, 16, 16}, {24, 20, 28}, {15, 17, 13}, {32, 8, 32}}
	jobs := make([]job, len(sizes))
	for i, s := range sizes {
		a, b := matrix.New[float64](s[0], s[1]), matrix.New[float64](s[1], s[2])
		a.FillRand(rng)
		b.FillRand(rng)
		want := matrix.New[float64](s[0], s[2])
		matrix.MulAdd(want, a, b)
		jobs[i] = job{a, b, want}
	}
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			p, err := NewPlanTraversal[float64](gemm.Config{MC: 8, KC: 8, NC: 16, Threads: 3}, v, allBFS(1), core.Strassen())
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for it := 0; it < 4; it++ {
						j := jobs[(g+it)%len(jobs)]
						c := matrix.New[float64](j.want.Rows, j.want.Cols)
						p.MulAdd(c, j.a, j.b)
						if d := c.MaxAbsDiff(j.want); d > 1e-9 {
							t.Errorf("goroutine %d: diff %g", g, d)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestNewPlanTraversalValidation pins the constructor's traversal rules.
func TestNewPlanTraversalValidation(t *testing.T) {
	cfg := smallCfg()
	if _, err := NewPlanTraversal[float64](cfg, ABC, []Step{BFS}, core.Strassen(), core.Strassen()); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewPlanTraversal[float64](cfg, ABC, []Step{DFS, BFS}, core.Strassen(), core.Strassen()); err == nil {
		t.Fatal("BFS after DFS accepted (must be a prefix)")
	}
	if _, err := NewPlanTraversal[float64](cfg, ABC, []Step{Step(5)}, core.Strassen()); err == nil {
		t.Fatal("unknown step accepted")
	}
	p, err := NewPlanTraversal[float64](cfg, ABC, []Step{BFS, BFS}, core.Strassen(), core.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	if p.Fanout() != 49 {
		t.Fatalf("fanout %d, want 49", p.Fanout())
	}
	if tr := p.Traversal(); len(tr) != 2 || tr[0] != BFS || tr[1] != BFS {
		t.Fatalf("traversal accessor %v", tr)
	}
	// nil traversal and all-DFS are the historical plan.
	pd, err := NewPlanTraversal[float64](cfg, ABC, []Step{DFS}, core.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	if pd.Fanout() != 1 || len(pd.Traversal()) != 1 {
		t.Fatalf("DFS plan fanout %d traversal %v", pd.Fanout(), pd.Traversal())
	}
}

// TestStepString covers the Step stringer.
func TestStepString(t *testing.T) {
	if DFS.String() != "dfs" || BFS.String() != "bfs" {
		t.Fatal("step names")
	}
	if Step(9).String() == "" {
		t.Fatal("unknown step should still print")
	}
}

// TestBFSWithThreadsOne degrades gracefully: a BFS traversal on a
// single-worker pool runs the fan-out serially on the caller and still
// matches the reference.
func TestBFSWithThreadsOne(t *testing.T) {
	p, err := NewPlanTraversal[float64](smallCfg(), AB, allBFS(1), core.Strassen())
	if err != nil {
		t.Fatal(err)
	}
	checkTraversal(t, p, 20, 20, 20, 900, 1e-9)
}
