package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New[float64](3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("got %d×%d stride %d", m.Rows, m.Cols, m.Stride)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows[float64]([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("bad values: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer expectPanic(t, "ragged rows")
	FromRows[float64]([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows[float64](nil)
	if !m.IsEmpty() {
		t.Fatal("expected empty")
	}
}

func TestSetAdd(t *testing.T) {
	m := New[float64](2, 2)
	m.Set(1, 0, 3)
	m.Add(1, 0, 2)
	if m.At(1, 0) != 5 {
		t.Fatalf("got %v", m.At(1, 0))
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := New[float64](4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 7)
	if m.At(1, 1) != 7 {
		t.Fatal("view does not alias parent")
	}
	if v.Rows != 2 || v.Cols != 2 || v.Stride != 4 {
		t.Fatalf("bad view shape %d×%d stride %d", v.Rows, v.Cols, v.Stride)
	}
}

func TestViewOfView(t *testing.T) {
	m := New[float64](8, 8)
	m.Set(3, 3, 9)
	v := m.View(2, 2, 4, 4).View(1, 1, 2, 2)
	if v.At(0, 0) != 9 {
		t.Fatal("nested view misaligned")
	}
}

func TestViewBoundsPanic(t *testing.T) {
	defer expectPanic(t, "view bounds")
	New[float64](3, 3).View(2, 2, 2, 2)
}

func TestViewZeroSize(t *testing.T) {
	v := New[float64](3, 3).View(1, 1, 0, 2)
	if !v.IsEmpty() {
		t.Fatal("expected empty view")
	}
}

func TestBlock(t *testing.T) {
	m := New[float64](6, 4)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	b := m.Block(2, 1, 3, 2) // bottom-right 2×2 block
	if b.Rows != 2 || b.Cols != 2 || b.At(0, 0) != 42 {
		t.Fatalf("bad block: %v", b)
	}
}

func TestBlockIndivisiblePanics(t *testing.T) {
	defer expectPanic(t, "indivisible block")
	New[float64](5, 4).Block(0, 0, 2, 2)
}

func TestZeroFillScale(t *testing.T) {
	m := New[float64](3, 3)
	m.Fill(2)
	m.Scale(1.5)
	if m.At(2, 2) != 3 {
		t.Fatalf("got %v", m.At(2, 2))
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("zero failed")
	}
}

func TestZeroOnViewLeavesRest(t *testing.T) {
	m := New[float64](4, 4)
	m.Fill(1)
	m.View(1, 1, 2, 2).Zero()
	if m.At(0, 0) != 1 || m.At(1, 1) != 0 || m.At(3, 3) != 1 {
		t.Fatal("view zero leaked")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New[float64](2, 3)
	m.Set(1, 2, 4)
	c := m.Clone()
	c.Set(1, 2, 5)
	if m.At(1, 2) != 4 {
		t.Fatal("clone aliases original")
	}
	if c.Stride != 3 {
		t.Fatal("clone stride not tight")
	}
}

func TestCloneOfView(t *testing.T) {
	m := New[float64](4, 4)
	m.Set(2, 2, 8)
	c := m.View(2, 2, 2, 2).Clone()
	if c.At(0, 0) != 8 || c.Stride != 2 {
		t.Fatalf("bad clone of view")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromRows[float64]([][]float64{{1, 2}, {3, 4}})
	b := New[float64](2, 2)
	b.CopyFrom(a)
	if b.MaxAbsDiff(a) != 0 {
		t.Fatal("copy mismatch")
	}
}

func TestCopyFromDimMismatchPanics(t *testing.T) {
	defer expectPanic(t, "copy dims")
	New[float64](2, 2).CopyFrom(New[float64](2, 3))
}

func TestAddScaled(t *testing.T) {
	a := FromRows[float64]([][]float64{{1, 2}, {3, 4}})
	b := FromRows[float64]([][]float64{{10, 20}, {30, 40}})
	a.AddScaled(0.5, b)
	want := FromRows[float64]([][]float64{{6, 12}, {18, 24}})
	if a.MaxAbsDiff(want) != 0 {
		t.Fatalf("got %v", a)
	}
}

func TestAddScaledDimMismatchPanics(t *testing.T) {
	defer expectPanic(t, "addscaled dims")
	New[float64](2, 2).AddScaled(1, New[float64](3, 2))
}

func TestTranspose(t *testing.T) {
	m := FromRows[float64]([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 3 || tr.At(0, 1) != 4 {
		t.Fatalf("bad transpose %v", tr)
	}
}

func TestNorms(t *testing.T) {
	m := FromRows[float64]([][]float64{{3, 0}, {0, -4}})
	if m.MaxAbs() != 4 {
		t.Fatalf("maxabs %v", m.MaxAbs())
	}
	if math.Abs(m.FrobNorm()-5) > 1e-15 {
		t.Fatalf("frob %v", m.FrobNorm())
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromRows[float64]([][]float64{{1, 2}})
	b := FromRows[float64]([][]float64{{1, 2.0000001}})
	if !a.EqualApprox(b, 1e-6) || a.EqualApprox(b, 1e-9) {
		t.Fatal("tolerance behaviour wrong")
	}
	if a.EqualApprox(New[float64](2, 1), 1) {
		t.Fatal("shape mismatch should not be equal")
	}
}

func TestMulAddSmallKnown(t *testing.T) {
	a := FromRows[float64]([][]float64{{1, 2}, {3, 4}})
	b := FromRows[float64]([][]float64{{5, 6}, {7, 8}})
	c := New[float64](2, 2)
	c.Fill(1)
	MulAdd(c, a, b)
	want := FromRows[float64]([][]float64{{20, 23}, {44, 51}})
	if c.MaxAbsDiff(want) != 0 {
		t.Fatalf("got %v", c)
	}
}

func TestMulAddKahanMatchesMulAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := New[float64](7, 5), New[float64](5, 9)
	a.FillRand(rng)
	b.FillRand(rng)
	c1, c2 := New[float64](7, 9), New[float64](7, 9)
	MulAdd(c1, a, b)
	MulAddKahan(c2, a, b)
	if c1.MaxAbsDiff(c2) > 1e-12 {
		t.Fatalf("diff %g", c1.MaxAbsDiff(c2))
	}
}

func TestMulAddDimPanic(t *testing.T) {
	defer expectPanic(t, "mul dims")
	MulAdd(New[float64](2, 2), New[float64](2, 3), New[float64](2, 2))
}

// Property: (A+B)C == AC + BC under the reference multiply.
func TestMulAddLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a1, a2, b := New[float64](m, k), New[float64](m, k), New[float64](k, n)
		a1.FillRand(r)
		a2.FillRand(r)
		b.FillRand(r)
		sum := a1.Clone()
		sum.AddScaled(1, a2)
		c1 := New[float64](m, n)
		MulAdd(c1, sum, b)
		c2 := New[float64](m, n)
		MulAdd(c2, a1, b)
		MulAdd(c2, a2, b)
		return c1.MaxAbsDiff(c2) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: views tile the matrix exactly (Block covers all elements once).
func TestBlockTilingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rb, cb := 1+r.Intn(4), 1+r.Intn(4)
		br, bc := 1+r.Intn(5), 1+r.Intn(5)
		m := New[float64](rb*br, cb*bc)
		for bi := 0; bi < rb; bi++ {
			for bj := 0; bj < cb; bj++ {
				m.Block(bi, bj, rb, cb).Fill(float64(bi*cb + bj))
			}
		}
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if m.At(i, j) != float64((i/br)*cb+(j/bc)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}

// Property: nested views compose like offset addition.
func TestNestedViewCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New[float64](20, 20)
		m.FillRand(r)
		i1, j1 := r.Intn(8), r.Intn(8)
		r1, c1 := 1+r.Intn(12-max(i1, j1)), 1+r.Intn(12-max(i1, j1))
		i2, j2 := r.Intn(r1), r.Intn(c1)
		r2, c2 := 1+r.Intn(r1-i2), 1+r.Intn(c1-j2)
		direct := m.View(i1+i2, j1+j2, r2, c2)
		nested := m.View(i1, j1, r1, c1).View(i2, j2, r2, c2)
		return direct.MaxAbsDiff(nested.Clone()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New[float64](7, 11)
	m.FillRand(rng)
	if m.Transpose().Transpose().MaxAbsDiff(m) != 0 {
		t.Fatal("transpose² != identity")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestFingerprint(t *testing.T) {
	a := New[float64](3, 4)
	a.Set(1, 2, 0.5)
	b := a.Clone()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("bit-identical matrices must fingerprint equal")
	}
	// A view with a wide stride fingerprints like its tight clone: only the
	// visible elements count.
	host := New[float64](6, 6)
	host.Fill(7)
	v := host.View(1, 1, 3, 4)
	if v.Fingerprint() != v.Clone().Fingerprint() {
		t.Fatal("view and tight clone must fingerprint equal")
	}
	b.Set(0, 0, 1e-300)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("differing bits must change the fingerprint")
	}
	// ±0 differ in bits, so they must differ in fingerprint — that is the
	// point of a bit-level (not value-level) comparison.
	z := New[float64](1, 1)
	nz := New[float64](1, 1)
	nz.Set(0, 0, math.Copysign(0, -1))
	if z.Fingerprint() == nz.Fingerprint() {
		t.Fatal("+0 and -0 must fingerprint differently")
	}
}
