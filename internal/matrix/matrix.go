// Package matrix provides dense, row-major, strided float64 matrices and the
// small set of dense linear-algebra primitives the FMM stack is built on:
// views (submatrices share storage), scaled accumulation, norms, comparison
// helpers, and reference matrix products used as test oracles.
package matrix

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix view. Element (i, j) lives at
// Data[i*Stride+j]. A Mat may be a view into a larger matrix; mutating a view
// mutates the parent. The zero Mat is an empty 0×0 matrix.
type Mat struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// New allocates a zeroed r×c matrix with a tight stride.
func New(r, c int) Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %d×%d", r, c))
	}
	return Mat{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) Mat {
	r := len(rows)
	if r == 0 {
		return Mat{}
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("matrix: ragged rows")
		}
		copy(m.Data[i*m.Stride:i*m.Stride+c], row)
	}
	return m
}

// At returns element (i, j).
func (m Mat) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m Mat) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Add adds v to element (i, j).
func (m Mat) Add(i, j int, v float64) { m.Data[i*m.Stride+j] += v }

// IsEmpty reports whether the matrix has no elements.
func (m Mat) IsEmpty() bool { return m.Rows == 0 || m.Cols == 0 }

// View returns the rows×cols submatrix with top-left corner (i, j), sharing
// storage with m.
func (m Mat) View(i, j, rows, cols int) Mat {
	if i < 0 || j < 0 || rows < 0 || cols < 0 || i+rows > m.Rows || j+cols > m.Cols {
		panic(fmt.Sprintf("matrix: view [%d:%d, %d:%d] out of %d×%d", i, i+rows, j, j+cols, m.Rows, m.Cols))
	}
	if rows == 0 || cols == 0 {
		return Mat{Rows: rows, Cols: cols, Stride: m.Stride}
	}
	off := i*m.Stride + j
	return Mat{Rows: rows, Cols: cols, Stride: m.Stride, Data: m.Data[off : off+(rows-1)*m.Stride+cols]}
}

// Block partitions m into an rBlocks×cBlocks grid of equal blocks and returns
// block (bi, bj). Panics if the dimensions do not divide evenly.
func (m Mat) Block(bi, bj, rBlocks, cBlocks int) Mat {
	if m.Rows%rBlocks != 0 || m.Cols%cBlocks != 0 {
		panic(fmt.Sprintf("matrix: %d×%d not divisible into %d×%d blocks", m.Rows, m.Cols, rBlocks, cBlocks))
	}
	br, bc := m.Rows/rBlocks, m.Cols/cBlocks
	return m.View(bi*br, bj*bc, br, bc)
}

// Zero sets every element to 0.
func (m Mat) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element to v.
func (m Mat) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = v
		}
	}
}

// FillRand fills m with uniform values in [-1, 1).
func (m Mat) FillRand(rng *rand.Rand) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 2*rng.Float64() - 1
		}
	}
}

// Clone returns a freshly allocated copy of m with a tight stride.
func (m Mat) Clone() Mat {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*out.Stride:i*out.Stride+m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

// CopyFrom copies src into m. Dimensions must match.
func (m Mat) CopyFrom(src Mat) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: copy %d×%d from %d×%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Data[i*m.Stride:i*m.Stride+m.Cols], src.Data[i*src.Stride:i*src.Stride+src.Cols])
	}
}

// AddScaled accumulates m += alpha*x. Dimensions must match.
func (m Mat) AddScaled(alpha float64, x Mat) {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic(fmt.Sprintf("matrix: addscaled %d×%d += %d×%d", m.Rows, m.Cols, x.Rows, x.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		dst := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		src := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		for j := range dst {
			dst[j] += alpha * src[j]
		}
	}
}

// Scale multiplies every element by alpha.
func (m Mat) Scale(alpha float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] *= alpha
		}
	}
}

// Transpose returns a newly allocated transpose of m.
func (m Mat) Transpose() Mat {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Stride+i] = m.Data[i*m.Stride+j]
		}
	}
	return out
}

// MaxAbs returns max |m(i,j)|.
func (m Mat) MaxAbs() float64 {
	v := 0.0
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, x := range row {
			if a := math.Abs(x); a > v {
				v = a
			}
		}
	}
	return v
}

// MaxAbsDiff returns max |m(i,j) - x(i,j)|.
func (m Mat) MaxAbsDiff(x Mat) float64 {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic(fmt.Sprintf("matrix: diff %d×%d vs %d×%d", m.Rows, m.Cols, x.Rows, x.Cols))
	}
	v := 0.0
	for i := 0; i < m.Rows; i++ {
		a := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		b := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		for j := range a {
			if d := math.Abs(a[j] - b[j]); d > v {
				v = d
			}
		}
	}
	return v
}

// EqualApprox reports whether every |m-x| element is within tol.
func (m Mat) EqualApprox(x Mat, tol float64) bool {
	return m.Rows == x.Rows && m.Cols == x.Cols && m.MaxAbsDiff(x) <= tol
}

// Fingerprint returns an FNV-1a hash of the matrix's exact bit pattern
// (IEEE float64 bits, row-major). Two matrices fingerprint equal iff they
// are bit-identical — the check behind the serving layer's determinism
// contracts and the golden-pin tests.
func (m Mat) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(m.At(i, j)))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

// FrobNorm returns the Frobenius norm of m.
func (m Mat) FrobNorm() float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, x := range row {
			s += x * x
		}
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging; large matrices are summarized.
func (m Mat) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("Mat(%d×%d)", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%8.3g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// MulAdd computes c += a*b with a straightforward triple loop. It is the slow,
// obviously-correct oracle used by tests and by tiny fallback paths.
func MulAdd(c, a, b Mat) {
	checkMulDims(c, a, b)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[p*b.Stride : p*b.Stride+b.Cols]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// MulAddKahan computes c += a*b accumulating each output element with Kahan
// compensated summation. It is the high-accuracy oracle for stability
// experiments.
func MulAddKahan(c, a, b Mat) {
	checkMulDims(c, a, b)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			sum, comp := 0.0, 0.0
			for p := 0; p < a.Cols; p++ {
				y := a.At(i, p)*b.At(p, j) - comp
				t := sum + y
				comp = (t - sum) - y
				sum = t
			}
			c.Add(i, j, sum)
		}
	}
}

func checkMulDims(c, a, b Mat) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: mul dims C(%d×%d) += A(%d×%d)·B(%d×%d)",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
