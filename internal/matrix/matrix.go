// Package matrix provides dense, row-major, strided matrices generic over the
// element type (float32 or float64) and the small set of dense linear-algebra
// primitives the FMM stack is built on: views (submatrices share storage),
// scaled accumulation, norms, comparison helpers, and reference matrix
// products used as test oracles.
//
// Mat[float64] is the historical element type of the repo and its arithmetic
// is bit-identical to the pre-generic implementation (the golden-fingerprint
// tests pin this). Mat[float32] is the ML-inference precision: half the
// memory traffic per element, and the precision where fast algorithms shine
// (Benson & Ballard 2015).
package matrix

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Element is the type set of supported matrix element types.
type Element interface {
	float32 | float64
}

// Dtype names an element type at runtime — the registry and model key on it.
// The zero value is Float64, the historical default of the repo.
type Dtype uint8

// The supported element types.
const (
	Float64 Dtype = iota
	Float32
)

// String returns the Go name of the element type.
func (d Dtype) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	}
	return fmt.Sprintf("Dtype(%d)", uint8(d))
}

// Size returns the element size in bytes.
func (d Dtype) Size() int {
	if d == Float32 {
		return 4
	}
	return 8
}

// Eps returns the machine epsilon (ulp of 1.0) of the element type — the
// unit every FLOP-scaled accuracy tolerance in the repo is expressed in.
func (d Dtype) Eps() float64 {
	if d == Float32 {
		return 0x1p-23
	}
	return 0x1p-52
}

// DtypeOf returns the Dtype of a compile-time element type.
func DtypeOf[E Element]() Dtype {
	var z E
	if _, ok := any(z).(float32); ok {
		return Float32
	}
	return Float64
}

// Eps is DtypeOf[E]().Eps() — the tolerance unit for element type E.
func Eps[E Element]() float64 { return DtypeOf[E]().Eps() }

// Mat is a dense row-major matrix view over elements of type E. Element
// (i, j) lives at Data[i*Stride+j]. A Mat may be a view into a larger matrix;
// mutating a view mutates the parent. The zero Mat is an empty 0×0 matrix.
type Mat[E Element] struct {
	Rows, Cols int
	Stride     int
	Data       []E
}

// New allocates a zeroed r×c matrix with a tight stride.
func New[E Element](r, c int) Mat[E] {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %d×%d", r, c))
	}
	return Mat[E]{Rows: r, Cols: c, Stride: c, Data: make([]E, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows[E Element](rows [][]E) Mat[E] {
	r := len(rows)
	if r == 0 {
		return Mat[E]{}
	}
	c := len(rows[0])
	m := New[E](r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("matrix: ragged rows")
		}
		copy(m.Data[i*m.Stride:i*m.Stride+c], row)
	}
	return m
}

// At returns element (i, j).
func (m Mat[E]) At(i, j int) E { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m Mat[E]) Set(i, j int, v E) { m.Data[i*m.Stride+j] = v }

// Add adds v to element (i, j).
func (m Mat[E]) Add(i, j int, v E) { m.Data[i*m.Stride+j] += v }

// IsEmpty reports whether the matrix has no elements.
func (m Mat[E]) IsEmpty() bool { return m.Rows == 0 || m.Cols == 0 }

// View returns the rows×cols submatrix with top-left corner (i, j), sharing
// storage with m.
func (m Mat[E]) View(i, j, rows, cols int) Mat[E] {
	if i < 0 || j < 0 || rows < 0 || cols < 0 || i+rows > m.Rows || j+cols > m.Cols {
		panic(fmt.Sprintf("matrix: view [%d:%d, %d:%d] out of %d×%d", i, i+rows, j, j+cols, m.Rows, m.Cols))
	}
	if rows == 0 || cols == 0 {
		return Mat[E]{Rows: rows, Cols: cols, Stride: m.Stride}
	}
	off := i*m.Stride + j
	return Mat[E]{Rows: rows, Cols: cols, Stride: m.Stride, Data: m.Data[off : off+(rows-1)*m.Stride+cols]}
}

// Block partitions m into an rBlocks×cBlocks grid of equal blocks and returns
// block (bi, bj). Panics if the dimensions do not divide evenly.
func (m Mat[E]) Block(bi, bj, rBlocks, cBlocks int) Mat[E] {
	if m.Rows%rBlocks != 0 || m.Cols%cBlocks != 0 {
		panic(fmt.Sprintf("matrix: %d×%d not divisible into %d×%d blocks", m.Rows, m.Cols, rBlocks, cBlocks))
	}
	br, bc := m.Rows/rBlocks, m.Cols/cBlocks
	return m.View(bi*br, bj*bc, br, bc)
}

// Zero sets every element to 0.
func (m Mat[E]) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element to v.
func (m Mat[E]) Fill(v E) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = v
		}
	}
}

// FillRand fills m with uniform values in [-1, 1).
func (m Mat[E]) FillRand(rng *rand.Rand) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = E(2*rng.Float64() - 1)
		}
	}
}

// Clone returns a freshly allocated copy of m with a tight stride.
func (m Mat[E]) Clone() Mat[E] {
	out := New[E](m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*out.Stride:i*out.Stride+m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

// CopyFrom copies src into m. Dimensions must match.
func (m Mat[E]) CopyFrom(src Mat[E]) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: copy %d×%d from %d×%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Data[i*m.Stride:i*m.Stride+m.Cols], src.Data[i*src.Stride:i*src.Stride+src.Cols])
	}
}

// AddScaled accumulates m += alpha*x. Dimensions must match.
func (m Mat[E]) AddScaled(alpha E, x Mat[E]) {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic(fmt.Sprintf("matrix: addscaled %d×%d += %d×%d", m.Rows, m.Cols, x.Rows, x.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		dst := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		src := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		for j := range dst {
			dst[j] += alpha * src[j]
		}
	}
}

// Scale multiplies every element by alpha.
func (m Mat[E]) Scale(alpha E) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] *= alpha
		}
	}
}

// Transpose returns a newly allocated transpose of m.
func (m Mat[E]) Transpose() Mat[E] {
	out := New[E](m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Stride+i] = m.Data[i*m.Stride+j]
		}
	}
	return out
}

// MaxAbs returns max |m(i,j)|, evaluated in float64 for every element type.
func (m Mat[E]) MaxAbs() float64 {
	v := 0.0
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, x := range row {
			if a := math.Abs(float64(x)); a > v {
				v = a
			}
		}
	}
	return v
}

// MaxAbsDiff returns max |m(i,j) - x(i,j)|, evaluated in float64 so float32
// comparisons do not themselves round.
func (m Mat[E]) MaxAbsDiff(x Mat[E]) float64 {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic(fmt.Sprintf("matrix: diff %d×%d vs %d×%d", m.Rows, m.Cols, x.Rows, x.Cols))
	}
	v := 0.0
	for i := 0; i < m.Rows; i++ {
		a := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		b := x.Data[i*x.Stride : i*x.Stride+x.Cols]
		for j := range a {
			if d := math.Abs(float64(a[j]) - float64(b[j])); d > v {
				v = d
			}
		}
	}
	return v
}

// EqualApprox reports whether every |m-x| element is within tol.
func (m Mat[E]) EqualApprox(x Mat[E], tol float64) bool {
	return m.Rows == x.Rows && m.Cols == x.Cols && m.MaxAbsDiff(x) <= tol
}

// Fingerprint returns an FNV-1a hash of the matrix's exact bit pattern (IEEE
// bits of the element type, row-major). Two matrices of the same element type
// fingerprint equal iff they are bit-identical — the check behind the serving
// layer's determinism contracts and the golden-pin tests. The float64 hash is
// byte-identical to the pre-generic implementation; float32 matrices hash
// their 4-byte patterns, so the two dtypes never collide by construction.
func (m Mat[E]) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	switch data := any(m.Data).(type) {
	case []float64:
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(data[i*m.Stride+j]))
				h.Write(b[:8])
			}
		}
	case []float32:
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				binary.LittleEndian.PutUint32(b[:4], math.Float32bits(data[i*m.Stride+j]))
				h.Write(b[:4])
			}
		}
	}
	return h.Sum64()
}

// FrobNorm returns the Frobenius norm of m, accumulated in float64.
func (m Mat[E]) FrobNorm() float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, x := range row {
			s += float64(x) * float64(x)
		}
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging; large matrices are summarized.
func (m Mat[E]) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("Mat(%d×%d)", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%8.3g ", float64(m.At(i, j)))
		}
		s += "\n"
	}
	return s
}

// ToFloat64 returns a float64 copy of m — the reference precision for
// accuracy comparisons (float32→float64 conversion is exact).
func ToFloat64[E Element](m Mat[E]) Mat[float64] {
	out := New[float64](m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(i, j, float64(m.At(i, j)))
		}
	}
	return out
}

// ToFloat32 returns a float32 copy of m, rounding each element once.
func ToFloat32[E Element](m Mat[E]) Mat[float32] {
	out := New[float32](m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(i, j, float32(m.At(i, j)))
		}
	}
	return out
}

// MulAdd computes c += a*b with a straightforward triple loop. It is the slow,
// obviously-correct oracle used by tests and by tiny fallback paths.
func MulAdd[E Element](c, a, b Mat[E]) {
	checkMulDims(c, a, b)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		crow := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[p*b.Stride : p*b.Stride+b.Cols]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// MulAddKahan computes c += a*b accumulating each output element with Kahan
// compensated summation in the element type. It is the high-accuracy oracle
// for stability experiments.
func MulAddKahan[E Element](c, a, b Mat[E]) {
	checkMulDims(c, a, b)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum, comp E
			for p := 0; p < a.Cols; p++ {
				y := a.At(i, p)*b.At(p, j) - comp
				t := sum + y
				comp = (t - sum) - y
				sum = t
			}
			c.Add(i, j, sum)
		}
	}
}

func checkMulDims[E Element](c, a, b Mat[E]) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: mul dims C(%d×%d) += A(%d×%d)·B(%d×%d)",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
