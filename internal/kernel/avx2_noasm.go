//go:build !amd64 || purego

package kernel

// The avx2 backend is amd64 assembly; this build (non-amd64 GOARCH, or the
// purego tag) compiles it out. Record the reason so Config.Kernel="avx2"
// fails validation with an explanation instead of a bare "unknown backend",
// and so the availability surface (Statuses, fmmfam.KernelStatuses,
// /v1/stats) can show operators why dispatch fell back to pure Go.
func init() {
	markUnavailable(AVX2Backend,
		"requires amd64 assembly (build is non-amd64 or uses the purego tag); pure-Go backends remain available")
}
