package kernel

import (
	"runtime"
	"strings"
	"testing"

	"fmmfam/internal/matrix"
)

// TestHostCPUCoherent pins the invariants the dispatch gate relies on,
// whatever host the test runs on: AVX2 can only be reported on amd64
// assembly builds, and a pure-Go build never reports it.
func TestHostCPUCoherent(t *testing.T) {
	cpu := HostCPU()
	if cpu.Arch != runtime.GOARCH {
		t.Fatalf("HostCPU().Arch = %q, want %q", cpu.Arch, runtime.GOARCH)
	}
	if cpu.AVX2 && cpu.PureGo {
		t.Fatal("HostCPU reports AVX2 on a pure-Go build")
	}
	if cpu.AVX2 && cpu.Arch != "amd64" {
		t.Fatalf("HostCPU reports AVX2 on %s", cpu.Arch)
	}
}

// TestAVX2AlwaysKnown: on every build and host, "avx2" is either registered
// or explains its absence via Statuses — it never silently disappears into
// a bare "unknown backend".
func TestAVX2AlwaysKnown(t *testing.T) {
	var st *BackendStatus
	for _, s := range Statuses() {
		if s.Name == AVX2Backend {
			st = &s
			break
		}
	}
	if st == nil {
		t.Fatalf("Statuses() omits %q entirely: %+v", AVX2Backend, Statuses())
	}
	if st.Available {
		if len(st.Dtypes) != 2 {
			t.Fatalf("available avx2 registered for %v, want both dtypes", st.Dtypes)
		}
		if st.Reason != "" {
			t.Fatalf("available avx2 carries reason %q", st.Reason)
		}
		if !HostCPU().AVX2 {
			t.Fatal("avx2 registered but HostCPU().AVX2 is false")
		}
	} else {
		if st.Reason == "" {
			t.Fatal("unavailable avx2 carries no reason")
		}
		if UnavailableReason(AVX2Backend) != st.Reason {
			t.Fatalf("UnavailableReason %q != status reason %q",
				UnavailableReason(AVX2Backend), st.Reason)
		}
	}
}

// TestStatusesMatchRegistry: every registered backend is Available with its
// dtypes, for both element types.
func TestStatusesMatchRegistry(t *testing.T) {
	byName := make(map[string]BackendStatus)
	for _, s := range Statuses() {
		byName[s.Name] = s
	}
	for _, d := range []matrix.Dtype{matrix.Float64, matrix.Float32} {
		for _, name := range BackendsFor(d) {
			s, ok := byName[name]
			if !ok || !s.Available {
				t.Fatalf("registered backend %q (%s) missing/unavailable in Statuses: %+v", name, d, s)
			}
			found := false
			for _, dt := range s.Dtypes {
				if dt == d.String() {
					found = true
				}
			}
			if !found {
				t.Fatalf("backend %q registered for %s but Dtypes = %v", name, d, s.Dtypes)
			}
		}
	}
}

// TestResolveUnknownVsUnavailable: a truly unknown name gets the plain
// "unknown backend" error; a known-unavailable name gets the reason. Neither
// panics — selection failures must stay ordinary errors so a misdirected
// FMMFAM_KERNEL is reportable.
func TestResolveUnknownVsUnavailable(t *testing.T) {
	if _, err := Resolve[float64]("no-such-backend"); err == nil ||
		!strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown name error = %v", err)
	}
	markUnavailable("stub-unavail", "test-only reason")
	defer func() {
		unavailable.Lock()
		delete(unavailable.m, "stub-unavail")
		unavailable.Unlock()
	}()
	_, err := Resolve[float64]("stub-unavail")
	if err == nil || !strings.Contains(err.Error(), "test-only reason") {
		t.Fatalf("unavailable-name error = %v, want the recorded reason", err)
	}
}
