//go:build !amd64 || purego

package kernel

// This build carries no assembly backends: either the target GOARCH has
// none, or the purego tag compiled them out. Dispatch fails closed to the
// pure-Go backends.
const (
	hostAVX2    = false
	pureGoBuild = true
)
