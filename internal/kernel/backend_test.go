package kernel

import (
	"sort"
	"testing"

	"fmmfam/internal/matrix"
)

// stubBackend is a registrable dummy used to exercise registry rules.
type stubBackend struct {
	name   string
	mr, nr int
	align  int
}

func (s stubBackend) Name() string { return s.name }
func (s stubBackend) MR() int      { return s.mr }
func (s stubBackend) NR() int      { return s.nr }
func (s stubBackend) Align() int   { return s.align }
func (s stubBackend) PackA(dst []float64, terms []Term[float64], r0, c0, mc, kc int) int {
	return packAGeneric(s.mr, dst, terms, r0, c0, mc, kc)
}
func (s stubBackend) PackB(dst []float64, terms []Term[float64], r0, c0, kc, nc int) int {
	return packBGeneric(s.nr, dst, terms, r0, c0, kc, nc)
}
func (s stubBackend) PackBRange(dst []float64, terms []Term[float64], r0, c0, kc, nc, lo, hi int) {
	packBRangeGeneric(s.nr, dst, terms, r0, c0, kc, nc, lo, hi)
}
func (s stubBackend) Micro(kc int, ap, bp, acc []float64) {
	for i := range acc[:s.mr*s.nr] {
		acc[i] = 0
	}
	for p := 0; p < kc; p++ {
		for i := 0; i < s.mr; i++ {
			for j := 0; j < s.nr; j++ {
				acc[i*s.nr+j] += ap[p*s.mr+i] * bp[p*s.nr+j]
			}
		}
	}
}
func (s stubBackend) Scatter(m matrix.Mat[float64], r0, c0 int, coef float64, acc []float64, mr, nr int) {
	scatterGeneric(s.nr, m, r0, c0, coef, acc, mr, nr)
}
func (s stubBackend) PackABufLen(mc, kc int) int { return packABufLen(s.mr, mc, kc) }
func (s stubBackend) PackBBufLen(kc, nc int) int { return packBBufLen(s.nr, kc, nc) }

func TestRegistryBuiltins(t *testing.T) {
	names := Backends()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Backends() not sorted: %v", names)
	}
	for _, want := range []string{"go4x4", "go8x4"} {
		if _, err := Resolve[float64](want); err != nil {
			t.Fatalf("built-in backend %q missing: %v", want, err)
		}
	}
	// Empty name resolves to the default backend.
	def, err := Resolve[float64]("")
	if err != nil || def.Name() != DefaultBackend {
		t.Fatalf("Resolve[float64](\"\") = %v, %v; want %s", def, err, DefaultBackend)
	}
	if def.MR() != MR || def.NR() != NR {
		t.Fatalf("default backend tile %d×%d, want %d×%d", def.MR(), def.NR(), MR, NR)
	}
}

func TestRegisterRejectsBadBackends(t *testing.T) {
	if err := Register[float64](nil); err == nil {
		t.Fatal("nil backend accepted")
	}
	if err := Register[float64](stubBackend{name: "", mr: 4, nr: 4, align: 1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register[float64](stubBackend{name: "degenerate", mr: 0, nr: 4, align: 1}); err == nil {
		t.Fatal("MR=0 accepted")
	}
	if err := Register[float64](stubBackend{name: "go4x4", mr: 4, nr: 4, align: 1}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestResolveUnknown(t *testing.T) {
	if _, err := Resolve[float64]("no-such-backend"); err == nil {
		t.Fatal("unknown backend resolved")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustResolve must panic on unknown backend")
		}
	}()
	MustResolve[float64]("no-such-backend")
}

// TestRegisterThirdPartyBackend registers a stub 2×3 backend and checks it
// becomes resolvable and drives the generic pack/scatter helpers correctly —
// the extension path a future asm/cgo backend takes.
func TestRegisterThirdPartyBackend(t *testing.T) {
	stub := stubBackend{name: "stub2x3-test", mr: 2, nr: 3, align: 2}
	if err := Register[float64](stub); err != nil {
		t.Fatal(err)
	}
	got, err := Resolve[float64]("stub2x3-test")
	if err != nil || got.MR() != 2 || got.NR() != 3 {
		t.Fatalf("stub did not resolve correctly: %v %v", got, err)
	}
	found := false
	for _, n := range Backends() {
		if n == "stub2x3-test" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stub missing from Backends(): %v", Backends())
	}
}
