//go:build !amd64 || purego

package kernel

import (
	"strings"
	"testing"

	"fmmfam/internal/matrix"
)

// TestAVX2AbsentWithoutAsm: on a build with no amd64 assembly (foreign
// GOARCH or the purego tag), the avx2 backend must be absent from the
// registry, the registry must still work, and selecting avx2 by name must
// fail validation with a clear explanation — not a panic and not a bare
// "unknown backend".
func TestAVX2AbsentWithoutAsm(t *testing.T) {
	for _, d := range []matrix.Dtype{matrix.Float64, matrix.Float32} {
		for _, name := range BackendsFor(d) {
			if name == AVX2Backend {
				t.Fatalf("avx2 registered for %s in a no-asm build", d)
			}
		}
		if len(BackendsFor(d)) == 0 {
			t.Fatalf("no pure-Go backends registered for %s", d)
		}
	}
	if cpu := HostCPU(); cpu.AVX2 || !cpu.PureGo {
		t.Fatalf("HostCPU() = %+v in a no-asm build", cpu)
	}
	_, err := Resolve[float64](AVX2Backend)
	if err == nil {
		t.Fatal("Resolve(avx2) succeeded in a no-asm build")
	}
	if !strings.Contains(err.Error(), "unavailable on this host") ||
		!strings.Contains(err.Error(), "amd64") {
		t.Fatalf("Resolve(avx2) error lacks the recorded reason: %v", err)
	}
	// The default backend still resolves: dispatch degrades, not breaks.
	if _, err := Resolve[float64](DefaultBackend); err != nil {
		t.Fatalf("default backend unavailable in no-asm build: %v", err)
	}
}
