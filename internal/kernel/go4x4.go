package kernel

import "fmmfam/internal/matrix"

// go4x4 is the default backend: the original MR=NR=4 pure-Go kernel,
// delegating to the specialized free functions of kernel.go so its float64
// output stays bit-identical to every release since the seed (pinned by
// tests). One generic implementation serves both element types; each
// instantiation is fully specialized scalar code.
type go4x4[E matrix.Element] struct{}

func init() {
	MustRegister[float64](go4x4[float64]{})
	MustRegister[float32](go4x4[float32]{})
}

func (go4x4[E]) Name() string { return "go4x4" }
func (go4x4[E]) MR() int      { return MR }
func (go4x4[E]) NR() int      { return NR }
func (go4x4[E]) Align() int   { return 1 }

func (go4x4[E]) PackA(dst []E, terms []Term[E], r0, c0, mc, kc int) int {
	return PackA(dst, terms, r0, c0, mc, kc)
}

func (go4x4[E]) PackB(dst []E, terms []Term[E], r0, c0, kc, nc int) int {
	return PackB(dst, terms, r0, c0, kc, nc)
}

func (go4x4[E]) PackBRange(dst []E, terms []Term[E], r0, c0, kc, nc, panelLo, panelHi int) {
	PackBRange(dst, terms, r0, c0, kc, nc, panelLo, panelHi)
}

func (go4x4[E]) Micro(kc int, ap, bp, acc []E) {
	Micro(kc, ap, bp, (*[MR * NR]E)(acc))
}

func (go4x4[E]) Scatter(m matrix.Mat[E], r0, c0 int, coef E, acc []E, mr, nr int) {
	Scatter(m, r0, c0, coef, (*[MR * NR]E)(acc), mr, nr)
}

func (go4x4[E]) PackABufLen(mc, kc int) int { return PackABufLen(mc, kc) }
func (go4x4[E]) PackBBufLen(kc, nc int) int { return PackBBufLen(kc, nc) }
