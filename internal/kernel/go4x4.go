package kernel

import "fmmfam/internal/matrix"

// go4x4 is the default backend: the original MR=NR=4 pure-Go kernel,
// delegating to the specialized free functions of kernel.go so its output
// stays bit-identical to every release since the seed (pinned by tests).
type go4x4 struct{}

func init() { MustRegister(go4x4{}) }

func (go4x4) Name() string { return "go4x4" }
func (go4x4) MR() int      { return MR }
func (go4x4) NR() int      { return NR }
func (go4x4) Align() int   { return 1 }

func (go4x4) PackA(dst []float64, terms []Term, r0, c0, mc, kc int) int {
	return PackA(dst, terms, r0, c0, mc, kc)
}

func (go4x4) PackB(dst []float64, terms []Term, r0, c0, kc, nc int) int {
	return PackB(dst, terms, r0, c0, kc, nc)
}

func (go4x4) PackBRange(dst []float64, terms []Term, r0, c0, kc, nc, panelLo, panelHi int) {
	PackBRange(dst, terms, r0, c0, kc, nc, panelLo, panelHi)
}

func (go4x4) Micro(kc int, ap, bp, acc []float64) {
	Micro(kc, ap, bp, (*[MR * NR]float64)(acc))
}

func (go4x4) Scatter(m matrix.Mat, r0, c0 int, coef float64, acc []float64, mr, nr int) {
	Scatter(m, r0, c0, coef, (*[MR * NR]float64)(acc), mr, nr)
}

func (go4x4) PackABufLen(mc, kc int) int { return PackABufLen(mc, kc) }
func (go4x4) PackBBufLen(kc, nc int) int { return PackBBufLen(kc, nc) }
