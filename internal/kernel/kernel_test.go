package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fmmfam/internal/matrix"
)

func randMat(rng *rand.Rand, r, c int) matrix.Mat[float64] {
	m := matrix.New[float64](r, c)
	m.FillRand(rng)
	return m
}

// unpackA reads back the Ã layout into a dense mc×kc matrix.
func unpackA(buf []float64, mc, kc int) matrix.Mat[float64] {
	out := matrix.New[float64](mc, kc)
	for i := 0; i < mc; i++ {
		for p := 0; p < kc; p++ {
			out.Set(i, p, buf[(i/MR)*MR*kc+p*MR+i%MR])
		}
	}
	return out
}

// unpackB reads back the B̃ layout into a dense kc×nc matrix.
func unpackB(buf []float64, kc, nc int) matrix.Mat[float64] {
	out := matrix.New[float64](kc, nc)
	for p := 0; p < kc; p++ {
		for j := 0; j < nc; j++ {
			out.Set(p, j, buf[(j/NR)*kc*NR+p*NR+j%NR])
		}
	}
	return out
}

func TestPackASingleTermRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMat(rng, 10, 6)
	buf := make([]float64, PackABufLen(7, 5))
	PackA(buf, SingleTerm(m), 2, 1, 7, 5)
	got := unpackA(buf, 7, 5)
	want := m.View(2, 1, 7, 5)
	if got.MaxAbsDiff(want.Clone()) != 0 {
		t.Fatal("single-term PackA is not a relayout")
	}
}

func TestPackAZeroPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMat(rng, 5, 3)
	buf := make([]float64, PackABufLen(5, 3))
	n := PackA(buf, SingleTerm(m), 0, 0, 5, 3)
	if n != 8*3 {
		t.Fatalf("wrote %d, want 24", n)
	}
	// Rows 5..7 of the second panel must be zero lanes.
	for p := 0; p < 3; p++ {
		for lane := 1; lane < 4; lane++ {
			if buf[MR*3+p*MR+lane] != 0 {
				t.Fatal("padding not zeroed")
			}
		}
	}
}

func TestPackALinearCombination(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := randMat(rng, 8, 8), randMat(rng, 8, 8)
	terms := []Term[float64]{{Coef: 1, M: x}, {Coef: -0.5, M: y}}
	buf := make([]float64, PackABufLen(8, 8))
	PackA(buf, terms, 0, 0, 8, 8)
	want := x.Clone()
	want.AddScaled(-0.5, y)
	if unpackA(buf, 8, 8).MaxAbsDiff(want) > 1e-15 {
		t.Fatal("fused combination differs from explicit sum")
	}
}

func TestPackAZeroCoefSkipped(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := randMat(rng, 4, 4), randMat(rng, 4, 4)
	buf := make([]float64, PackABufLen(4, 4))
	PackA(buf, []Term[float64]{{Coef: 1, M: x}, {Coef: 0, M: y}}, 0, 0, 4, 4)
	if unpackA(buf, 4, 4).MaxAbsDiff(x) != 0 {
		t.Fatal("zero-coef term contaminated the pack")
	}
}

func TestPackBSingleTermRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMat(rng, 9, 11)
	buf := make([]float64, PackBBufLen(6, 7))
	PackB(buf, SingleTerm(m), 3, 4, 6, 7)
	got := unpackB(buf, 6, 7)
	if got.MaxAbsDiff(m.View(3, 4, 6, 7).Clone()) != 0 {
		t.Fatal("single-term PackB is not a relayout")
	}
}

func TestPackBLinearCombinationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kc, nc := 1+rng.Intn(9), 1+rng.Intn(9)
		nTerms := 1 + rng.Intn(3)
		terms := make([]Term[float64], nTerms)
		want := matrix.New[float64](kc, nc)
		for i := range terms {
			m := randMat(rng, kc+2, nc+3)
			coef := float64(rng.Intn(5)-2) / 2
			terms[i] = Term[float64]{Coef: coef, M: m}
			want.AddScaled(coef, m.View(1, 2, kc, nc))
		}
		buf := make([]float64, PackBBufLen(kc, nc))
		PackB(buf, terms, 1, 2, kc, nc)
		return unpackB(buf, kc, nc).MaxAbsDiff(want) < 1e-14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMicroMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, kc := range []int{1, 2, 7, 64} {
		a := randMat(rng, MR, kc)
		b := randMat(rng, kc, NR)
		abuf := make([]float64, PackABufLen(MR, kc))
		bbuf := make([]float64, PackBBufLen(kc, NR))
		PackA(abuf, SingleTerm(a), 0, 0, MR, kc)
		PackB(bbuf, SingleTerm(b), 0, 0, kc, NR)
		var acc [MR * NR]float64
		Micro(kc, abuf, bbuf, &acc)
		want := matrix.New[float64](MR, NR)
		matrix.MulAdd(want, a, b)
		for i := 0; i < MR; i++ {
			for j := 0; j < NR; j++ {
				if d := acc[i*NR+j] - want.At(i, j); d > 1e-12 || d < -1e-12 {
					t.Fatalf("kc=%d mismatch at (%d,%d): %g", kc, i, j, d)
				}
			}
		}
	}
}

func TestMicroZeroK(t *testing.T) {
	var acc [MR * NR]float64
	acc[3] = 99
	Micro(0, nil, nil, &acc)
	if acc[3] != 0 {
		t.Fatal("kc=0 must produce a zero tile")
	}
}

func TestScatterFullTile(t *testing.T) {
	var acc [MR * NR]float64
	for i := range acc {
		acc[i] = float64(i)
	}
	m := matrix.New[float64](6, 6)
	Scatter(m, 1, 2, 2, &acc, MR, NR)
	if m.At(1, 2) != 0 || m.At(2, 3) != 2*acc[1*NR+1] || m.At(4, 5) != 2*acc[3*NR+3] {
		t.Fatalf("scatter wrong:\n%v", m)
	}
}

func TestScatterPartialTileStaysInBounds(t *testing.T) {
	var acc [MR * NR]float64
	for i := range acc {
		acc[i] = 1
	}
	m := matrix.New[float64](4, 4)
	m.Fill(5)
	Scatter(m.View(0, 0, 2, 3), 0, 0, 1, &acc, 2, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 5.0
			if i < 2 && j < 3 {
				want = 6
			}
			if m.At(i, j) != want {
				t.Fatalf("(%d,%d)=%v", i, j, m.At(i, j))
			}
		}
	}
}

func TestScatterAccumulates(t *testing.T) {
	var acc [MR * NR]float64
	acc[0] = 3
	m := matrix.New[float64](MR, NR)
	Scatter(m, 0, 0, 1, &acc, MR, NR)
	Scatter(m, 0, 0, -1, &acc, MR, NR)
	if m.At(0, 0) != 0 {
		t.Fatal("scatter must accumulate")
	}
}

func TestBufLens(t *testing.T) {
	if PackABufLen(5, 3) != 24 || PackABufLen(4, 3) != 12 {
		t.Fatal("PackABufLen")
	}
	if PackBBufLen(3, 5) != 24 || PackBBufLen(3, 4) != 12 {
		t.Fatal("PackBBufLen")
	}
}

func TestPackBRangeEqualsWholePack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := randMat(rng, 12, 23), randMat(rng, 12, 23)
	terms := []Term[float64]{{Coef: 1, M: x}, {Coef: 0.5, M: y}}
	kc, nc := 9, 19
	whole := make([]float64, PackBBufLen(kc, nc))
	PackB(whole, terms, 1, 2, kc, nc)
	parts := make([]float64, PackBBufLen(kc, nc))
	panels := (nc + NR - 1) / NR
	// Pack in three uneven chunks.
	PackBRange(parts, terms, 1, 2, kc, nc, 0, 2)
	PackBRange(parts, terms, 1, 2, kc, nc, 2, 3)
	PackBRange(parts, terms, 1, 2, kc, nc, 3, panels)
	for i := range whole {
		if whole[i] != parts[i] {
			t.Fatalf("chunked packing differs at %d", i)
		}
	}
}
