//go:build amd64 && !purego

package kernel

// cpuid executes the CPUID instruction for (leaf, sub); implemented in
// cpufeat_amd64.s. No external dependency: the probe is ~10 instructions and
// runs once at init.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0 (requires OSXSAVE, checked by
// the caller); implemented in cpufeat_amd64.s.
func xgetbv0() (eax, edx uint32)

// pureGoBuild: this build includes the amd64 assembly backends.
const pureGoBuild = false

// hostAVX2 is the boot-time result of the AVX2+FMA probe.
var hostAVX2 = detectAVX2FMA()

// detectAVX2FMA reports whether this CPU can run the avx2 backend: AVX2 and
// FMA instruction support plus OS-managed XMM/YMM register state (OSXSAVE +
// XCR0 bits 1 and 2 — without it the kernel would fault or corrupt ymm state
// on context switch). The same three-step probe every runtime dispatcher
// performs; misdetection fails closed to the pure-Go backends.
func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		cpuidFMA     = 1 << 12 // leaf 1 ECX: fused multiply-add
		cpuidOSXSAVE = 1 << 27 // leaf 1 ECX: XGETBV available, OS uses XSAVE
		cpuidAVX     = 1 << 28 // leaf 1 ECX: AVX
		cpuidAVX2    = 1 << 5  // leaf 7 EBX: AVX2
		xcr0SSE      = 1 << 1  // XCR0: XMM state saved on context switch
		xcr0AVX      = 1 << 2  // XCR0: YMM state saved on context switch
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&(cpuidFMA|cpuidOSXSAVE|cpuidAVX) != cpuidFMA|cpuidOSXSAVE|cpuidAVX {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&(xcr0SSE|xcr0AVX) != xcr0SSE|xcr0AVX {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&cpuidAVX2 != 0
}
