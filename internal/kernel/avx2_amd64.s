//go:build amd64 && !purego

#include "textflag.h"

// AVX2/FMA micro-kernels with the paper's Haswell register blocking: the
// rank-kc update C[MR×NR] = Ã-panel · B̃-panel with MR×NR = 8×6 (float64)
// and 16×6 (float32). Per k-step the kernel loads one A micro-column as two
// ymm vectors and broadcasts the six B values, retiring 12 FMA instructions
// — 48 (f64) / 96 (f32) flops — against 8 loads' worth of memory traffic.
//
// Register plan (both dtypes): Y0–Y11 hold the 2×6 accumulator grid
// (column j, half h in Y(2j+h)), Y12/Y13 the two A vector halves, Y14 the
// current B broadcast. Y15/X15 is never touched: under the Go internal ABI
// X15 is the fixed zero register, and NOSPLIT leaves must keep it zero.
//
// Accumulators are column-major in registers (lane l of Y(2j+h) is row
// lanes·h+l of column j), while the Backend contract fixes acc as row-major
// MR×NR — the epilogue transposes with per-lane stores. The transpose is
// O(MR·NR) against the loop's O(MR·NR·kc) FMAs, so it amortizes away at the
// driver's kc (64–512).
//
// Packed panels come from alignedBuf with Align()=32 bytes, and the A-panel
// stride (MR elements) keeps every A load 32-byte aligned; loads still use
// unaligned forms (VMOVUPD/VMOVUPS) so the kernels stay correct for any
// caller-provided buffer (the ablation benchmark packs into plain slices) —
// on AVX2 hardware an unaligned load instruction on aligned data costs the
// same as the aligned form.

// func microF64AVX2(kc int, ap, bp, acc *float64)
// acc[i*6+j] = Σ_p ap[p*8+i] · bp[p*6+j]; overwrites acc (kc==0 handled by
// the Go wrapper).
TEXT ·microF64AVX2(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ acc+24(FP), DI

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

f64loop:
	VMOVUPD (SI), Y12   // A rows 0–3
	VMOVUPD 32(SI), Y13 // A rows 4–7

	VBROADCASTSD (BX), Y14
	VFMADD231PD Y12, Y14, Y0
	VFMADD231PD Y13, Y14, Y1
	VBROADCASTSD 8(BX), Y14
	VFMADD231PD Y12, Y14, Y2
	VFMADD231PD Y13, Y14, Y3
	VBROADCASTSD 16(BX), Y14
	VFMADD231PD Y12, Y14, Y4
	VFMADD231PD Y13, Y14, Y5
	VBROADCASTSD 24(BX), Y14
	VFMADD231PD Y12, Y14, Y6
	VFMADD231PD Y13, Y14, Y7
	VBROADCASTSD 32(BX), Y14
	VFMADD231PD Y12, Y14, Y8
	VFMADD231PD Y13, Y14, Y9
	VBROADCASTSD 40(BX), Y14
	VFMADD231PD Y12, Y14, Y10
	VFMADD231PD Y13, Y14, Y11

	ADDQ $64, SI
	ADDQ $48, BX
	DECQ CX
	JNZ  f64loop

	// Epilogue: lane l of Y(2j+h) is acc row 4h+l, column j — store each
	// lane to acc[(4h+l)*6+j]*8 bytes. VMOVSD/VMOVHPD cover lanes 0–1; an
	// VEXTRACTF128 into X12 exposes lanes 2–3.

	// column 0: rows 0–3 (Y0), rows 4–7 (Y1)
	VMOVSD       X0, 0(DI)
	VMOVHPD      X0, 48(DI)
	VEXTRACTF128 $1, Y0, X12
	VMOVSD       X12, 96(DI)
	VMOVHPD      X12, 144(DI)
	VMOVSD       X1, 192(DI)
	VMOVHPD      X1, 240(DI)
	VEXTRACTF128 $1, Y1, X12
	VMOVSD       X12, 288(DI)
	VMOVHPD      X12, 336(DI)

	// column 1
	VMOVSD       X2, 8(DI)
	VMOVHPD      X2, 56(DI)
	VEXTRACTF128 $1, Y2, X12
	VMOVSD       X12, 104(DI)
	VMOVHPD      X12, 152(DI)
	VMOVSD       X3, 200(DI)
	VMOVHPD      X3, 248(DI)
	VEXTRACTF128 $1, Y3, X12
	VMOVSD       X12, 296(DI)
	VMOVHPD      X12, 344(DI)

	// column 2
	VMOVSD       X4, 16(DI)
	VMOVHPD      X4, 64(DI)
	VEXTRACTF128 $1, Y4, X12
	VMOVSD       X12, 112(DI)
	VMOVHPD      X12, 160(DI)
	VMOVSD       X5, 208(DI)
	VMOVHPD      X5, 256(DI)
	VEXTRACTF128 $1, Y5, X12
	VMOVSD       X12, 304(DI)
	VMOVHPD      X12, 352(DI)

	// column 3
	VMOVSD       X6, 24(DI)
	VMOVHPD      X6, 72(DI)
	VEXTRACTF128 $1, Y6, X12
	VMOVSD       X12, 120(DI)
	VMOVHPD      X12, 168(DI)
	VMOVSD       X7, 216(DI)
	VMOVHPD      X7, 264(DI)
	VEXTRACTF128 $1, Y7, X12
	VMOVSD       X12, 312(DI)
	VMOVHPD      X12, 360(DI)

	// column 4
	VMOVSD       X8, 32(DI)
	VMOVHPD      X8, 80(DI)
	VEXTRACTF128 $1, Y8, X12
	VMOVSD       X12, 128(DI)
	VMOVHPD      X12, 176(DI)
	VMOVSD       X9, 224(DI)
	VMOVHPD      X9, 272(DI)
	VEXTRACTF128 $1, Y9, X12
	VMOVSD       X12, 320(DI)
	VMOVHPD      X12, 368(DI)

	// column 5
	VMOVSD       X10, 40(DI)
	VMOVHPD      X10, 88(DI)
	VEXTRACTF128 $1, Y10, X12
	VMOVSD       X12, 136(DI)
	VMOVHPD      X12, 184(DI)
	VMOVSD       X11, 232(DI)
	VMOVHPD      X11, 280(DI)
	VEXTRACTF128 $1, Y11, X12
	VMOVSD       X12, 328(DI)
	VMOVHPD      X12, 376(DI)

	VZEROUPPER
	RET

// func microF32AVX2(kc int, ap, bp, acc *float32)
// acc[i*6+j] = Σ_p ap[p*16+i] · bp[p*6+j]; overwrites acc.
TEXT ·microF32AVX2(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ acc+24(FP), DI

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

f32loop:
	VMOVUPS (SI), Y12   // A rows 0–7
	VMOVUPS 32(SI), Y13 // A rows 8–15

	VBROADCASTSS (BX), Y14
	VFMADD231PS Y12, Y14, Y0
	VFMADD231PS Y13, Y14, Y1
	VBROADCASTSS 4(BX), Y14
	VFMADD231PS Y12, Y14, Y2
	VFMADD231PS Y13, Y14, Y3
	VBROADCASTSS 8(BX), Y14
	VFMADD231PS Y12, Y14, Y4
	VFMADD231PS Y13, Y14, Y5
	VBROADCASTSS 12(BX), Y14
	VFMADD231PS Y12, Y14, Y6
	VFMADD231PS Y13, Y14, Y7
	VBROADCASTSS 16(BX), Y14
	VFMADD231PS Y12, Y14, Y8
	VFMADD231PS Y13, Y14, Y9
	VBROADCASTSS 20(BX), Y14
	VFMADD231PS Y12, Y14, Y10
	VFMADD231PS Y13, Y14, Y11

	ADDQ $64, SI
	ADDQ $24, BX
	DECQ CX
	JNZ  f32loop

	// Epilogue: lane l of Y(2j+h) is acc row 8h+l, column j — store lane l
	// to acc[(8h+l)*6+j]*4 bytes. VEXTRACTPS addresses the four lanes of an
	// xmm directly to memory; VEXTRACTF128 exposes lanes 4–7.

	// column 0: rows 0–7 (Y0), rows 8–15 (Y1)
	VEXTRACTPS   $0, X0, 0(DI)
	VEXTRACTPS   $1, X0, 24(DI)
	VEXTRACTPS   $2, X0, 48(DI)
	VEXTRACTPS   $3, X0, 72(DI)
	VEXTRACTF128 $1, Y0, X12
	VEXTRACTPS   $0, X12, 96(DI)
	VEXTRACTPS   $1, X12, 120(DI)
	VEXTRACTPS   $2, X12, 144(DI)
	VEXTRACTPS   $3, X12, 168(DI)
	VEXTRACTPS   $0, X1, 192(DI)
	VEXTRACTPS   $1, X1, 216(DI)
	VEXTRACTPS   $2, X1, 240(DI)
	VEXTRACTPS   $3, X1, 264(DI)
	VEXTRACTF128 $1, Y1, X12
	VEXTRACTPS   $0, X12, 288(DI)
	VEXTRACTPS   $1, X12, 312(DI)
	VEXTRACTPS   $2, X12, 336(DI)
	VEXTRACTPS   $3, X12, 360(DI)

	// column 1
	VEXTRACTPS   $0, X2, 4(DI)
	VEXTRACTPS   $1, X2, 28(DI)
	VEXTRACTPS   $2, X2, 52(DI)
	VEXTRACTPS   $3, X2, 76(DI)
	VEXTRACTF128 $1, Y2, X12
	VEXTRACTPS   $0, X12, 100(DI)
	VEXTRACTPS   $1, X12, 124(DI)
	VEXTRACTPS   $2, X12, 148(DI)
	VEXTRACTPS   $3, X12, 172(DI)
	VEXTRACTPS   $0, X3, 196(DI)
	VEXTRACTPS   $1, X3, 220(DI)
	VEXTRACTPS   $2, X3, 244(DI)
	VEXTRACTPS   $3, X3, 268(DI)
	VEXTRACTF128 $1, Y3, X12
	VEXTRACTPS   $0, X12, 292(DI)
	VEXTRACTPS   $1, X12, 316(DI)
	VEXTRACTPS   $2, X12, 340(DI)
	VEXTRACTPS   $3, X12, 364(DI)

	// column 2
	VEXTRACTPS   $0, X4, 8(DI)
	VEXTRACTPS   $1, X4, 32(DI)
	VEXTRACTPS   $2, X4, 56(DI)
	VEXTRACTPS   $3, X4, 80(DI)
	VEXTRACTF128 $1, Y4, X12
	VEXTRACTPS   $0, X12, 104(DI)
	VEXTRACTPS   $1, X12, 128(DI)
	VEXTRACTPS   $2, X12, 152(DI)
	VEXTRACTPS   $3, X12, 176(DI)
	VEXTRACTPS   $0, X5, 200(DI)
	VEXTRACTPS   $1, X5, 224(DI)
	VEXTRACTPS   $2, X5, 248(DI)
	VEXTRACTPS   $3, X5, 272(DI)
	VEXTRACTF128 $1, Y5, X12
	VEXTRACTPS   $0, X12, 296(DI)
	VEXTRACTPS   $1, X12, 320(DI)
	VEXTRACTPS   $2, X12, 344(DI)
	VEXTRACTPS   $3, X12, 368(DI)

	// column 3
	VEXTRACTPS   $0, X6, 12(DI)
	VEXTRACTPS   $1, X6, 36(DI)
	VEXTRACTPS   $2, X6, 60(DI)
	VEXTRACTPS   $3, X6, 84(DI)
	VEXTRACTF128 $1, Y6, X12
	VEXTRACTPS   $0, X12, 108(DI)
	VEXTRACTPS   $1, X12, 132(DI)
	VEXTRACTPS   $2, X12, 156(DI)
	VEXTRACTPS   $3, X12, 180(DI)
	VEXTRACTPS   $0, X7, 204(DI)
	VEXTRACTPS   $1, X7, 228(DI)
	VEXTRACTPS   $2, X7, 252(DI)
	VEXTRACTPS   $3, X7, 276(DI)
	VEXTRACTF128 $1, Y7, X12
	VEXTRACTPS   $0, X12, 300(DI)
	VEXTRACTPS   $1, X12, 324(DI)
	VEXTRACTPS   $2, X12, 348(DI)
	VEXTRACTPS   $3, X12, 372(DI)

	// column 4
	VEXTRACTPS   $0, X8, 16(DI)
	VEXTRACTPS   $1, X8, 40(DI)
	VEXTRACTPS   $2, X8, 64(DI)
	VEXTRACTPS   $3, X8, 88(DI)
	VEXTRACTF128 $1, Y8, X12
	VEXTRACTPS   $0, X12, 112(DI)
	VEXTRACTPS   $1, X12, 136(DI)
	VEXTRACTPS   $2, X12, 160(DI)
	VEXTRACTPS   $3, X12, 184(DI)
	VEXTRACTPS   $0, X9, 208(DI)
	VEXTRACTPS   $1, X9, 232(DI)
	VEXTRACTPS   $2, X9, 256(DI)
	VEXTRACTPS   $3, X9, 280(DI)
	VEXTRACTF128 $1, Y9, X12
	VEXTRACTPS   $0, X12, 304(DI)
	VEXTRACTPS   $1, X12, 328(DI)
	VEXTRACTPS   $2, X12, 352(DI)
	VEXTRACTPS   $3, X12, 376(DI)

	// column 5
	VEXTRACTPS   $0, X10, 20(DI)
	VEXTRACTPS   $1, X10, 44(DI)
	VEXTRACTPS   $2, X10, 68(DI)
	VEXTRACTPS   $3, X10, 92(DI)
	VEXTRACTF128 $1, Y10, X12
	VEXTRACTPS   $0, X12, 116(DI)
	VEXTRACTPS   $1, X12, 140(DI)
	VEXTRACTPS   $2, X12, 164(DI)
	VEXTRACTPS   $3, X12, 188(DI)
	VEXTRACTPS   $0, X11, 212(DI)
	VEXTRACTPS   $1, X11, 236(DI)
	VEXTRACTPS   $2, X11, 260(DI)
	VEXTRACTPS   $3, X11, 284(DI)
	VEXTRACTF128 $1, Y11, X12
	VEXTRACTPS   $0, X12, 308(DI)
	VEXTRACTPS   $1, X12, 332(DI)
	VEXTRACTPS   $2, X12, 356(DI)
	VEXTRACTPS   $3, X12, 380(DI)

	VZEROUPPER
	RET

// func scatterF64AVX2(dst *float64, stride int, coef float64, acc *float64)
// Full-tile scatter: dst points at C[r0][c0]; adds coef·acc[i*6+j] to the
// 8×6 region row by row (4+2 lanes per row). Fringe tiles take the generic
// Go path (see the wrapper).
TEXT ·scatterF64AVX2(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         stride+8(FP), DX
	VBROADCASTSD coef+16(FP), Y0
	MOVQ         acc+24(FP), SI
	MOVQ         $8, CX
	SHLQ         $3, DX // stride in bytes

f64scatter:
	VMOVUPD     (SI), Y1   // acc row, cols 0–3
	VMOVUPD     32(SI), X2 // acc row, cols 4–5
	VMOVUPD     (DI), Y3
	VMOVUPD     32(DI), X4
	VFMADD231PD Y1, Y0, Y3
	VFMADD231PD X2, X0, X4
	VMOVUPD     Y3, (DI)
	VMOVUPD     X4, 32(DI)
	ADDQ        $48, SI
	ADDQ        DX, DI
	DECQ        CX
	JNZ         f64scatter

	VZEROUPPER
	RET

// func scatterF32AVX2(dst *float32, stride int, coef float32, acc *float32)
// Full-tile 16×6 scatter; rows move as 4+2 lanes (16-byte vector + 8-byte
// pair).
TEXT ·scatterF32AVX2(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         stride+8(FP), DX
	VBROADCASTSS coef+16(FP), X0
	MOVQ         acc+24(FP), SI
	MOVQ         $16, CX
	SHLQ         $2, DX // stride in bytes

f32scatter:
	VMOVUPS     (SI), X1   // acc row, cols 0–3
	VMOVSD      16(SI), X2 // acc row, cols 4–5 (8 bytes)
	VMOVUPS     (DI), X3
	VMOVSD      16(DI), X4
	VFMADD231PS X1, X0, X3
	VFMADD231PS X2, X0, X4
	VMOVUPS     X3, (DI)
	VMOVSD      X4, 16(DI)
	ADDQ        $24, SI
	ADDQ        DX, DI
	DECQ        CX
	JNZ         f32scatter

	RET
