package kernel

import (
	"fmt"
	"sort"
	"sync"

	"fmmfam/internal/matrix"
)

// Backend is a pluggable micro-kernel implementation for one element type:
// the register-blocked rank-kC update of Figure 1 together with the packing
// routines that lay operands out in the micro-panel formats the kernel
// consumes. The GEMM driver (internal/gemm) is written against this
// interface only — swapping the backend swaps the innermost loops while the
// five-loop structure, workspace pooling, and FMM fusion stay fixed, which
// is exactly how the paper ports across architectures. A backend is
// registered under its (Name, dtype) pair; the two built-in pure-Go backends
// register for both float64 and float32, while a SIMD backend may support
// only the dtype its instruction mix targets.
//
// Contract (enforced by internal/kernel/conformance — every backend
// registered with Register must pass that suite for its dtype):
//
//   - PackA writes the mc×kc linear combination of the A-side terms in Ã
//     layout: ⌈mc/MR⌉ consecutive row-panels, panel rows stored column-major
//     (dst[panel*MR*kc + p*MR + lane]), rows beyond mc zero-padded.
//   - PackB writes the kc×nc combination of the B-side terms in B̃ layout:
//     ⌈nc/NR⌉ consecutive column-panels, panel columns stored row-major
//     (dst[panel*kc*NR + p*NR + lane]), columns beyond nc zero-padded.
//     PackBRange packs only panels [panelLo, panelHi); distinct ranges write
//     disjoint dst regions so ranges may be packed concurrently.
//   - Micro computes the MR×NR rank-kc product of one Ã row-panel and one B̃
//     column-panel into acc (row-major MR×NR, len ≥ MR·NR), overwriting acc.
//   - Scatter adds coef·acc[0:mr, 0:nr] into the mr×nr region of m at
//     (r0, c0); mr ≤ MR and nr ≤ NR handle fringe tiles.
//   - PackABufLen/PackBBufLen size packing buffers, including zero padding,
//     in elements.
//   - Align is the required alignment of packed-buffer starts, in elements
//     (1 = any; an AVX2 float32 backend would return 8 for 32-byte loads).
//     Workspace allocation (internal/gemm) honors it.
type Backend[E matrix.Element] interface {
	// Name is the registry key, e.g. "go4x4". Stable across releases: users
	// select backends by name via Config.Kernel / FMMFAM_KERNEL.
	Name() string
	MR() int
	NR() int
	Align() int

	PackA(dst []E, terms []Term[E], r0, c0, mc, kc int) int
	PackB(dst []E, terms []Term[E], r0, c0, kc, nc int) int
	PackBRange(dst []E, terms []Term[E], r0, c0, kc, nc, panelLo, panelHi int)
	Micro(kc int, ap, bp, acc []E)
	Scatter(m matrix.Mat[E], r0, c0 int, coef E, acc []E, mr, nr int)
	PackABufLen(mc, kc int) int
	PackBBufLen(kc, nc int) int
}

// DefaultBackend is the registry name an empty kernel selection resolves to:
// the original MR=NR=4 pure-Go kernel, kept bit-identical across releases
// for float64.
const DefaultBackend = "go4x4"

// regKey identifies one registered backend: its registry name and the
// element type it implements.
type regKey struct {
	name  string
	dtype matrix.Dtype
}

// registry maps (name, dtype) → Backend[E] (stored as any; Resolve[E]
// recovers the typed interface — the dtype key guarantees the assertion
// succeeds).
var registry = struct {
	sync.RWMutex
	m map[regKey]any
}{m: make(map[regKey]any)}

// Register adds a backend under its (Name, dtype) pair. It rejects empty or
// duplicate names and degenerate tile shapes. Backends are expected to pass
// the conformance suite (internal/kernel/conformance) for every dtype they
// register; register new backends from an init function so Config.Kernel can
// select them by name.
func Register[E matrix.Element](b Backend[E]) error {
	if b == nil {
		return fmt.Errorf("kernel: nil backend")
	}
	name := b.Name()
	if name == "" {
		return fmt.Errorf("kernel: backend with empty name")
	}
	if b.MR() < 1 || b.NR() < 1 || b.Align() < 1 {
		return fmt.Errorf("kernel: backend %q has degenerate MR=%d NR=%d Align=%d",
			name, b.MR(), b.NR(), b.Align())
	}
	key := regKey{name: name, dtype: matrix.DtypeOf[E]()}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[key]; dup {
		return fmt.Errorf("kernel: backend %q already registered for %s", name, key.dtype)
	}
	registry.m[key] = b
	return nil
}

// MustRegister is Register for init-time registration of known-good backends.
func MustRegister[E matrix.Element](b Backend[E]) {
	if err := Register[E](b); err != nil {
		panic(err)
	}
}

// Resolve returns the backend registered under name for element type E; the
// empty name selects DefaultBackend. Unknown (name, dtype) pairs error with
// the list of backends registered for that dtype; names that are known but
// could not register on this host or build (e.g. "avx2" without AVX2+FMA
// hardware, or under the purego tag) error with the recorded reason, so a
// misdirected FMMFAM_KERNEL fails validation with an explanation instead of
// a bare lookup failure.
func Resolve[E matrix.Element](name string) (Backend[E], error) {
	if name == "" {
		name = DefaultBackend
	}
	d := matrix.DtypeOf[E]()
	registry.RLock()
	b, ok := registry.m[regKey{name: name, dtype: d}]
	registry.RUnlock()
	if !ok {
		if reason := UnavailableReason(name); reason != "" {
			return nil, fmt.Errorf("kernel: backend %q is unavailable on this host: %s (registered for %s: %v)",
				name, reason, d, BackendsFor(d))
		}
		return nil, fmt.Errorf("kernel: unknown backend %q for %s (registered: %v)", name, d, BackendsFor(d))
	}
	return b.(Backend[E]), nil
}

// ResolveNameFor is the runtime-dtype form of Resolve for callers that hold
// a matrix.Dtype value instead of a compile-time element type (the
// performance model's Arch pricing): it canonicalizes name (empty selects
// DefaultBackend) and reports whether that backend is registered for d.
func ResolveNameFor(name string, d matrix.Dtype) (string, bool) {
	if name == "" {
		name = DefaultBackend
	}
	registry.RLock()
	_, ok := registry.m[regKey{name: name, dtype: d}]
	registry.RUnlock()
	return name, ok
}

// MustResolve is Resolve for names already validated (e.g. by a Config check).
func MustResolve[E matrix.Element](name string) Backend[E] {
	b, err := Resolve[E](name)
	if err != nil {
		panic(err)
	}
	return b
}

// Backends lists the registered backend names, sorted and deduplicated
// across dtypes — the valid Config.Kernel values. Use BackendsFor to ask
// which names support one specific element type.
func Backends() []string {
	registry.RLock()
	seen := make(map[string]bool, len(registry.m))
	names := make([]string, 0, len(registry.m))
	for key := range registry.m {
		if !seen[key.name] {
			seen[key.name] = true
			names = append(names, key.name)
		}
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// BackendsFor lists the backend names registered for one element type,
// sorted.
func BackendsFor(d matrix.Dtype) []string {
	registry.RLock()
	names := make([]string, 0, len(registry.m))
	for key := range registry.m {
		if key.dtype == d {
			names = append(names, key.name)
		}
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// packABufLen / packBBufLen are the layout-implied buffer sizes shared by all
// backends that use the canonical panel layouts.
func packABufLen(mr, mc, kc int) int { return ((mc + mr - 1) / mr) * mr * kc }
func packBBufLen(nr, kc, nc int) int { return ((nc + nr - 1) / nr) * nr * kc }

// packAGeneric writes the mc×kc linear combination of the A-side terms into
// dst in Ã layout for an arbitrary row-panel height mr. It performs the same
// element-order arithmetic as the specialized packers, so for a given mr the
// two are bit-identical.
//
//fmm:hotpath
func packAGeneric[E matrix.Element](mr int, dst []E, terms []Term[E], r0, c0, mc, kc int) int {
	n := packABufLen(mr, mc, kc)
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	for t, term := range terms {
		m := term.M
		coef := term.Coef
		if coef == 0 {
			continue
		}
		for i := 0; i < mc; i++ {
			panel := i / mr
			lane := i % mr
			src := m.Data[(r0+i)*m.Stride+c0 : (r0+i)*m.Stride+c0+kc]
			d := dst[panel*mr*kc+lane:]
			if t == 0 && coef == 1 {
				for p, v := range src {
					d[p*mr] = v
				}
			} else {
				for p, v := range src {
					d[p*mr] += coef * v
				}
			}
		}
	}
	return n
}

// packBGeneric writes the whole kc×nc combination in B̃ layout for an
// arbitrary column-panel width nr and returns the number of elements
// written; see packAGeneric.
//
//fmm:hotpath
func packBGeneric[E matrix.Element](nr int, dst []E, terms []Term[E], r0, c0, kc, nc int) int {
	panels := (nc + nr - 1) / nr
	packBRangeGeneric(nr, dst, terms, r0, c0, kc, nc, 0, panels)
	return panels * kc * nr
}

// packBRangeGeneric packs column-panels [panelLo, panelHi) of the B̃ layout
// for an arbitrary column-panel width nr; see packAGeneric.
//
//fmm:hotpath
func packBRangeGeneric[E matrix.Element](nr int, dst []E, terms []Term[E], r0, c0, kc, nc, panelLo, panelHi int) {
	for panel := panelLo; panel < panelHi; panel++ {
		j0 := panel * nr
		w := nr
		if j0+w > nc {
			w = nc - j0
		}
		out := dst[panel*kc*nr : (panel+1)*kc*nr]
		for i := range out {
			out[i] = 0
		}
		for t, term := range terms {
			m := term.M
			coef := term.Coef
			if coef == 0 {
				continue
			}
			for p := 0; p < kc; p++ {
				src := m.Data[(r0+p)*m.Stride+c0+j0 : (r0+p)*m.Stride+c0+j0+w]
				d := out[p*nr : p*nr+w]
				if t == 0 && coef == 1 {
					copy(d, src)
				} else {
					for j, v := range src {
						d[j] += coef * v
					}
				}
			}
		}
	}
}

// scatterGeneric adds coef·acc[0:mr, 0:nr] (acc row-major with row stride
// nrFull) into the mr×nr region of m at (r0, c0).
//
//fmm:hotpath
func scatterGeneric[E matrix.Element](nrFull int, m matrix.Mat[E], r0, c0 int, coef E, acc []E, mr, nr int) {
	for i := 0; i < mr; i++ {
		row := m.Data[(r0+i)*m.Stride+c0 : (r0+i)*m.Stride+c0+nr]
		a := acc[i*nrFull : i*nrFull+nr]
		if coef == 1 {
			for j, v := range a {
				row[j] += v
			}
		} else {
			for j, v := range a {
				row[j] += coef * v
			}
		}
	}
}
