package kernel

import (
	"runtime"
	"sort"
	"sync"
)

// AVX2Backend is the registry name of the amd64 assembly backend
// (avx2_amd64.s): 256-bit FMA micro-kernels with the paper's Haswell
// blocking — 8×6 for float64, 16×6 for float32 — registered only when the
// host CPU supports AVX2+FMA and the build includes amd64 assembly.
const AVX2Backend = "avx2"

// CPUFeatures describes the host properties backend dispatch consults. It is
// a build- and boot-time constant: detection runs once at init.
type CPUFeatures struct {
	// Arch is runtime.GOARCH.
	Arch string
	// AVX2 reports AVX2 + FMA support with OS-enabled YMM state (the CPUID +
	// XGETBV probe the avx2 backend's registration is gated on). Always false
	// on non-amd64 architectures and in purego builds.
	AVX2 bool
	// PureGo reports a build without assembly backends — the purego build
	// tag, or a GOARCH with no assembly kernels.
	PureGo bool
}

// HostCPU reports the dispatch-relevant features of this host and build.
func HostCPU() CPUFeatures {
	return CPUFeatures{Arch: runtime.GOARCH, AVX2: hostAVX2, PureGo: pureGoBuild}
}

// unavailable records backend names that are known to this build but could
// not register — and why — so selection errors and the observability surface
// can explain the absence instead of reporting a bare "unknown backend".
var unavailable = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string)}

// markUnavailable records why a known backend name is absent from the
// registry on this host or build. Called from the same init functions that
// would otherwise register the backend.
func markUnavailable(name, reason string) {
	unavailable.Lock()
	unavailable.m[name] = reason
	unavailable.Unlock()
}

// UnavailableReason reports why a known backend is absent from the registry
// on this host or build; "" means the name is not a known-unavailable
// backend (it is either registered or entirely unknown).
func UnavailableReason(name string) string {
	unavailable.RLock()
	defer unavailable.RUnlock()
	return unavailable.m[name]
}

// BackendStatus is one backend's availability on this host and build: its
// registered dtypes when available, or the reason it could not register.
type BackendStatus struct {
	// Name is the registry name (a Config.Kernel / FMMFAM_KERNEL value when
	// Available).
	Name string
	// Dtypes lists the element types the backend registered for, sorted;
	// empty when unavailable.
	Dtypes []string
	// Available reports whether the backend is registered for at least one
	// dtype.
	Available bool
	// Reason explains an unavailable backend ("" when available).
	Reason string
}

// Statuses reports every backend known to this build — registered ones with
// their dtypes, plus known-unavailable ones (e.g. "avx2" on a host without
// AVX2+FMA) with the reason — sorted by name. This is what fmmfam.Kernel
// status reporting and the serving /v1/stats surface expose to operators.
func Statuses() []BackendStatus {
	byName := make(map[string]*BackendStatus)
	registry.RLock()
	for key := range registry.m {
		st := byName[key.name]
		if st == nil {
			st = &BackendStatus{Name: key.name, Available: true}
			byName[key.name] = st
		}
		st.Dtypes = append(st.Dtypes, key.dtype.String())
	}
	registry.RUnlock()
	unavailable.RLock()
	for name, reason := range unavailable.m {
		if byName[name] == nil {
			byName[name] = &BackendStatus{Name: name, Reason: reason}
		}
	}
	unavailable.RUnlock()
	out := make([]BackendStatus, 0, len(byName))
	for _, st := range byName {
		sort.Strings(st.Dtypes)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
