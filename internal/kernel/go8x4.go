package kernel

import "fmmfam/internal/matrix"

// go8x4 is a second pure-Go backend with the paper's actual mR×nR = 8×4
// register block: each micro-kernel invocation amortizes one load of the
// four B values over eight rows of A (the 4×4 kernel amortizes over four),
// halving B-panel traffic per flop. The 32 accumulators exceed amd64's
// sixteen SSE registers, so unlike the paper's assembly some spill — this
// backend exists to prove the Backend seam and to be the shape a future
// AVX/asm backend drops into, not to win every benchmark. Registered for
// both element types like go4x4.
type go8x4[E matrix.Element] struct{}

// Micro-tile dimensions of the go8x4 backend.
const (
	mr8x4 = 8
	nr8x4 = 4
)

func init() {
	MustRegister[float64](go8x4[float64]{})
	MustRegister[float32](go8x4[float32]{})
}

func (go8x4[E]) Name() string { return "go8x4" }
func (go8x4[E]) MR() int      { return mr8x4 }
func (go8x4[E]) NR() int      { return nr8x4 }
func (go8x4[E]) Align() int   { return 1 }

func (go8x4[E]) PackA(dst []E, terms []Term[E], r0, c0, mc, kc int) int {
	return packAGeneric(mr8x4, dst, terms, r0, c0, mc, kc)
}

func (go8x4[E]) PackB(dst []E, terms []Term[E], r0, c0, kc, nc int) int {
	return packBGeneric(nr8x4, dst, terms, r0, c0, kc, nc)
}

func (go8x4[E]) PackBRange(dst []E, terms []Term[E], r0, c0, kc, nc, panelLo, panelHi int) {
	packBRangeGeneric(nr8x4, dst, terms, r0, c0, kc, nc, panelLo, panelHi)
}

// Micro computes the 8×4 rank-kc product of an Ã row-panel and a B̃
// column-panel into acc (row-major 8×4, overwritten). The bounds checks on
// the panel reads are hoisted to one full-slice expression per p iteration;
// the accumulators are plain locals so the compiler keeps as many in
// registers as the ISA allows.
//
//fmm:hotpath
func (go8x4[E]) Micro(kc int, ap, bp, acc []E) {
	var c00, c01, c02, c03 E
	var c10, c11, c12, c13 E
	var c20, c21, c22, c23 E
	var c30, c31, c32, c33 E
	var c40, c41, c42, c43 E
	var c50, c51, c52, c53 E
	var c60, c61, c62, c63 E
	var c70, c71, c72, c73 E
	for p := 0; p < kc; p++ {
		a := ap[p*mr8x4 : p*mr8x4+mr8x4 : p*mr8x4+mr8x4]
		b := bp[p*nr8x4 : p*nr8x4+nr8x4 : p*nr8x4+nr8x4]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		a4, a5, a6, a7 := a[4], a[5], a[6], a[7]
		c40 += a4 * b0
		c41 += a4 * b1
		c42 += a4 * b2
		c43 += a4 * b3
		c50 += a5 * b0
		c51 += a5 * b1
		c52 += a5 * b2
		c53 += a5 * b3
		c60 += a6 * b0
		c61 += a6 * b1
		c62 += a6 * b2
		c63 += a6 * b3
		c70 += a7 * b0
		c71 += a7 * b1
		c72 += a7 * b2
		c73 += a7 * b3
	}
	acc = acc[: mr8x4*nr8x4 : mr8x4*nr8x4]
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
	acc[16], acc[17], acc[18], acc[19] = c40, c41, c42, c43
	acc[20], acc[21], acc[22], acc[23] = c50, c51, c52, c53
	acc[24], acc[25], acc[26], acc[27] = c60, c61, c62, c63
	acc[28], acc[29], acc[30], acc[31] = c70, c71, c72, c73
}

func (go8x4[E]) Scatter(m matrix.Mat[E], r0, c0 int, coef E, acc []E, mr, nr int) {
	scatterGeneric(nr8x4, m, r0, c0, coef, acc, mr, nr)
}

func (go8x4[E]) PackABufLen(mc, kc int) int { return packABufLen(mr8x4, mc, kc) }
func (go8x4[E]) PackBBufLen(kc, nc int) int { return packBBufLen(nr8x4, kc, nc) }
