//go:build amd64 && !purego

package kernel

import "fmmfam/internal/matrix"

// The avx2 backend: hand-written AVX2/FMA assembly micro-kernels
// (avx2_amd64.s) behind the same Backend seam the pure-Go kernels use. The
// register blocking follows the paper's Haswell numbers — MR×NR = 8×6 for
// float64, and 16×6 for float32 (twice the SIMD lanes per 256-bit register,
// so twice the rows per broadcast of B). Packing reuses the canonical
// generic packers — the layouts are identical to the pure-Go backends', only
// the panel heights differ — while Micro and the full-tile Scatter run in
// assembly; fringe scatters take the generic Go path.
//
// Registration is gated at init on the CPUID probe (cpufeat_amd64.go): on an
// amd64 host without AVX2+FMA (or with OS-disabled YMM state) the backend
// marks itself unavailable with the reason instead of registering, so
// Config.Kernel="avx2" fails validation with a clear error and dispatch
// falls back to the pure-Go backends.
const (
	mrAVX2F64 = 8
	mrAVX2F32 = 16
	nrAVX2    = 6

	// alignAVX2Bytes is the packed-buffer alignment the kernels are tuned
	// for: one full 256-bit vector. Align() converts to elements per dtype.
	alignAVX2Bytes = 32
)

func init() {
	if !hostAVX2 {
		markUnavailable(AVX2Backend,
			"host CPU lacks AVX2+FMA (or the OS does not enable YMM state); pure-Go backends remain available")
		return
	}
	MustRegister[float64](avx2F64{})
	MustRegister[float32](avx2F32{})
}

// Assembly entry points (avx2_amd64.s). The wrappers below establish every
// bounds invariant before the call: the assembly trusts its pointers.

func microF64AVX2(kc int, ap, bp, acc *float64)
func microF32AVX2(kc int, ap, bp, acc *float32)
func scatterF64AVX2(dst *float64, stride int, coef float64, acc *float64)
func scatterF32AVX2(dst *float32, stride int, coef float32, acc *float32)

// avx2F64 is the float64 half of the avx2 backend: 8×6 doubles per
// micro-tile, 12 ymm accumulators.
type avx2F64 struct{}

func (avx2F64) Name() string { return AVX2Backend }
func (avx2F64) MR() int      { return mrAVX2F64 }
func (avx2F64) NR() int      { return nrAVX2 }
func (avx2F64) Align() int   { return alignAVX2Bytes / 8 }

func (avx2F64) PackA(dst []float64, terms []Term[float64], r0, c0, mc, kc int) int {
	return packAGeneric(mrAVX2F64, dst, terms, r0, c0, mc, kc)
}

func (avx2F64) PackB(dst []float64, terms []Term[float64], r0, c0, kc, nc int) int {
	return packBGeneric(nrAVX2, dst, terms, r0, c0, kc, nc)
}

func (avx2F64) PackBRange(dst []float64, terms []Term[float64], r0, c0, kc, nc, panelLo, panelHi int) {
	packBRangeGeneric(nrAVX2, dst, terms, r0, c0, kc, nc, panelLo, panelHi)
}

// Micro dispatches the 8×6 rank-kc FMA kernel. The reslicings are the bounds
// proof for the assembly: they panic exactly where the pure-Go kernels would
// on short panels, and after them the assembly can touch only in-range
// memory. kc==0 must still overwrite acc (the conformance contract), which
// the zero loop handles without calling into assembly on empty panels.
//
//fmm:hotpath
func (avx2F64) Micro(kc int, ap, bp, acc []float64) {
	acc = acc[: mrAVX2F64*nrAVX2 : mrAVX2F64*nrAVX2]
	if kc <= 0 {
		for i := range acc {
			acc[i] = 0
		}
		return
	}
	ap = ap[: kc*mrAVX2F64 : kc*mrAVX2F64]
	bp = bp[: kc*nrAVX2 : kc*nrAVX2]
	microF64AVX2(kc, &ap[0], &bp[0], &acc[0])
}

// Scatter adds coef·acc into C: full 8×6 tiles ride the vectorized assembly
// path, fringe tiles (mr < MR or nr < NR) fall back to the generic scalar
// scatter — same arithmetic, no masked tail logic to get wrong. The indexing
// of the tile's first and last elements is the bounds proof for the strided
// assembly stores.
//
//fmm:hotpath
func (avx2F64) Scatter(m matrix.Mat[float64], r0, c0 int, coef float64, acc []float64, mr, nr int) {
	if mr == mrAVX2F64 && nr == nrAVX2 {
		acc = acc[: mrAVX2F64*nrAVX2 : mrAVX2F64*nrAVX2]
		_ = m.Data[(r0+mrAVX2F64-1)*m.Stride+c0+nrAVX2-1]
		scatterF64AVX2(&m.Data[r0*m.Stride+c0], m.Stride, coef, &acc[0])
		return
	}
	scatterGeneric(nrAVX2, m, r0, c0, coef, acc, mr, nr)
}

func (avx2F64) PackABufLen(mc, kc int) int { return packABufLen(mrAVX2F64, mc, kc) }
func (avx2F64) PackBBufLen(kc, nc int) int { return packBBufLen(nrAVX2, kc, nc) }

// avx2F32 is the float32 half: 16×6 singles per micro-tile — the same 12
// accumulator registers as the float64 kernel, each carrying 8 lanes.
type avx2F32 struct{}

func (avx2F32) Name() string { return AVX2Backend }
func (avx2F32) MR() int      { return mrAVX2F32 }
func (avx2F32) NR() int      { return nrAVX2 }
func (avx2F32) Align() int   { return alignAVX2Bytes / 4 }

func (avx2F32) PackA(dst []float32, terms []Term[float32], r0, c0, mc, kc int) int {
	return packAGeneric(mrAVX2F32, dst, terms, r0, c0, mc, kc)
}

func (avx2F32) PackB(dst []float32, terms []Term[float32], r0, c0, kc, nc int) int {
	return packBGeneric(nrAVX2, dst, terms, r0, c0, kc, nc)
}

func (avx2F32) PackBRange(dst []float32, terms []Term[float32], r0, c0, kc, nc, panelLo, panelHi int) {
	packBRangeGeneric(nrAVX2, dst, terms, r0, c0, kc, nc, panelLo, panelHi)
}

// Micro dispatches the 16×6 rank-kc FMA kernel; see avx2F64.Micro for the
// bounds-proof shape.
//
//fmm:hotpath
func (avx2F32) Micro(kc int, ap, bp, acc []float32) {
	acc = acc[: mrAVX2F32*nrAVX2 : mrAVX2F32*nrAVX2]
	if kc <= 0 {
		for i := range acc {
			acc[i] = 0
		}
		return
	}
	ap = ap[: kc*mrAVX2F32 : kc*mrAVX2F32]
	bp = bp[: kc*nrAVX2 : kc*nrAVX2]
	microF32AVX2(kc, &ap[0], &bp[0], &acc[0])
}

// Scatter: full 16×6 tiles in assembly, fringes through the generic path;
// see avx2F64.Scatter.
//
//fmm:hotpath
func (avx2F32) Scatter(m matrix.Mat[float32], r0, c0 int, coef float32, acc []float32, mr, nr int) {
	if mr == mrAVX2F32 && nr == nrAVX2 {
		acc = acc[: mrAVX2F32*nrAVX2 : mrAVX2F32*nrAVX2]
		_ = m.Data[(r0+mrAVX2F32-1)*m.Stride+c0+nrAVX2-1]
		scatterF32AVX2(&m.Data[r0*m.Stride+c0], m.Stride, coef, &acc[0])
		return
	}
	scatterGeneric(nrAVX2, m, r0, c0, coef, acc, mr, nr)
}

func (avx2F32) PackABufLen(mc, kc int) int { return packABufLen(mrAVX2F32, mc, kc) }
func (avx2F32) PackBBufLen(kc, nc int) int { return packBBufLen(nrAVX2, kc, nc) }
