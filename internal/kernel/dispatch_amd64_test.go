//go:build amd64 && !purego

package kernel

import (
	"testing"

	"fmmfam/internal/matrix"
)

// TestAVX2RegistrationMatchesProbe: on amd64 assembly builds, avx2 is
// registered for both dtypes exactly when the CPUID probe reports AVX2+FMA
// with OS-enabled YMM state, and carries an explanatory reason otherwise.
func TestAVX2RegistrationMatchesProbe(t *testing.T) {
	cpu := HostCPU()
	if cpu.PureGo {
		t.Fatal("PureGo reported on an amd64 assembly build")
	}
	for _, d := range []matrix.Dtype{matrix.Float64, matrix.Float32} {
		registered := false
		for _, name := range BackendsFor(d) {
			if name == AVX2Backend {
				registered = true
			}
		}
		if registered != cpu.AVX2 {
			t.Fatalf("avx2 registered=%v for %s but HostCPU().AVX2=%v", registered, d, cpu.AVX2)
		}
	}
	if !cpu.AVX2 && UnavailableReason(AVX2Backend) == "" {
		t.Fatal("avx2 unregistered on amd64 without a recorded reason")
	}
}

// TestAVX2TileShape pins the paper's Haswell register blocking on hosts that
// have the backend: 8×6 float64 and 16×6 float32 tiles, 32-byte alignment.
func TestAVX2TileShape(t *testing.T) {
	if !HostCPU().AVX2 {
		t.Skip("host lacks AVX2+FMA")
	}
	b64 := MustResolve[float64](AVX2Backend)
	if b64.MR() != 8 || b64.NR() != 6 || b64.Align() != 4 {
		t.Fatalf("float64 tile = %d×%d align %d, want 8×6 align 4", b64.MR(), b64.NR(), b64.Align())
	}
	b32 := MustResolve[float32](AVX2Backend)
	if b32.MR() != 16 || b32.NR() != 6 || b32.Align() != 8 {
		t.Fatalf("float32 tile = %d×%d align %d, want 16×6 align 8", b32.MR(), b32.NR(), b32.Align())
	}
}
