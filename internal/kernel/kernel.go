// Package kernel provides the two building blocks of Figure 1 of the paper
// that everything else is assembled from:
//
//   - packing routines that write the *linear combination* of a list of
//     equally-sized submatrices into the contiguous micro-panel layouts Ã
//     (mR-row panels) and B̃ (nR-column panels) — the paper's key trick of
//     fusing the FMM operand additions into the packing (Fig. 1, right), and
//   - the mR×nR micro-kernel, a register-blocked rank-kC update whose result
//     can be scattered, with weights, into several submatrices of C (the ABC
//     variant's fused micro-kernel).
//
// The kernel is pure Go (the paper uses SSE2/AVX assembly; see DESIGN.md §5
// for why the substitution preserves the experiments' shape) and generic over
// the element type (float32 or float64): each instantiation compiles to
// fully specialized scalar code, so the float64 loops are the same machine
// code as the historical non-generic kernel (pinned by golden tests) and the
// float32 loops halve the memory traffic per element.
//
// Implementations are pluggable: the free functions below are the default
// MR=NR=4 backend, and the Backend interface (backend.go) abstracts micro-tile
// shape, packing, and the micro-kernel so alternative register blockings —
// the 8×4 pure-Go backend in go8x4.go today, AVX/asm or cgo backends later —
// can be registered per (name, dtype) and selected by name without touching
// the driver.
package kernel

import "fmmfam/internal/matrix"

// Micro-tile dimensions of the default backend. Its packing layouts and
// micro-kernel agree on these; they play the role of the paper's mR×nR = 8×4
// register block. Other backends carry their own tile shape via Backend.MR
// and Backend.NR.
const (
	MR = 4
	NR = 4
)

// Term is one weighted operand of a fused linear combination: Coef·M. All
// terms of a list have identical dimensions.
type Term[E matrix.Element] struct {
	Coef E
	M    matrix.Mat[E]
}

// SingleTerm wraps a matrix as the trivial combination 1.0·M.
func SingleTerm[E matrix.Element](m matrix.Mat[E]) []Term[E] { return []Term[E]{{Coef: 1, M: m}} }

// PackA writes the mc×kc linear combination Σ Coef·M[r0:r0+mc, c0:c0+kc] of
// the A-side terms into dst in Ã layout: ⌈mc/MR⌉ consecutive row-panels,
// each storing its MR rows column-major (dst[panel*MR*kc + p*MR + i]). Rows
// beyond mc are zero-padded so the micro-kernel never reads garbage.
// Returns the number of elements written (⌈mc/MR⌉·MR·kc).
//
//fmm:hotpath
func PackA[E matrix.Element](dst []E, terms []Term[E], r0, c0, mc, kc int) int {
	panels := (mc + MR - 1) / MR
	n := panels * MR * kc
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	for t, term := range terms {
		m := term.M
		coef := term.Coef
		if coef == 0 {
			continue
		}
		for i := 0; i < mc; i++ {
			panel := i / MR
			lane := i % MR
			src := m.Data[(r0+i)*m.Stride+c0 : (r0+i)*m.Stride+c0+kc]
			d := dst[panel*MR*kc+lane:]
			if t == 0 && coef == 1 {
				for p, v := range src {
					d[p*MR] = v
				}
			} else {
				for p, v := range src {
					d[p*MR] += coef * v
				}
			}
		}
	}
	return n
}

// PackB writes the kc×nc linear combination of the B-side terms into dst in
// B̃ layout: ⌈nc/NR⌉ consecutive column-panels, each storing its NR columns
// row-major (dst[panel*kc*NR + p*NR + j]), zero-padded beyond nc.
// Returns the number of elements written.
//
//fmm:hotpath
func PackB[E matrix.Element](dst []E, terms []Term[E], r0, c0, kc, nc int) int {
	panels := (nc + NR - 1) / NR
	PackBRange(dst, terms, r0, c0, kc, nc, 0, panels)
	return panels * kc * NR
}

// PackBRange packs only column-panels [panelLo, panelHi) of the B̃ layout
// (panel j covers source columns [j·NR, (j+1)·NR)). Distinct panel ranges
// write disjoint regions of dst, so ranges can be packed concurrently.
//
//fmm:hotpath
func PackBRange[E matrix.Element](dst []E, terms []Term[E], r0, c0, kc, nc, panelLo, panelHi int) {
	for panel := panelLo; panel < panelHi; panel++ {
		j0 := panel * NR
		w := NR
		if j0+w > nc {
			w = nc - j0
		}
		out := dst[panel*kc*NR : (panel+1)*kc*NR]
		for i := range out {
			out[i] = 0
		}
		for t, term := range terms {
			m := term.M
			coef := term.Coef
			if coef == 0 {
				continue
			}
			for p := 0; p < kc; p++ {
				src := m.Data[(r0+p)*m.Stride+c0+j0 : (r0+p)*m.Stride+c0+j0+w]
				d := out[p*NR : p*NR+w]
				if t == 0 && coef == 1 {
					copy(d, src)
				} else {
					for j, v := range src {
						d[j] += coef * v
					}
				}
			}
		}
	}
}

// Micro computes the MR×NR rank-kc product of an Ã row-panel and a B̃
// column-panel into acc (row-major MR×NR, overwritten). ap holds kc
// MR-element slices (a[p*MR+i]); bp holds kc NR-element slices (b[p*NR+j]).
// The 16 accumulators live in registers for the duration of the p-loop. The
// array-pointer signature keeps the epilogue stores free of bounds checks —
// at the plan path's short kc this is a measurable fraction of the call —
// while the go4x4 Backend adapter converts the interface's slice form.
//
//fmm:hotpath
func Micro[E matrix.Element](kc int, ap, bp []E, acc *[MR * NR]E) {
	var c00, c01, c02, c03 E
	var c10, c11, c12, c13 E
	var c20, c21, c22, c23 E
	var c30, c31, c32, c33 E
	for p := 0; p < kc; p++ {
		a := ap[p*MR : p*MR+MR : p*MR+MR]
		b := bp[p*NR : p*NR+NR : p*NR+NR]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// Scatter adds coef·acc[0:mr,0:nr] (acc row-major with row stride NR) to the
// mr×nr region of target m with top-left corner (r0, c0). Called once per
// C-side term — the ABC variant's "update multiple submatrices of C from
// registers".
//
//fmm:hotpath
func Scatter[E matrix.Element](m matrix.Mat[E], r0, c0 int, coef E, acc *[MR * NR]E, mr, nr int) {
	for i := 0; i < mr; i++ {
		row := m.Data[(r0+i)*m.Stride+c0 : (r0+i)*m.Stride+c0+nr]
		a := acc[i*NR : i*NR+nr]
		if coef == 1 {
			for j, v := range a {
				row[j] += v
			}
		} else {
			for j, v := range a {
				row[j] += coef * v
			}
		}
	}
}

// PackABufLen and PackBBufLen size the packing buffers for block dimensions
// (mc, kc) and (kc, nc), in elements.
func PackABufLen(mc, kc int) int { return ((mc + MR - 1) / MR) * MR * kc }

// PackBBufLen sizes a B̃ buffer; see PackABufLen.
func PackBBufLen(kc, nc int) int { return ((nc + NR - 1) / NR) * NR * kc }
