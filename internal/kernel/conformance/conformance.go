// Package conformance is the shared acceptance suite every micro-kernel
// backend must pass to be registered (see kernel.Backend). It drives a
// backend — by registry name and element type, exactly as Config.Kernel and
// the typed entry points will — through the pack-layout invariants, the
// micro-kernel and scatter contracts, fused multi-term products against a
// naive reference, edge problem shapes around the backend's own MR/NR, the
// driver's determinism guarantees, and a differential fuzz target. All
// comparison tolerances are FLOP-scaled in units of the element type's
// machine epsilon, so the same suite gates float64 and float32 conformance.
// A future AVX/asm or cgo backend only has to register and pass, once per
// dtype it supports:
//
//	func TestMyBackend(t *testing.T) {
//		conformance.Run[float64](t, "avx512")
//		conformance.Run[float32](t, "avx512")
//	}
//	func FuzzMyBackend(f *testing.F) { conformance.FuzzDifferential[float32](f, "avx512") }
//
// The suite is intentionally written against the Backend interface and the
// public gemm driver only, so it cannot accidentally depend on an
// implementation detail of one backend.
package conformance

import (
	"math"
	"math/rand"
	"testing"

	"fmmfam/internal/gemm"
	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
)

// Run drives the full conformance suite against the named registered
// backend at element type E. Every subtest failure names the backend, so a
// matrix run over kernel.Backends() × dtypes pinpoints the offender.
func Run[E matrix.Element](t *testing.T, name string) {
	t.Helper()
	bk, err := kernel.Resolve[E](name)
	if err != nil {
		t.Fatalf("conformance: %v", err)
	}
	t.Run("Registration", func(t *testing.T) { checkRegistration(t, bk) })
	t.Run("BufLens", func(t *testing.T) { checkBufLens(t, bk) })
	t.Run("PackLayout", func(t *testing.T) { checkPackLayout(t, bk) })
	t.Run("PackLinearCombination", func(t *testing.T) { checkPackLinearCombination(t, bk) })
	t.Run("PackBRange", func(t *testing.T) { checkPackBRange(t, bk) })
	t.Run("MicroVsReference", func(t *testing.T) { checkMicro(t, bk) })
	t.Run("Scatter", func(t *testing.T) { checkScatter(t, bk) })
	t.Run("EdgeShapes", func(t *testing.T) { checkEdgeShapes(t, bk) })
	t.Run("FusedMultiTerm", func(t *testing.T) { checkFusedMultiTerm(t, bk) })
	t.Run("DriverDeterminism", func(t *testing.T) { checkDriverDeterminism(t, bk) })
}

func checkRegistration[E matrix.Element](t *testing.T, bk kernel.Backend[E]) {
	if bk.Name() == "" {
		t.Fatal("empty backend name")
	}
	if bk.MR() < 1 || bk.NR() < 1 {
		t.Fatalf("degenerate micro-tile %d×%d", bk.MR(), bk.NR())
	}
	if bk.Align() < 1 {
		t.Fatalf("degenerate alignment %d", bk.Align())
	}
	again, err := kernel.Resolve[E](bk.Name())
	if err != nil || again.Name() != bk.Name() {
		t.Fatalf("backend does not resolve to itself: %v", err)
	}
}

func checkBufLens[E matrix.Element](t *testing.T, bk kernel.Backend[E]) {
	mr, nr := bk.MR(), bk.NR()
	for _, d := range []struct{ blk, kc int }{{1, 1}, {mr - 1, 3}, {mr, 7}, {mr + 1, 8}, {3*mr + 2, 17}} {
		if d.blk < 1 {
			continue
		}
		if got, want := bk.PackABufLen(d.blk, d.kc), ((d.blk+mr-1)/mr)*mr*d.kc; got != want {
			t.Errorf("PackABufLen(%d,%d)=%d, layout implies %d", d.blk, d.kc, got, want)
		}
		if got, want := bk.PackBBufLen(d.kc, d.blk), ((d.blk+nr-1)/nr)*nr*d.kc; got != want {
			t.Errorf("PackBBufLen(%d,%d)=%d, layout implies %d", d.kc, d.blk, got, want)
		}
	}
}

// unpackA reads an Ã buffer back into a dense mc×kc matrix using the
// canonical panel layout with the backend's MR.
func unpackA[E matrix.Element](bk kernel.Backend[E], buf []E, mc, kc int) matrix.Mat[E] {
	mr := bk.MR()
	out := matrix.New[E](mc, kc)
	for i := 0; i < mc; i++ {
		for p := 0; p < kc; p++ {
			out.Set(i, p, buf[(i/mr)*mr*kc+p*mr+i%mr])
		}
	}
	return out
}

// unpackB reads a B̃ buffer back into a dense kc×nc matrix.
func unpackB[E matrix.Element](bk kernel.Backend[E], buf []E, kc, nc int) matrix.Mat[E] {
	nr := bk.NR()
	out := matrix.New[E](kc, nc)
	for p := 0; p < kc; p++ {
		for j := 0; j < nc; j++ {
			out.Set(p, j, buf[(j/nr)*kc*nr+p*nr+j%nr])
		}
	}
	return out
}

// nan returns a NaN of the element type, for poisoning buffers that must be
// fully overwritten.
func nan[E matrix.Element]() E { return E(math.NaN()) }

// checkPackLayout: a single-term pack is a pure relayout (round-trips through
// unpack), the padding rows/columns are zero, and the reported write count
// matches PackABufLen/PackBBufLen.
func checkPackLayout[E matrix.Element](t *testing.T, bk kernel.Backend[E]) {
	rng := rand.New(rand.NewSource(101))
	mr, nr := bk.MR(), bk.NR()
	for _, d := range []struct{ mc, kc int }{{1, 1}, {mr, 3}, {mr + 1, 5}, {2*mr + 1, 8}} {
		src := matrix.New[E](d.mc+3, d.kc+2)
		src.FillRand(rng)
		buf := make([]E, bk.PackABufLen(d.mc, d.kc))
		for i := range buf {
			buf[i] = nan[E]() // padding must be written, not inherited
		}
		n := bk.PackA(buf, kernel.SingleTerm(src), 2, 1, d.mc, d.kc)
		if n != len(buf) {
			t.Fatalf("PackA(mc=%d,kc=%d) wrote %d, want %d", d.mc, d.kc, n, len(buf))
		}
		if unpackA(bk, buf, d.mc, d.kc).MaxAbsDiff(src.View(2, 1, d.mc, d.kc).Clone()) != 0 {
			t.Fatalf("single-term PackA(mc=%d,kc=%d) is not a relayout", d.mc, d.kc)
		}
		panels := (d.mc + mr - 1) / mr
		for i := d.mc; i < panels*mr; i++ { // zero padding beyond mc
			for p := 0; p < d.kc; p++ {
				if v := buf[(i/mr)*mr*d.kc+p*mr+i%mr]; v != 0 {
					t.Fatalf("PackA padding row %d col %d = %v, want 0", i, p, v)
				}
			}
		}
	}
	for _, d := range []struct{ kc, nc int }{{1, 1}, {3, nr}, {5, nr + 1}, {8, 2*nr + 1}} {
		src := matrix.New[E](d.kc+2, d.nc+3)
		src.FillRand(rng)
		buf := make([]E, bk.PackBBufLen(d.kc, d.nc))
		for i := range buf {
			buf[i] = nan[E]()
		}
		n := bk.PackB(buf, kernel.SingleTerm(src), 1, 2, d.kc, d.nc)
		if n != len(buf) {
			t.Fatalf("PackB(kc=%d,nc=%d) wrote %d, want %d", d.kc, d.nc, n, len(buf))
		}
		if unpackB(bk, buf, d.kc, d.nc).MaxAbsDiff(src.View(1, 2, d.kc, d.nc).Clone()) != 0 {
			t.Fatalf("single-term PackB(kc=%d,nc=%d) is not a relayout", d.kc, d.nc)
		}
		panels := (d.nc + nr - 1) / nr
		for j := d.nc; j < panels*nr; j++ { // zero padding beyond nc
			for p := 0; p < d.kc; p++ {
				if v := buf[(j/nr)*d.kc*nr+p*nr+j%nr]; v != 0 {
					t.Fatalf("PackB padding col %d row %d = %v, want 0", j, p, v)
				}
			}
		}
	}
}

// checkPackLinearCombination: packing a term list equals packing the
// explicitly accumulated combination, and zero-coefficient terms are inert.
func checkPackLinearCombination[E matrix.Element](t *testing.T, bk kernel.Backend[E]) {
	rng := rand.New(rand.NewSource(102))
	mr := bk.MR()
	mc, kc := 2*mr+1, 6
	x, y, z := matrix.New[E](mc, kc), matrix.New[E](mc, kc), matrix.New[E](mc, kc)
	x.FillRand(rng)
	y.FillRand(rng)
	z.FillRand(rng)
	terms := []kernel.Term[E]{{Coef: 1, M: x}, {Coef: -0.5, M: y}, {Coef: 0, M: z}}
	want := x.Clone()
	want.AddScaled(-0.5, y)
	buf := make([]E, bk.PackABufLen(mc, kc))
	bk.PackA(buf, terms, 0, 0, mc, kc)
	// Both sides accumulate the two-term combination in one order, so the
	// only admissible gap is a couple of rounding units.
	limit := 4 * matrix.Eps[E]()
	if d := unpackA(bk, buf, mc, kc).MaxAbsDiff(want); d > limit {
		t.Fatalf("fused A combination differs from explicit sum by %g", d)
	}
	bbuf := make([]E, bk.PackBBufLen(mc, kc))
	bk.PackB(bbuf, []kernel.Term[E]{{Coef: 0.25, M: x}, {Coef: 2, M: y}}, 0, 0, mc, kc)
	wantB := matrix.New[E](mc, kc)
	wantB.AddScaled(0.25, x)
	wantB.AddScaled(2, y)
	if d := unpackB(bk, bbuf, mc, kc).MaxAbsDiff(wantB); d > limit {
		t.Fatalf("fused B combination differs from explicit sum by %g", d)
	}
}

// checkPackBRange: packing panel sub-ranges covers exactly the whole-pack
// result — the invariant the driver's parallel packB relies on.
func checkPackBRange[E matrix.Element](t *testing.T, bk kernel.Backend[E]) {
	rng := rand.New(rand.NewSource(103))
	nr := bk.NR()
	kc, nc := 9, 4*nr+3
	x, y := matrix.New[E](kc+1, nc+2), matrix.New[E](kc+1, nc+2)
	x.FillRand(rng)
	y.FillRand(rng)
	terms := []kernel.Term[E]{{Coef: 1, M: x}, {Coef: 0.5, M: y}}
	whole := make([]E, bk.PackBBufLen(kc, nc))
	bk.PackB(whole, terms, 1, 2, kc, nc)
	parts := make([]E, bk.PackBBufLen(kc, nc))
	panels := (nc + nr - 1) / nr
	for lo := 0; lo < panels; { // uneven chunks
		hi := lo + 1 + lo%2
		if hi > panels {
			hi = panels
		}
		bk.PackBRange(parts, terms, 1, 2, kc, nc, lo, hi)
		lo = hi
	}
	for i := range whole {
		if whole[i] != parts[i] {
			t.Fatalf("chunked PackBRange differs from whole pack at %d", i)
		}
	}
}

// checkMicro: the micro-kernel's MR×NR rank-kc product matches the reference
// triple loop, overwrites acc completely (kc=0 must yield a zero tile), and
// never reads past kc panels.
func checkMicro[E matrix.Element](t *testing.T, bk kernel.Backend[E]) {
	rng := rand.New(rand.NewSource(104))
	mr, nr := bk.MR(), bk.NR()
	for _, kc := range []int{0, 1, 2, 3, 7, 64} {
		a, b := matrix.New[E](mr, max(kc, 1)), matrix.New[E](max(kc, 1), nr)
		a.FillRand(rng)
		b.FillRand(rng)
		abuf := make([]E, bk.PackABufLen(mr, max(kc, 1)))
		bbuf := make([]E, bk.PackBBufLen(max(kc, 1), nr))
		bk.PackA(abuf, kernel.SingleTerm(a), 0, 0, mr, max(kc, 1))
		bk.PackB(bbuf, kernel.SingleTerm(b), 0, 0, max(kc, 1), nr)
		acc := make([]E, mr*nr)
		for i := range acc {
			// Poison with a huge finite value (not NaN: the |acc−want| > limit
			// guard below is inert for NaN) — a kernel that accumulates into
			// acc instead of overwriting it, or skips elements, blows the
			// tolerance by ~30 orders of magnitude in either dtype.
			acc[i] = E(1e30)
		}
		bk.Micro(kc, abuf, bbuf, acc)
		want := matrix.New[E](mr, nr)
		if kc > 0 {
			matrix.MulAdd(want, a, b)
		}
		// Both sides are E-precision dot products of length kc over operands
		// in [-1, 1); the association orders may differ.
		limit := 8 * matrix.Eps[E]() * float64(kc+16)
		for i := 0; i < mr; i++ {
			for j := 0; j < nr; j++ {
				if d := math.Abs(float64(acc[i*nr+j]) - float64(want.At(i, j))); d > limit {
					t.Fatalf("kc=%d micro mismatch at (%d,%d): %g", kc, i, j, d)
				}
			}
		}
	}
}

// checkScatter: full and partial tiles accumulate coef·acc into exactly the
// target region — neighbors of a view must be untouched.
func checkScatter[E matrix.Element](t *testing.T, bk kernel.Backend[E]) {
	mr, nr := bk.MR(), bk.NR()
	acc := make([]E, mr*nr)
	for i := range acc {
		acc[i] = E(i + 1)
	}
	host := matrix.New[E](mr+4, nr+4)
	host.Fill(5)
	bk.Scatter(host, 2, 3, -2, acc, mr, nr)
	for i := 0; i < host.Rows; i++ {
		for j := 0; j < host.Cols; j++ {
			want := E(5)
			if i >= 2 && i < 2+mr && j >= 3 && j < 3+nr {
				want = 5 - 2*acc[(i-2)*nr+(j-3)]
			}
			if host.At(i, j) != want {
				t.Fatalf("full-tile scatter (%d,%d)=%v, want %v", i, j, host.At(i, j), want)
			}
		}
	}
	// Partial fringe tile: mr-1 × nr-1 (when the tile has room to shrink).
	pm, pn := max(mr-1, 1), max(nr-1, 1)
	host2 := matrix.New[E](mr+2, nr+2)
	bk.Scatter(host2, 0, 0, 1, acc, pm, pn)
	for i := 0; i < host2.Rows; i++ {
		for j := 0; j < host2.Cols; j++ {
			want := E(0)
			if i < pm && j < pn {
				want = acc[i*nr+j]
			}
			if host2.At(i, j) != want {
				t.Fatalf("partial scatter (%d,%d)=%v, want %v", i, j, host2.At(i, j), want)
			}
		}
	}
}

// driverConfigs are the blocking configurations the driver-level checks run
// under: minimal (every loop degenerate), deliberately unaligned to the
// micro-tile, and parallel.
func driverConfigs[E matrix.Element](bk kernel.Backend[E]) []gemm.Config {
	mr, nr := bk.MR(), bk.NR()
	return []gemm.Config{
		{MC: mr, KC: 1, NC: nr, Threads: 1, Kernel: bk.Name()},
		{MC: 2*mr + 1, KC: 7, NC: 2*nr + 3, Threads: 1, Kernel: bk.Name()},
		{MC: 3 * mr, KC: 5, NC: 3 * nr, Threads: 3, Kernel: bk.Name()},
	}
}

// checkEdgeShapes sweeps the driver over every combination of edge dimensions
// around the backend's own micro-tile — m,n,k ∈ {1, MR−1, MR, MR+1, …} — the
// shapes where fringe handling, padding, and partial panels all bite.
func checkEdgeShapes[E matrix.Element](t *testing.T, bk kernel.Backend[E]) {
	rng := rand.New(rand.NewSource(105))
	mr, nr := bk.MR(), bk.NR()
	dims := edgeDims(mr, nr)
	for _, cfg := range driverConfigs(bk) {
		ctx, err := gemm.NewContext[E](cfg)
		if err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
		for _, m := range dims {
			for _, k := range dims {
				for _, n := range dims {
					a, b := matrix.New[E](m, k), matrix.New[E](k, n)
					a.FillRand(rng)
					b.FillRand(rng)
					c := matrix.New[E](m, n)
					c.FillRand(rng)
					want := c.Clone()
					matrix.MulAdd(want, a, b)
					ctx.MulAdd(c, a, b)
					if d := c.MaxAbsDiff(want); d > tol[E](k, 1, 1) {
						t.Fatalf("cfg MC=%d KC=%d NC=%d threads=%d shape %d×%d×%d: diff %g",
							cfg.MC, cfg.KC, cfg.NC, cfg.Threads, m, k, n, d)
					}
				}
			}
		}
	}
}

// edgeDims returns the deduplicated positive edge sizes around mr and nr.
func edgeDims(mr, nr int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range []int{1, mr - 1, mr, mr + 1, nr - 1, nr, nr + 1, 2*mr + 3, 33} {
		if v >= 1 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// checkFusedMultiTerm: the generalized fused operation — several weighted A,
// B, and C terms, the paper's Figure-1 (right) building block — matches the
// explicit naive evaluation.
func checkFusedMultiTerm[E matrix.Element](t *testing.T, bk kernel.Backend[E]) {
	rng := rand.New(rand.NewSource(106))
	mr, nr := bk.MR(), bk.NR()
	m, k, n := 2*mr+3, 13, 2*nr+5
	for _, cfg := range driverConfigs(bk) {
		ctx := gemm.MustNewContext[E](cfg)
		for trial := 0; trial < 4; trial++ {
			aTerms := randTerms[E](rng, 1+trial%3, m, k)
			bTerms := randTerms[E](rng, 1+(trial+1)%3, k, n)
			cTerms := randTerms[E](rng, 1+(trial+2)%3, m, n)
			// Explicit reference: asum·bsum scattered into every C term.
			asum, bsum := matrix.New[E](m, k), matrix.New[E](k, n)
			for _, tm := range aTerms {
				asum.AddScaled(tm.Coef, tm.M)
			}
			for _, tm := range bTerms {
				bsum.AddScaled(tm.Coef, tm.M)
			}
			prod := matrix.New[E](m, n)
			matrix.MulAdd(prod, asum, bsum)
			wants := make([]matrix.Mat[E], len(cTerms))
			for i, tm := range cTerms {
				wants[i] = tm.M.Clone()
				wants[i].AddScaled(tm.Coef, prod)
			}
			ctx.FusedMulAdd(cTerms, aTerms, bTerms)
			for i, tm := range cTerms {
				if d := tm.M.MaxAbsDiff(wants[i]); d > tol[E](k, len(aTerms), len(bTerms)) {
					t.Fatalf("trial %d C-term %d: fused vs explicit diff %g", trial, i, d)
				}
			}
		}
	}
}

// checkDriverDeterminism: serial and parallel executions of the same fused
// call must agree bit-for-bit, and repeated runs must be bit-identical —
// the invariants the serving layer's determinism contracts stand on. These
// hold structurally for any conforming backend and either dtype: each C
// element is written by exactly one micro-tile, whichever worker computes it.
func checkDriverDeterminism[E matrix.Element](t *testing.T, bk kernel.Backend[E]) {
	rng := rand.New(rand.NewSource(107))
	mr, nr := bk.MR(), bk.NR()
	m, k, n := 5*mr+1, 23, 5*nr+1
	a, b := matrix.New[E](m, k), matrix.New[E](k, n)
	a.FillRand(rng)
	b.FillRand(rng)
	serial := gemm.MustNewContext[E](gemm.Config{MC: 2 * mr, KC: 6, NC: 2 * nr, Threads: 1, Kernel: bk.Name()})
	parallel := gemm.MustNewContext[E](gemm.Config{MC: 2 * mr, KC: 6, NC: 2 * nr, Threads: 4, Kernel: bk.Name()})
	c1, c2, c3 := matrix.New[E](m, n), matrix.New[E](m, n), matrix.New[E](m, n)
	serial.MulAdd(c1, a, b)
	parallel.MulAdd(c2, a, b)
	parallel.MulAdd(c3, a, b)
	if d := c1.MaxAbsDiff(c2); d != 0 {
		t.Fatalf("parallel result differs from serial by %g (must be bit-identical)", d)
	}
	if d := c2.MaxAbsDiff(c3); d != 0 {
		t.Fatalf("repeated parallel runs differ by %g (must be bit-identical)", d)
	}
}

// randTerms builds n random r×c terms with coefficients from a small exact
// set (so reference accumulation stays comparable in either dtype).
func randTerms[E matrix.Element](rng *rand.Rand, n, r, c int) []kernel.Term[E] {
	coefs := []E{1, -1, 0.5, -0.5, 2, 0.25}
	out := make([]kernel.Term[E], n)
	for i := range out {
		m := matrix.New[E](r, c)
		m.FillRand(rng)
		out[i] = kernel.Term[E]{Coef: coefs[rng.Intn(len(coefs))], M: m}
	}
	return out
}

// tol is the FLOP-scaled comparison tolerance for |fused − naive|: both
// sides are E-precision evaluations of the same polynomial in different
// association orders, so the gap grows with the reduction depth k and the
// term counts, scaled by the element type's machine epsilon (≈2.2e-16 for
// float64 — matching the historical 1e-14-based bound — and ≈1.2e-7 for
// float32). Operands are in [−1, 1) and coefficients bounded by 2, so
// per-element magnitude is bounded by 2·nA·2·nB·k ≈ 4·nA·nB·k.
func tol[E matrix.Element](k, nA, nB int) float64 {
	return 45 * matrix.Eps[E]() * float64(k+16) * 4 * float64(nA) * float64(nB)
}

// FuzzDifferential registers a differential fuzz target for the named
// backend at element type E: random shapes, coefficients, and term counts,
// driven through the fused driver and compared against the naive reference
// with the FLOP-scaled tolerance of the element type. The seed corpus pins
// the edge tiles plus a K-dominant shape.
func FuzzDifferential[E matrix.Element](f *testing.F, name string) {
	bk, err := kernel.Resolve[E](name)
	if err != nil {
		f.Fatalf("conformance: %v", err)
	}
	mr, nr := bk.MR(), bk.NR()
	f.Add(int64(1), uint16(1), uint16(1), uint16(1), uint8(1), uint8(1), uint8(1))
	f.Add(int64(2), uint16(mr+1), uint16(7), uint16(nr+1), uint8(2), uint8(2), uint8(3))
	f.Add(int64(3), uint16(2*mr+3), uint16(96), uint16(2*nr+1), uint8(3), uint8(1), uint8(2))
	f.Add(int64(4), uint16(40), uint16(513), uint16(52), uint8(2), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, m16, k16, n16 uint16, nA8, nB8, nC8 uint8) {
		DifferentialCheck[E](t, name, seed, m16, k16, n16, nA8, nB8, nC8)
	})
}

// DifferentialCheck is one differential-fuzz execution: it normalizes the
// raw fuzz inputs into a bounded fused problem, runs it through the
// backend's driver at element type E, and compares against the naive
// reference. Exported so backend packages can replay interesting inputs as
// plain tests.
func DifferentialCheck[E matrix.Element](t *testing.T, name string, seed int64, m16, k16, n16 uint16, nA8, nB8, nC8 uint8) {
	t.Helper()
	bk, err := kernel.Resolve[E](name)
	if err != nil {
		t.Fatalf("conformance: %v", err)
	}
	m := 1 + int(m16)%96
	k := 1 + int(k16)%600
	n := 1 + int(n16)%96
	for m*k*n > 1<<21 { // bound the naive reference's cost per execution
		k = k/2 + 1
	}
	nA := 1 + int(nA8)%3
	nB := 1 + int(nB8)%3
	nC := 1 + int(nC8)%3
	rng := rand.New(rand.NewSource(seed))
	aTerms := randTerms[E](rng, nA, m, k)
	bTerms := randTerms[E](rng, nB, k, n)
	cTerms := randTerms[E](rng, nC, m, n)

	asum, bsum := matrix.New[E](m, k), matrix.New[E](k, n)
	for _, tm := range aTerms {
		asum.AddScaled(tm.Coef, tm.M)
	}
	for _, tm := range bTerms {
		bsum.AddScaled(tm.Coef, tm.M)
	}
	prod := matrix.New[E](m, n)
	matrix.MulAdd(prod, asum, bsum)
	wants := make([]matrix.Mat[E], len(cTerms))
	for i, tm := range cTerms {
		wants[i] = tm.M.Clone()
		wants[i].AddScaled(tm.Coef, prod)
	}

	mr, nr := bk.MR(), bk.NR()
	us := uint64(seed)
	cfg := gemm.Config{
		MC:      mr * (1 + int((us>>1)%3)),
		KC:      1 + int((us>>3)%24),
		NC:      nr * (1 + int((us>>5)%3)),
		Threads: 1 + int((us>>7)%3),
		Kernel:  bk.Name(),
	}
	ctx, err := gemm.NewContext[E](cfg)
	if err != nil {
		t.Fatalf("config %+v: %v", cfg, err)
	}
	ctx.FusedMulAdd(cTerms, aTerms, bTerms)
	limit := tol[E](k, nA, nB)
	for i, tm := range cTerms {
		if d := tm.M.MaxAbsDiff(wants[i]); d > limit {
			t.Fatalf("backend %s/%s shape %d×%d×%d terms %d/%d/%d cfg %+v: C-term %d fused vs naive diff %g > %g",
				name, matrix.DtypeOf[E](), m, k, n, nA, nB, nC, cfg, i, d, limit)
		}
	}
}
