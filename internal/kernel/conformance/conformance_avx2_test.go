//go:build amd64 && !purego

package conformance_test

import (
	"testing"

	"fmmfam/internal/kernel"
	"fmmfam/internal/kernel/conformance"
)

// Differential fuzz targets for the avx2 assembly backend. Build-tagged to
// asm-capable builds and skipped (not failed) on amd64 hosts whose CPU lacks
// AVX2+FMA, so `go test -fuzz` discovery and scripts/fuzz_smoke.sh work
// unchanged across the fleet. TestRegisteredBackendsConform already covers
// the deterministic suite via registry iteration.

func FuzzConformAVX2(f *testing.F) {
	if !kernel.HostCPU().AVX2 {
		f.Skip("host lacks AVX2+FMA")
	}
	conformance.FuzzDifferential[float64](f, kernel.AVX2Backend)
}

func FuzzConformAVX2F32(f *testing.F) {
	if !kernel.HostCPU().AVX2 {
		f.Skip("host lacks AVX2+FMA")
	}
	conformance.FuzzDifferential[float32](f, kernel.AVX2Backend)
}
