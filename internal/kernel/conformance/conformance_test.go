package conformance_test

import (
	"testing"

	"fmmfam/internal/kernel"
	"fmmfam/internal/kernel/conformance"
)

// TestRegisteredBackendsConform runs the shared conformance suite once per
// registered backend — the acceptance gate for the whole registry. CI runs
// this explicitly in its matrix so a backend that stops conforming names
// itself in the job output.
func TestRegisteredBackendsConform(t *testing.T) {
	names := kernel.Backends()
	if len(names) < 2 {
		t.Fatalf("expected at least the two built-in backends, registry has %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) { conformance.Run(t, name) })
	}
}

// Differential fuzz targets, one per built-in backend (go test -fuzz runs a
// single target at a time, so each backend gets its own).

func FuzzConformGo4x4(f *testing.F) { conformance.FuzzDifferential(f, "go4x4") }

func FuzzConformGo8x4(f *testing.F) { conformance.FuzzDifferential(f, "go8x4") }
