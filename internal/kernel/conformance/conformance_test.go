package conformance_test

import (
	"testing"

	"fmmfam/internal/kernel"
	"fmmfam/internal/kernel/conformance"
	"fmmfam/internal/matrix"
)

// TestRegisteredBackendsConform runs the shared conformance suite once per
// registered (backend, dtype) pair — the acceptance gate for the whole
// registry. Each dtype iterates its own registration list (BackendsFor), so
// a future single-dtype backend (e.g. an AVX2 float32-only kernel) is
// gated exactly for the pairs it registers, never for ones it doesn't. CI
// runs this explicitly in its matrix so a backend that stops conforming
// names itself (and the offending dtype) in the job output.
func TestRegisteredBackendsConform(t *testing.T) {
	// The two built-in pure-Go backends must stay registered at both
	// precisions — the float64 serving surface and the float32 one both
	// resolve them by name.
	for _, d := range []matrix.Dtype{matrix.Float64, matrix.Float32} {
		got := map[string]bool{}
		for _, name := range kernel.BackendsFor(d) {
			got[name] = true
		}
		if !got["go4x4"] || !got["go8x4"] {
			t.Fatalf("built-in backends missing for %s: have %v", d, kernel.BackendsFor(d))
		}
	}
	for _, name := range kernel.BackendsFor(matrix.Float64) {
		name := name
		t.Run(name+"/float64", func(t *testing.T) { conformance.Run[float64](t, name) })
	}
	for _, name := range kernel.BackendsFor(matrix.Float32) {
		name := name
		t.Run(name+"/float32", func(t *testing.T) { conformance.Run[float32](t, name) })
	}
}

// Differential fuzz targets, one per built-in (backend, dtype) pair
// (go test -fuzz runs a single target at a time, so each pair gets its own).

func FuzzConformGo4x4(f *testing.F) { conformance.FuzzDifferential[float64](f, "go4x4") }

func FuzzConformGo8x4(f *testing.F) { conformance.FuzzDifferential[float64](f, "go8x4") }

func FuzzConformGo4x4F32(f *testing.F) { conformance.FuzzDifferential[float32](f, "go4x4") }

func FuzzConformGo8x4F32(f *testing.F) { conformance.FuzzDifferential[float32](f, "go8x4") }
