// Package sched runs a fixed batch of independent jobs on a small worker
// pool with work stealing. It replaces static tile hand-outs in the
// sharding and batch layers: jobs carry a modelled cost, the costliest are
// seeded first, and idle workers steal from busy ones, so ragged grids and
// heterogeneous job costs no longer pay the straggler round a
// ⌈jobs/workers⌉ round-robin schedule models — the realized schedule tracks
// LPT (longest processing time first) list scheduling instead.
//
// Two entry points share the deque machinery: the package-level Run spawns a
// fresh worker set per batch (the sharding and batch layers, whose callers
// are not themselves workers), while Pool.Run draws helpers from a shared
// bounded budget with the caller participating — the nesting-safe form used
// for parallelism inside one multiplication (term fan-out, row-split adds),
// where submissions can come from goroutines that are already pool workers.
package sched

import (
	"sort"
	"sync"
)

// Job is one unit of work. Run executes it; Cost orders the seeding
// (largest first), so expensive jobs start as early as possible. Cost is a
// relative weight — any consistent unit (flops, tile volume, bytes) works.
type Job struct {
	Cost int64
	Run  func()
}

// Run executes every job exactly once on min(workers, len(jobs))
// goroutines and returns when all jobs have finished. Jobs are sorted
// costliest-first (stable, so equal costs keep submission order — Run is
// deterministic in which worker deque each job lands in, though not in
// execution interleaving) and seeded round-robin across per-worker deques;
// each worker drains its own deque front to back (its costliest first) and,
// when empty, steals from the back of the first non-empty victim — half the
// victim's deque at once when it is backlogged (≥ stealHalfMin jobs), one
// job otherwise. Jobs must
// not enqueue further jobs; with a fixed job set, one empty-handed sweep of
// every deque means no work remains and the worker exits.
//
// With workers ≤ 1 the jobs run serially on the calling goroutine in
// submission order.
func Run(workers int, jobs []Job) {
	n := len(jobs)
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range jobs {
			jobs[i].Run()
		}
		return
	}
	deques := seedDeques(jobs, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			defer wg.Done()
			drain(deques, jobs, self)
		}(w)
	}
	wg.Wait()
}

// seedDeques sorts jobs costliest-first (stable, so equal costs keep
// submission order) and deals them round-robin across workers per-worker
// deques.
func seedDeques(jobs []Job, workers int) []deque {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Cost > jobs[order[b]].Cost })
	deques := make([]deque, workers)
	for pos, idx := range order {
		d := &deques[pos%workers]
		d.jobs = append(d.jobs, idx)
	}
	return deques
}

// drain is one worker's loop: pop from the own deque front, steal from the
// back of a victim when empty, exit when one empty-handed sweep of every
// deque finds no work.
func drain(deques []deque, jobs []Job, self int) {
	for {
		idx, ok := deques[self].popFront()
		if !ok {
			var batch []int
			batch, ok = steal(deques, self)
			if ok {
				idx = batch[0]
				if len(batch) > 1 {
					// The thief's own deque is empty (that is why it
					// stole), so the surplus lands at its front in
					// the segment's original costliest-first order.
					deques[self].pushBatch(batch[1:])
				}
			}
		}
		if !ok {
			return
		}
		jobs[idx].Run()
	}
}

// Pool is a shared worker budget for fork-join parallelism that may nest:
// term-level fan-out inside one FMM call, row-split submatrix additions
// inside one of those terms, and concurrent top-level calls all draw helper
// goroutines from one budget instead of each spawning their own workers and
// oversubscribing the machine.
//
// A Pool of size W holds W−1 helper tokens. Pool.Run always executes jobs on
// the calling goroutine and additionally recruits up to min(len(jobs)−1,
// available) helpers by acquiring tokens without blocking; a helper returns
// its token when it runs out of work. Because submission never blocks and the
// caller always makes progress by itself, a job may call Run on the same Pool
// (or any other) freely: when the budget is exhausted the nested call simply
// degrades to the caller running its jobs serially — nesting can reduce
// parallelism, never deadlock. Each top-level caller contributes its own
// goroutine, so C concurrent Run calls execute on at most C + W − 1
// goroutines.
type Pool struct {
	tokens chan struct{}
}

// NewPool returns a Pool with a budget of workers goroutines (the caller of
// Run counts as one, so workers−1 helper tokens are banked). workers < 1 is
// treated as 1: every Run executes serially on its caller.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{tokens: make(chan struct{}, workers-1)}
	for i := 0; i < workers-1; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Run executes every job exactly once and returns when all have finished.
// The calling goroutine participates as a worker (jobs are seeded across the
// caller plus however many helper tokens were free — work stealing balances
// exactly as in the package-level Run), so Run is safe to call from inside a
// job running on this same Pool. With no free tokens (or a single job) the
// jobs run serially on the caller in submission order.
func (p *Pool) Run(jobs []Job) {
	n := len(jobs)
	if n == 0 {
		return
	}
	maxHelpers := n - 1
	if c := cap(p.tokens); maxHelpers > c {
		maxHelpers = c
	}
	helpers := 0
	for helpers < maxHelpers {
		select {
		case <-p.tokens:
			helpers++
			continue
		default:
		}
		break
	}
	if helpers == 0 {
		for i := range jobs {
			jobs[i].Run()
		}
		return
	}
	deques := seedDeques(jobs, helpers+1)
	var wg sync.WaitGroup
	wg.Add(helpers)
	for w := 1; w <= helpers; w++ {
		go func(self int) {
			defer wg.Done()
			defer func() { p.tokens <- struct{}{} }()
			drain(deques, jobs, self)
		}(w)
	}
	drain(deques, jobs, 0)
	wg.Wait()
}

// deque is one worker's job queue: indices into the job slice, costliest
// first. A mutex is plenty here — jobs are matrix products, so queue
// operations are noise next to job runtimes.
type deque struct {
	mu   sync.Mutex
	jobs []int
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	idx := d.jobs[0]
	d.jobs = d.jobs[1:]
	return idx, true
}

// stealHalfMin is the victim backlog at which a thief takes half the deque
// in one steal instead of a single job. Below it, batching would leave the
// victim's owner with almost nothing the moment it finishes its current
// job; at or above it, per-job steals on ragged grids degenerate into one
// lock acquisition per job while the backlogged owner is still busy — the
// classic work-stealing trade, resolved the same way Cilk-style runtimes
// do (steal a constant fraction, not a constant count).
const stealHalfMin = 4

// stealBack removes work from the back of the deque for a thief: half the
// deque (rounded down) when it holds at least stealHalfMin jobs, one job
// otherwise. The returned segment preserves deque order, so its first
// element is the costliest of the stolen jobs.
func (d *deque) stealBack() ([]int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.jobs)
	if n == 0 {
		return nil, false
	}
	take := 1
	if n >= stealHalfMin {
		take = n / 2
	}
	batch := append([]int(nil), d.jobs[n-take:]...)
	d.jobs = d.jobs[:n-take]
	return batch, true
}

// pushBatch appends a stolen surplus to the deque in order.
func (d *deque) pushBatch(batch []int) {
	d.mu.Lock()
	d.jobs = append(d.jobs, batch...)
	d.mu.Unlock()
}

// steal scans the other workers' deques round-robin from self+1 and takes
// from the back of the first non-empty one — the victim's cheapest
// remaining jobs, leaving its costliest (front) work undisturbed for the
// owner. Backlogged victims (≥ stealHalfMin jobs) lose half their deque in
// one steal, so on ragged grids a starved worker re-balances in O(log n)
// steals instead of one steal per job.
func steal(deques []deque, self int) ([]int, bool) {
	for off := 1; off < len(deques); off++ {
		if batch, ok := deques[(self+off)%len(deques)].stealBack(); ok {
			return batch, true
		}
	}
	return nil, false
}
