// Package sched runs a fixed batch of independent jobs on a small worker
// pool with work stealing. It replaces static tile hand-outs in the
// sharding and batch layers: jobs carry a modelled cost, the costliest are
// seeded first, and idle workers steal from busy ones, so ragged grids and
// heterogeneous job costs no longer pay the straggler round a
// ⌈jobs/workers⌉ round-robin schedule models — the realized schedule tracks
// LPT (longest processing time first) list scheduling instead.
package sched

import (
	"sort"
	"sync"
)

// Job is one unit of work. Run executes it; Cost orders the seeding
// (largest first), so expensive jobs start as early as possible. Cost is a
// relative weight — any consistent unit (flops, tile volume, bytes) works.
type Job struct {
	Cost int64
	Run  func()
}

// Run executes every job exactly once on min(workers, len(jobs))
// goroutines and returns when all jobs have finished. Jobs are sorted
// costliest-first (stable, so equal costs keep submission order — Run is
// deterministic in which worker deque each job lands in, though not in
// execution interleaving) and seeded round-robin across per-worker deques;
// each worker drains its own deque front to back (its costliest first) and,
// when empty, steals from the back of the first non-empty victim. Jobs must
// not enqueue further jobs; with a fixed job set, one empty-handed sweep of
// every deque means no work remains and the worker exits.
//
// With workers ≤ 1 the jobs run serially on the calling goroutine in
// submission order.
func Run(workers int, jobs []Job) {
	n := len(jobs)
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range jobs {
			jobs[i].Run()
		}
		return
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Cost > jobs[order[b]].Cost })
	deques := make([]deque, workers)
	for pos, idx := range order {
		d := &deques[pos%workers]
		d.jobs = append(d.jobs, idx)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			defer wg.Done()
			for {
				idx, ok := deques[self].popFront()
				if !ok {
					idx, ok = steal(deques, self)
				}
				if !ok {
					return
				}
				jobs[idx].Run()
			}
		}(w)
	}
	wg.Wait()
}

// deque is one worker's job queue: indices into the job slice, costliest
// first. A mutex is plenty here — jobs are matrix products, so queue
// operations are noise next to job runtimes.
type deque struct {
	mu   sync.Mutex
	jobs []int
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	idx := d.jobs[0]
	d.jobs = d.jobs[1:]
	return idx, true
}

func (d *deque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	idx := d.jobs[len(d.jobs)-1]
	d.jobs = d.jobs[:len(d.jobs)-1]
	return idx, true
}

// steal scans the other workers' deques round-robin from self+1 and takes
// the back of the first non-empty one — the victim's cheapest remaining
// job, leaving its costliest (front) work undisturbed for the owner.
func steal(deques []deque, self int) (int, bool) {
	for off := 1; off < len(deques); off++ {
		if idx, ok := deques[(self+off)%len(deques)].popBack(); ok {
			return idx, true
		}
	}
	return 0, false
}
