package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunExecutesAllJobsExactlyOnce sweeps pool and job counts,
// including the degenerate corners (no jobs, one job, single-worker pool).
func TestPoolRunExecutesAllJobsExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, workers := range []int{0, 1, 2, 4, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 301} {
			counts := make([]atomic.Int32, n)
			jobs := make([]Job, n)
			for i := range jobs {
				i := i
				jobs[i] = Job{Cost: rng.Int63n(1000), Run: func() { counts[i].Add(1) }}
			}
			p.Run(jobs)
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: job %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestPoolSerialFallbackKeepsOrder: a single-worker pool (no helper tokens)
// must run jobs on the caller in submission order — the property the BFS
// executor's Threads=1 degradation and the addScaled fallback rely on.
func TestPoolSerialFallbackKeepsOrder(t *testing.T) {
	p := NewPool(1)
	var order []int
	jobs := make([]Job, 8)
	for i := range jobs {
		i := i
		jobs[i] = Job{Cost: int64(i), Run: func() { order = append(order, i) }}
	}
	p.Run(jobs)
	for i, got := range order {
		if got != i {
			t.Fatalf("serial fallback reordered jobs: %v", order)
		}
	}
}

// TestPoolNestedRunNoDeadlock is the deadlock regression test for nested
// submission: every outer job submits an inner batch to the same pool. With
// blocking token acquisition this wedges as soon as all helpers are parked
// in outer jobs; the non-blocking caller-participates design must complete —
// bounded here by a watchdog so a regression fails fast instead of hanging
// the suite.
func TestPoolNestedRunNoDeadlock(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int32
	outer := make([]Job, 16)
	for i := range outer {
		outer[i] = Job{Cost: 1, Run: func() {
			inner := make([]Job, 8)
			for j := range inner {
				inner[j] = Job{Cost: 1, Run: func() {
					// Third nesting level, fan-out inside fan-out.
					p.Run([]Job{{Cost: 1, Run: func() { ran.Add(1) }}})
				}}
			}
			p.Run(inner)
		}}
	}
	done := make(chan struct{})
	go func() {
		p.Run(outer)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Pool.Run deadlocked")
	}
	if got := ran.Load(); got != 16*8 {
		t.Fatalf("innermost jobs ran %d times, want %d", got, 16*8)
	}
}

// TestPoolConcurrencyStaysWithinBudget: C concurrent Run calls on a pool of
// W may run on at most C + W − 1 goroutines total; with C=1 the in-flight
// job count must never exceed W.
func TestPoolConcurrencyStaysWithinBudget(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var inFlight, highWater atomic.Int32
	jobs := make([]Job, 24)
	for i := range jobs {
		jobs[i] = Job{Cost: 1, Run: func() {
			cur := inFlight.Add(1)
			for {
				hw := highWater.Load()
				if cur <= hw || highWater.CompareAndSwap(hw, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
		}}
	}
	p.Run(jobs)
	if hw := highWater.Load(); hw > workers {
		t.Fatalf("high-water concurrency %d exceeds budget %d", hw, workers)
	}
	if hw := highWater.Load(); hw < 2 {
		t.Fatalf("high-water concurrency %d, want ≥ 2 (helpers never recruited)", hw)
	}
}

// TestPoolTokensReturned: after Run completes, the full helper budget must
// be available again — leaked tokens would silently serialize later calls.
func TestPoolTokensReturned(t *testing.T) {
	p := NewPool(4)
	for round := 0; round < 5; round++ {
		jobs := make([]Job, 12)
		var n atomic.Int32
		for i := range jobs {
			jobs[i] = Job{Cost: 1, Run: func() { n.Add(1) }}
		}
		p.Run(jobs)
		if n.Load() != 12 {
			t.Fatalf("round %d: ran %d jobs", round, n.Load())
		}
	}
	if got := len(p.tokens); got != cap(p.tokens) {
		t.Fatalf("%d of %d helper tokens banked after quiesce", got, cap(p.tokens))
	}
}

// TestPoolRunRace exercises concurrent top-level Run calls under -race.
func TestPoolRunRace(t *testing.T) {
	p := NewPool(4)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				jobs := make([]Job, 9)
				for i := range jobs {
					jobs[i] = Job{Cost: int64(i), Run: func() { total.Add(1) }}
				}
				p.Run(jobs)
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 6*20*9 {
		t.Fatalf("ran %d jobs, want %d", got, 6*20*9)
	}
}
