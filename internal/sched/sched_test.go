package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fmmfam/internal/shard"
)

// TestRunExecutesAllJobsExactlyOnce sweeps worker and job counts, including
// the degenerate corners (no jobs, one job, more workers than jobs), and
// checks every job ran exactly once.
func TestRunExecutesAllJobsExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, workers := range []int{0, 1, 2, 3, 8, 16} {
		for _, n := range []int{0, 1, 2, 7, 64, 501} {
			counts := make([]atomic.Int32, n)
			jobs := make([]Job, n)
			for i := range jobs {
				i := i
				jobs[i] = Job{
					Cost: rng.Int63n(1000),
					Run:  func() { counts[i].Add(1) },
				}
			}
			Run(workers, jobs)
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: job %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestRunActuallyOverlapsJobs: with sleeping jobs, the pool must reach a
// concurrency level above one — the static serial fallback would not.
func TestRunActuallyOverlapsJobs(t *testing.T) {
	var inFlight, highWater atomic.Int32
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Cost: 1, Run: func() {
			cur := inFlight.Add(1)
			for {
				hw := highWater.Load()
				if cur <= hw || highWater.CompareAndSwap(hw, cur) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inFlight.Add(-1)
		}}
	}
	Run(4, jobs)
	if hw := highWater.Load(); hw < 2 {
		t.Fatalf("high-water concurrency %d, want ≥ 2", hw)
	}
}

// TestRunStealsFromStragglers: seed one worker with a long job and pile the
// rest of the work behind it; thieves must drain the straggler's deque, so
// total wall time stays near the long job instead of serializing behind it.
func TestRunStealsFromStragglers(t *testing.T) {
	const workers = 4
	// Costs are descending, so job 0 (the long one) seeds worker 0's front
	// and jobs 4, 8, 12, … queue behind it in the same deque.
	var ran atomic.Int32
	jobs := make([]Job, 16)
	jobs[0] = Job{Cost: 1000, Run: func() {
		time.Sleep(60 * time.Millisecond)
		ran.Add(1)
	}}
	for i := 1; i < len(jobs); i++ {
		jobs[i] = Job{Cost: int64(1000 - i), Run: func() {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}}
	}
	start := time.Now()
	Run(workers, jobs)
	elapsed := time.Since(start)
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d jobs, want 16", got)
	}
	// Serial drain of worker 0's deque would take ≥ 60ms + 3×1ms after the
	// long job; stealing lets the other workers take those jobs while the
	// long one runs. Generous bound to stay robust on loaded CI machines.
	if elapsed > 55*time.Millisecond*4 {
		t.Fatalf("elapsed %v suggests no overlap at all", elapsed)
	}
}

// TestRunRace is the -race fodder: many concurrent Run calls sharing
// nothing, each hammering its own counter set.
func TestRunRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var total atomic.Int64
			jobs := make([]Job, 100)
			for i := range jobs {
				i := i
				jobs[i] = Job{Cost: int64(i % 7), Run: func() { total.Add(int64(i)) }}
			}
			Run(3, jobs)
			if total.Load() != 99*100/2 {
				t.Errorf("sum %d, want %d", total.Load(), 99*100/2)
			}
		}()
	}
	wg.Wait()
}

// TestStealBackTakesHalfWhenBacklogged pins the steal-half mechanics:
// victims holding ≥ stealHalfMin jobs lose half their deque (rounded down,
// from the back, order preserved), smaller victims lose exactly one, and an
// empty deque refuses.
func TestStealBackTakesHalfWhenBacklogged(t *testing.T) {
	mk := func(n int) *deque {
		d := &deque{}
		for i := 0; i < n; i++ {
			d.jobs = append(d.jobs, i)
		}
		return d
	}
	for _, tc := range []struct {
		n, wantTake int
	}{
		{0, 0}, {1, 1}, {2, 1}, {3, 1}, // below the threshold: one job
		{4, 2}, {5, 2}, {8, 4}, {9, 4}, {17, 8}, // at/above: half, rounded down
	} {
		d := mk(tc.n)
		batch, ok := d.stealBack()
		if tc.n == 0 {
			if ok {
				t.Fatalf("stealBack on empty deque returned %v", batch)
			}
			continue
		}
		if !ok || len(batch) != tc.wantTake {
			t.Fatalf("n=%d: stole %d jobs (%v), want %d", tc.n, len(batch), batch, tc.wantTake)
		}
		if len(d.jobs) != tc.n-tc.wantTake {
			t.Fatalf("n=%d: victim left with %d jobs, want %d", tc.n, len(d.jobs), tc.n-tc.wantTake)
		}
		// The batch is the back segment in original order; the victim keeps
		// the front.
		for i, idx := range batch {
			if idx != tc.n-tc.wantTake+i {
				t.Fatalf("n=%d: batch %v is not the ordered back segment", tc.n, batch)
			}
		}
	}
}

// TestStealDistributionRaggedGrid drives the steal path on a ragged 3D
// shard grid — the workload the steal-half heuristic exists for: tile costs
// spanning two orders of magnitude, seeded across few workers. One worker
// is pinned in a long job; the remaining workers must drain every other
// job (exactly once) before the long job finishes, which requires thieves
// to take work out of the blocked worker's deque in batches rather than
// getting stuck behind it.
func TestStealDistributionRaggedGrid(t *testing.T) {
	spec, ok := shard.Split(3000, 2000, 900, shard.Options{Workers: 8, MinTile: 96, KSplit: true})
	if !ok {
		t.Fatal("expected the ragged problem to shard")
	}
	tiles := spec.Tiles()
	if len(tiles) < 8 {
		t.Fatalf("want a ragged grid with ≥ 8 tiles, got %d (%v)", len(tiles), spec)
	}

	const workers = 2
	// jobs[0] gets the largest cost, so it seeds worker 0's deque front and
	// the sort leaves the remaining tile jobs alternating across both
	// deques. Worker 0 blocks in it until every other job has run.
	others := int32(len(tiles))
	allOthersDone := make(chan struct{})
	var doneOnce sync.Once
	var ran atomic.Int32
	jobs := make([]Job, 1+len(tiles))
	jobs[0] = Job{Cost: 1 << 60, Run: func() {
		<-allOthersDone
		ran.Add(1)
	}}
	for i, tile := range tiles {
		cost := int64(tile.Rows) * int64(tile.Cols) * int64(tile.Depth)
		jobs[1+i] = Job{Cost: cost, Run: func() {
			ran.Add(1)
			if atomic.AddInt32(&others, -1) == 0 {
				doneOnce.Do(func() { close(allOthersDone) })
			}
		}}
	}
	done := make(chan struct{})
	go func() {
		Run(workers, jobs)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: thief failed to drain the blocked worker's deque")
	}
	if got := ran.Load(); got != int32(len(jobs)) {
		t.Fatalf("ran %d jobs, want %d", got, len(jobs))
	}
}
