package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunExecutesAllJobsExactlyOnce sweeps worker and job counts, including
// the degenerate corners (no jobs, one job, more workers than jobs), and
// checks every job ran exactly once.
func TestRunExecutesAllJobsExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, workers := range []int{0, 1, 2, 3, 8, 16} {
		for _, n := range []int{0, 1, 2, 7, 64, 501} {
			counts := make([]atomic.Int32, n)
			jobs := make([]Job, n)
			for i := range jobs {
				i := i
				jobs[i] = Job{
					Cost: rng.Int63n(1000),
					Run:  func() { counts[i].Add(1) },
				}
			}
			Run(workers, jobs)
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: job %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestRunActuallyOverlapsJobs: with sleeping jobs, the pool must reach a
// concurrency level above one — the static serial fallback would not.
func TestRunActuallyOverlapsJobs(t *testing.T) {
	var inFlight, highWater atomic.Int32
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Cost: 1, Run: func() {
			cur := inFlight.Add(1)
			for {
				hw := highWater.Load()
				if cur <= hw || highWater.CompareAndSwap(hw, cur) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inFlight.Add(-1)
		}}
	}
	Run(4, jobs)
	if hw := highWater.Load(); hw < 2 {
		t.Fatalf("high-water concurrency %d, want ≥ 2", hw)
	}
}

// TestRunStealsFromStragglers: seed one worker with a long job and pile the
// rest of the work behind it; thieves must drain the straggler's deque, so
// total wall time stays near the long job instead of serializing behind it.
func TestRunStealsFromStragglers(t *testing.T) {
	const workers = 4
	// Costs are descending, so job 0 (the long one) seeds worker 0's front
	// and jobs 4, 8, 12, … queue behind it in the same deque.
	var ran atomic.Int32
	jobs := make([]Job, 16)
	jobs[0] = Job{Cost: 1000, Run: func() {
		time.Sleep(60 * time.Millisecond)
		ran.Add(1)
	}}
	for i := 1; i < len(jobs); i++ {
		jobs[i] = Job{Cost: int64(1000 - i), Run: func() {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}}
	}
	start := time.Now()
	Run(workers, jobs)
	elapsed := time.Since(start)
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d jobs, want 16", got)
	}
	// Serial drain of worker 0's deque would take ≥ 60ms + 3×1ms after the
	// long job; stealing lets the other workers take those jobs while the
	// long one runs. Generous bound to stay robust on loaded CI machines.
	if elapsed > 55*time.Millisecond*4 {
		t.Fatalf("elapsed %v suggests no overlap at all", elapsed)
	}
}

// TestRunRace is the -race fodder: many concurrent Run calls sharing
// nothing, each hammering its own counter set.
func TestRunRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var total atomic.Int64
			jobs := make([]Job, 100)
			for i := range jobs {
				i := i
				jobs[i] = Job{Cost: int64(i % 7), Run: func() { total.Add(int64(i)) }}
			}
			Run(3, jobs)
			if total.Load() != 99*100/2 {
				t.Errorf("sum %d, want %d", total.Load(), 99*100/2)
			}
		}()
	}
	wg.Wait()
}
