module fmmfam

go 1.24
