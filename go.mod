module fmmfam

go 1.21
