package fmmfam

// Tests for the serving layer: automatic sharding of large MulAdds, the
// Future-based async queue, and their interaction with the batch pool. Run
// with -race; the CI workflow always does.

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"fmmfam/internal/matrix"
)

// servingCfg is a small-blocking config that shards aggressively so the
// tests cover the sharded path at test-sized problems: any max(m,n) ≥ 128
// with tiles ≥ 48 splits.
func servingCfg() Config {
	return Config{
		MC: 16, KC: 16, NC: 32, Threads: 4,
		ShardThreshold: 128, ShardMinTile: 48,
	}
}

// TestShardedMatchesUnsharded drives the auto-sharding MulAdd path over
// square, tall, wide, and non-power-of-two shapes and checks, per shape:
//
//  1. the sharded result is bit-identical to executing the same tile
//     decomposition sequentially through the serial twin — sharding is pure
//     scheduling, so pool interleaving must not perturb a single bit;
//  2. repeated sharded runs are bit-identical (deterministic serving);
//  3. the sharded result matches the unsharded plan path within a tight
//     tolerance — the two paths group the additions of the exact same real
//     product differently (full-size plan vs per-tile plans), so equality is
//     up to roundoff, not bitwise;
//  4. the sharded result matches the naive triple-loop reference.
func TestShardedMatchesUnsharded(t *testing.T) {
	shapes := [][3]int{
		{256, 256, 256}, // square
		{512, 96, 64},   // tall: shards along M only
		{64, 96, 512},   // wide: shards along N only
		{257, 129, 193}, // non-power-of-two everywhere
		{300, 40, 200},  // shallow K below the tile floor
	}
	rng := rand.New(rand.NewSource(7))
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		mu := NewMultiplier(servingCfg(), PaperArch())
		spec, ok := mu.shardSpec(m, k, n)
		if !ok {
			t.Fatalf("shape %v: expected the serving config to shard", s)
		}
		a, b := NewMatrix(m, k), NewMatrix(k, n)
		a.FillRand(rng)
		b.FillRand(rng)

		sharded := NewMatrix(m, n)
		if err := mu.MulAdd(sharded, a, b); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}

		// (1) bit-identical to sequential execution of the same tiles. This
		// is the 2D contract — these shapes must keep K whole (K-split
		// would still be correct, but only run-to-run deterministic).
		if spec.GridK != 1 {
			t.Fatalf("shape %v: expected the 2D decomposition, got %v", s, spec)
		}
		seq := NewMatrix(m, n)
		exec := mu.serialMultiplier()
		for _, tl := range spec.Tiles() {
			if err := exec.MulAdd(
				seq.View(tl.I, tl.J, tl.Rows, tl.Cols),
				a.View(tl.I, tl.P, tl.Rows, tl.Depth),
				b.View(tl.P, tl.J, tl.Depth, tl.Cols),
			); err != nil {
				t.Fatalf("shape %v tile %+v: %v", s, tl, err)
			}
		}
		if d := sharded.MaxAbsDiff(seq); d != 0 {
			t.Fatalf("shape %v: pool scheduling perturbed the result by %g", s, d)
		}

		// (2) deterministic across runs.
		again := NewMatrix(m, n)
		if err := mu.MulAdd(again, a, b); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		if d := sharded.MaxAbsDiff(again); d != 0 {
			t.Fatalf("shape %v: sharded MulAdd not deterministic, diff %g", s, d)
		}

		// (3) tolerance-equal to the unsharded plan path.
		cfg := servingCfg()
		cfg.ShardThreshold = -1 // disable sharding
		unsharded := NewMatrix(m, n)
		if err := NewMultiplier(cfg, PaperArch()).MulAdd(unsharded, a, b); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		if d := sharded.MaxAbsDiff(unsharded); d > 1e-9 {
			t.Fatalf("shape %v: sharded vs unsharded diff %g", s, d)
		}

		// (4) matches the naive reference.
		want := NewMatrix(m, n)
		matrix.MulAdd(want, a, b)
		if d := sharded.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("shape %v: sharded vs reference diff %g", s, d)
		}
	}
}

// TestShardedKSplit drives the K-split path on K-dominant shapes (M×N too
// small to cut, huge inner dimension) and checks, per shape:
//
//  1. the problem actually takes the 3D path (GridK ≥ 2) — these shapes
//     never sharded at all under the 2D-only decomposition;
//  2. the result matches the naive triple-loop reference within tolerance;
//  3. repeated runs are bit-identical — the reduction buffers fold into C
//     in fixed slab order, so scheduling nondeterminism must not leak into
//     the numbers (the K-split determinism contract);
//  4. disabling Config.ShardKSplit restores the PR 2 behavior: the problem
//     does not shard, and still computes the same product unsharded.
func TestShardedKSplit(t *testing.T) {
	shapes := [][3]int{
		{48, 512, 48},  // K-dominant, divisible
		{40, 513, 52},  // non-dividing K and ragged output
		{64, 1024, 80}, // deeper K, more slabs available
	}
	rng := rand.New(rand.NewSource(17))
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		cfg := Config{
			MC: 16, KC: 16, NC: 32, Threads: 4,
			ShardThreshold: 256, ShardMinTile: 48,
		}
		mu := NewMultiplier(cfg, PaperArch())
		spec, ok := mu.shardSpec(m, k, n)
		if !ok || spec.GridK < 2 {
			t.Fatalf("shape %v: expected a K-split, got %v ok=%v", s, spec, ok)
		}
		a, b := NewMatrix(m, k), NewMatrix(k, n)
		a.FillRand(rng)
		b.FillRand(rng)

		got := NewMatrix(m, n)
		if err := mu.MulAdd(got, a, b); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		want := NewMatrix(m, n)
		matrix.MulAdd(want, a, b)
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("shape %v: K-split vs reference diff %g", s, d)
		}

		// Run-to-run bit determinism, several times so the scheduler gets
		// chances to interleave differently (and the reduction-buffer pool
		// serves both fresh and recycled buffers).
		for rep := 0; rep < 5; rep++ {
			again := NewMatrix(m, n)
			if err := mu.MulAdd(again, a, b); err != nil {
				t.Fatalf("shape %v rep %d: %v", s, rep, err)
			}
			if d := got.MaxAbsDiff(again); d != 0 {
				t.Fatalf("shape %v rep %d: K-split not bit-deterministic, diff %g", s, rep, d)
			}
		}

		// Knob off: no shard for this shape, same product unsharded.
		off := cfg
		off.ShardKSplit = -1
		muOff := NewMultiplier(off, PaperArch())
		if spec, ok := muOff.shardSpec(m, k, n); ok {
			t.Fatalf("shape %v: ShardKSplit<0 still sharded as %v", s, spec)
		}
		unsharded := NewMatrix(m, n)
		if err := muOff.MulAdd(unsharded, a, b); err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		if d := unsharded.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("shape %v: unsharded vs reference diff %g", s, d)
		}
	}
}

// TestKDominantAcceptanceShape pins the acceptance criterion: the
// 256×32768×256 inner-product shape on a default parallel config — which
// PR 2's 2D decomposition left unsharded on one worker — now shards via
// K-split, and the C += A·B it computes at a scaled-down K stays correct
// and bit-deterministic.
func TestKDominantAcceptanceShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 4
	mu := NewMultiplier(cfg, PaperArch())
	spec, ok := mu.shardSpec(256, 32768, 256)
	if !ok {
		t.Fatal("256×32768×256 must shard on the default parallel config")
	}
	if spec.GridK < 2 {
		t.Fatalf("256×32768×256 sharded without K-split: %v", spec)
	}
	for _, tl := range spec.Tiles() {
		if tl.Depth < mu.shardMinTile() {
			t.Fatalf("%v: slab %+v under the model tile floor %d", spec, tl, mu.shardMinTile())
		}
	}
	// 2D-only would not shard it at all (the PR 2 behavior).
	off := cfg
	off.ShardKSplit = -1
	if spec, ok := NewMultiplier(off, PaperArch()).shardSpec(256, 32768, 256); ok {
		t.Fatalf("2D-only decomposition sharded the K-dominant shape as %v", spec)
	}
}

// TestShardGating: sharding must stay off for single-threaded multipliers,
// sub-threshold problems, and explicitly disabled configs — those calls take
// the plain plan path.
func TestShardGating(t *testing.T) {
	single := servingCfg()
	single.Threads = 1
	if _, ok := NewMultiplier(single, PaperArch()).shardSpec(4096, 4096, 4096); ok {
		t.Fatal("Threads=1 must not shard")
	}
	small := servingCfg()
	if _, ok := NewMultiplier(small, PaperArch()).shardSpec(100, 100, 100); ok {
		t.Fatal("sub-threshold problem must not shard")
	}
	off := servingCfg()
	off.ShardThreshold = -1
	if _, ok := NewMultiplier(off, PaperArch()).shardSpec(4096, 4096, 4096); ok {
		t.Fatal("ShardThreshold<0 must disable sharding")
	}
	// Default knobs derive the tile floor from the model: a large problem on
	// a parallel config shards out of the box.
	def := DefaultConfig()
	def.Threads = 8
	mu := NewMultiplier(def, PaperArch())
	spec, ok := mu.shardSpec(4096, 4096, 4096)
	if !ok {
		t.Fatal("default parallel config must shard a 4096³ problem")
	}
	floor := mu.shardMinTile()
	if floor < 64 || floor > 1<<15 {
		t.Fatalf("model-derived tile floor %d out of range", floor)
	}
	for _, tl := range spec.Tiles() {
		if tl.Rows < floor || tl.Cols < floor {
			t.Fatalf("tile %+v under model floor %d", tl, floor)
		}
	}
}

// TestMulAddBatchPlansInSerialTwin pins the unified batch contract: whatever
// the worker count — including the workers==1 path that used to fall back to
// the parent's fully-parallel plans — batch jobs plan and execute in the
// serial twin, so batch results and cache behavior do not depend on Threads.
func TestMulAddBatchPlansInSerialTwin(t *testing.T) {
	run := func(threads int) (*Multiplier, Matrix) {
		cfg := Config{MC: 16, KC: 16, NC: 32, Threads: threads}
		mu := NewMultiplier(cfg, PaperArch())
		rng := rand.New(rand.NewSource(11))
		a, b := NewMatrix(96, 64), NewMatrix(64, 96)
		a.FillRand(rng)
		b.FillRand(rng)
		c := NewMatrix(96, 96)
		if err := mu.MulAddBatch([]BatchJob{{C: c, A: a, B: b}}); err != nil {
			t.Fatal(err)
		}
		return mu, c
	}
	mu1, c1 := run(1)
	mu4, c4 := run(4)
	if d := c1.MaxAbsDiff(c4); d != 0 {
		t.Fatalf("batch result depends on worker count: diff %g", d)
	}
	for _, mu := range []*Multiplier{mu1, mu4} {
		if got := mu.CachedPlans(); got != 0 {
			t.Fatalf("batch planned %d plans in the parent cache, want 0", got)
		}
		if got := mu.serialMultiplier().CachedPlans(); got == 0 {
			t.Fatal("batch did not plan in the serial twin")
		}
	}
}

// TestMulAddAsyncConcurrentSubmitters hammers one multiplier's async queue
// from many goroutines with mixed shapes through a deliberately tiny queue
// (so submitters block on backpressure) and verifies every future resolves
// with the right product. Under -race this proves the submission path shares
// no unsynchronized state.
func TestMulAddAsyncConcurrentSubmitters(t *testing.T) {
	cfg := Config{MC: 16, KC: 16, NC: 32, Threads: 2, QueueWorkers: 3, QueueDepth: 2}
	mu := NewMultiplier(cfg, PaperArch())
	defer mu.Close()
	refs := makeRefProducts(5)
	const submitters = 6
	const perSubmitter = 5
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			futures := make([]*Future, perSubmitter)
			results := make([]Matrix, perSubmitter)
			for it := 0; it < perSubmitter; it++ {
				r := refs[(g+it)%len(refs)]
				results[it] = NewMatrix(r.want.Rows, r.want.Cols)
				futures[it] = mu.MulAddAsync(results[it], r.a, r.b)
			}
			for it, f := range futures {
				if err := f.Wait(); err != nil {
					t.Errorf("submitter %d future %d: %v", g, it, err)
					return
				}
				r := refs[(g+it)%len(refs)]
				if d := results[it].MaxAbsDiff(r.want); d > 1e-9 {
					t.Errorf("submitter %d future %d: diff %g", g, it, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMulAddAsyncErrorsAndClose covers the async lifecycle: dimension errors
// resolve immediately without queueing, Close drains all submitted futures,
// submissions after Close fail with ErrClosed, Close is idempotent, and an
// unused multiplier closes trivially.
func TestMulAddAsyncErrorsAndClose(t *testing.T) {
	// Close before the async path was ever used must still stick: later
	// submissions get ErrClosed rather than lazily reviving the pool.
	unused := NewMultiplier(servingCfg(), PaperArch())
	if err := unused.Close(); err != nil {
		t.Fatalf("closing an unused multiplier: %v", err)
	}
	if err := unused.MulAddAsync(NewMatrix(4, 4), NewMatrix(4, 4), NewMatrix(4, 4)).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("submission after pre-use Close: err=%v, want ErrClosed", err)
	}

	mu := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 1, QueueWorkers: 2}, PaperArch())
	bad := mu.MulAddAsync(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
	select {
	case <-bad.Done():
	default:
		t.Fatal("dimension-error future must resolve immediately")
	}
	if bad.Wait() == nil {
		t.Fatal("expected dimension error")
	}

	refs := makeRefProducts(6)
	futures := make([]*Future, 0, len(refs))
	results := make([]Matrix, 0, len(refs))
	for _, r := range refs {
		c := NewMatrix(r.want.Rows, r.want.Cols)
		results = append(results, c)
		futures = append(futures, mu.MulAddAsync(c, r.a, r.b))
	}
	if err := mu.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futures {
		select {
		case <-f.Done():
		default:
			t.Fatalf("future %d not resolved after Close", i)
		}
		if err := f.Wait(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if d := results[i].MaxAbsDiff(refs[i].want); d > 1e-9 {
			t.Fatalf("future %d: diff %g", i, d)
		}
	}
	if err := mu.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	good := refs[0]
	late := mu.MulAddAsync(NewMatrix(good.want.Rows, good.want.Cols), good.a, good.b)
	if err := late.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("submission after Close: err=%v, want ErrClosed", err)
	}
	// The synchronous paths outlive Close.
	c := NewMatrix(good.want.Rows, good.want.Cols)
	if err := mu.MulAdd(c, good.a, good.b); err != nil {
		t.Fatalf("MulAdd after Close: %v", err)
	}
	if d := c.MaxAbsDiff(good.want); d > 1e-9 {
		t.Fatalf("MulAdd after Close: diff %g", d)
	}
}

// TestCloseReleasesGoroutines: Close must tear down every worker the async
// pool started — a serving process that opens and closes multipliers (e.g.
// per tenant) must not leak a goroutine per lifetime. NumGoroutine is
// compared with retries because exiting workers are only eventually gone.
func TestCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	mu := NewMultiplier(Config{MC: 16, KC: 16, NC: 32, Threads: 4, QueueWorkers: 4}, PaperArch())
	refs := makeRefProducts(3)
	futures := make([]*Future, 0, len(refs))
	for _, r := range refs {
		futures = append(futures, mu.MulAddAsync(NewMatrix(r.want.Rows, r.want.Cols), r.a, r.b))
	}
	for _, f := range futures {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := mu.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Close (wanted ≤ before)",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMulAddAsyncLargeJobSharded is the end-to-end serving flow: an async
// submission whose problem is big enough to shard still returns the right
// answer (the async worker executes it single-threaded through the twin, so
// it must not recursively re-shard into a deadlock).
func TestMulAddAsyncLargeJobSharded(t *testing.T) {
	mu := NewMultiplier(servingCfg(), PaperArch())
	defer mu.Close()
	rng := rand.New(rand.NewSource(13))
	a, b := NewMatrix(192, 64), NewMatrix(64, 192)
	a.FillRand(rng)
	b.FillRand(rng)
	want := NewMatrix(192, 192)
	matrix.MulAdd(want, a, b)
	c := NewMatrix(192, 192)
	if err := mu.MulAddAsync(c, a, b).Wait(); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("diff %g", d)
	}
}
