package fmmfam

import (
	"errors"
	"fmt"
	"sync"

	"fmmfam/internal/model"
)

// Multiplier is the library-integration entry point the paper's conclusion
// argues for ("Strassen-like fast matrix multiplication can be incorporated
// into libraries for practical use"): a reusable multiplier that selects an
// implementation per problem shape with the performance model and caches the
// constructed plans, so steady-state calls pay no selection or setup cost.
//
// Concurrency contract: a Multiplier is safe for unlimited concurrent
// callers. Plans are immutable and shared across callers of the same shape
// class; all mutable per-call state (packing buffers, variant temporaries)
// is rented from bounded pools inside the execution layers, so concurrent
// MulAdd calls never serialize on workspace.
type Multiplier struct {
	cfg  Config
	arch Arch

	mu    sync.RWMutex
	plans map[string]*Plan

	// serial is a lazily-built Threads=1 twin used by MulAddBatch: batch
	// throughput comes from parallelism across jobs, so running each job
	// single-threaded keeps total goroutines ≈ Threads instead of Threads².
	serialOnce sync.Once
	serial     *Multiplier
}

// NewMultiplier returns a Multiplier using the given blocking/threads and
// machine parameters for selection. Use PaperArch() when no calibration is
// available; relative rankings transfer well across machines.
func NewMultiplier(cfg Config, arch Arch) *Multiplier {
	return &Multiplier{cfg: cfg, arch: arch, plans: map[string]*Plan{}}
}

// MulAdd computes c += a·b, choosing and caching an implementation for the
// problem's shape class. Safe for concurrent callers.
func (mu *Multiplier) MulAdd(c, a, b Matrix) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("fmmfam: dims C(%d×%d) += A(%d×%d)·B(%d×%d)",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows == 0 || a.Cols == 0 || b.Cols == 0 {
		return nil
	}
	p, err := mu.planFor(a.Rows, a.Cols, b.Cols)
	if err != nil {
		return err
	}
	p.MulAdd(c, a, b)
	return nil
}

// BatchJob is one independent multiplication C += A·B of a batch.
type BatchJob struct {
	C, A, B Matrix
}

// MulAddBatch schedules the jobs across a worker pool sized by the
// multiplier's configured thread count. Each job runs with single-threaded
// plan execution — the parallelism is across jobs, not within one, so the
// machine is never oversubscribed beyond the configured worker count. Jobs
// must be independent (no C aliases another job's operands). It returns the
// join of all per-job errors; jobs after a failed one still run.
func (mu *Multiplier) MulAddBatch(jobs []BatchJob) error {
	if len(jobs) == 0 {
		return nil
	}
	workers := mu.cfg.Threads
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	if workers == 1 {
		// No cross-job parallelism: run jobs through the fully-parallel plans.
		for i, j := range jobs {
			errs[i] = mu.MulAdd(j.C, j.A, j.B)
		}
		return errors.Join(errs...)
	}
	exec := mu.serialMultiplier()
	next := make(chan int, len(jobs))
	for i := range jobs {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				errs[i] = exec.MulAdd(j.C, j.A, j.B)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// serialMultiplier returns the Threads=1 twin backing MulAddBatch, sharing
// this multiplier's arch and blocking but with its own plan cache.
func (mu *Multiplier) serialMultiplier() *Multiplier {
	mu.serialOnce.Do(func() {
		cfg := mu.cfg
		cfg.Threads = 1
		mu.serial = NewMultiplier(cfg, mu.arch)
	})
	return mu.serial
}

// PlanFor exposes the plan the multiplier would use for a problem size
// (useful for inspection and testing).
func (mu *Multiplier) PlanFor(m, k, n int) (*Plan, error) { return mu.planFor(m, k, n) }

func (mu *Multiplier) planFor(m, k, n int) (*Plan, error) {
	key := shapeClass(m, k, n)
	mu.mu.RLock()
	p, ok := mu.plans[key]
	mu.mu.RUnlock()
	if ok {
		return p, nil
	}
	mu.mu.Lock()
	defer mu.mu.Unlock()
	if p, ok := mu.plans[key]; ok {
		return p, nil
	}
	cand := Recommend(mu.arch, m, k, n)
	p, err := NewPlan(mu.cfg, cand.Variant, cand.Levels...)
	if err != nil {
		return nil, err
	}
	mu.plans[key] = p
	return p, nil
}

// CachedPlans reports how many distinct shape classes have been planned.
func (mu *Multiplier) CachedPlans() int {
	mu.mu.RLock()
	defer mu.mu.RUnlock()
	return len(mu.plans)
}

// shapeClass buckets problem sizes so that nearby sizes share a plan: each
// dimension is rounded to its power-of-two bucket. The model's selection is
// stable well beyond this granularity.
func shapeClass(m, k, n int) string {
	return fmt.Sprintf("%d/%d/%d", bucket(m), bucket(k), bucket(n))
}

func bucket(x int) int {
	b := 1
	for b < x {
		b <<= 1
	}
	return b
}

// defaultCandidates avoids re-enumerating candidates on every planFor call.
var defaultCandidatesOnce struct {
	sync.Once
	cands []Candidate
}

func defaultCandidates() []Candidate {
	defaultCandidatesOnce.Do(func() {
		defaultCandidatesOnce.cands = model.DefaultCandidates()
	})
	return defaultCandidatesOnce.cands
}

// defaultMultiplier backs the package-level Multiply/MultiplyBatch: one
// lazily-initialized Multiplier with default parallel blocking and the
// paper's machine model, shared by all callers so repeated package-level
// calls hit the plan cache instead of rebuilding a plan per call.
var defaultMultiplierOnce struct {
	sync.Once
	mu *Multiplier
}

func defaultMultiplier() *Multiplier {
	defaultMultiplierOnce.Do(func() {
		defaultMultiplierOnce.mu = NewMultiplier(DefaultConfig().Parallel(), PaperArch())
	})
	return defaultMultiplierOnce.mu
}
