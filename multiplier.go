package fmmfam

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"fmmfam/internal/fmmexec"
	"fmmfam/internal/gemm"
	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
	"fmmfam/internal/model"
	"fmmfam/internal/sched"
	"fmmfam/internal/shard"
)

// GenericMultiplier is the library-integration entry point the paper's
// conclusion argues for ("Strassen-like fast matrix multiplication can be
// incorporated into libraries for practical use"), generic over the element
// type: a reusable multiplier that selects an implementation per problem
// shape with the performance model and caches the constructed plans, so
// steady-state calls pay no selection or setup cost. Multiplier and
// Multiplier32 are its float64 and float32 instantiations; the float64
// surface is the historical bit-stable one, the float32 surface trades
// precision for halved memory traffic (the regime where fast algorithms
// win earliest — see README "Precision").
//
// Concurrency contract: a multiplier is safe for unlimited concurrent
// callers. Plans are immutable and shared across callers of the same shape
// class; all mutable per-call state (packing buffers, variant temporaries)
// is rented from bounded pools inside the execution layers, so concurrent
// MulAdd calls never serialize on workspace. Pools are typed per element —
// a float32 buffer can never be handed to a float64 call, however the two
// surfaces interleave.
//
// Serving behavior: problems at or above Config.ShardThreshold (with
// Threads ≥ 2) are split into independent block products — cutting the M×N
// output and, for K-dominant shapes with Config.ShardKSplit enabled, the
// inner dimension too — and scheduled across a work-stealing pool;
// MulAddAsync submits work to a bounded queue and returns a Future; the
// plan cache is LRU-bounded by Config.PlanCacheCap.
type GenericMultiplier[E matrix.Element] struct {
	cfg  Config
	arch Arch

	// cfgErr is the construction-time validation result; every entry
	// point returns it so an invalid multiplier fails fast and uniformly.
	cfgErr error

	// traversal is the resolved term-traversal mode (TraversalAuto/DFS/BFS
	// after applying the FMMFAM_TRAVERSAL override), fixed at construction
	// so every cached plan of one multiplier was built under one policy.
	traversal string

	// tune/tuneFrac are the resolved autotuning state (Config.Autotune /
	// AutotuneFraction after the FMMFAM_AUTOTUNE override); when tune is
	// set, plan-cache entries carry a bandit and its arm plans, MulAdd times
	// every call, and feedback holds the measured medians promotions write
	// back for selection (model.RankMeasured). foldScale is the fitted
	// traversal fold-cost scale (math.Float64bits; 0 = analytic), written on
	// promotions that cross traversal modes and read by traversalFor.
	tune      bool
	tuneFrac  float64
	feedback  *model.Feedback
	foldScale atomic.Uint64

	plans *planCache[E]

	// shardTuns holds the per-shape-class shard-grid tuners (the sharded
	// path has no plan-cache entry to hang a bandit off). Bounded by the
	// plan-cache cap: beyond it new shape classes serve untuned rather than
	// growing without bound.
	shardTuns struct {
		sync.Mutex
		m map[string]*shardTuner
	}

	// redBufs is the bounded free list of K-split reduction buffers, rented
	// per slab like gemm workspaces: get falls back to allocating, put
	// drops when the pool is full or the buffer is oversized, so idle
	// retained memory stays capped while steady-state K-split calls
	// allocate nothing.
	redBufs chan []E

	// serial is a lazily-built Threads=1 twin that executes every batch,
	// sharded, and async job: cross-job parallelism comes from the pool, so
	// running each job single-threaded keeps total goroutines ≈ Threads
	// instead of Threads², and makes job results independent of the parent's
	// Threads setting.
	serialOnce sync.Once
	serial     atomic.Pointer[GenericMultiplier[E]]

	// minTile is the lazily-computed shard tile floor (model break-even).
	minTileOnce sync.Once
	minTile     int

	// async is the lazily-started MulAddAsync queue + worker pool; written
	// only inside asyncOnce, so all access goes through asyncState.
	asyncOnce sync.Once
	async     *asyncPool[E]
}

// Multiplier is the float64 multiplier — the historical public surface,
// source-compatible with every release since PR 1.
type Multiplier = GenericMultiplier[float64]

// Multiplier32 is the float32 multiplier: the same serving engine
// instantiated at single precision.
type Multiplier32 = GenericMultiplier[float32]

// archCache memoizes measured machine constants per (kernel, dtype) pair,
// process-wide: every multiplier constructed with calibration enabled for
// the same pair reuses one measurement (the probes cost ~100ms and allocate
// a bandwidth-sweep buffer, so per-construction measurement would make the
// serial twins and tests pay repeatedly for identical numbers).
var archCache = struct {
	sync.Mutex
	m map[archKey]Arch
}{m: make(map[archKey]Arch)}

type archKey struct {
	kernel string
	dtype  matrix.Dtype
}

// calibrateProbe is the square GEMM size the opt-in construction-time
// calibration measures τa with: large enough that the five loops and packing
// run at steady state, small enough to keep NewMultiplier under ~100ms the
// first time a (kernel, dtype) pair is seen.
const calibrateProbe = 256

// calibratedArch returns the measured Arch for cfg's (kernel, dtype) pair,
// measuring on first use and caching process-wide. The probe runs
// single-threaded regardless of cfg.Threads so τa stays a per-core constant,
// exactly as the paper's model defines it.
func calibratedArch[E matrix.Element](gcfg gemm.Config) (Arch, error) {
	name, ok := kernel.ResolveNameFor(gcfg.Kernel, matrix.DtypeOf[E]())
	if !ok {
		return Arch{}, fmt.Errorf("fmmfam: calibrate: unknown kernel %q for %s", gcfg.Kernel, matrix.DtypeOf[E]())
	}
	key := archKey{kernel: name, dtype: matrix.DtypeOf[E]()}
	archCache.Lock()
	defer archCache.Unlock()
	if a, ok := archCache.m[key]; ok {
		return a, nil
	}
	gcfg.Threads = 1
	a, err := model.Calibrate[E](gcfg, calibrateProbe)
	if err != nil {
		return Arch{}, err
	}
	archCache.m[key] = a
	return a, nil
}

// calibrateEnabled reports whether construction-time calibration is on:
// the Config flag, or the FMMFAM_CALIBRATE=1 environment variable (the
// no-recompile switch for deployed binaries).
func calibrateEnabled(cfg Config) bool {
	return cfg.Calibrate || os.Getenv("FMMFAM_CALIBRATE") == "1"
}

// NewGenericMultiplier returns a multiplier for element type E using the
// given blocking/threads and machine parameters for selection. The arch is
// re-priced for E (model.ArchForDtype — float32 halves the per-element
// bandwidth cost τb) and for cfg.Kernel's backend (model.ArchForKernel), so
// plan selection, the shard tile floor, and the shard grid score all price
// the (kernel, dtype) pair actually in use; an arch from model.Calibrate[E]
// with the same cfg.Kernel passes through unchanged. With Config.Calibrate
// (or FMMFAM_CALIBRATE=1) set, the provided arch's τ constants are replaced
// by measured ones, cached process-wide per (kernel, dtype). An invalid cfg
// is reported by every entry point's first call (see Config.Validate).
func NewGenericMultiplier[E matrix.Element](cfg Config, arch Arch) *GenericMultiplier[E] {
	workers := cfg.Threads
	if workers < 1 {
		workers = 1
	}
	cfgErr := validateConfig[E](cfg)
	if cfgErr == nil && calibrateEnabled(cfg) {
		if measured, err := calibratedArch[E](cfg.gemmConfig()); err == nil {
			arch = measured
		} else {
			cfgErr = err
		}
	}
	traversal, trErr := resolveTraversal(cfg)
	if cfgErr == nil {
		cfgErr = trErr
	}
	tune, tuneFrac, tuneErr := resolveAutotune(cfg)
	if cfgErr == nil {
		cfgErr = tuneErr
	}
	mu := &GenericMultiplier[E]{
		cfg:       cfg,
		arch:      model.ArchForKernel(model.ArchForDtype(arch, matrix.DtypeOf[E]()), cfg.Kernel),
		cfgErr:    cfgErr,
		traversal: traversal,
		tune:      tune,
		tuneFrac:  tuneFrac,
		plans:     newPlanCache[E](cfg.planCacheCap()),
		redBufs:   make(chan []E, 2*workers),
	}
	if tune {
		mu.feedback = model.NewFeedback()
	}
	return mu
}

// NewMultiplier returns a float64 Multiplier; see NewGenericMultiplier. Use
// PaperArch() when no calibration is available; relative rankings transfer
// well across machines.
func NewMultiplier(cfg Config, arch Arch) *Multiplier {
	return NewGenericMultiplier[float64](cfg, arch)
}

// NewMultiplier32 returns a float32 Multiplier32; see NewGenericMultiplier.
func NewMultiplier32(cfg Config, arch Arch) *Multiplier32 {
	return NewGenericMultiplier[float32](cfg, arch)
}

// checkMulDims validates C(m×n) += A(m×k)·B(k×n) dimensions.
func checkMulDims[E matrix.Element](c, a, b matrix.Mat[E]) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("fmmfam: dims C(%d×%d) += A(%d×%d)·B(%d×%d)",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return nil
}

// MulAdd computes c += a·b, choosing and caching an implementation for the
// problem's shape class. Problems at or above the configured shard threshold
// are split into independent block products and scheduled across the worker
// pool instead of parallelizing one product's loops. Safe for concurrent
// callers.
func (mu *GenericMultiplier[E]) MulAdd(c, a, b matrix.Mat[E]) error {
	if mu.cfgErr != nil {
		return mu.cfgErr
	}
	if err := checkMulDims(c, a, b); err != nil {
		return err
	}
	if a.Rows == 0 || a.Cols == 0 || b.Cols == 0 {
		return nil
	}
	if spec, ok := mu.shardSpec(a.Rows, a.Cols, b.Cols); ok {
		if mu.tune {
			return mu.mulAddShardedTuned(spec, c, a, b)
		}
		return mu.mulAddSharded(spec, c, a, b)
	}
	e, err := mu.entryFor(a.Rows, a.Cols, b.Cols)
	if err != nil {
		return err
	}
	if e.tun != nil {
		return e.tun.mulAdd(mu, c, a, b)
	}
	e.p.MulAdd(c, a, b)
	return nil
}

// GenericBatchJob is one independent multiplication C += A·B of a batch.
type GenericBatchJob[E matrix.Element] struct {
	C, A, B matrix.Mat[E]
}

// BatchJob is the float64 batch job.
type BatchJob = GenericBatchJob[float64]

// BatchJob32 is the float32 batch job.
type BatchJob32 = GenericBatchJob[float32]

// MulAddBatch schedules the jobs across a work-stealing worker pool sized
// by the multiplier's configured thread count: jobs are seeded across
// per-worker deques costliest-first (by classical flop count 2·m·k·n) and
// idle workers steal from busy ones — half a backlogged victim's deque at a
// time — so mixed-size batches don't pay a straggler round. Batch contract:
// every job executes with single-threaded plan execution through the
// multiplier's serial twin, regardless of worker count — the parallelism is
// across jobs, not within one — so results and plan selection are identical
// whether the pool runs with one worker or many, and the machine is never
// oversubscribed beyond the configured worker count. Jobs must be
// independent (no C aliases another job's operands). It returns the join of
// all per-job errors; jobs after a failed one still run.
func (mu *GenericMultiplier[E]) MulAddBatch(jobs []GenericBatchJob[E]) error {
	if mu.cfgErr != nil {
		return mu.cfgErr
	}
	if len(jobs) == 0 {
		return nil
	}
	workers := mu.cfg.Threads
	if workers < 1 {
		workers = 1
	}
	exec := mu.serialMultiplier()
	errs := make([]error, len(jobs))
	sjobs := make([]sched.Job, len(jobs))
	for i := range jobs {
		i := i
		j := jobs[i]
		sjobs[i] = sched.Job{
			Cost: 2 * int64(j.A.Rows) * int64(j.A.Cols) * int64(j.B.Cols),
			Run:  func() { errs[i] = exec.MulAdd(j.C, j.A, j.B) },
		}
	}
	sched.Run(workers, sjobs)
	return errors.Join(errs...)
}

// serialMultiplier returns the Threads=1 twin executing batch, sharded, and
// async jobs, sharing this multiplier's arch and blocking but with its own
// plan cache. Threads=1 also disables sharding on the twin, so pool jobs
// never recursively re-shard.
func (mu *GenericMultiplier[E]) serialMultiplier() *GenericMultiplier[E] {
	mu.serialOnce.Do(func() {
		cfg := mu.cfg
		cfg.Threads = 1
		s := NewGenericMultiplier[E](cfg, mu.arch)
		// The twin executes under the parent's construction-time policies:
		// validation verdict, resolved traversal, and resolved autotune state
		// are copied rather than re-read from the environment at first
		// batch/shard/async use, so an env change after the parent was built
		// cannot split parent and twin behavior. The feedback store is shared
		// — measured wins from batch traffic inform the same selection.
		s.cfgErr = mu.cfgErr
		s.traversal = mu.traversal
		s.tune = mu.tune
		s.tuneFrac = mu.tuneFrac
		s.feedback = mu.feedback
		mu.serial.Store(s)
	})
	return mu.serial.Load()
}

// shardMinTile resolves the shard tile floor: the configured override, or
// the model's fast-algorithm break-even for this multiplier's arch.
func (mu *GenericMultiplier[E]) shardMinTile() int {
	if mu.cfg.ShardMinTile > 0 {
		return mu.cfg.ShardMinTile
	}
	mu.minTileOnce.Do(func() {
		mu.minTile = model.BreakEvenSquare(mu.arch, defaultCandidates())
	})
	return mu.minTile
}

// shardSpec decides whether C(m×n) += A(m×k)·B(k×n) should be sharded and,
// if so, how. Sharding needs a pool to feed (Threads ≥ 2), a problem at or
// above the threshold — in m or n, or in k when K-split is enabled — and
// room for at least two tiles above the break-even floor. Candidate grids
// are scored with the performance model's makespan (model.ShardMakespan on
// this multiplier's arch), so the K dimension is split only when the slab
// products' smaller operand traffic pays for the reduction folds.
func (mu *GenericMultiplier[E]) shardSpec(m, k, n int) (shard.Spec, bool) {
	if mu.cfg.Threads < 2 {
		return shard.Spec{}, false
	}
	thr := mu.cfg.shardThreshold()
	kSplit := mu.cfg.shardKSplit()
	if thr == 0 || (m < thr && n < thr && (!kSplit || k < thr)) {
		return shard.Spec{}, false
	}
	return shard.Split(m, k, n, shard.Options{
		Workers: mu.cfg.Threads,
		MinTile: mu.shardMinTile(),
		KSplit:  kSplit,
		Cost: func(gm, gn, gk int) float64 {
			return model.ShardMakespan(mu.arch, m, k, n, gm, gn, gk, mu.cfg.Threads)
		},
	})
}

// mulAddSharded executes a sharded MulAdd. With K whole (GridK == 1) each
// tile is the full-K block product C[ti, tj] += A[ti, :]·B[:, tj] on views
// of the operands, scheduled through MulAddBatch; tiles write disjoint
// regions of C, so the result is bit-identical however the pool interleaves
// them. K-split specs take the reduction-buffer path instead.
func (mu *GenericMultiplier[E]) mulAddSharded(spec shard.Spec, c, a, b matrix.Mat[E]) error {
	if spec.GridK > 1 {
		if err := mu.mulAddShardedK(spec, c, a, b); err != nil {
			return fmt.Errorf("%v: %w", spec, err)
		}
		return nil
	}
	tiles := spec.Tiles()
	jobs := make([]GenericBatchJob[E], len(tiles))
	for i, t := range tiles {
		jobs[i] = GenericBatchJob[E]{
			C: c.View(t.I, t.J, t.Rows, t.Cols),
			A: a.View(t.I, t.P, t.Rows, t.Depth),
			B: b.View(t.P, t.J, t.Depth, t.Cols),
		}
	}
	if err := mu.MulAddBatch(jobs); err != nil {
		return fmt.Errorf("%v: %w", spec, err)
	}
	return nil
}

// kGroup is the per-output-tile state of a K-split execution: the C view
// the tile owns, the reduction buffers of slabs 1…GridK−1 (slab 0
// accumulates straight into C), and the count of slabs still running.
type kGroup[E matrix.Element] struct {
	c         matrix.Mat[E]
	bufs      []matrix.Mat[E]
	remaining atomic.Int32
}

// mulAddShardedK executes a K-split sharded MulAdd: every (tile, slab) pair
// is one scheduled job computing A[ti, p0:p1]·B[p0:p1, tj]. Slab 0
// accumulates directly into the tile's C view; each later slab accumulates
// into a zeroed reduction buffer rented from the multiplier's pool; and
// whichever worker finishes a tile's last slab folds that tile's buffers
// into C in ascending slab order. Every slab product runs single-threaded
// in the serial twin and the fold order is fixed, so repeated runs produce
// bit-identical C even though the schedule is not deterministic — the
// serving determinism contract for K-split (the 2D path is stronger:
// bit-identical to sequential tile execution).
func (mu *GenericMultiplier[E]) mulAddShardedK(spec shard.Spec, c, a, b matrix.Mat[E]) error {
	tiles := spec.Tiles() // GridK consecutive slabs per output tile, ascending P
	gk := spec.GridK
	exec := mu.serialMultiplier()
	errs := make([]error, len(tiles))
	groups := make([]kGroup[E], spec.GridM*spec.GridN)
	for gi := range groups {
		t0 := tiles[gi*gk]
		g := &groups[gi]
		g.c = c.View(t0.I, t0.J, t0.Rows, t0.Cols)
		g.bufs = make([]matrix.Mat[E], gk-1)
		for s := range g.bufs {
			g.bufs[s] = mu.rentRedBuf(t0.Rows, t0.Cols)
		}
		g.remaining.Store(int32(gk))
	}
	sjobs := make([]sched.Job, len(tiles))
	for i := range tiles {
		i := i
		t := tiles[i]
		g := &groups[i/gk]
		cv := g.c
		if s := i % gk; s > 0 {
			cv = g.bufs[s-1]
		}
		av := a.View(t.I, t.P, t.Rows, t.Depth)
		bv := b.View(t.P, t.J, t.Depth, t.Cols)
		sjobs[i] = sched.Job{
			Cost: int64(t.Rows) * int64(t.Cols) * int64(t.Depth),
			Run: func() {
				errs[i] = exec.MulAdd(cv, av, bv)
				if g.remaining.Add(-1) == 0 {
					for _, buf := range g.bufs {
						g.c.AddScaled(1, buf)
					}
				}
			},
		}
	}
	sched.Run(mu.cfg.Threads, sjobs)
	for gi := range groups {
		for _, buf := range groups[gi].bufs {
			mu.returnRedBuf(buf)
		}
	}
	return errors.Join(errs...)
}

// maxRetainedRedBufFloats caps the size of a single pooled reduction buffer
// in elements (8 MiB of float64s, 4 MiB of float32s). K-split tiles have
// small M×N by construction, so typical buffers are far under this; anything
// larger goes back to the GC instead of pinning idle memory. With the pool's
// 2×Threads entry bound, idle retained reduction memory stays ≤ Threads·16
// MiB at float64.
const maxRetainedRedBufFloats = 1 << 20

// rentRedBuf returns a zeroed rows×cols reduction-buffer matrix backed by
// the pool, allocating fresh when the pool is empty or its buffer is too
// small (a fresh allocation is already zero; reused ones are cleared here).
func (mu *GenericMultiplier[E]) rentRedBuf(rows, cols int) matrix.Mat[E] {
	need := rows * cols
	var buf []E
	select {
	case buf = <-mu.redBufs:
	default:
	}
	if cap(buf) < need {
		buf = make([]E, need)
	} else {
		buf = buf[:need]
		for i := range buf {
			buf[i] = 0
		}
	}
	return matrix.Mat[E]{Rows: rows, Cols: cols, Stride: cols, Data: buf}
}

// returnRedBuf offers a reduction buffer back to the pool; oversized
// buffers and returns beyond the pool bound are dropped for the GC.
func (mu *GenericMultiplier[E]) returnRedBuf(m matrix.Mat[E]) {
	if cap(m.Data) > maxRetainedRedBufFloats {
		return
	}
	select {
	case mu.redBufs <- m.Data[:cap(m.Data)]:
	default:
	}
}

// PlanFor exposes the plan the multiplier would use for a problem size
// (useful for inspection and testing).
func (mu *GenericMultiplier[E]) PlanFor(m, k, n int) (*fmmexec.Plan[E], error) {
	return mu.planFor(m, k, n)
}

func (mu *GenericMultiplier[E]) planFor(m, k, n int) (*fmmexec.Plan[E], error) {
	e, err := mu.entryFor(m, k, n)
	if err != nil {
		return nil, err
	}
	return e.p, nil
}

// entryFor returns the cached plan-cache entry for a problem's shape class,
// building it on first use: the model-selected plan, plus — when autotuning
// is on — the shape class's bandit and its challenger arm plans.
func (mu *GenericMultiplier[E]) entryFor(m, k, n int) (*planEntry[E], error) {
	key := shapeClass(m, k, n)
	if e, ok := mu.plans.get(key); ok {
		return e, nil
	}
	if mu.tune {
		tun, err := mu.newPlanTuner(key, m, k, n)
		if err != nil {
			return nil, err
		}
		return mu.plans.add(key, &planEntry[E]{p: tun.arms[tun.tuner.Incumbent()].plan, tun: tun}), nil
	}
	cand := Recommend(mu.arch, m, k, n)
	p, err := fmmexec.NewPlanTraversal[E](mu.cfg.gemmConfig(), cand.Variant, mu.traversalFor(cand, m, k, n), cand.Levels...)
	if err != nil {
		return nil, err
	}
	return mu.plans.add(key, &planEntry[E]{p: p}), nil
}

// traversalFor resolves a plan's per-level term traversal: forced modes map
// directly (nil steps for "dfs", all-BFS for "bfs"), and "auto" asks the
// performance model (model.TraversalPlan) with the shape-class bucket sizes —
// the same bucketing that keys the plan cache, so a cached plan's traversal
// is a stable property of its shape class rather than of whichever concrete
// size happened to construct it first. The serial twin (Threads=1) always
// resolves to nil under auto, so batch, sharded, and async jobs keep the
// serial term loop — intra-plan fan-out composes with, never multiplies,
// cross-job parallelism.
func (mu *GenericMultiplier[E]) traversalFor(cand Candidate, m, k, n int) []fmmexec.Step {
	switch mu.traversal {
	case TraversalDFS:
		return nil
	case TraversalBFS:
		return forcedSteps(TraversalBFS, len(cand.Levels))
	}
	return model.TraversalPlanScaled(mu.arch, cand.Variant, bucket(m), bucket(k), bucket(n), cand.Levels, mu.cfg.Threads, mu.foldScaleVal())
}

// foldScaleVal reads the fitted traversal fold-cost scale: 1 (the analytic
// model) until an autotune promotion crossing traversal modes fits one.
func (mu *GenericMultiplier[E]) foldScaleVal() float64 {
	if bits := mu.foldScale.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return 1
}

// CachedPlans reports how many distinct shape classes are currently cached.
func (mu *GenericMultiplier[E]) CachedPlans() int { return mu.plans.len() }

// planCache is the multiplier's bounded plan cache: a map guarded by an
// RWMutex for the hot read path, with least-recently-used eviction driven by
// per-entry atomic timestamps so cache hits never take the write lock.
type planCache[E matrix.Element] struct {
	cap  int // ≤0 means unbounded
	tick atomic.Int64

	mu sync.RWMutex
	m  map[string]*planEntry[E]
}

// planEntry is one cached shape class: the plan untuned serving executes,
// and — when autotuning — the bandit plus its arm plans (tun non-nil; tun's
// incumbent arm and p start out the same plan, and p stays the construction-
// time pick for PlanFor inspection while the tuner's incumbent may move).
type planEntry[E matrix.Element] struct {
	p    *fmmexec.Plan[E]
	tun  *planTuner[E]
	last atomic.Int64 // logical timestamp of the most recent use
}

func newPlanCache[E matrix.Element](cap int) *planCache[E] {
	return &planCache[E]{cap: cap, m: make(map[string]*planEntry[E])}
}

func (pc *planCache[E]) get(key string) (*planEntry[E], bool) {
	pc.mu.RLock()
	e := pc.m[key]
	pc.mu.RUnlock()
	if e == nil {
		return nil, false
	}
	e.last.Store(pc.tick.Add(1))
	return e, true
}

// add inserts e under key unless another caller won the race, in which case
// the incumbent entry is returned — callers of the same shape class always
// share one plan (and one tuner). When the cache is over capacity the
// least-recently-used entry is evicted.
func (pc *planCache[E]) add(key string, e *planEntry[E]) *planEntry[E] {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if have, ok := pc.m[key]; ok {
		have.last.Store(pc.tick.Add(1))
		return have
	}
	e.last.Store(pc.tick.Add(1))
	pc.m[key] = e
	if pc.cap > 0 {
		for len(pc.m) > pc.cap {
			var oldestKey string
			oldest := int64(1<<63 - 1)
			for k, v := range pc.m {
				if last := v.last.Load(); last < oldest {
					oldest, oldestKey = last, k
				}
			}
			delete(pc.m, oldestKey)
		}
	}
	return e
}

// entries returns a point-in-time copy of the cache's (key, entry) pairs.
func (pc *planCache[E]) entries() map[string]*planEntry[E] {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	out := make(map[string]*planEntry[E], len(pc.m))
	for k, v := range pc.m {
		out[k] = v
	}
	return out
}

func (pc *planCache[E]) len() int {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return len(pc.m)
}

// shapeClass buckets problem sizes so that nearby sizes share a plan: each
// dimension is rounded to its power-of-two bucket. The model's selection is
// stable well beyond this granularity.
func shapeClass(m, k, n int) string {
	return fmt.Sprintf("%d/%d/%d", bucket(m), bucket(k), bucket(n))
}

func bucket(x int) int {
	b := 1
	for b < x {
		b <<= 1
	}
	return b
}

// defaultCandidates avoids re-enumerating candidates on every planFor call.
var defaultCandidatesOnce struct {
	sync.Once
	cands []Candidate
}

func defaultCandidates() []Candidate {
	defaultCandidatesOnce.Do(func() {
		defaultCandidatesOnce.cands = model.DefaultCandidates()
	})
	return defaultCandidatesOnce.cands
}

// defaultMultiplier backs the package-level Multiply/MultiplyBatch/
// MultiplyAsync: one lazily-initialized Multiplier with default parallel
// blocking and the paper's machine model, shared by all callers so repeated
// package-level calls hit the plan cache instead of rebuilding a plan per
// call. The FMMFAM_KERNEL environment variable selects its micro-kernel
// backend (see Kernels); an unknown name is reported by every call through
// the default multiplier rather than silently falling back.
var defaultMultiplierOnce struct {
	sync.Once
	mu *Multiplier
}

func defaultMultiplier() *Multiplier {
	defaultMultiplierOnce.Do(func() {
		cfg := DefaultConfig().Parallel()
		cfg.Kernel = os.Getenv("FMMFAM_KERNEL")
		defaultMultiplierOnce.mu = NewMultiplier(cfg, PaperArch())
	})
	return defaultMultiplierOnce.mu
}

// defaultMultiplier32 is the float32 twin of defaultMultiplier, backing the
// package-level Multiply32 family. Lazily built, so programs that never
// touch float32 pay nothing for it.
var defaultMultiplier32Once struct {
	sync.Once
	mu *Multiplier32
}

func defaultMultiplier32() *Multiplier32 {
	defaultMultiplier32Once.Do(func() {
		cfg := DefaultConfig().Parallel()
		cfg.Kernel = os.Getenv("FMMFAM_KERNEL")
		defaultMultiplier32Once.mu = NewMultiplier32(cfg, PaperArch())
	})
	return defaultMultiplier32Once.mu
}
