package fmmfam

import (
	"fmt"
	"sync"

	"fmmfam/internal/model"
)

// Multiplier is the library-integration entry point the paper's conclusion
// argues for ("Strassen-like fast matrix multiplication can be incorporated
// into libraries for practical use"): a reusable multiplier that selects an
// implementation per problem shape with the performance model and caches the
// constructed plans, so steady-state calls pay no selection or setup cost.
//
// A Multiplier is safe for concurrent construction of plans but, like the
// underlying plans, must not execute two multiplications concurrently.
type Multiplier struct {
	cfg  Config
	arch Arch

	mu    sync.Mutex
	plans map[string]*Plan
}

// NewMultiplier returns a Multiplier using the given blocking/threads and
// machine parameters for selection. Use PaperArch() when no calibration is
// available; relative rankings transfer well across machines.
func NewMultiplier(cfg Config, arch Arch) *Multiplier {
	return &Multiplier{cfg: cfg, arch: arch, plans: map[string]*Plan{}}
}

// MulAdd computes c += a·b, choosing and caching an implementation for the
// problem's shape class.
func (mu *Multiplier) MulAdd(c, a, b Matrix) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("fmmfam: dims C(%d×%d) += A(%d×%d)·B(%d×%d)",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows == 0 || a.Cols == 0 || b.Cols == 0 {
		return nil
	}
	p, err := mu.planFor(a.Rows, a.Cols, b.Cols)
	if err != nil {
		return err
	}
	p.MulAdd(c, a, b)
	return nil
}

// PlanFor exposes the plan the multiplier would use for a problem size
// (useful for inspection and testing).
func (mu *Multiplier) PlanFor(m, k, n int) (*Plan, error) { return mu.planFor(m, k, n) }

func (mu *Multiplier) planFor(m, k, n int) (*Plan, error) {
	key := shapeClass(m, k, n)
	mu.mu.Lock()
	defer mu.mu.Unlock()
	if p, ok := mu.plans[key]; ok {
		return p, nil
	}
	cand := Recommend(mu.arch, m, k, n)
	p, err := NewPlan(mu.cfg, cand.Variant, cand.Levels...)
	if err != nil {
		return nil, err
	}
	mu.plans[key] = p
	return p, nil
}

// CachedPlans reports how many distinct shape classes have been planned.
func (mu *Multiplier) CachedPlans() int {
	mu.mu.Lock()
	defer mu.mu.Unlock()
	return len(mu.plans)
}

// shapeClass buckets problem sizes so that nearby sizes share a plan: each
// dimension is rounded to its power-of-two bucket. The model's selection is
// stable well beyond this granularity.
func shapeClass(m, k, n int) string {
	return fmt.Sprintf("%d/%d/%d", bucket(m), bucket(k), bucket(n))
}

func bucket(x int) int {
	b := 1
	for b < x {
		b <<= 1
	}
	return b
}

// recommendLocked avoids re-enumerating candidates on every planFor call.
var defaultCandidatesOnce struct {
	sync.Once
	cands []Candidate
}

func defaultCandidates() []Candidate {
	defaultCandidatesOnce.Do(func() {
		defaultCandidatesOnce.cands = model.DefaultCandidates()
	})
	return defaultCandidatesOnce.cands
}
