// Package fmmfam is a pure-Go implementation of the fast matrix
// multiplication (FMM) framework of Huang, Rice, Matthews and van de Geijn,
// "Generating Families of Practical Fast Matrix Multiplication Algorithms"
// (FLAME Working Note #82 / IPDPS 2017).
//
// An FMM algorithm is a partition ⟨m̃,k̃,ñ⟩ with a coefficient triple
// ⟦U,V,W⟧ computing the block product in R < m̃·k̃·ñ submatrix
// multiplications. The package provides
//
//   - a generator producing a verified algorithm for every small partition
//     (Generate, Catalog — the Figure-2 family),
//   - multi-level composition via Kronecker products, including hybrid
//     partitions with a different algorithm per level (NewPlan with several
//     levels),
//   - the paper's three implementation variants (Naive, AB, ABC) built on a
//     BLIS-style GEMM whose packing and micro-kernel fuse the FMM submatrix
//     additions, with goroutine data-parallelism,
//   - the analytic performance model (Predict, Recommend) used to pick an
//     implementation for a problem size without exhaustive search, and
//   - numerical search for new algorithms (Discover).
//
// Quick start:
//
//	a, b := fmmfam.NewMatrix(1024, 1024), fmmfam.NewMatrix(1024, 1024)
//	// ... fill a and b ...
//	c := fmmfam.NewMatrix(1024, 1024)
//	fmmfam.Multiply(c, a, b) // c += a·b with a model-selected FMM plan
//
// Concurrency contract: Plans and Multipliers are immutable descriptions;
// all mutable per-call state (packing buffers, variant temporaries) is
// rented from bounded pools per call. Multiply, Multiplier.MulAdd,
// Multiplier.MulAddBatch, and Plan.MulAdd are all safe for unlimited
// concurrent callers, and each call also parallelizes internally across the
// configured worker count.
package fmmfam

import (
	"fmmfam/internal/core"
	"fmmfam/internal/discover"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/gemm"
	"fmmfam/internal/matrix"
	"fmmfam/internal/model"
)

// Matrix is a dense row-major float64 matrix; submatrix views share storage.
type Matrix = matrix.Mat

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) Matrix { return matrix.New(r, c) }

// Algorithm is a one-level FMM algorithm ⟨m̃,k̃,ñ⟩ with coefficients ⟦U,V,W⟧.
type Algorithm = core.Algorithm

// Variant selects the implementation style of the paper's §4.1.
type Variant = fmmexec.Variant

// The three implementation variants.
const (
	Naive = fmmexec.Naive // explicit temporaries around black-box GEMM
	AB    = fmmexec.AB    // operand sums fused into packing
	ABC   = fmmexec.ABC   // AB plus fused multi-C micro-kernel updates
)

// Config carries the cache blocking {mC,kC,nC} and worker count.
type Config = gemm.Config

// DefaultConfig returns the single-threaded default blocking.
func DefaultConfig() Config { return gemm.DefaultConfig() }

// Plan is a ready-to-run FMM implementation; see NewPlan.
type Plan = fmmexec.Plan

// Strassen returns the ⟨2,2,2⟩;7 algorithm with the paper's coefficients.
func Strassen() Algorithm { return core.Strassen() }

// Generate returns the lowest-rank verified algorithm for partition ⟨m,k,n⟩
// reachable from the built-in seeds (see DESIGN.md for rank provenance).
func Generate(m, k, n int) Algorithm { return core.Generate(m, k, n) }

// CatalogEntry is one row of the paper's Figure-2 family.
type CatalogEntry = core.CatalogEntry

// Catalog returns the Figure-2 family of evaluated partitions.
func Catalog() []CatalogEntry { return core.Catalog() }

// NewPlan builds an executable multi-level FMM plan. Levels are outermost
// first; hybrid partitions simply pass different algorithms per level.
func NewPlan(cfg Config, v Variant, levels ...Algorithm) (*Plan, error) {
	return fmmexec.NewPlan(cfg, v, levels...)
}

// Arch holds performance-model machine parameters.
type Arch = model.Arch

// PaperArch returns the paper's Ivy Bridge machine constants (§5.1).
func PaperArch() Arch { return model.PaperIvyBridge() }

// Candidate is one implementation considered by the selector.
type Candidate = model.Candidate

// Predict estimates the execution time in seconds of a candidate on arch for
// problem size (m,k,n), per the paper's Figure-5 model.
func Predict(arch Arch, c Candidate, m, k, n int) float64 {
	return model.Predict(arch, c.Stats(), c.Variant, m, k, n).Total()
}

// Recommend ranks the default candidate family (every catalog shape at one
// and two levels in all variants, plus the Figure-9 hybrids) for problem
// size (m,k,n) on arch and returns the predicted-fastest candidate.
func Recommend(arch Arch, m, k, n int) Candidate {
	ranked := model.Rank(arch, defaultCandidates(), m, k, n)
	return ranked[0].Candidate
}

// Multiply computes c += a·b using a model-recommended FMM plan with default
// blocking and all available CPUs. It delegates to a lazily-initialized
// package-level Multiplier, so repeated calls of similar sizes reuse cached
// plans instead of rebuilding one per call. Safe for concurrent callers; for
// custom blocking or machine models, build your own Multiplier.
func Multiply(c, a, b Matrix) error {
	return defaultMultiplier().MulAdd(c, a, b)
}

// MultiplyBatch runs many independent multiplications through the shared
// default Multiplier's worker pool; see Multiplier.MulAddBatch.
func MultiplyBatch(jobs []BatchJob) error {
	return defaultMultiplier().MulAddBatch(jobs)
}

// DiscoverProblem specifies a numerical search target; see Discover.
type DiscoverProblem = discover.Problem

// DiscoverOptions tunes the ALS search; zero values select defaults.
type DiscoverOptions = discover.Options

// Discover searches numerically for an exact rank-R algorithm of shape
// ⟨m,k,n⟩ (alternating least squares with discretization; the returned
// algorithm, if any, is Brent-verified). Found algorithms can be fed to
// RegisterSeed to improve Generate.
func Discover(p DiscoverProblem, o DiscoverOptions) (Algorithm, error) {
	return discover.Search(p, o)
}

// RegisterSeed adds a verified algorithm to the generator's seed set; future
// Generate calls may compose it.
func RegisterSeed(a Algorithm) error { return core.RegisterSeed(a) }
