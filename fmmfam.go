// Package fmmfam is a pure-Go implementation of the fast matrix
// multiplication (FMM) framework of Huang, Rice, Matthews and van de Geijn,
// "Generating Families of Practical Fast Matrix Multiplication Algorithms"
// (FLAME Working Note #82 / IPDPS 2017).
//
// An FMM algorithm is a partition ⟨m̃,k̃,ñ⟩ with a coefficient triple
// ⟦U,V,W⟧ computing the block product in R < m̃·k̃·ñ submatrix
// multiplications. The package provides
//
//   - a generator producing a verified algorithm for every small partition
//     (Generate, Catalog — the Figure-2 family),
//   - multi-level composition via Kronecker products, including hybrid
//     partitions with a different algorithm per level (NewPlan with several
//     levels),
//   - the paper's three implementation variants (Naive, AB, ABC) built on a
//     BLIS-style GEMM whose packing and micro-kernel fuse the FMM submatrix
//     additions, with goroutine data-parallelism and pluggable,
//     conformance-tested micro-kernel backends (Config.Kernel, Kernels),
//   - the analytic performance model (Predict, Recommend) used to pick an
//     implementation for a problem size without exhaustive search, and
//   - numerical search for new algorithms (Discover).
//
// Quick start:
//
//	a, b := fmmfam.NewMatrix(1024, 1024), fmmfam.NewMatrix(1024, 1024)
//	// ... fill a and b ...
//	c := fmmfam.NewMatrix(1024, 1024)
//	fmmfam.Multiply(c, a, b) // c += a·b with a model-selected FMM plan
//
// Concurrency contract: Plans and Multipliers are immutable descriptions;
// all mutable per-call state (packing buffers, variant temporaries) is
// rented from bounded pools per call. Multiply, Multiplier.MulAdd,
// Multiplier.MulAddBatch, Multiplier.MulAddAsync, and Plan.MulAdd are all
// safe for unlimited concurrent callers, and each call also parallelizes
// internally across the configured worker count.
//
// Serving layer: above Config.ShardThreshold a MulAdd is automatically split
// into independent block products scheduled across a work-stealing pool
// (internal/shard + internal/sched) — cutting the M×N output into full-K
// tiles (bit-identical results), or, for K-dominant problems with
// Config.ShardKSplit enabled, the inner dimension into reduction slabs
// (run-to-run deterministic results, fixed fold order); MulAddAsync submits
// work to a bounded queue and returns a Future; the plan cache is
// LRU-bounded so servers with diverse shapes stay bounded.
package fmmfam

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"fmmfam/internal/autotune"
	"fmmfam/internal/core"
	"fmmfam/internal/discover"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/gemm"
	"fmmfam/internal/kernel"
	"fmmfam/internal/matrix"
	"fmmfam/internal/model"
)

// Element is the type set of supported matrix element types
// (float32 | float64); the generic entry points (NewGenericMultiplier,
// matrix.Mat) are parameterized over it.
type Element = matrix.Element

// Matrix is a dense row-major float64 matrix; submatrix views share storage.
type Matrix = matrix.Mat[float64]

// Matrix32 is the float32 matrix type of the single-precision surface:
// half the memory per element, and the precision where fast algorithms win
// earliest (see README "Precision").
type Matrix32 = matrix.Mat[float32]

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) Matrix { return matrix.New[float64](r, c) }

// NewMatrix32 allocates a zeroed r×c float32 matrix.
func NewMatrix32(r, c int) Matrix32 { return matrix.New[float32](r, c) }

// Algorithm is a one-level FMM algorithm ⟨m̃,k̃,ñ⟩ with coefficients ⟦U,V,W⟧.
type Algorithm = core.Algorithm

// Variant selects the implementation style of the paper's §4.1.
type Variant = fmmexec.Variant

// The three implementation variants.
const (
	Naive = fmmexec.Naive // explicit temporaries around black-box GEMM
	AB    = fmmexec.AB    // operand sums fused into packing
	ABC   = fmmexec.ABC   // AB plus fused multi-C micro-kernel updates
)

// Config configures a Multiplier or Plan: the GEMM driver's cache blocking
// {MC,KC,NC} and worker count, plus the serving-layer knobs (sharding,
// async queue, plan-cache bound). The zero value of every serving knob
// selects a sensible default; the blocking fields must be set (use
// DefaultConfig).
type Config struct {
	// MC, KC, NC are the cache blocking parameters of Figure 1.
	MC, KC, NC int
	// Threads is the worker count: within one MulAdd it parallelizes the
	// driver's ic loop; for MulAddBatch and sharded calls it is the width of
	// the cross-job pool.
	Threads int

	// Kernel selects the micro-kernel backend by registry name (see
	// Kernels). Empty selects the default backend ("go4x4", the original
	// bit-stable pure-Go kernel); "go8x4" is the wider-tile pure-Go backend.
	// The package-level Multiply family reads the FMMFAM_KERNEL environment
	// variable instead. The blocking must satisfy the backend's tile shape
	// (MC ≥ MR, NC ≥ NR); Validate checks this.
	Kernel string

	// ShardThreshold is the problem size at or above which MulAdd
	// automatically splits into independent block products scheduled across
	// the pool (Threads ≥ 2 required): max(m,n) — or k, when K-split is
	// enabled — must reach it. 0 means DefaultShardThreshold; negative
	// disables sharding.
	ShardThreshold int
	// ShardMinTile floors every cut dimension of a shard tile — rows and
	// cols, and slab depth when K is split. 0 derives the floor from the
	// performance model's fast-algorithm break-even on this multiplier's
	// Arch, so each shard still clears the size where an FMM plan beats
	// plain GEMM.
	ShardMinTile int
	// ShardKSplit controls whether sharding may also cut the inner (K)
	// dimension into slabs with per-tile reduction buffers — the path that
	// lets K-dominant problems (small M×N output, huge inner dimension)
	// shard at all. K-split results are run-to-run deterministic (fixed
	// reduction fold order) but not bit-identical to the 2D path. 0 means
	// enabled (the default); negative disables, restricting sharding to the
	// 2D decomposition; positive also enables.
	ShardKSplit int

	// Traversal selects how a plan traverses its R multiplication terms
	// per call (see README "Parallelism"): "" or "auto" lets the
	// performance model choose per shape — BFS term fan-out across the
	// worker pool where sub-blocks are too small to keep the workers busy
	// inside one GEMM, DFS otherwise; "dfs" forces the historical serial
	// term loop (the bit-stable reference path the float64 golden
	// fingerprints pin); "bfs" forces term fan-out at every level (ABC
	// plans buffer one core-C shadow per fanned chunk, so forcing deep BFS
	// on memory-tight machines is the user's call). The FMMFAM_TRAVERSAL
	// environment variable overrides this field without recompiling.
	// Direct NewPlan/NewPlan32 construction has no problem size for the
	// model, so "auto" there means DFS; the Multiplier path is where auto
	// selection happens.
	Traversal string

	// QueueWorkers is the MulAddAsync worker-pool size. 0 means Threads.
	QueueWorkers int
	// QueueDepth bounds the MulAddAsync submission queue; submitters block
	// when it is full (backpressure). 0 means 4×QueueWorkers.
	QueueDepth int

	// PlanCacheCap bounds the number of cached plans per Multiplier,
	// evicting least-recently-used shape classes, so long-running servers
	// seeing diverse shapes stay bounded. 0 means DefaultPlanCacheCap;
	// negative means unbounded.
	PlanCacheCap int

	// Autotune enables the online autotuner (see README "Autotuning"): every
	// MulAdd records its monotonic wall time against the plan that served it,
	// keyed by shape class, and a small fraction of each shape class's
	// traffic shadows one challenger arm — an alternative term traversal,
	// kernel backend, model candidate, or shard grid. A challenger whose
	// window median beats the incumbent's with a 95% confidence interval
	// excluding zero at two consecutive checkpoints is promoted to serve, and
	// its measured median feeds back into model selection and the
	// traversal-model fold-cost calibration. Off by default: serving is then
	// exactly the static model-selected path. Promotion only ever swaps which
	// deterministic plan runs — per-call determinism guarantees are those of
	// whichever plan served the call. The FMMFAM_AUTOTUNE environment
	// variable overrides this field and AutotuneFraction without recompiling
	// (see resolveAutotune's accepted values).
	Autotune bool
	// AutotuneFraction is the share of each shape class's calls routed to
	// the challenger arm, in (0, 0.5]. 0 means the default (0.05 — one call
	// in 20). Validate rejects values outside [0, 0.5].
	AutotuneFraction float64

	// ServeAddr is the listen address of the fmmserve wire front-end
	// (cmd/fmmserve, package serve). Empty means DefaultServeAddr. The
	// FMMFAM_SERVE_ADDR environment variable overrides this field without
	// recompiling. The in-library MulAdd/MulAddBatch/MulAddAsync surfaces
	// ignore it.
	ServeAddr string
	// CoalesceWindow bounds how long the wire front-end holds a small
	// request open waiting for others to share a MulAddBatch dispatch with:
	// the first request of a window arms the timer, and the window flushes
	// when it fires or when CoalesceMaxJobs requests have joined, whichever
	// is first. 0 means DefaultCoalesceWindow; negative disables coalescing
	// (every request dispatches individually). The FMMFAM_COALESCE_WINDOW
	// environment variable (a Go duration string, e.g. "250us" or "-1ms" to
	// disable) overrides this field.
	CoalesceWindow time.Duration
	// CoalesceMaxJobs caps how many requests one coalescing window collects
	// before flushing regardless of the timer. 0 means
	// DefaultCoalesceMaxJobs; Validate rejects negatives (disable
	// coalescing with a negative CoalesceWindow instead). The
	// FMMFAM_COALESCE_MAXJOBS environment variable overrides this field.
	CoalesceMaxJobs int
	// AdmissionDepth bounds the wire front-end's in-flight work — requests
	// admitted to compute (or queued async) but not yet completed. At the
	// bound, new work is refused with HTTP 429 and a Retry-After hint
	// instead of queueing unbounded: the same backpressure contract as the
	// async layer's bounded queue, except rejecting instead of blocking
	// (a blocked HTTP handler would just move the unbounded queue into the
	// kernel's accept backlog). 0 means DefaultAdmissionDepth; Validate
	// rejects negatives. The FMMFAM_ADMISSION_DEPTH environment variable
	// overrides this field.
	AdmissionDepth int

	// Calibrate, when set, replaces the Arch passed to NewMultiplier with
	// machine constants measured at construction time (model.Calibrate:
	// a GEMM probe for τa through the configured kernel and a bandwidth
	// sweep for τb, both at this multiplier's element type), cached
	// process-wide per (kernel, dtype) so repeated constructions — including
	// the internal serial twins — measure once. The FMMFAM_CALIBRATE=1
	// environment variable enables the same behavior without recompiling.
	// First-time calibration of a pair costs ~100ms.
	Calibrate bool
}

// Config.Traversal / FMMFAM_TRAVERSAL values.
const (
	// TraversalAuto lets the performance model pick BFS/DFS per level and
	// shape (the default; "" means the same).
	TraversalAuto = "auto"
	// TraversalDFS forces the serial term loop with intra-GEMM threading —
	// the historical bit-stable path.
	TraversalDFS = "dfs"
	// TraversalBFS forces term fan-out at every recursion level.
	TraversalBFS = "bfs"
)

// resolveTraversal returns the effective traversal mode: the
// FMMFAM_TRAVERSAL environment variable when set (the no-recompile escape
// hatch the golden-fingerprint pins rely on), cfg.Traversal otherwise, with
// unknown values rejected.
func resolveTraversal(cfg Config) (string, error) {
	t := os.Getenv("FMMFAM_TRAVERSAL")
	if t == "" {
		t = cfg.Traversal
	}
	switch t {
	case "", TraversalAuto:
		return TraversalAuto, nil
	case TraversalDFS, TraversalBFS:
		return t, nil
	}
	return "", fmt.Errorf("fmmfam: Traversal=%q, need %q, %q, %q, or empty", t, TraversalAuto, TraversalDFS, TraversalBFS)
}

// resolveAutotune returns the effective autotuning state: enabled and the
// challenger traffic fraction. The FMMFAM_AUTOTUNE environment variable wins
// over the Config fields when set — "0"/"off"/"false" force it off,
// "1"/"on"/"true" force it on with the Config (or default) fraction, and a
// bare float in (0, 0.5] forces it on at that fraction; anything else is an
// error. With the variable unset, Config.Autotune and Config.AutotuneFraction
// decide. fraction is 0 when disabled, and the concrete share otherwise.
func resolveAutotune(cfg Config) (enabled bool, fraction float64, err error) {
	frac := cfg.AutotuneFraction
	if frac < 0 || frac > 0.5 {
		return false, 0, fmt.Errorf("fmmfam: AutotuneFraction=%g, need 0 ≤ f ≤ 0.5 (0 = default %g)", frac, autotune.DefaultFraction)
	}
	if frac == 0 {
		frac = autotune.DefaultFraction
	}
	switch v := os.Getenv("FMMFAM_AUTOTUNE"); v {
	case "":
		if !cfg.Autotune {
			return false, 0, nil
		}
		return true, frac, nil
	case "0", "off", "false":
		return false, 0, nil
	case "1", "on", "true":
		return true, frac, nil
	default:
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil || f <= 0 || f > 0.5 {
			return false, 0, fmt.Errorf("fmmfam: FMMFAM_AUTOTUNE=%q, need 0/off/false, 1/on/true, or a fraction in (0, 0.5]", v)
		}
		return true, f, nil
	}
}

// Serving-layer defaults for the zero Config knobs.
const (
	// DefaultShardThreshold is the problem size — max(m,n), or k when
	// K-split is enabled — at which MulAdd starts auto-sharding; large
	// enough that sub-threshold problems are better served by in-call loop
	// parallelism.
	DefaultShardThreshold = 1024
	// DefaultPlanCacheCap bounds the plan cache; each plan is a few KiB of
	// coefficient lists (workspace pools are attached but drain when idle).
	DefaultPlanCacheCap = 64
	// DefaultServeAddr is the wire front-end's default listen address.
	DefaultServeAddr = ":8077"
	// DefaultCoalesceWindow is the default coalescing window: long enough
	// that a 64-client small-matrix workload fills windows by count, short
	// enough that an isolated request pays well under a millisecond of
	// added latency.
	DefaultCoalesceWindow = 500 * time.Microsecond
	// DefaultCoalesceMaxJobs is the default per-window job cap — sized so a
	// full window amortizes one pool dispatch across a few dozen small
	// products without the flush's MulAddBatch becoming a latency cliff.
	DefaultCoalesceMaxJobs = 32
	// DefaultAdmissionDepth is the default bound on the wire front-end's
	// in-flight work before it starts refusing with 429.
	DefaultAdmissionDepth = 256
)

// ServeParams is the resolved wire-serving configuration: Config's serve
// knobs after applying their environment-variable mirrors and defaults.
// Build one with Config.ServeParams; package serve and cmd/fmmserve consume
// it.
type ServeParams struct {
	// Addr is the resolved listen address.
	Addr string
	// CoalesceWindow is the resolved window duration; ≤ 0 means coalescing
	// is disabled (see Coalesce).
	CoalesceWindow time.Duration
	// CoalesceMaxJobs is the resolved per-window job cap.
	CoalesceMaxJobs int
	// AdmissionDepth is the resolved in-flight work bound.
	AdmissionDepth int
}

// Coalesce reports whether small-request coalescing is enabled.
func (p ServeParams) Coalesce() bool { return p.CoalesceWindow > 0 }

// ServeParams resolves the serve knobs (ServeAddr, CoalesceWindow,
// CoalesceMaxJobs, AdmissionDepth) against their environment mirrors
// (FMMFAM_SERVE_ADDR, FMMFAM_COALESCE_WINDOW, FMMFAM_COALESCE_MAXJOBS,
// FMMFAM_ADMISSION_DEPTH — each wins over its field when set) and fills
// defaults. A malformed mirror value is an error here and from Validate, so
// a deployment typo fails at startup rather than silently serving defaults.
func (c Config) ServeParams() (ServeParams, error) {
	return resolveServe(c)
}

func resolveServe(c Config) (ServeParams, error) {
	p := ServeParams{
		Addr:            c.ServeAddr,
		CoalesceWindow:  c.CoalesceWindow,
		CoalesceMaxJobs: c.CoalesceMaxJobs,
		AdmissionDepth:  c.AdmissionDepth,
	}
	if v := os.Getenv("FMMFAM_SERVE_ADDR"); v != "" {
		p.Addr = v
	}
	if v := os.Getenv("FMMFAM_COALESCE_WINDOW"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return ServeParams{}, fmt.Errorf("fmmfam: FMMFAM_COALESCE_WINDOW=%q, need a duration (e.g. 250us; negative disables coalescing)", v)
		}
		p.CoalesceWindow = d
	}
	if v := os.Getenv("FMMFAM_COALESCE_MAXJOBS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return ServeParams{}, fmt.Errorf("fmmfam: FMMFAM_COALESCE_MAXJOBS=%q, need an integer ≥ 0 (0 = default %d)", v, DefaultCoalesceMaxJobs)
		}
		p.CoalesceMaxJobs = n
	}
	if v := os.Getenv("FMMFAM_ADMISSION_DEPTH"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return ServeParams{}, fmt.Errorf("fmmfam: FMMFAM_ADMISSION_DEPTH=%q, need an integer ≥ 0 (0 = default %d)", v, DefaultAdmissionDepth)
		}
		p.AdmissionDepth = n
	}
	if p.CoalesceMaxJobs < 0 {
		return ServeParams{}, fmt.Errorf("fmmfam: CoalesceMaxJobs=%d, need ≥ 0 (0 = default %d; disable coalescing with a negative CoalesceWindow)", p.CoalesceMaxJobs, DefaultCoalesceMaxJobs)
	}
	if p.AdmissionDepth < 0 {
		return ServeParams{}, fmt.Errorf("fmmfam: AdmissionDepth=%d, need ≥ 0 (0 = default %d)", p.AdmissionDepth, DefaultAdmissionDepth)
	}
	if p.Addr == "" {
		p.Addr = DefaultServeAddr
	}
	if p.CoalesceWindow == 0 {
		p.CoalesceWindow = DefaultCoalesceWindow
	}
	if p.CoalesceMaxJobs == 0 {
		p.CoalesceMaxJobs = DefaultCoalesceMaxJobs
	}
	if p.AdmissionDepth == 0 {
		p.AdmissionDepth = DefaultAdmissionDepth
	}
	return p, nil
}

// DefaultConfig returns the single-threaded default blocking with default
// serving knobs.
func DefaultConfig() Config {
	g := gemm.DefaultConfig()
	return Config{MC: g.MC, KC: g.KC, NC: g.NC, Threads: g.Threads}
}

// Parallel returns c with Threads set to the machine's logical CPU count.
func (c Config) Parallel() Config {
	c.Threads = runtime.GOMAXPROCS(0)
	return c
}

// gemmConfig projects the driver-facing fields for the execution layers.
func (c Config) gemmConfig() gemm.Config {
	return gemm.Config{MC: c.MC, KC: c.KC, NC: c.NC, Threads: c.Threads, Kernel: c.Kernel}
}

// Validate checks the configuration against the float64 surface: the kernel
// backend must be registered for the dtype, the blocking must fit that
// backend's micro-tile (MC ≥ MR, KC ≥ 1, NC ≥ NR) with at least one worker —
// those driver-facing rules are checked by gemm.ValidateFor, the single
// source — and the serving knobs that have no negative sentinel
// (ShardMinTile, QueueWorkers, QueueDepth, CoalesceMaxJobs, AdmissionDepth)
// must be non-negative, with the serve knobs' environment mirrors required
// to parse (see Config.ServeParams).
// NewMultiplier (and NewMultiplier32, which validates against the float32
// registry instead) records the result and surfaces it from every entry
// point, so an invalid config fails fast instead of computing with nonsense
// parameters.
func (c Config) Validate() error {
	return validateConfig[float64](c)
}

// validateConfig is Validate for one element type; see Config.Validate.
func validateConfig[E matrix.Element](c Config) error {
	if err := gemm.ValidateFor[E](c.gemmConfig()); err != nil {
		return fmt.Errorf("fmmfam: %w", err)
	}
	if c.ShardMinTile < 0 {
		return fmt.Errorf("fmmfam: ShardMinTile=%d, need ≥ 0 (0 = model break-even floor)", c.ShardMinTile)
	}
	if c.QueueWorkers < 0 {
		return fmt.Errorf("fmmfam: QueueWorkers=%d, need ≥ 0 (0 = Threads)", c.QueueWorkers)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("fmmfam: QueueDepth=%d, need ≥ 0 (0 = 4×workers)", c.QueueDepth)
	}
	if _, err := resolveTraversal(c); err != nil {
		return err
	}
	if _, _, err := resolveAutotune(c); err != nil {
		return err
	}
	if _, err := resolveServe(c); err != nil {
		return err
	}
	return nil
}

// Kernels lists the registered micro-kernel backend names, sorted; any of
// them is a valid Config.Kernel / FMMFAM_KERNEL value. See
// internal/kernel/conformance for what a new backend must pass to join, and
// KernelStatuses for per-backend availability detail (the avx2 assembly
// backend only registers on amd64 hosts with AVX2+FMA).
func Kernels() []string { return kernel.Backends() }

// KernelStatus is one backend's availability on this host and build.
type KernelStatus struct {
	// Name is the registry name; a valid Config.Kernel value when Available.
	Name string
	// Dtypes lists the element types the backend registered for ("float32",
	// "float64"), sorted; empty when unavailable.
	Dtypes []string
	// Available reports whether the backend registered on this host.
	Available bool
	// Reason explains an unavailable backend — e.g. the avx2 backend on a
	// host without AVX2+FMA, or in a purego/non-amd64 build ("" when
	// available).
	Reason string
}

// CPUInfo reports the host properties kernel dispatch consulted: the
// architecture, whether the AVX2+FMA probe passed, and whether this build
// carries assembly backends at all.
type CPUInfo struct {
	Arch   string
	AVX2   bool
	PureGo bool
}

// KernelStatuses reports every backend known to this build, available or
// not, sorted by name — the operator's answer to "is avx2 actually in use
// here, and if not, why not". Served alongside each engine's resolved
// backend (MultiplierStats.Kernel) in the /v1/stats surface.
func KernelStatuses() []KernelStatus {
	sts := kernel.Statuses()
	out := make([]KernelStatus, len(sts))
	for i, st := range sts {
		out[i] = KernelStatus{Name: st.Name, Dtypes: st.Dtypes, Available: st.Available, Reason: st.Reason}
	}
	return out
}

// HostCPU reports the dispatch-relevant CPU features of this host and build.
func HostCPU() CPUInfo {
	f := kernel.HostCPU()
	return CPUInfo{Arch: f.Arch, AVX2: f.AVX2, PureGo: f.PureGo}
}

func (c Config) shardThreshold() int {
	switch {
	case c.ShardThreshold < 0:
		return 0 // disabled
	case c.ShardThreshold == 0:
		return DefaultShardThreshold
	default:
		return c.ShardThreshold
	}
}

func (c Config) shardKSplit() bool { return c.ShardKSplit >= 0 }

func (c Config) queueWorkers() int {
	if c.QueueWorkers > 0 {
		return c.QueueWorkers
	}
	if c.Threads > 1 {
		return c.Threads
	}
	return 1
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 4 * c.queueWorkers()
}

func (c Config) planCacheCap() int {
	switch {
	case c.PlanCacheCap < 0:
		return 0 // unbounded
	case c.PlanCacheCap == 0:
		return DefaultPlanCacheCap
	default:
		return c.PlanCacheCap
	}
}

// Plan is a ready-to-run float64 FMM implementation; see NewPlan.
type Plan = fmmexec.Plan[float64]

// Plan32 is a ready-to-run float32 FMM implementation; see NewPlan32.
type Plan32 = fmmexec.Plan[float32]

// Strassen returns the ⟨2,2,2⟩;7 algorithm with the paper's coefficients.
func Strassen() Algorithm { return core.Strassen() }

// Generate returns the lowest-rank verified algorithm for partition ⟨m,k,n⟩
// reachable from the built-in seeds (see DESIGN.md for rank provenance).
func Generate(m, k, n int) Algorithm { return core.Generate(m, k, n) }

// CatalogEntry is one row of the paper's Figure-2 family.
type CatalogEntry = core.CatalogEntry

// Catalog returns the Figure-2 family of evaluated partitions.
func Catalog() []CatalogEntry { return core.Catalog() }

// NewPlan builds an executable multi-level float64 FMM plan. Levels are
// outermost first; hybrid partitions simply pass different algorithms per
// level. Config.Traversal "bfs" builds the plan with term fan-out at every
// level; "dfs", "auto", and empty build the serial term loop (a direct plan
// has no problem size for the model — auto selection happens on the
// Multiplier path).
func NewPlan(cfg Config, v Variant, levels ...Algorithm) (*Plan, error) {
	tr, err := resolveTraversal(cfg)
	if err != nil {
		return nil, err
	}
	return fmmexec.NewPlanTraversal[float64](cfg.gemmConfig(), v, forcedSteps(tr, len(levels)), levels...)
}

// NewPlan32 builds an executable multi-level float32 FMM plan — the same
// ⟦U,V,W⟧ evaluation over float32 operands (the generated coefficients are
// small exact rationals, so their float32 conversion is exact); see NewPlan.
func NewPlan32(cfg Config, v Variant, levels ...Algorithm) (*Plan32, error) {
	tr, err := resolveTraversal(cfg)
	if err != nil {
		return nil, err
	}
	return fmmexec.NewPlanTraversal[float32](cfg.gemmConfig(), v, forcedSteps(tr, len(levels)), levels...)
}

// forcedSteps maps a forced traversal mode to explicit per-level steps: nil
// (the serial loop) unless the mode is "bfs", which fans every level.
func forcedSteps(mode string, levels int) []fmmexec.Step {
	if mode != TraversalBFS {
		return nil
	}
	steps := make([]fmmexec.Step, levels)
	for i := range steps {
		steps[i] = fmmexec.BFS
	}
	return steps
}

// Arch holds performance-model machine parameters.
type Arch = model.Arch

// PaperArch returns the paper's Ivy Bridge machine constants (§5.1).
func PaperArch() Arch { return model.PaperIvyBridge() }

// Candidate is one implementation considered by the selector.
type Candidate = model.Candidate

// Predict estimates the execution time in seconds of a candidate on arch for
// problem size (m,k,n), per the paper's Figure-5 model.
func Predict(arch Arch, c Candidate, m, k, n int) float64 {
	return model.Predict(arch, c.Stats(), c.Variant, m, k, n).Total()
}

// Recommend ranks the default candidate family (every catalog shape at one
// and two levels in all variants, plus the Figure-9 hybrids) for problem
// size (m,k,n) on arch and returns the predicted-fastest candidate.
func Recommend(arch Arch, m, k, n int) Candidate {
	ranked := model.Rank(arch, defaultCandidates(), m, k, n)
	return ranked[0].Candidate
}

// Multiply computes c += a·b using a model-recommended FMM plan with default
// blocking and all available CPUs. It delegates to a lazily-initialized
// package-level Multiplier, so repeated calls of similar sizes reuse cached
// plans instead of rebuilding one per call. Safe for concurrent callers; for
// custom blocking or machine models, build your own Multiplier.
func Multiply(c, a, b Matrix) error {
	return defaultMultiplier().MulAdd(c, a, b)
}

// MultiplyBatch runs many independent multiplications through the shared
// default Multiplier's worker pool; see Multiplier.MulAddBatch.
func MultiplyBatch(jobs []BatchJob) error {
	return defaultMultiplier().MulAddBatch(jobs)
}

// MultiplyAsync submits c += a·b to the shared default Multiplier's bounded
// async queue and returns a Future immediately; see Multiplier.MulAddAsync.
func MultiplyAsync(c, a, b Matrix) *Future {
	return defaultMultiplier().MulAddAsync(c, a, b)
}

// Multiply32 computes c += a·b at float32 through a lazily-initialized
// shared default Multiplier32 — the single-precision twin of Multiply, with
// its own plan cache and dtype-priced model selection. Safe for concurrent
// callers; accuracy follows the FLOP-scaled float32 bounds of README
// "Precision".
func Multiply32(c, a, b Matrix32) error {
	return defaultMultiplier32().MulAdd(c, a, b)
}

// MultiplyBatch32 runs many independent float32 multiplications through the
// shared default Multiplier32's worker pool; see Multiplier.MulAddBatch.
func MultiplyBatch32(jobs []BatchJob32) error {
	return defaultMultiplier32().MulAddBatch(jobs)
}

// MultiplyAsync32 submits a float32 c += a·b to the shared default
// Multiplier32's bounded async queue; see Multiplier.MulAddAsync.
func MultiplyAsync32(c, a, b Matrix32) *Future {
	return defaultMultiplier32().MulAddAsync(c, a, b)
}

// DiscoverProblem specifies a numerical search target; see Discover.
type DiscoverProblem = discover.Problem

// DiscoverOptions tunes the ALS search; zero values select defaults.
type DiscoverOptions = discover.Options

// Discover searches numerically for an exact rank-R algorithm of shape
// ⟨m,k,n⟩ (alternating least squares with discretization; the returned
// algorithm, if any, is Brent-verified). Found algorithms can be fed to
// RegisterSeed to improve Generate.
func Discover(p DiscoverProblem, o DiscoverOptions) (Algorithm, error) {
	return discover.Search(p, o)
}

// RegisterSeed adds a verified algorithm to the generator's seed set; future
// Generate calls may compose it.
func RegisterSeed(a Algorithm) error { return core.RegisterSeed(a) }
