package fmmfam

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStatsConcurrentWithServingAndAutotune hammers Stats() from dedicated
// reader goroutines while servers drive traffic through a multiplier with
// autotuning at its maximum exploration fraction — so bandit records,
// verdict checkpoints, and promotions/demotions race against snapshotting.
// Under -race this proves the observability surface never tears against the
// tuner state it reports. Results are still checked against the naive
// reference: autotuning may swap which plan serves a call, never what it
// computes.
func TestStatsConcurrentWithServingAndAutotune(t *testing.T) {
	mu := NewMultiplier(Config{
		MC: 16, KC: 16, NC: 32, Threads: 2,
		Autotune: true, AutotuneFraction: 0.5,
	}, PaperArch())
	refs := makeRefProducts(7)

	var stop atomic.Bool
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				s := mu.Stats()
				if !s.Autotune || s.Fraction != 0.5 {
					t.Errorf("Stats() = {Autotune: %v, Fraction: %g}; want {true, 0.5}", s.Autotune, s.Fraction)
					return
				}
				// Walk the whole snapshot so the race detector observes the
				// reads against concurrent tuner writes.
				for _, sh := range s.Shapes {
					for _, a := range sh.Arms {
						_ = a.Samples
					}
					_ = len(sh.Promotions)
				}
			}
		}()
	}

	const servers = 4
	const iters = 60
	var wg sync.WaitGroup
	errc := make(chan error, servers)
	for g := 0; g < servers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				r := refs[(g+it)%len(refs)]
				c := NewMatrix(r.want.Rows, r.want.Cols)
				if err := mu.MulAdd(c, r.a, r.b); err != nil {
					errc <- err
					return
				}
				if d := c.MaxAbsDiff(r.want); d > 1e-9 {
					t.Errorf("goroutine %d iter %d: diff %g", g, it, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	readers.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	s := mu.Stats()
	if s.CachedPlans == 0 {
		t.Error("Stats().CachedPlans = 0 after serving traffic")
	}
	if len(s.Shapes) == 0 {
		t.Error("Stats().Shapes empty after serving autotuned traffic")
	}
	for _, sh := range s.Shapes {
		var total uint64
		for _, a := range sh.Arms {
			total += a.Samples
		}
		if total == 0 {
			t.Errorf("shape %s (%s): tuner exists but recorded no samples", sh.Shape, sh.Kind)
		}
	}
}
