#!/usr/bin/env bash
# fuzz_smoke.sh [fuzztime] — run every Fuzz* target in the module for the
# given -fuzztime each (default 25s).
#
# Targets are auto-discovered per package with `go test -list '^Fuzz'`, so a
# new fuzz target joins CI (and the nightly long run) by merely existing —
# the hardcoded target list this replaced silently skipped anything added
# after it was written. `go test -fuzz` drives one target at a time, hence
# the loop. A failing target minimizes its input into the package's
# testdata/ and reproduces locally with the printed seed.
set -euo pipefail

fuzztime="${1:-25s}"
found=0

for pkg in $(go list ./...); do
  # -list compiles the test binary and prints matching identifiers one per
  # line, followed by an "ok <pkg>" trailer; keep only the target names.
  targets=$(go test -run '^$' -list '^Fuzz' "$pkg" | grep '^Fuzz' || true)
  for t in $targets; do
    found=$((found + 1))
    echo "=== fuzz $pkg $t ($fuzztime)"
    go test -run '^$' -fuzz "^${t}\$" -fuzztime "$fuzztime" "$pkg"
  done
done

if [ "$found" -eq 0 ]; then
  echo "no fuzz targets discovered — discovery is broken, failing" >&2
  exit 1
fi
echo "fuzzed $found targets at $fuzztime each"
