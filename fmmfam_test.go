package fmmfam

import (
	"math/rand"
	"testing"

	"fmmfam/internal/matrix"
)

func TestMultiplyEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := NewMatrix(96, 80), NewMatrix(80, 72)
	a.FillRand(rng)
	b.FillRand(rng)
	c := NewMatrix(96, 72)
	want := NewMatrix(96, 72)
	matrix.MulAdd(want, a, b)
	if err := Multiply(c, a, b); err != nil {
		t.Fatal(err)
	}
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("diff %g", d)
	}
}

func TestMultiplyDimError(t *testing.T) {
	if err := Multiply(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := NewPlan(Config{MC: 8, KC: 8, NC: 16, Threads: 2}, ABC, Strassen(), Generate(2, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewMatrix(30, 41), NewMatrix(41, 26)
	a.FillRand(rng)
	b.FillRand(rng)
	c := NewMatrix(30, 26)
	want := NewMatrix(30, 26)
	matrix.MulAdd(want, a, b)
	p.MulAdd(c, a, b)
	if d := c.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("diff %g", d)
	}
}

func TestRecommendRankKPrefersStrassenABC(t *testing.T) {
	cand := Recommend(PaperArch(), 14400, 480, 14400)
	if cand.Variant != ABC {
		t.Fatalf("rank-k recommendation should be ABC, got %s", cand.Name())
	}
	// The model puts one- and two-level <2,2,2> ABC within a hair of each
	// other here (the paper breaks such ties by measuring the top two);
	// either is an acceptable recommendation, but the shape must be <2,2,2>.
	for _, l := range cand.Levels {
		if l.M != 2 || l.K != 2 || l.N != 2 {
			t.Fatalf("rank-k recommendation should be <2,2,2>-based, got %s", cand.Name())
		}
	}
}

func TestPredictPositive(t *testing.T) {
	cand := Recommend(PaperArch(), 1000, 1000, 1000)
	if Predict(PaperArch(), cand, 1000, 1000, 1000) <= 0 {
		t.Fatal("non-positive prediction")
	}
}

func TestCatalogExposed(t *testing.T) {
	if len(Catalog()) != 23 {
		t.Fatal("catalog size")
	}
}

func TestDiscoverValidatesThroughFacade(t *testing.T) {
	if _, err := Discover(DiscoverProblem{M: 0, K: 1, N: 1, R: 1}, DiscoverOptions{}); err == nil {
		t.Fatal("bad problem accepted")
	}
}

func TestRegisterSeedThroughFacade(t *testing.T) {
	if err := RegisterSeed(Strassen()); err != nil {
		t.Fatal(err)
	}
}
