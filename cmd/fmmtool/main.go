// Command fmmtool is the developer CLI for the FMM family generator:
//
//	fmmtool list                          catalog table (Figure-2 family)
//	fmmtool describe -shape 2,2,2         print ⟦U,V,W⟧ for a shape
//	fmmtool verify  [-shape m,k,n]        Brent-verify one shape or the catalog
//	fmmtool gen -levels "2,2,2;3,3,3" -variant ABC [-pkg p -func F -selftest -o file]
//	fmmtool model -m 14400 -k 480 -n 14400 [-top 10]
//	fmmtool discover -shape 2,2,2 -rank 7 [-restarts 10 -iters 1500 -seed 2]
//	fmmtool morton [-levels 3]
//	fmmtool export -shape 2,3,2 [-o file]   write a ⟦U,V,W⟧ coefficient file
//	fmmtool import file.fmm                 parse, Brent-verify and summarize
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fmmfam/internal/codegen"
	"fmmfam/internal/coeffio"
	"fmmfam/internal/core"
	"fmmfam/internal/discover"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/matrix"
	"fmmfam/internal/model"
	"fmmfam/internal/morton"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "list":
		cmdList()
	case "describe":
		cmdDescribe(args)
	case "verify":
		cmdVerify(args)
	case "gen":
		cmdGen(args)
	case "model":
		cmdModel(args)
	case "discover":
		cmdDiscover(args)
	case "morton":
		cmdMorton(args)
	case "export":
		cmdExport(args)
	case "import":
		cmdImport(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fmmtool list|describe|verify|gen|model|discover|morton [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fmmtool:", err)
	os.Exit(1)
}

func parseShape(s string) (int, int, int) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		fatal(fmt.Errorf("shape %q: want m,k,n", s))
	}
	var d [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			fatal(fmt.Errorf("shape %q: bad dimension %q", s, p))
		}
		d[i] = v
	}
	return d[0], d[1], d[2]
}

func cmdList() {
	fmt.Println("shape\tmkn\tR_paper\tR_ours\ttheory%\tnnzU\tnnzV\tnnzW\tref\tconstruction")
	for _, e := range core.Catalog() {
		u, v, w := e.Algorithm.NNZ()
		fmt.Printf("%s\t%d\t%d\t%d\t%.1f\t%d\t%d\t%d\t%s\t%s\n",
			e.Shape(), e.M*e.K*e.N, e.PaperRank, e.OurRank(),
			e.Algorithm.TheoreticalSpeedup()*100, u, v, w, e.PaperRef, core.Generate(e.M, e.K, e.N).Name)
	}
}

func cmdDescribe(args []string) {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	shape := fs.String("shape", "2,2,2", "partition m,k,n")
	fs.Parse(args)
	m, k, n := parseShape(*shape)
	a := core.Generate(m, k, n)
	fmt.Printf("%s  R=%d  (%s)\n", a.ShapeString(), a.R, a.Name)
	for _, f := range []struct {
		name string
		m    matrix.Mat[float64]
	}{{"U", a.U}, {"V", a.V}, {"W", a.W}} {
		fmt.Printf("%s (%d×%d):\n%v\n", f.name, f.m.Rows, f.m.Cols, f.m)
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	shape := fs.String("shape", "", "partition m,k,n (default: whole catalog)")
	fs.Parse(args)
	if *shape != "" {
		m, k, n := parseShape(*shape)
		a := core.Generate(m, k, n)
		if err := a.Verify(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: ok (Brent equations hold exactly)\n", a)
		return
	}
	for _, e := range core.Catalog() {
		if err := e.Algorithm.Verify(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s R=%d: ok\n", e.Shape(), e.OurRank())
	}
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	levelsFlag := fs.String("levels", "2,2,2", "semicolon-separated per-level shapes, e.g. \"2,2,2;3,3,3\"")
	variantFlag := fs.String("variant", "ABC", "Naive, AB or ABC")
	pkg := fs.String("pkg", "main", "package name")
	fn := fs.String("func", "MulAdd", "function name")
	selfTest := fs.Bool("selftest", false, "emit a self-checking main() (requires -pkg main)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	var levels []core.Algorithm
	for _, part := range strings.Split(*levelsFlag, ";") {
		m, k, n := parseShape(part)
		levels = append(levels, core.Generate(m, k, n))
	}
	var variant fmmexec.Variant
	switch strings.ToUpper(*variantFlag) {
	case "NAIVE":
		variant = fmmexec.Naive
	case "AB":
		variant = fmmexec.AB
	case "ABC":
		variant = fmmexec.ABC
	default:
		fatal(fmt.Errorf("unknown variant %q", *variantFlag))
	}
	src, err := codegen.Generate(codegen.Spec{
		Package: *pkg, FuncName: *fn, Levels: levels, Variant: variant, SelfTest: *selfTest,
	})
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(src)
		return
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(src))
}

func cmdModel(args []string) {
	fs := flag.NewFlagSet("model", flag.ExitOnError)
	m := fs.Int("m", 14400, "m")
	k := fs.Int("k", 480, "k")
	n := fs.Int("n", 14400, "n")
	top := fs.Int("top", 10, "show the N best predictions")
	fs.Parse(args)
	arch := model.PaperIvyBridge()
	ranked := model.Rank(arch, model.DefaultCandidates(), *m, *k, *n)
	gm := model.PredictGEMM(arch, *m, *k, *n).Total()
	fmt.Printf("problem %d×%d×%d on paper Ivy Bridge; GEMM predicted %.3fs (%.2f GFLOPS)\n",
		*m, *k, *n, gm, model.EffectiveGFLOPS(*m, *k, *n, gm))
	fmt.Println("rank\timpl\tpredicted_s\teff_GFLOPS\tvs_gemm")
	for i, r := range ranked {
		if i >= *top {
			break
		}
		fmt.Printf("%d\t%s\t%.3f\t%.2f\t%+.1f%%\n", i+1, r.Candidate.Name(), r.Predicted,
			model.EffectiveGFLOPS(*m, *k, *n, r.Predicted), (gm/r.Predicted-1)*100)
	}
}

func cmdDiscover(args []string) {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	shape := fs.String("shape", "2,2,2", "target partition m,k,n")
	rank := fs.Int("rank", 7, "target rank R")
	restarts := fs.Int("restarts", 10, "random restarts")
	iters := fs.Int("iters", 1500, "ALS sweeps per restart")
	seed := fs.Int64("seed", 2, "RNG seed")
	register := fs.Bool("register", false, "register a found algorithm as a generator seed")
	fs.Parse(args)
	m, k, n := parseShape(*shape)
	p := discover.Problem{M: m, K: k, N: n, R: *rank}
	fmt.Printf("searching %s (restarts=%d iters=%d seed=%d)...\n", p, *restarts, *iters, *seed)
	a, err := discover.Search(p, discover.Options{Restarts: *restarts, Iters: *iters, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("found %s — Brent-verified exact\n", a)
	if *register {
		if err := core.RegisterSeed(a); err != nil {
			fatal(err)
		}
		fmt.Println("registered as generator seed (in-process)")
	}
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	shape := fs.String("shape", "2,2,2", "partition m,k,n")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	m, k, n := parseShape(*shape)
	a := core.Generate(m, k, n)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := coeffio.Write(w, a); err != nil {
		fatal(err)
	}
}

func cmdImport(args []string) {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("import: exactly one file argument required"))
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	a, err := coeffio.Read(f)
	if err != nil {
		fatal(err)
	}
	u, v, w := a.NNZ()
	fmt.Printf("%s: Brent-verified exact; theoretical speedup %.1f%%, nnz %d/%d/%d\n",
		a, a.TheoreticalSpeedup()*100, u, v, w)
	if cur := core.Generate(a.M, a.K, a.N); a.R < cur.R {
		fmt.Printf("improves on the built-in generator (%d < %d); register with core.RegisterSeed\n", a.R, cur.R)
	}
}

func cmdMorton(args []string) {
	fs := flag.NewFlagSet("morton", flag.ExitOnError)
	levels := fs.Int("levels", 3, "levels of 2×2 splitting")
	fs.Parse(args)
	grids := make([]morton.Grid, *levels)
	for i := range grids {
		grids[i] = morton.Grid{R: 2, C: 2}
	}
	for _, row := range morton.Table(grids) {
		for j, v := range row {
			if j > 0 {
				fmt.Print("\t")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}
}
