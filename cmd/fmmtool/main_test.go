package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// run executes the fmmtool sources via `go run` from the module root.
func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))
	cmd := exec.Command("go", append([]string{"run", "./cmd/fmmtool"}, args...)...)
	cmd.Dir = root
	b, err := cmd.CombinedOutput()
	return string(b), err
}

func TestCLIList(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the toolchain")
	}
	out, err := run(t, "list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"<2,2,2>", "<6,3,3>", "Strassen [11]", "Smirnov [12]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIVerifyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the toolchain")
	}
	out, err := run(t, "verify", "-shape", "2,2,2")
	if err != nil || !strings.Contains(out, "ok") {
		t.Fatalf("verify failed: %v\n%s", err, out)
	}
}

func TestCLIModel(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the toolchain")
	}
	out, err := run(t, "model", "-m", "14400", "-k", "480", "-n", "14400", "-top", "3")
	if err != nil || !strings.Contains(out, "ABC") {
		t.Fatalf("model failed: %v\n%s", err, out)
	}
}

func TestCLIGenParses(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the toolchain")
	}
	out, err := run(t, "gen", "-levels", "2,2,2", "-variant", "AB", "-pkg", "p", "-func", "F")
	if err != nil || !strings.Contains(out, "func F(ctx *gemm.Context") {
		t.Fatalf("gen failed: %v\n%s", err, out)
	}
}

func TestCLIExportImportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the toolchain")
	}
	f := filepath.Join(t.TempDir(), "a.fmm")
	if out, err := run(t, "export", "-shape", "2,3,2", "-o", f); err != nil {
		t.Fatalf("export: %v\n%s", err, out)
	}
	out, err := run(t, "import", f)
	if err != nil || !strings.Contains(out, "Brent-verified exact") {
		t.Fatalf("import: %v\n%s", err, out)
	}
	_ = os.Remove(f)
}

func TestCLIMorton(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the toolchain")
	}
	out, err := run(t, "morton", "-levels", "2")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.HasPrefix(strings.TrimSpace(out), "0\t1\t4\t5") {
		t.Fatalf("unexpected morton table:\n%s", out)
	}
}

func TestCLIUnknownCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the toolchain")
	}
	if _, err := run(t, "bogus"); err == nil {
		t.Fatal("unknown command should exit non-zero")
	}
}
