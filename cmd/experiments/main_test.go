package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runExp(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))
	cmd := exec.Command("go", append([]string{"run", "./cmd/experiments"}, args...)...)
	cmd.Dir = root
	b, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, b)
	}
	return string(b)
}

func TestFig3MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the toolchain")
	}
	out := runExp(t, "-exp", "fig3", "-modelonly")
	if !strings.Contains(out, " 0\t 1\t 4\t 5\t16\t17\t20\t21") {
		t.Fatalf("figure 3 row 0 missing:\n%s", out)
	}
	if !strings.Contains(out, "42\t43\t46\t47\t58\t59\t62\t63") {
		t.Fatalf("figure 3 row 7 missing:\n%s", out)
	}
}

func TestFig2ModelOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the toolchain")
	}
	out := runExp(t, "-exp", "fig2", "-modelonly")
	if !strings.Contains(out, "<2,2,2>\t8\t7\t7\t14.3\t14.3") {
		t.Fatalf("figure 2 Strassen row missing:\n%s", out)
	}
	// Model-only practical columns must be positive for <2,2,2> at paper scale.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "<2,2,2>\t") {
			fields := strings.Split(line, "\t")
			if len(fields) != 8 {
				t.Fatalf("bad row %q", line)
			}
			if strings.HasPrefix(fields[6], "-") || strings.HasPrefix(fields[7], "-") {
				t.Fatalf("modeled paper-scale Strassen speedup negative: %q", line)
			}
		}
	}
}

func TestFig6ModelOnlyEmitsAllShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the toolchain")
	}
	out := runExp(t, "-exp", "fig6", "-modelonly")
	for _, shape := range []string{"<2,2,2>", "<3,6,3>", "<6,3,3>"} {
		if !strings.Contains(out, "ABC\t"+shape) || !strings.Contains(out, "Naive\t"+shape) {
			t.Fatalf("modeled fig6 missing %s:\n%.400s", shape, out)
		}
	}
}
