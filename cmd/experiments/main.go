// Command experiments regenerates every table and figure of the paper's
// evaluation (Figures 2, 3, 6, 7, 8, 9, 10 plus the stability ablation) as
// TSV series on stdout.
//
// Actual (measured) curves run at a reduced default scale — the pure-Go
// micro-kernel is roughly an order of magnitude slower than the paper's
// assembly kernel, so the paper's m=n=14400 sweeps are impractical to sweep
// exhaustively; pass -scale=paper to run the original sizes anyway. Modeled
// curves are always also emitted at the exact paper sizes with the paper's
// Ivy Bridge machine constants, which reproduces the modeled halves of
// Figures 6 and 7 faithfully.
//
// Usage:
//
//	experiments -exp fig2|fig3|fig6|fig7|fig8|fig9|fig10|stability|all
//	            [-scale small|medium|paper] [-threads N] [-modelonly]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"fmmfam/internal/core"
	"fmmfam/internal/fmmexec"
	"fmmfam/internal/gemm"
	"fmmfam/internal/matrix"
	"fmmfam/internal/model"
	"fmmfam/internal/morton"
	"fmmfam/internal/stability"
)

type runner struct {
	scale     string
	threads   int
	modelOnly bool

	cfg      gemm.Config
	arch     model.Arch // calibrated to this machine
	paperA   model.Arch // paper machine constants
	planMemo map[string]*fmmexec.Plan[float64]
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig2, fig3, fig6, fig7, fig8, fig9, fig10, stability, all")
	scale := flag.String("scale", "small", "problem scale: small, medium, paper")
	threads := flag.Int("threads", 1, "worker count for the serial experiments (figs 9/10 use all CPUs regardless)")
	modelOnly := flag.Bool("modelonly", false, "emit only modeled series (no measurements)")
	flag.Parse()

	r := &runner{
		scale:     *scale,
		threads:   *threads,
		modelOnly: *modelOnly,
		paperA:    model.PaperIvyBridge(),
		planMemo:  map[string]*fmmexec.Plan[float64]{},
	}
	r.cfg = gemm.DefaultConfig()
	r.cfg.Threads = *threads
	if !r.modelOnly {
		arch, err := model.Calibrate[float64](gemm.Config{MC: r.cfg.MC, KC: r.cfg.KC, NC: r.cfg.NC, Threads: 1}, 384)
		if err != nil {
			fatal(err)
		}
		// Fit λ so the model matches a measured GEMM point (§4.2: "λ is
		// adapted to match gemm performance").
		probe := 480
		ctx := gemm.MustNewContext[float64](gemm.Config{MC: r.cfg.MC, KC: r.cfg.KC, NC: r.cfg.NC, Threads: 1})
		g := r.gemmGFLOPS(ctx, probe, probe, probe)
		secs := 2 * float64(probe) * float64(probe) * float64(probe) / (g * 1e9)
		r.arch = model.FitLambda(arch, probe, probe, probe, secs)
		fmt.Printf("# calibrated: tauA=%.3e s/flop (%.2f GFLOPS), tauB=%.3e s/elem, lambda=%.2f\n",
			r.arch.TauA, 1/r.arch.TauA/1e9, r.arch.TauB, r.arch.Lambda)
	} else {
		r.arch = r.paperA
	}

	exps := map[string]func(){
		"fig2":      r.figure2,
		"fig3":      r.figure3,
		"fig6":      r.figure6,
		"fig7":      r.figure7,
		"fig8":      r.figure8,
		"fig9":      r.figure9,
		"fig10":     r.figure10,
		"crossover": r.crossover,
		"stability": r.stability,
	}
	if *exp == "all" {
		for _, name := range []string{"fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "stability"} {
			exps[name]()
		}
		return
	}
	f, ok := exps[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	f()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// base returns the m=n base size for the current scale, aligned to 2·3·kC
// style multiples so that partitioned blocks stay kC-friendly.
func (r *runner) base() int {
	switch r.scale {
	case "paper":
		return 14400
	case "medium":
		return 1440
	default:
		return 960
	}
}

// plan returns a memoized plan.
func (r *runner) plan(v fmmexec.Variant, threads int, levels ...core.Algorithm) *fmmexec.Plan[float64] {
	key := fmt.Sprintf("%v|%d", v, threads)
	for _, l := range levels {
		key += "|" + l.String()
	}
	if p, ok := r.planMemo[key]; ok {
		return p
	}
	cfg := r.cfg
	cfg.Threads = threads
	p := fmmexec.MustNewPlan[float64](cfg, v, levels...)
	r.planMemo[key] = p
	return p
}

// measure times fn over the given problem and returns effective GFLOPS.
func measure(m, k, n int, fn func(c, a, b matrix.Mat[float64])) float64 {
	a, b := matrix.New[float64](m, k), matrix.New[float64](k, n)
	a.Fill(1.0 / 3)
	b.Fill(-2.0 / 3)
	c := matrix.New[float64](m, n)
	best := 0.0
	for rep := 0; rep < 2; rep++ {
		c.Zero()
		start := time.Now()
		fn(c, a, b)
		el := time.Since(start).Seconds()
		if g := model.EffectiveGFLOPS(m, k, n, el); g > best {
			best = g
		}
	}
	return best
}

func (r *runner) gemmGFLOPS(ctx *gemm.Context[float64], m, k, n int) float64 {
	return measure(m, k, n, func(c, a, b matrix.Mat[float64]) { ctx.MulAdd(c, a, b) })
}

func (r *runner) planGFLOPS(p *fmmexec.Plan[float64], m, k, n int) float64 {
	return measure(m, k, n, func(c, a, b matrix.Mat[float64]) { p.MulAdd(c, a, b) })
}

// modelGFLOPS evaluates the model as effective GFLOPS.
func modelGFLOPS(arch model.Arch, s model.Stats, v fmmexec.Variant, m, k, n int) float64 {
	return model.EffectiveGFLOPS(m, k, n, model.Predict(arch, s, v, m, k, n).Total())
}

func modelGemmGFLOPS(arch model.Arch, m, k, n int) float64 {
	return model.EffectiveGFLOPS(m, k, n, model.PredictGEMM(arch, m, k, n).Total())
}

// ---------------------------------------------------------------- Figure 2

// figure2 regenerates the Figure-2 table: per catalog shape, the rank, the
// theoretical speedup, and practical speedups for the paper's two problem
// shapes (rank-k update and near-square), one-level ABC vs the GEMM baseline.
func (r *runner) figure2() {
	fmt.Println("## Figure 2: theoretical and practical speedup of one-level FMM (ABC) vs GEMM")
	base := r.base()
	k1 := base / 3 // rank-k update (paper: 14400×480)
	k2 := base * 5 / 6
	fmt.Printf("# practical #1: m=n=%d k=%d; practical #2: m=n=%d k=%d; threads=%d\n", base, k1, base, k2, r.threads)
	fmt.Println("shape\tmkn\tR_paper\tR_ours\ttheory_paper%\ttheory_ours%\tpractical1%\tpractical2%")
	ctx := gemm.MustNewContext[float64](r.cfg)
	var g1, g2 float64
	if !r.modelOnly {
		g1 = r.gemmGFLOPS(ctx, base, k1, base)
		g2 = r.gemmGFLOPS(ctx, base, k2, base)
	}
	for _, e := range core.Catalog() {
		theoryPaper := (float64(e.M*e.K*e.N)/float64(e.PaperRank) - 1) * 100
		theoryOurs := e.Algorithm.TheoreticalSpeedup() * 100
		p1, p2 := 0.0, 0.0
		if !r.modelOnly {
			p := r.plan(fmmexec.ABC, r.threads, e.Algorithm)
			p1 = (r.planGFLOPS(p, base, k1, base)/g1 - 1) * 100
			p2 = (r.planGFLOPS(p, base, k2, base)/g2 - 1) * 100
		} else {
			s := model.StatsOf(e.Algorithm)
			p1 = (modelGFLOPS(r.paperA, s, fmmexec.ABC, 14400, 480, 14400)/modelGemmGFLOPS(r.paperA, 14400, 480, 14400) - 1) * 100
			p2 = (modelGFLOPS(r.paperA, s, fmmexec.ABC, 14400, 12000, 14400)/modelGemmGFLOPS(r.paperA, 14400, 12000, 14400) - 1) * 100
		}
		fmt.Printf("%s\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\n",
			e.Shape(), e.M*e.K*e.N, e.PaperRank, e.OurRank(), theoryPaper, theoryOurs, p1, p2)
	}
	fmt.Println()
}

// ---------------------------------------------------------------- Figure 3

// figure3 prints the recursive block storage indexing of Figure 3.
func (r *runner) figure3() {
	fmt.Println("## Figure 3: recursive block storage indexing (Morton-like), three levels of <2,2>")
	tab := morton.Table([]morton.Grid{{R: 2, C: 2}, {R: 2, C: 2}, {R: 2, C: 2}})
	for _, row := range tab {
		for j, v := range row {
			if j > 0 {
				fmt.Print("\t")
			}
			fmt.Printf("%2d", v)
		}
		fmt.Println()
	}
	fmt.Println()
}

// fig6Algos is the algorithm subset swept in the measured Figures 6–8 runs
// (the full catalog is swept in model space; measuring all 23 is possible
// but slow — use -scale=paper -exp=fig6 on a big machine for the full set).
func fig6Algos() []core.CatalogEntry {
	var out []core.CatalogEntry
	for _, s := range [][3]int{{2, 2, 2}, {2, 3, 2}, {3, 3, 3}, {4, 2, 4}, {3, 6, 3}} {
		e, ok := core.CatalogShape(s[0], s[1], s[2])
		if !ok {
			panic("missing catalog shape")
		}
		out = append(out, e)
	}
	return out
}

// ---------------------------------------------------------------- Figure 6

// figure6 sweeps k for one-level implementations of all three variants:
// actual (reduced scale, calibrated arch) and modeled (paper scale, paper
// arch) Effective GFLOPS.
func (r *runner) figure6() {
	fmt.Println("## Figure 6: one-level ABC/AB/Naive, m=n fixed, k sweep (actual & modeled)")
	base := r.base()
	ks := sweep(base/6, base, 6)
	ctx := gemm.MustNewContext[float64](r.cfg)

	// Modeled series at exact paper sizes for every catalog algorithm.
	fmt.Println("# modeled, paper scale: m=n=14400, paper Ivy Bridge arch")
	fmt.Println("variant\tshape\tk\tmodel_GFLOPS\tmodel_gemm_GFLOPS")
	for _, v := range fmmexec.Variants {
		for _, e := range core.Catalog() {
			s := model.StatsOf(e.Algorithm)
			for _, k := range sweep(1200, 12000, 10) {
				fmt.Printf("%s\t%s\t%d\t%.2f\t%.2f\n", v, e.Shape(), k,
					modelGFLOPS(r.paperA, s, v, 14400, k, 14400),
					modelGemmGFLOPS(r.paperA, 14400, k, 14400))
			}
		}
	}
	if r.modelOnly {
		fmt.Println()
		return
	}
	fmt.Printf("# actual, m=n=%d, threads=%d\n", base, r.threads)
	fmt.Println("variant\tshape\tk\tGFLOPS\tgemm_GFLOPS\tmodel_GFLOPS")
	for _, v := range fmmexec.Variants {
		for _, e := range fig6Algos() {
			s := model.StatsOf(e.Algorithm)
			p := r.plan(v, r.threads, e.Algorithm)
			for _, k := range ks {
				fmt.Printf("%s\t%s\t%d\t%.2f\t%.2f\t%.2f\n", v, e.Shape(), k,
					r.planGFLOPS(p, base, k, base),
					r.gemmGFLOPS(ctx, base, k, base),
					modelGFLOPS(r.arch, s, v, base, k, base))
			}
		}
	}
	fmt.Println()
}

// ---------------------------------------------------------------- Figure 7

// figure7 sweeps two-level ABC implementations over the paper's three
// problem-shape families.
func (r *runner) figure7() {
	fmt.Println("## Figure 7: two-level ABC; sweeps: m=k=n | m=n fixed,k | k fixed,m=n (actual & modeled)")
	base := r.base()
	fmt.Println("# modeled, paper scale, two-level, ABC")
	fmt.Println("sweep\tshape\tx\tmodel_GFLOPS\tmodel_gemm_GFLOPS")
	for _, e := range core.Catalog() {
		s := model.StatsOf(e.Algorithm, e.Algorithm)
		for _, x := range sweep(1200, 12000, 10) {
			fmt.Printf("square\t%s\t%d\t%.2f\t%.2f\n", e.Shape(), x,
				modelGFLOPS(r.paperA, s, fmmexec.ABC, x, x, x), modelGemmGFLOPS(r.paperA, x, x, x))
			fmt.Printf("ksweep\t%s\t%d\t%.2f\t%.2f\n", e.Shape(), x,
				modelGFLOPS(r.paperA, s, fmmexec.ABC, 14400, x, 14400), modelGemmGFLOPS(r.paperA, 14400, x, 14400))
			fmt.Printf("mnsweep\t%s\t%d\t%.2f\t%.2f\n", e.Shape(), x,
				modelGFLOPS(r.paperA, s, fmmexec.ABC, x, 1024, x), modelGemmGFLOPS(r.paperA, x, 1024, x))
		}
	}
	if r.modelOnly {
		fmt.Println()
		return
	}
	ctx := gemm.MustNewContext[float64](r.cfg)
	fmt.Printf("# actual, base=%d, threads=%d\n", base, r.threads)
	fmt.Println("sweep\tshape\tx\tGFLOPS\tgemm_GFLOPS\tmodel_GFLOPS")
	kfix := 256 // stands in for the paper's k=1024 = 4·kC at reduced scale
	for _, e := range fig6Algos() {
		s := model.StatsOf(e.Algorithm, e.Algorithm)
		p := r.plan(fmmexec.ABC, r.threads, e.Algorithm, e.Algorithm)
		for _, x := range sweep(base/4, base, 4) {
			fmt.Printf("square\t%s\t%d\t%.2f\t%.2f\t%.2f\n", e.Shape(), x,
				r.planGFLOPS(p, x, x, x), r.gemmGFLOPS(ctx, x, x, x),
				modelGFLOPS(r.arch, s, fmmexec.ABC, x, x, x))
			fmt.Printf("ksweep\t%s\t%d\t%.2f\t%.2f\t%.2f\n", e.Shape(), x,
				r.planGFLOPS(p, base, x, base), r.gemmGFLOPS(ctx, base, x, base),
				modelGFLOPS(r.arch, s, fmmexec.ABC, base, x, base))
			fmt.Printf("mnsweep\t%s\t%d\t%.2f\t%.2f\t%.2f\n", e.Shape(), x,
				r.planGFLOPS(p, x, kfix, x), r.gemmGFLOPS(ctx, x, kfix, x),
				modelGFLOPS(r.arch, s, fmmexec.ABC, x, kfix, x))
		}
	}
	fmt.Println()
}

// ---------------------------------------------------------------- Figure 8

// figure8 demonstrates model-guided selection: per sweep point, GEMM, the
// measured-best implementation from the candidate pool, and the
// model-selected implementation (top-2 predicted, then measured).
func (r *runner) figure8() {
	fmt.Println("## Figure 8: selecting FMM implementations with the performance model")
	if r.modelOnly {
		fmt.Println("# (skipped: requires measurement)")
		fmt.Println()
		return
	}
	base := r.base()
	ctx := gemm.MustNewContext[float64](r.cfg)
	// Candidate pool: subset shapes × {1,2} levels × 3 variants.
	var cands []model.Candidate
	for _, e := range fig6Algos() {
		for _, v := range fmmexec.Variants {
			cands = append(cands, model.Candidate{Levels: []core.Algorithm{e.Algorithm}, Variant: v})
			cands = append(cands, model.Candidate{Levels: []core.Algorithm{e.Algorithm, e.Algorithm}, Variant: v})
		}
	}
	fmt.Println("sweep\tx\tgemm_GFLOPS\tbest_GFLOPS\tbest_impl\tselected_GFLOPS\tselected_impl")
	type pt struct {
		sweepName string
		m, k, n   int
		x         int
	}
	var pts []pt
	for _, x := range sweep(base/4, base, 4) {
		pts = append(pts, pt{"square", x, x, x, x})
		pts = append(pts, pt{"ksweep", base, x, base, x})
		pts = append(pts, pt{"mnsweep", x, 256, x, x})
	}
	for _, q := range pts {
		gflopsOf := func(c model.Candidate) float64 {
			return r.planGFLOPS(r.plan(c.Variant, r.threads, c.Levels...), q.m, q.k, q.n)
		}
		// Measured best over the whole pool.
		bestG, bestName := 0.0, ""
		for _, c := range cands {
			if g := gflopsOf(c); g > bestG {
				bestG, bestName = g, c.Name()
			}
		}
		// Model-guided: top-2 predicted, then measured (§4.4).
		sel, err := model.Select(r.arch, cands, q.m, q.k, q.n, func(c model.Candidate) float64 {
			return 1 / gflopsOf(c)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\t%d\t%.2f\t%.2f\t%s\t%.2f\t%s\n",
			q.sweepName, q.x, r.gemmGFLOPS(ctx, q.m, q.k, q.n),
			bestG, bestName, gflopsOf(sel), sel.Name())
	}
	fmt.Println()
}

// ---------------------------------------------------------------- Figure 9

// figure9 compares hybrid two-level partitions against homogeneous ones for
// rank-k updates (k fixed near 2·3·kC), on one core and on all cores.
func (r *runner) figure9() {
	fmt.Println("## Figure 9: benefit of hybrid partitions (k fixed, m=n sweep, ABC)")
	if r.modelOnly {
		fmt.Println("# (skipped: requires measurement)")
		fmt.Println()
		return
	}
	base := r.base()
	kfix := 6 * r.cfg.KC / 4 // ≈ 2·3·kC/4: crossover region for 2- and 3-way k splits
	if r.scale == "paper" {
		kfix = 1200
	}
	s222 := core.Generate(2, 2, 2)
	s232 := core.Generate(2, 3, 2)
	s333 := core.Generate(3, 3, 3)
	plans := []struct {
		name   string
		levels []core.Algorithm
	}{
		{"<2,2,2> 1L", []core.Algorithm{s222}},
		{"<2,3,2> 1L", []core.Algorithm{s232}},
		{"<3,3,3> 1L", []core.Algorithm{s333}},
		{"<2,2,2> 2L", []core.Algorithm{s222, s222}},
		{"<2,3,2> 2L", []core.Algorithm{s232, s232}},
		{"<3,3,3> 2L", []core.Algorithm{s333, s333}},
		{"<2,2,2>+<2,3,2>", []core.Algorithm{s222, s232}},
		{"<2,2,2>+<3,3,3>", []core.Algorithm{s222, s333}},
	}
	for _, threads := range []int{1, runtime.GOMAXPROCS(0)} {
		cfg := r.cfg
		cfg.Threads = threads
		ctx := gemm.MustNewContext[float64](cfg)
		fmt.Printf("# k=%d, threads=%d\n", kfix, threads)
		fmt.Println("impl\tmn\tGFLOPS\tgemm_GFLOPS")
		for _, pl := range plans {
			p := r.plan(fmmexec.ABC, threads, pl.levels...)
			for _, x := range sweep(base/4, base, 4) {
				fmt.Printf("%s\t%d\t%.2f\t%.2f\n", pl.name, x,
					r.planGFLOPS(p, x, kfix, x), r.gemmGFLOPS(ctx, x, kfix, x))
			}
		}
	}
	fmt.Println()
}

// --------------------------------------------------------------- Figure 10

// figure10 reports multicore performance: our best generated implementation
// (ABC) vs the reference style of [1] (the Naive variant) vs GEMM, on the
// paper's three sweeps.
func (r *runner) figure10() {
	fmt.Println("## Figure 10: parallel performance, ours (ABC) vs reference-style (Naive) vs GEMM")
	if r.modelOnly {
		fmt.Println("# (skipped: requires measurement)")
		fmt.Println()
		return
	}
	threads := runtime.GOMAXPROCS(0)
	base := r.base()
	cfg := r.cfg
	cfg.Threads = threads
	ctx := gemm.MustNewContext[float64](cfg)
	fmt.Printf("# threads=%d\n", threads)
	fmt.Println("sweep\tshape\tx\tours_GFLOPS\treference_GFLOPS\tgemm_GFLOPS")
	for _, e := range fig6Algos() {
		ours := r.plan(fmmexec.ABC, threads, e.Algorithm)
		ref := r.plan(fmmexec.Naive, threads, e.Algorithm)
		for _, x := range sweep(base/4, base, 4) {
			fmt.Printf("square\t%s\t%d\t%.2f\t%.2f\t%.2f\n", e.Shape(), x,
				r.planGFLOPS(ours, x, x, x), r.planGFLOPS(ref, x, x, x), r.gemmGFLOPS(ctx, x, x, x))
			fmt.Printf("ksweep\t%s\t%d\t%.2f\t%.2f\t%.2f\n", e.Shape(), x,
				r.planGFLOPS(ours, base, x, base), r.planGFLOPS(ref, base, x, base), r.gemmGFLOPS(ctx, base, x, base))
			fmt.Printf("mnsweep\t%s\t%d\t%.2f\t%.2f\t%.2f\n", e.Shape(), x,
				r.planGFLOPS(ours, x, 256, x), r.planGFLOPS(ref, x, 256, x), r.gemmGFLOPS(ctx, x, 256, x))
		}
	}
	fmt.Println()
}

// --------------------------------------------------------------- crossover

// crossover measures the parallel FMM-vs-GEMM crossover at sizes beyond the
// default sweeps (supplement to Figure 10: where bandwidth contention sits
// on this machine). Run with different GOMAXPROCS to move along the
// compute:bandwidth axis.
func (r *runner) crossover() {
	fmt.Println("## Parallel crossover: 1/2-level <2,2,2> ABC vs GEMM at larger sizes")
	if r.modelOnly {
		fmt.Println("# (skipped: requires measurement)")
		fmt.Println()
		return
	}
	threads := runtime.GOMAXPROCS(0)
	cfg := r.cfg
	cfg.Threads = threads
	ctx := gemm.MustNewContext[float64](cfg)
	one := r.plan(fmmexec.ABC, threads, core.Strassen())
	two := r.plan(fmmexec.ABC, threads, core.Strassen(), core.Strassen())
	fmt.Printf("# threads=%d\n", threads)
	fmt.Println("m\tk\tn\tgemm_GFLOPS\tabc1L_GFLOPS\tabc2L_GFLOPS")
	for _, s := range [][3]int{{2880, 2880, 2880}, {4800, 960, 4800}, {4800, 4800, 4800}} {
		fmt.Printf("%d\t%d\t%d\t%.2f\t%.2f\t%.2f\n", s[0], s[1], s[2],
			r.gemmGFLOPS(ctx, s[0], s[1], s[2]),
			r.planGFLOPS(one, s[0], s[1], s[2]),
			r.planGFLOPS(two, s[0], s[1], s[2]))
	}
	fmt.Println()
}

// --------------------------------------------------------------- stability

func (r *runner) stability() {
	fmt.Println("## Stability ablation: forward error vs levels (Strassen, ABC, random [-1,1) inputs)")
	if r.modelOnly {
		fmt.Println("# (skipped: requires measurement)")
		fmt.Println()
		return
	}
	size := 512
	rs, err := stability.LevelSweep(r.cfg, core.Strassen(), fmmexec.ABC, 3, size, 1)
	if err != nil {
		fatal(err)
	}
	fmt.Println("levels\tmax_err\trel_err\tgemm_err")
	for i, res := range rs {
		fmt.Printf("%d\t%.3e\t%.3e\t%.3e\n", i+1, res.MaxErr, res.RelErr, res.GemmErr)
	}
	fmt.Println()
}

// sweep returns n roughly even points from lo to hi inclusive, each rounded
// to a multiple of 24 (so partitions by 2, 3, 4, 6 stay integral).
func sweep(lo, hi, n int) []int {
	if n < 2 {
		return []int{hi}
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*i/(n-1)
		x = (x / 24) * 24
		if x < 24 {
			x = 24
		}
		if len(out) == 0 || out[len(out)-1] != x {
			out = append(out, x)
		}
	}
	return out
}
