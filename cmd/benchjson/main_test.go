package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fmmfam/internal/stats"
)

const sample = `goos: linux
goarch: amd64
pkg: fmmfam
cpu: Intel(R) Xeon(R) CPU @ 2.20GHz
BenchmarkGEMMBaseline/k=160-4         	      38	  31415926 ns/op	        12.34 effGFLOPS	    2048 B/op	       3 allocs/op
BenchmarkShardedLarge/sharded-4       	       2	 512000000 ns/op	         8.50 effGFLOPS
BenchmarkShardedLarge/sharded-4       	       2	 498000000 ns/op	         8.74 effGFLOPS
PASS
ok  	fmmfam	42.000s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{
		"goos": "linux", "goarch": "amd64", "pkg": "fmmfam",
		"cpu": "Intel(R) Xeon(R) CPU @ 2.20GHz",
	} {
		if got := doc.Context[key]; got != want {
			t.Fatalf("context[%s] = %q, want %q", key, got, want)
		}
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkGEMMBaseline/k=160-4" || first.Runs != 38 {
		t.Fatalf("first sample: %+v", first)
	}
	wantMetrics := map[string]float64{
		"ns/op": 31415926, "effGFLOPS": 12.34, "B/op": 2048, "allocs/op": 3,
	}
	for unit, want := range wantMetrics {
		if got := first.Metrics[unit]; got != want {
			t.Fatalf("metric %s = %v, want %v", unit, got, want)
		}
	}
	// -count repetitions stay separate samples under one name.
	if doc.Benchmarks[1].Name != doc.Benchmarks[2].Name {
		t.Fatal("repeated samples should keep the same name")
	}
	if doc.Benchmarks[1].Metrics["ns/op"] == doc.Benchmarks[2].Metrics["ns/op"] {
		t.Fatal("repeated samples should keep distinct values")
	}
}

func doc(entries map[string][]float64) Doc {
	var d Doc
	for name, samples := range entries {
		for _, v := range samples {
			d.Benchmarks = append(d.Benchmarks, Benchmark{
				Name: name, Runs: 1, Metrics: map[string]float64{"ns/op": v},
			})
		}
	}
	return d
}

// TestCompareDocs: median aggregation, relative deltas, and one-sided
// benchmarks reported separately without affecting the shared set.
func TestCompareDocs(t *testing.T) {
	oldDoc := doc(map[string][]float64{
		"BenchmarkA":    {100, 110, 105}, // median 105
		"BenchmarkB":    {200, 190},      // median 195
		"BenchmarkGone": {50},
	})
	newDoc := doc(map[string][]float64{
		"BenchmarkA":   {125, 112}, // median 118.5: +12.86% vs 105
		"BenchmarkB":   {180, 185}, // median 182.5: ~-6.4% vs 195
		"BenchmarkNew": {70},
	})
	shared, onlyOld, onlyNew := compareDocs(oldDoc, newDoc, "ns/op", false)
	if len(shared) != 2 || shared[0].Name != "BenchmarkA" || shared[1].Name != "BenchmarkB" {
		t.Fatalf("shared = %+v", shared)
	}
	if shared[0].Old != 105 || shared[0].New != 118.5 || math.Abs(shared[0].Delta-13.5/105) > 1e-12 {
		t.Fatalf("BenchmarkA comparison %+v", shared[0])
	}
	if shared[0].SE <= 0 {
		t.Fatalf("BenchmarkA should carry a variance estimate, got %+v", shared[0])
	}
	if shared[1].Delta >= 0 {
		t.Fatalf("BenchmarkB should improve, got %+v", shared[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

// TestMedianAndSE pins the two estimators the gate stands on (now shared
// with the autotuner through internal/stats).
func TestMedianAndSE(t *testing.T) {
	if m := stats.Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := stats.Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if se := stats.SEMedian([]float64{5}); se != 0 {
		t.Fatalf("single-sample SE = %v, want 0", se)
	}
	// σ of {9, 11} is √2, so SE ≈ 1.2533·√2/√2 = 1.2533.
	if se := stats.SEMedian([]float64{9, 11}); math.Abs(se-1.2533) > 1e-9 {
		t.Fatalf("two-sample SE = %v, want ≈1.2533", se)
	}
}

// TestMergeDocs: new samples collapse to per-metric medians, retired names
// carry forward, and the result is name-sorted for stable committed diffs.
func TestMergeDocs(t *testing.T) {
	baseline := doc(map[string][]float64{
		"BenchmarkOld":    {100},
		"BenchmarkShared": {200},
	})
	fresh := doc(map[string][]float64{
		"BenchmarkShared": {150, 170, 160}, // median 160
		"BenchmarkNew":    {50, 70},        // median 60
	})
	merged := mergeDocs(baseline, fresh)
	if len(merged.Benchmarks) != 3 {
		t.Fatalf("merged %d entries, want 3: %+v", len(merged.Benchmarks), merged.Benchmarks)
	}
	byName := map[string]Benchmark{}
	for i, b := range merged.Benchmarks {
		byName[b.Name] = b
		if i > 0 && merged.Benchmarks[i-1].Name >= b.Name {
			t.Fatalf("merged output not name-sorted: %v before %v", merged.Benchmarks[i-1].Name, b.Name)
		}
	}
	if b := byName["BenchmarkShared"]; b.Metrics["ns/op"] != 160 || b.Runs != 3 {
		t.Fatalf("BenchmarkShared = %+v, want median 160 over 3 samples", b)
	}
	if b := byName["BenchmarkNew"]; b.Metrics["ns/op"] != 60 {
		t.Fatalf("BenchmarkNew = %+v, want median 60", b)
	}
	if b := byName["BenchmarkOld"]; b.Metrics["ns/op"] != 100 {
		t.Fatalf("retired BenchmarkOld should carry forward, got %+v", b)
	}
	// Merging twice is idempotent on an unchanged new document.
	again := mergeDocs(merged, fresh)
	if len(again.Benchmarks) != 3 || again.Benchmarks[1].Metrics["ns/op"] != byName[again.Benchmarks[1].Name].Metrics["ns/op"] {
		t.Fatalf("re-merge not stable: %+v", again.Benchmarks)
	}
}

// TestMergeMain drives the subcommand through files: a missing baseline
// starts fresh, and the written file round-trips as a loadable document.
func TestMergeMain(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, d Doc) string {
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	fresh := write("fresh.json", doc(map[string][]float64{"BenchmarkA": {10, 30, 20}}))
	out := filepath.Join(dir, "baseline.json")
	if code := mergeMain([]string{"-o", out, filepath.Join(dir, "missing.json"), fresh}); code != 0 {
		t.Fatalf("merge with missing baseline exit %d, want 0", code)
	}
	d, err := loadDoc(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Benchmarks) != 1 || d.Benchmarks[0].Metrics["ns/op"] != 20 {
		t.Fatalf("baseline = %+v, want single median-20 entry", d.Benchmarks)
	}
	// Second merge rolls the baseline forward.
	fresh2 := write("fresh2.json", doc(map[string][]float64{"BenchmarkB": {5}}))
	if code := mergeMain([]string{"-o", out, out, fresh2}); code != 0 {
		t.Fatalf("rolling merge exit %d, want 0", code)
	}
	if d, err = loadDoc(out); err != nil || len(d.Benchmarks) != 2 {
		t.Fatalf("rolled baseline = %+v (err %v), want 2 entries", d.Benchmarks, err)
	}
	if code := mergeMain([]string{out}); code != 2 {
		t.Fatalf("bad-usage exit %d, want 2", code)
	}
}

// TestCompareCIGate: a median shift past the threshold fails the gate only
// when the confidence interval excludes zero — one wild sample among stable
// ones widens the interval enough to pass, while a consistent shift fails.
func TestCompareCIGate(t *testing.T) {
	stable := doc(map[string][]float64{"BenchmarkX": {100, 101, 99, 100, 100}})
	// Consistent ~20% regression across samples: tight CI, must fail.
	consistent := doc(map[string][]float64{"BenchmarkX": {120, 121, 119, 120, 120}})
	shared, _, _ := compareDocs(stable, consistent, "ns/op", false)
	if len(shared) != 1 || !(shared[0].Delta > 0.10) || !shared[0].excludesZero() {
		t.Fatalf("consistent regression should be confirmed: %+v", shared)
	}
	// One wild outlier drags the median past the threshold only slightly
	// while blowing up the variance: CI includes zero, must not fail.
	noisy := doc(map[string][]float64{"BenchmarkX": {99, 100, 112, 113, 400}})
	shared, _, _ = compareDocs(stable, noisy, "ns/op", false)
	if len(shared) != 1 {
		t.Fatalf("shared = %+v", shared)
	}
	if c := shared[0]; c.Delta > 0.10 && c.excludesZero() {
		t.Fatalf("noisy shift should stay within the CI: %+v", c)
	}
}

// TestCompareDocsHigherBetter: for throughput metrics the best sample is
// the maximum and Delta stays regression-positive — a throughput drop is
// the regression, a gain is an improvement.
func TestCompareDocsHigherBetter(t *testing.T) {
	mk := func(entries map[string][]float64) Doc {
		var d Doc
		for name, samples := range entries {
			for _, v := range samples {
				d.Benchmarks = append(d.Benchmarks, Benchmark{
					Name: name, Runs: 1, Metrics: map[string]float64{"effGFLOPS": v},
				})
			}
		}
		return d
	}
	oldDoc := mk(map[string][]float64{
		"BenchmarkUp":   {8, 10}, // median 9
		"BenchmarkDown": {10, 9}, // median 9.5
	})
	newDoc := mk(map[string][]float64{
		"BenchmarkUp":   {12, 11}, // median 11.5: throughput gain = improvement
		"BenchmarkDown": {8, 7.5}, // median 7.75: ~-18% throughput = regression
	})
	shared, _, _ := compareDocs(oldDoc, newDoc, "effGFLOPS", true)
	if len(shared) != 2 {
		t.Fatalf("shared = %+v", shared)
	}
	byName := map[string]comparison{}
	for _, c := range shared {
		byName[c.Name] = c
	}
	if c := byName["BenchmarkUp"]; c.Old != 9 || c.New != 11.5 || c.Delta >= 0 {
		t.Fatalf("throughput gain misread as regression: %+v", c)
	}
	if c := byName["BenchmarkDown"]; c.Old != 9.5 || c.New != 7.75 || c.Delta <= 0.1 {
		t.Fatalf("throughput drop not regression-positive: %+v", c)
	}
}

// TestCompareMainExitCodes drives the subcommand end-to-end through JSON
// files on disk: regressions past the threshold exit 1, within-threshold
// runs exit 0, missing files exit 2.
func TestCompareMainExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, d Doc) string {
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", doc(map[string][]float64{"BenchmarkA": {100}, "BenchmarkB": {100}}))
	regressed := write("regressed.json", doc(map[string][]float64{"BenchmarkA": {125}, "BenchmarkB": {100}}))
	fine := write("fine.json", doc(map[string][]float64{"BenchmarkA": {105}, "BenchmarkB": {92}}))

	if code := compareMain([]string{oldPath, regressed}); code != 1 {
		t.Fatalf("regression exit code %d, want 1", code)
	}
	if code := compareMain([]string{oldPath, fine}); code != 0 {
		t.Fatalf("within-threshold exit code %d, want 0", code)
	}
	// A looser threshold lets the regression through.
	if code := compareMain([]string{"-threshold", "0.5", oldPath, regressed}); code != 0 {
		t.Fatalf("loose-threshold exit code %d, want 0", code)
	}
	if code := compareMain([]string{oldPath, filepath.Join(dir, "missing.json")}); code != 2 {
		t.Fatalf("missing-file exit code %d, want 2", code)
	}
	if code := compareMain([]string{oldPath}); code != 2 {
		t.Fatalf("bad-usage exit code %d, want 2", code)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := parse(strings.NewReader("=== RUN TestFoo\n--- PASS: TestFoo\nPASS\nok  \tfmmfam\t1.0s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output", len(doc.Benchmarks))
	}
}
