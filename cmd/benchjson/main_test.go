package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: fmmfam
cpu: Intel(R) Xeon(R) CPU @ 2.20GHz
BenchmarkGEMMBaseline/k=160-4         	      38	  31415926 ns/op	        12.34 effGFLOPS	    2048 B/op	       3 allocs/op
BenchmarkShardedLarge/sharded-4       	       2	 512000000 ns/op	         8.50 effGFLOPS
BenchmarkShardedLarge/sharded-4       	       2	 498000000 ns/op	         8.74 effGFLOPS
PASS
ok  	fmmfam	42.000s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{
		"goos": "linux", "goarch": "amd64", "pkg": "fmmfam",
		"cpu": "Intel(R) Xeon(R) CPU @ 2.20GHz",
	} {
		if got := doc.Context[key]; got != want {
			t.Fatalf("context[%s] = %q, want %q", key, got, want)
		}
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkGEMMBaseline/k=160-4" || first.Runs != 38 {
		t.Fatalf("first sample: %+v", first)
	}
	wantMetrics := map[string]float64{
		"ns/op": 31415926, "effGFLOPS": 12.34, "B/op": 2048, "allocs/op": 3,
	}
	for unit, want := range wantMetrics {
		if got := first.Metrics[unit]; got != want {
			t.Fatalf("metric %s = %v, want %v", unit, got, want)
		}
	}
	// -count repetitions stay separate samples under one name.
	if doc.Benchmarks[1].Name != doc.Benchmarks[2].Name {
		t.Fatal("repeated samples should keep the same name")
	}
	if doc.Benchmarks[1].Metrics["ns/op"] == doc.Benchmarks[2].Metrics["ns/op"] {
		t.Fatal("repeated samples should keep distinct values")
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := parse(strings.NewReader("=== RUN TestFoo\n--- PASS: TestFoo\nPASS\nok  \tfmmfam\t1.0s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output", len(doc.Benchmarks))
	}
}
