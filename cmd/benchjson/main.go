// Command benchjson converts `go test -bench` text output (read from stdin)
// into a stable JSON document, so CI can archive benchmark runs as machine-
// readable artifacts and the performance trajectory accumulates across PRs:
//
//	go test -run '^$' -bench . -benchmem -count=5 . | benchjson -o BENCH.json
//
// Every benchmark line becomes one entry — repeated -count samples stay
// separate entries under the same name, preserving run-to-run variance for
// later statistics. All reported metrics are kept, including custom ones
// like the effGFLOPS/aggGFLOPS metrics the fmmfam benchmarks emit.
//
// The compare subcommand diffs two archived documents and fails on
// regressions, turning the accumulated artifacts into a CI gate:
//
//	benchjson compare [-metric ns/op] [-threshold 0.10] old.json new.json
//
// Per benchmark name present in both documents, the *medians* of the
// metric's samples are compared (oriented so a positive delta is always the
// regression: slower for ns/op, lower with -higher-better for throughput
// metrics like effGFLOPS), together with a simple 95% confidence interval
// on the median difference (normal approximation: the standard error of a
// median is ≈1.2533·σ/√n, the two sides' errors add in quadrature). The
// exit status is nonzero only when a shared benchmark's median regressed by
// more than the threshold (default 10%) AND the confidence interval
// excludes zero — a single noisy sample on a loaded CI runner can no longer
// fail the gate, while a consistent shift across samples still does. With
// fewer than two samples on both sides no variance estimate exists; the
// interval degenerates to the sign of the difference, reproducing the old
// point-comparison behavior. Benchmarks present on only one side are
// reported but never fail the comparison — including when no benchmark is
// shared at all — so adding or retiring benchmarks doesn't break the gate
// but a vanished benchmark is always visible in the job output.
//
// The merge subcommand maintains a rolling baseline document — the
// committed fallback the compare step uses when the previous run's
// artifact has expired (GitHub artifacts age out after 90 days):
//
//	benchjson merge -o bench/baseline.json bench/baseline.json BENCH.json
//
// Each benchmark name appearing in the new document is collapsed to a
// single entry whose metrics are the per-metric medians of its samples
// (Runs records how many samples were collapsed); names present only in
// the old baseline are carried forward unchanged, so a benchmark retired
// upstream keeps its last-known numbers and `compare` reports it as
// vanished rather than forgetting it. A missing or empty old baseline
// starts fresh from the new document alone.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"fmmfam/internal/stats"
)

// Benchmark is one measured sample: a benchmark name, its iteration count,
// and every metric the line reported (unit → value), e.g. "ns/op", "B/op",
// "allocs/op", "effGFLOPS".
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the artifact layout: the run's context lines (goos, goarch, pkg,
// cpu) plus all samples in input order.
type Doc struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// contextKeys are the `key: value` header lines `go test -bench` prints.
var contextKeys = []string{"goos", "goarch", "pkg", "cpu"}

func parse(r io.Reader) (Doc, error) {
	doc := Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
scan:
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range contextKeys {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				doc.Context[key] = strings.TrimSpace(v)
				continue scan
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		runs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		fields := strings.Fields(m[3])
		metrics := make(map[string]float64, len(fields)/2)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, Benchmark{Name: m[1], Runs: runs, Metrics: metrics})
	}
	return doc, sc.Err()
}

// samplesByName collects every sample of metric per benchmark name (the
// -count repetitions the converter deliberately keeps separate); names
// without that metric are skipped.
func samplesByName(doc Doc, metric string) map[string][]float64 {
	out := make(map[string][]float64)
	for _, b := range doc.Benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			out[b.Name] = append(out[b.Name], v)
		}
	}
	return out
}

// The median/SE/CI math lives in internal/stats, shared with the online
// plan autotuner — one implementation of "is this distribution faster than
// that one, beyond noise?" for both the CI gate and the serving bandit.
const ciZ = stats.CIZ

// comparison is the result of diffing one shared benchmark.
type comparison struct {
	Name     string
	Old, New float64 // medians of the metric's samples
	Delta    float64 // relative median shift, positive = regression
	Diff     float64 // absolute median shift, oriented positive = regression
	SE       float64 // standard error of Diff (quadrature sum of both sides)
}

// excludesZero reports whether the 95% confidence interval of the oriented
// median difference lies entirely above zero — the evidence bar a
// regression must clear to fail the gate. With no variance estimate
// (single samples) it reduces to Diff > 0.
func (c comparison) excludesZero() bool {
	return stats.Diff{Diff: c.Diff, SE: c.SE}.ExcludesZero()
}

// compareDocs diffs the per-name sample medians of metric between two
// documents and returns the shared-benchmark comparisons (sorted by name)
// plus the names present on only one side. Delta and Diff are oriented so
// that positive always means regression: new−old for lower-is-better
// metrics, negated for higher-is-better ones.
func compareDocs(oldDoc, newDoc Doc, metric string, higherBetter bool) (shared []comparison, onlyOld, onlyNew []string) {
	oldSamples := samplesByName(oldDoc, metric)
	newSamples := samplesByName(newDoc, metric)
	for name, ns := range newSamples {
		os, ok := oldSamples[name]
		if !ok {
			onlyNew = append(onlyNew, name)
			continue
		}
		ov, nv := stats.Median(os), stats.Median(ns)
		diff := nv - ov
		delta := diff / ov
		if higherBetter {
			delta, diff = -delta, -diff
		}
		shared = append(shared, comparison{
			Name: name, Old: ov, New: nv,
			Delta: delta,
			Diff:  diff,
			SE:    math.Hypot(stats.SEMedian(os), stats.SEMedian(ns)),
		})
	}
	for name := range oldSamples {
		if _, ok := newSamples[name]; !ok {
			onlyOld = append(onlyOld, name)
		}
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i].Name < shared[j].Name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return shared, onlyOld, onlyNew
}

func loadDoc(path string) (Doc, error) {
	var doc Doc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// compareMain implements `benchjson compare old.json new.json` and returns
// the process exit code: 0 when no shared benchmark regressed past the
// threshold, 1 when one did, 2 on usage or I/O errors.
func compareMain(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	metric := fs.String("metric", "ns/op", "metric to compare (median of samples per name)")
	threshold := fs.Float64("threshold", 0.10, "relative regression that fails the comparison")
	higherBetter := fs.Bool("higher-better", false,
		"treat the metric as higher-is-better (throughput like effGFLOPS): a median drop is the regression")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare [-metric ns/op] [-higher-better] [-threshold 0.10] old.json new.json")
		return 2
	}
	oldDoc, err := loadDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := loadDoc(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	shared, onlyOld, onlyNew := compareDocs(oldDoc, newDoc, *metric, *higherBetter)
	if len(shared) == 0 {
		// Still report the one-sided rows: a document pair with no overlap
		// at all (every benchmark renamed or retired) used to pass silently,
		// hiding exactly the vanished rows the gate exists to surface.
		for _, name := range onlyOld {
			fmt.Printf("%-60s only in old document (vanished)\n", name)
		}
		for _, name := range onlyNew {
			fmt.Printf("%-60s only in new document (new)\n", name)
		}
		fmt.Printf("no shared benchmarks with metric %q; nothing to compare (%d vanished, %d new)\n",
			*metric, len(onlyOld), len(onlyNew))
		return 0
	}
	var regressed []comparison
	for _, c := range shared {
		flag := ""
		switch {
		case c.Delta > *threshold && c.excludesZero():
			flag = "  REGRESSION"
			regressed = append(regressed, c)
		case c.Delta > *threshold:
			flag = "  within noise (CI includes zero)"
		}
		ci := ""
		if c.SE > 0 && c.Old != 0 {
			ci = fmt.Sprintf(" ±%.1f%%", 100*ciZ*c.SE/c.Old)
		}
		fmt.Printf("%-60s %14.0f -> %14.0f  %+6.1f%%%s%s\n", c.Name, c.Old, c.New, 100*c.Delta, ci, flag)
	}
	for _, name := range onlyOld {
		fmt.Printf("%-60s only in old document (vanished)\n", name)
	}
	for _, name := range onlyNew {
		fmt.Printf("%-60s only in new document (new)\n", name)
	}
	if len(onlyOld) > 0 || len(onlyNew) > 0 {
		fmt.Printf("note: %d benchmark(s) vanished, %d new — one-sided rows never fail the gate\n",
			len(onlyOld), len(onlyNew))
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% on %s (median, 95%% CI excludes zero)\n",
			len(regressed), 100**threshold, *metric)
		return 1
	}
	fmt.Printf("OK: %d shared benchmark(s) without confirmed regression past %.0f%% on %s\n", len(shared), 100**threshold, *metric)
	return 0
}

// mergeDocs folds a new run into a rolling baseline: every name in newDoc
// is collapsed to one entry per name with per-metric sample medians (Runs =
// number of samples collapsed, min across metrics), and names only in
// oldDoc carry forward unchanged. Output entries are sorted by name so the
// committed baseline diffs cleanly.
func mergeDocs(oldDoc, newDoc Doc) Doc {
	byName := make(map[string][]Benchmark)
	var order []string
	for _, b := range newDoc.Benchmarks {
		if _, ok := byName[b.Name]; !ok {
			order = append(order, b.Name)
		}
		byName[b.Name] = append(byName[b.Name], b)
	}
	out := Doc{Context: newDoc.Context, Benchmarks: make([]Benchmark, 0, len(order))}
	if out.Context == nil {
		out.Context = map[string]string{}
	}
	for _, name := range order {
		samples := byName[name]
		metricVals := make(map[string][]float64)
		for _, b := range samples {
			for metric, v := range b.Metrics {
				metricVals[metric] = append(metricVals[metric], v)
			}
		}
		collapsed := Benchmark{Name: name, Runs: int64(len(samples)), Metrics: make(map[string]float64, len(metricVals))}
		for metric, vals := range metricVals {
			collapsed.Metrics[metric] = stats.Median(vals)
		}
		out.Benchmarks = append(out.Benchmarks, collapsed)
	}
	for _, b := range oldDoc.Benchmarks {
		if _, ok := byName[b.Name]; !ok {
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	sort.Slice(out.Benchmarks, func(i, j int) bool { return out.Benchmarks[i].Name < out.Benchmarks[j].Name })
	return out
}

// mergeMain implements `benchjson merge -o out.json baseline.json new.json`
// and returns the process exit code. A missing baseline file is not an
// error — the merged output is then just the collapsed new document.
func mergeMain(args []string) int {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	out := fs.String("o", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson merge [-o out.json] baseline.json new.json")
		return 2
	}
	var oldDoc Doc
	if _, err := os.Stat(fs.Arg(0)); err == nil {
		if oldDoc, err = loadDoc(fs.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
	}
	newDoc, err := loadDoc(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	merged := mergeDocs(oldDoc, newDoc)
	enc, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return 0
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	fmt.Printf("merged %d benchmark(s) into %s\n", len(merged.Benchmarks), *out)
	return 0
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(compareMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		os.Exit(mergeMain(os.Args[2:]))
	}
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
