// Command benchjson converts `go test -bench` text output (read from stdin)
// into a stable JSON document, so CI can archive benchmark runs as machine-
// readable artifacts and the performance trajectory accumulates across PRs:
//
//	go test -run '^$' -bench . -benchmem -count=5 . | benchjson -o BENCH.json
//
// Every benchmark line becomes one entry — repeated -count samples stay
// separate entries under the same name, preserving run-to-run variance for
// later statistics. All reported metrics are kept, including custom ones
// like the effGFLOPS/aggGFLOPS metrics the fmmfam benchmarks emit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one measured sample: a benchmark name, its iteration count,
// and every metric the line reported (unit → value), e.g. "ns/op", "B/op",
// "allocs/op", "effGFLOPS".
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the artifact layout: the run's context lines (goos, goarch, pkg,
// cpu) plus all samples in input order.
type Doc struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// contextKeys are the `key: value` header lines `go test -bench` prints.
var contextKeys = []string{"goos", "goarch", "pkg", "cpu"}

func parse(r io.Reader) (Doc, error) {
	doc := Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
scan:
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range contextKeys {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				doc.Context[key] = strings.TrimSpace(v)
				continue scan
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		runs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		fields := strings.Fields(m[3])
		metrics := make(map[string]float64, len(fields)/2)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, Benchmark{Name: m[1], Runs: runs, Metrics: metrics})
	}
	return doc, sc.Err()
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
