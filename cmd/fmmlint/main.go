// Command fmmlint runs the repo's custom static-analysis suite (see
// internal/lint): rentrelease, hotpathalloc, detorder, and locksafe.
//
// It runs in two modes:
//
// Standalone — loads and type-checks packages itself (no go command
// involved), which is the mode CI and developers use directly:
//
//	go run ./cmd/fmmlint ./...
//	go run ./cmd/fmmlint -analyzers=detorder,locksafe ./internal/gemm
//
// Vet tool — speaks the go vet unitchecker protocol (-V=full / -flags /
// <file>.cfg invocations), so the suite can ride vet's package graph and
// caching:
//
//	go build -o "$(go env GOPATH)/bin/fmmlint" ./cmd/fmmlint
//	go vet -vettool="$(go env GOPATH)/bin/fmmlint" ./...
//
// Exit status: 0 when clean, 1 on usage or load errors, 2 when diagnostics
// were reported (matching vet's convention).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fmmfam/internal/lint"
)

func main() {
	args := os.Args[1:]
	// go vet probes the tool before use; these must answer before any flag
	// parsing, and a lone *.cfg argument is a per-package vet invocation.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// The output is hashed into vet's action cache key; any stable
			// line identifying the tool build works.
			fmt.Printf("fmmlint version v8 buildID=none\n")
			return
		case args[0] == "-flags":
			// No tool-specific flags are exposed to the vet driver.
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runVetUnit(args[0]))
		}
	}

	fs := flag.NewFlagSet("fmmlint", flag.ExitOnError)
	analyzersFlag := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	listFlag := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fmmlint [-analyzers=a,b] [-list] [packages]\n\npackages default to ./... and may be ./dir, ./dir/..., or module-relative paths\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	analyzers, err := lint.ByName(*analyzersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *listFlag {
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-14s %s\n", a.Name, doc)
		}
		return
	}
	os.Exit(runStandalone(fs.Args(), analyzers))
}

// runStandalone loads the requested packages through the module loader and
// runs the suite over them.
func runStandalone(patterns []string, analyzers []*lint.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, err := resolvePatterns(loader, root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := lint.RunPackages(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// resolvePatterns maps package patterns to loaded packages: "./..." (or the
// module path with /...) loads everything; "./dir/..." loads the subtree;
// "./dir" or a module-relative path loads one package.
func resolvePatterns(loader *lint.Loader, root string, patterns []string) ([]*lint.Package, error) {
	var out []*lint.Package
	seen := make(map[string]bool)
	add := func(pkgs ...*lint.Package) {
		for _, p := range pkgs {
			if !seen[p.Path] {
				seen[p.Path] = true
				out = append(out, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all" || pat == loader.ModPath+"/...":
			pkgs, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			add(pkgs...)
		case strings.HasSuffix(pat, "/..."):
			prefix, err := patternImportPath(loader, root, strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, err
			}
			pkgs, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			matched := false
			for _, p := range pkgs {
				if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("fmmlint: no packages match %s", pat)
			}
		default:
			path, err := patternImportPath(loader, root, pat)
			if err != nil {
				return nil, err
			}
			pkg, err := loader.Load(path)
			if err != nil {
				return nil, err
			}
			add(pkg)
		}
	}
	return out, nil
}

// patternImportPath maps one non-wildcard pattern to an import path: "." and
// "./dir" are resolved against the working directory, everything else is
// taken as a module-relative or fully-qualified import path.
func patternImportPath(loader *lint.Loader, root, pat string) (string, error) {
	if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") {
		abs, err := filepath.Abs(pat)
		if err != nil {
			return "", err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("fmmlint: %s is outside module root %s", pat, root)
		}
		if rel == "." {
			return loader.ModPath, nil
		}
		return loader.ModPath + "/" + filepath.ToSlash(rel), nil
	}
	if pat == loader.ModPath || strings.HasPrefix(pat, loader.ModPath+"/") {
		return pat, nil
	}
	return loader.ModPath + "/" + pat, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("fmmlint: no go.mod found above working directory")
		}
		dir = parent
	}
}
