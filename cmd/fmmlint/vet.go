package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"fmmfam/internal/lint"
)

// vetConfig is the per-package JSON configuration the go command hands a
// -vettool (the unitchecker protocol). Only the fields this tool consumes
// are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package as directed by a vet .cfg file and returns
// the process exit code: 0 clean, 1 tool/typecheck error, 2 diagnostics.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fmmlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite computes no cross-package facts, but the driver expects the
	// facts file to exist before it vets importers of this package.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Dependencies resolve through the export data the go command already
	// built, keyed by the canonical import map.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("fmmlint: no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	pkg := &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := lint.RunPackage(pkg, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
