package main

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fmmfam"
	"fmmfam/serve"
)

// TestRunBootServeShutdown drives a full lifecycle through run: boot on an
// ephemeral loopback port, serve one real multiply, then cancel the context
// (the signal path) and require a clean exit.
func TestRunBootServeShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pr, pw := io.Pipe()
	runErr := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"-addr", "127.0.0.1:0", "-threads", "2"}, pw)
		pw.Close()
		runErr <- err
	}()

	// The first output line carries the bound address.
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatalf("reading banner: %v (run may have failed: %v)", err, <-runErr)
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[0] != "fmmserve" {
		t.Fatalf("unexpected banner %q", line)
	}
	baseURL := "http://" + fields[3]
	go io.Copy(io.Discard, pr) // keep later writes from blocking the pipe

	cl := &serve.Client{BaseURL: baseURL}
	a, b := fmmfam.NewMatrix(8, 8), fmmfam.NewMatrix(8, 8)
	a.Fill(1)
	b.Fill(2)
	c := fmmfam.NewMatrix(8, 8)
	if err := cl.Multiply(c, a, b); err != nil {
		t.Fatalf("multiply against booted server: %v", err)
	}
	if got := c.At(3, 4); got != 16 {
		t.Fatalf("served product C(3,4) = %v, want 16", got)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Completed != 1 {
		t.Fatalf("stats.Completed = %d, want 1", st.Completed)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run exited with %v after cancel, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after context cancel")
	}
	if _, err := http.Get(baseURL + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestRunFlagErrors pins the failure modes that must not boot a listener.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"stray-positional"},
		{"-addr", "127.0.0.1:0", "-admission-depth", "-3"},
	} {
		if err := run(context.Background(), args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
