// Command fmmserve serves the fast-matrix-multiply engine over HTTP: binary
// multiply/batch/async endpoints with small-request coalescing, bounded
// admission control (429 + Retry-After when full), and JSON observability at
// /v1/stats. It is the networked front of the serving stack — everything
// compute-side lives in the fmmfam engine, everything wire-side in
// fmmfam/serve; this binary just binds them to a socket and a signal
// handler.
//
//	fmmserve [-addr :8077] [-threads N] [-autotune] [-kernel avx2] \
//	         [-coalesce-window 500µs] [-coalesce-maxjobs 32] [-admission-depth 256]
//
// Every flag has an environment mirror resolved by the engine config
// (FMMFAM_SERVE_ADDR, FMMFAM_KERNEL, FMMFAM_COALESCE_WINDOW,
// FMMFAM_COALESCE_MAXJOBS, FMMFAM_ADMISSION_DEPTH, FMMFAM_AUTOTUNE); the
// environment wins over flag defaults but explicit flags win over
// everything, matching the engine's env-mirror contract. An unavailable
// kernel selection (e.g. avx2 on a host without AVX2+FMA) fails boot with
// the recorded reason; /v1/stats reports every backend's availability and
// which one each engine resolved. SIGINT/SIGTERM trigger graceful shutdown: the
// listener stops, in-flight requests complete, open coalescing windows
// flush, and the engines drain through Multiplier.Close before the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fmmfam"
	"fmmfam/serve"
)

// shutdownGrace bounds how long graceful shutdown waits for in-flight HTTP
// requests before abandoning them; engine drain (Close) is unbounded, it
// always completes once the handlers are gone.
const shutdownGrace = 30 * time.Second

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "fmmserve:", err)
		os.Exit(1)
	}
}

// run builds the server from flags, serves until ctx is cancelled (the
// signal handler in main) or the listener fails, then shuts down
// gracefully. Factored from main so tests can drive a full boot/serve/drain
// cycle with a cancelable context and a loopback port.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fmmserve", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "", "listen address (default Config.ServeAddr, env FMMFAM_SERVE_ADDR)")
	threads := fs.Int("threads", 0, "engine worker threads (0 = all CPUs)")
	autotune := fs.Bool("autotune", false, "enable online plan autotuning on served traffic")
	kernelName := fs.String("kernel", "", "micro-kernel backend for both engines (default engine default, env FMMFAM_KERNEL; /v1/stats lists availability)")
	window := fs.Duration("coalesce-window", 0, "coalescing window for small requests (0 = engine default, negative disables)")
	maxJobs := fs.Int("coalesce-maxjobs", 0, "max requests per coalescing window (0 = engine default)")
	depth := fs.Int("admission-depth", 0, "max in-flight requests before 429 (0 = engine default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	cfg := fmmfam.DefaultConfig().Parallel()
	if *threads > 0 {
		cfg.Threads = *threads
	}
	cfg.Autotune = *autotune
	cfg.Kernel = os.Getenv("FMMFAM_KERNEL")
	if *kernelName != "" {
		cfg.Kernel = *kernelName
	}
	cfg.CoalesceWindow = *window
	cfg.CoalesceMaxJobs = *maxJobs
	cfg.AdmissionDepth = *depth
	if *addr != "" {
		cfg.ServeAddr = *addr
	}

	srv, err := serve.New(cfg, fmmfam.PaperArch())
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", srv.Addr())
	if err != nil {
		srv.Close()
		return err
	}
	kernelLabel := cfg.Kernel
	if kernelLabel == "" {
		kernelLabel = "default"
	}
	fmt.Fprintf(out, "fmmserve listening on %s (threads=%d autotune=%v kernel=%s)\n", ln.Addr(), cfg.Threads, cfg.Autotune, kernelLabel)

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "fmmserve: shutting down")
	case err := <-serveErr:
		// The listener died on its own; still drain compute before exiting.
		return errors.Join(err, srv.Close())
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	shutdownErr := hs.Shutdown(shutCtx)
	closeErr := srv.Close()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		shutdownErr = errors.Join(shutdownErr, err)
	}
	return errors.Join(shutdownErr, closeErr)
}
